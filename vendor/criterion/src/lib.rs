//! Offline drop-in subset of the `criterion` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the benchmarking API surface the workspace's `benches/` use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a warm-up pass, then timed batches
//! until the measurement budget is spent, reporting the per-iteration mean
//! and min — adequate for the relative comparisons (batched vs. sequential,
//! engine vs. engine) the workspace tracks. Bench targets must set
//! `harness = false`, exactly as with upstream criterion.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export of the standard black box (upstream `criterion::black_box`).
pub use std::hint::black_box;

/// One completed benchmark measurement (shim extension; upstream criterion
/// persists these to `target/criterion` instead).
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Full label, `group/case` for grouped benches.
    pub label: String,
    /// Mean wall-clock per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Best (minimum) batch-averaged time per iteration, nanoseconds.
    pub min_ns: f64,
    /// Total measured iterations.
    pub iters: u64,
}

static MEASUREMENTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Returns (and clears) every measurement recorded so far in this process.
/// Lets `harness = false` bench mains emit machine-readable reports after
/// the groups have run.
pub fn drain_measurements() -> Vec<Measurement> {
    std::mem::take(&mut MEASUREMENTS.lock().expect("measurement registry"))
}

/// Identifier for one benchmark case within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function label and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    warmup: Duration,
    budget: Duration,
    /// `(total_time, iterations, best_per_iter)` of the measured run.
    result: Option<(Duration, u64, Duration)>,
}

impl Bencher {
    /// Runs `routine` repeatedly: first a warm-up, then timed batches until
    /// the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }
        let est = warm_start.elapsed() / warm_iters.max(1) as u32;
        // Batch size targeting ~20 batches within the budget.
        let batch = ((self.budget.as_nanos() / 20).saturating_div(est.as_nanos().max(1)))
            .clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut best = Duration::MAX;
        while total < self.budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            best = best.min(dt / batch as u32);
            total += dt;
            iters += batch;
        }
        self.result = Some((total, iters, best));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(full_label: &str, warmup: Duration, budget: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        warmup,
        budget,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((total, iters, best)) => {
            let mean = Duration::from_nanos((total.as_nanos() / iters.max(1) as u128) as u64);
            println!(
                "bench: {full_label:<48} {:>12}/iter (min {:>12}, {iters} iters)",
                fmt_duration(mean),
                fmt_duration(best),
            );
            MEASUREMENTS
                .lock()
                .expect("measurement registry")
                .push(Measurement {
                    label: full_label.to_string(),
                    mean_ns: total.as_nanos() as f64 / iters.max(1) as f64,
                    min_ns: best.as_nanos() as f64,
                    iters,
                });
        }
        None => println!("bench: {full_label:<48} (no measurement — iter() never called)"),
    }
}

/// A named collection of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Lowers the sample count (accepted for upstream compatibility; the
    /// shim's time budget already bounds the run).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement budget for this group (ignored in quick
    /// mode, which caps every case at the smoke budget).
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        if !self.criterion.quick {
            self.criterion.budget = budget;
        }
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        routine: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.criterion.warmup,
            self.criterion.budget,
            routine,
        );
        self
    }

    /// Benchmarks `routine` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.warmup, self.criterion.budget, |b| {
            routine(b, input)
        });
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a marker).
    pub fn finish(self) {}
}

/// Benchmark driver (upstream `criterion::Criterion` subset).
///
/// `VAQEM_QUICK=1` (the workspace-wide smoke switch) shrinks warm-up and
/// measurement budgets ~10x so CI can exercise every bench cheaply;
/// quick-mode numbers are noisier and only meaningful as ratios.
pub struct Criterion {
    warmup: Duration,
    budget: Duration,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("VAQEM_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        if quick {
            Criterion {
                warmup: Duration::from_millis(30),
                budget: Duration::from_millis(150),
                quick,
            }
        } else {
            Criterion {
                warmup: Duration::from_millis(300),
                budget: Duration::from_millis(1500),
                quick,
            }
        }
    }
}

impl Criterion {
    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        label: &str,
        routine: F,
    ) -> &mut Self {
        run_one(label, self.warmup, self.budget, routine);
        self
    }

    /// Opens a named group of related cases.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// Declares a group-runner function calling each benchmark fn in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench_fn:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $bench_fn(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_registers() {
        let mut c = Criterion {
            warmup: Duration::from_millis(5),
            budget: Duration::from_millis(20),
            quick: false,
        };
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
        let seen = drain_measurements();
        let labels: Vec<&str> = seen.iter().map(|m| m.label.as_str()).collect();
        assert!(labels.contains(&"spin"), "labels: {labels:?}");
        assert!(labels.contains(&"group/4"), "labels: {labels:?}");
        for m in &seen {
            assert!(m.mean_ns > 0.0 && m.iters > 0);
        }
        assert!(drain_measurements().is_empty(), "drain clears the registry");
    }

    #[test]
    fn quick_mode_pins_measurement_time() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            budget: Duration::from_millis(5),
            quick: true,
        };
        let mut g = c.benchmark_group("g");
        g.measurement_time(Duration::from_secs(30));
        g.finish();
        assert_eq!(c.budget, Duration::from_millis(5));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
