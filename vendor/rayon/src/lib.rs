//! Offline drop-in subset of the `rayon` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements the fragment of rayon's indexed parallel-iterator API the
//! workspace uses — `slice.par_iter().map(f).collect::<Vec<_>>()` plus
//! [`join`] — on plain `std::thread::scope` workers pulling indices from a
//! shared atomic counter. Results are returned in input order, so the
//! parallel path is observably identical to the sequential one (a property
//! the executor-parity tests rely on).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads a parallel call will use for `len` items.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// An indexed, length-known parallel computation: item `i` is produced by
/// `run(i)`. Composition (`map`) wraps the task; execution distributes the
/// index space over threads.
pub trait IndexedTask: Sync {
    /// The per-index output.
    type Output: Send;
    /// Number of items.
    fn len(&self) -> usize;
    /// Returns `true` when there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Computes item `index`.
    fn run(&self, index: usize) -> Self::Output;
}

/// Drives an [`IndexedTask`] over a scoped thread pool, preserving input
/// order in the output.
fn drive<T: IndexedTask>(task: &T) -> Vec<T::Output> {
    let n = task.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return (0..n).map(|i| task.run(i)).collect();
    }
    let cursor = AtomicUsize::new(0);
    type Bucket<O> = Mutex<Vec<(usize, O)>>;
    let buckets: Vec<Bucket<T::Output>> = (0..workers).map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|s| {
        let cursor = &cursor;
        for bucket in &buckets {
            s.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, task.run(i)));
                }
                *bucket.lock().expect("worker bucket poisoned") = local;
            });
        }
    });
    let mut indexed: Vec<(usize, T::Output)> = buckets
        .into_iter()
        .flat_map(|b| b.into_inner().expect("worker bucket poisoned"))
        .collect();
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, v)| v).collect()
}

/// A parallel iterator (upstream `rayon::iter::ParallelIterator` subset;
/// everything here is indexed).
pub trait ParallelIterator: IndexedTask + Sized {
    /// Maps each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Output) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Executes the pipeline in parallel and collects in input order.
    fn collect<C: FromIterator<Self::Output>>(self) -> C {
        drive(&self).into_iter().collect()
    }

    /// Executes the pipeline and folds the outputs sequentially.
    fn fold_seq<Acc, F: FnMut(Acc, Self::Output) -> Acc>(self, init: Acc, f: F) -> Acc {
        drive(&self).into_iter().fold(init, f)
    }
}

impl<T: IndexedTask + Sized> ParallelIterator for T {}

/// Borrowing conversion into a parallel iterator (upstream
/// `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The produced item type.
    type Item: Send + 'a;
    /// The iterator type.
    type Iter: ParallelIterator<Output = Self::Item>;
    /// Creates a parallel iterator over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Parallel iterator over a slice.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedTask for SliceIter<'a, T> {
    type Output = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn run(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// The result of [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> IndexedTask for Map<I, F>
where
    I: IndexedTask,
    R: Send,
    F: Fn(I::Output) -> R + Sync,
{
    type Output = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn run(&self, index: usize) -> R {
        (self.f)(self.base.run(index))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * x).collect();
        assert_eq!(ys.len(), 1000);
        for (i, y) in ys.iter().enumerate() {
            assert_eq!(*y, (i * i) as u64);
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let xs: Vec<u64> = Vec::new();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn parallel_matches_sequential() {
        let xs: Vec<u64> = (0..257).collect();
        let par: Vec<u64> = xs.par_iter().map(|&x| x.wrapping_mul(2654435761)).collect();
        let seq: Vec<u64> = xs.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
        assert_eq!(par, seq);
    }
}
