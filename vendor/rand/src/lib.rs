//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides exactly the API surface the workspace uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through a
//! splitmix64 expansion — a high-quality, fast PRNG. It is **not** the
//! upstream `StdRng` (ChaCha12): absolute streams differ from real `rand`,
//! but every consumer in this workspace only relies on determinism for a
//! fixed seed and on statistical quality, both of which hold.

pub mod rngs {
    /// Deterministic generator with the upstream `StdRng` interface.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Low-level uniform word source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (upstream `rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut x = state;
        let mut s = [0u64; 4];
        for w in s.iter_mut() {
            *w = splitmix64(&mut x);
        }
        // xoshiro forbids the all-zero state; splitmix64 of any seed never
        // produces four zero words, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly from a generator (upstream `Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable uniformly (upstream `SampleRange` subset: `Range` only).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire) with a rejection
                // pass to stay unbiased.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// User-facing extension methods (upstream `rand::Rng` subset).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            acc += x;
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[r.gen_range(0..4u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..256 {
            let v = r.gen_range(1..4u8);
            assert!((1..4).contains(&v));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = r.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&v));
        }
        // Never returns exactly zero when the lower bound is positive.
        for _ in 0..1000 {
            let v = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(13);
        let trues = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "{trues}");
    }
}
