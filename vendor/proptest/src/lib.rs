//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements the property-testing surface the workspace's
//! `tests/prop_invariants.rs` uses: [`Strategy`] with `prop_map`,
//! range/tuple strategies, [`collection::vec`], [`prop_oneof!`], and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Unlike upstream, there is no shrinking: a failing case panics with its
//! case index and root seed, which replay deterministically (cases are
//! derived from a fixed seed, overridable via `PROPTEST_RNG_SEED`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;
use std::rc::Rc;

/// Runner configuration (upstream `ProptestConfig` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (upstream `TestCaseError` stand-in).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

/// Result alias the `proptest!` body closure returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values of one type (upstream `Strategy`, without
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let this = self;
        BoxedStrategy(Rc::new(move |rng| this.generate(rng)))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut StdRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (self.0)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// A uniform choice between boxed alternatives (what [`prop_oneof!`]
/// builds).
pub struct Union<V> {
    alternatives: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union; panics on an empty alternative list.
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Union { alternatives }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.alternatives.len());
        self.alternatives[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Constant values as strategies (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut StdRng) -> V {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies (upstream `proptest::collection` subset).

    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// Acceptable vector-length specifications (upstream `SizeRange`): an
    /// exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(pub Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// A strategy for `Vec`s with element strategy `element` and a length
    /// drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of `element` values with lengths in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        let len = len.into().0;
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Root seed for case derivation: fixed for reproducibility, overridable
/// via `PROPTEST_RNG_SEED` for exploration.
pub fn root_seed() -> u64 {
    std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5052_4f50_5445_5354) // "PROPTEST"
}

/// Builds the RNG for one case of one property.
pub fn case_rng(property: &str, case: u32) -> StdRng {
    let mut h = root_seed();
    for b in property.bytes() {
        h = h.rotate_left(7) ^ (b as u64) ^ h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(
        h.wrapping_add(case as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15),
    )
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($alt)),+])
    };
}

/// Asserts inside a `proptest!` body, failing the case rather than
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError {
                message: format!($($fmt)*),
            });
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Declares property tests: each `#[test]` fn draws its arguments from the
/// given strategies for every case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "property {} failed at case {case}/{} (root seed {}): {}",
                            stringify!($name),
                            config.cases,
                            $crate::root_seed(),
                            e.message
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(0u8..4, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for b in v {
                prop_assert!(b < 4);
            }
        }

        #[test]
        fn oneof_and_map_compose(
            t in prop_oneof![
                (0usize..3).prop_map(|q| (q, 0.0f64)),
                ((0usize..3), (0.0f64..1.0)).prop_map(|(q, f)| (q, f)),
            ]
        ) {
            prop_assert!(t.0 < 3);
            prop_assert!((0.0..1.0).contains(&t.1));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let s = 0u64..1000;
        let a: Vec<u64> = (0..8)
            .map(|c| s.generate(&mut crate::case_rng("p", c)))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|c| s.generate(&mut crate::case_rng("p", c)))
            .collect();
        assert_eq!(a, b);
    }
}
