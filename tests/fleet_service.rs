//! Concurrency parity for the shared fleet store: N threads warm-tuning
//! identical fingerprints must produce guard-accepted configurations
//! identical to the single-threaded replay.
//!
//! Clients on one device share the machine's trajectory streams, so the
//! tuner's result is a pure function of `(problem, backend seed, store
//! content)` — thread interleavings can change who publishes first, never
//! what gets published. This test pins that:
//!
//! * N threads racing on a **cold** shared store all converge to the
//!   plain (storeless) tuner's configuration;
//! * N threads on a **warmed** store all hit every window and reproduce
//!   the cold configuration exactly while spending only guard
//!   evaluations.

use std::sync::Arc;

use vaqem_suite::device::noise::NoiseParameters;
use vaqem_suite::mathkit::rng::SeedStream;
use vaqem_suite::mitigation::dd::DdSequence;
use vaqem_suite::pauli::models::tfim_paper;
use vaqem_suite::runtime::store::ShardedStore;
use vaqem_suite::vaqem::backend::QuantumBackend;
use vaqem_suite::vaqem::vqe::VqeProblem;
use vaqem_suite::vaqem::window_tuner::{
    FleetCacheSession, StoredChoice, WindowFingerprint, WindowTuner, WindowTunerConfig,
};

type SharedStore = Arc<ShardedStore<WindowFingerprint, StoredChoice>>;

const NUM_THREADS: usize = 4;

fn small_problem() -> VqeProblem {
    use vaqem_suite::ansatz::su2::{EfficientSu2, Entanglement};
    let ansatz = EfficientSu2::new(3, 1, Entanglement::Linear)
        .circuit()
        .unwrap();
    VqeProblem::new("tiny", tfim_paper(3), ansatz).unwrap()
}

fn backend(seed: u64) -> QuantumBackend {
    QuantumBackend::new(NoiseParameters::uniform(3), SeedStream::new(seed)).with_shots(128)
}

fn tiny_config() -> WindowTunerConfig {
    WindowTunerConfig {
        sweep_resolution: 3,
        dd_sequence: DdSequence::Xx,
        max_repetitions: 4,
        guard_repeats: 2,
        ..WindowTunerConfig::default()
    }
}

/// Warm-tunes once against the shared store on `device`, returning the
/// report. Each caller builds its own backend from the same seed — the
/// "clients share the machine" model.
fn tune_once(
    problem: &VqeProblem,
    seed: u64,
    store: &SharedStore,
    device: &str,
) -> vaqem_suite::vaqem::window_tuner::WarmTuneReport {
    let b = backend(seed);
    let tuner = WindowTuner::new(problem, &b, tiny_config());
    let params = vec![0.3; problem.num_params()];
    let mut handle = Arc::clone(store);
    let mut session = FleetCacheSession {
        store: &mut handle,
        device,
        epoch: 0,
        calibration: &NoiseParameters::uniform(3),
    };
    tuner.tune_dd_warm(&params, &mut session).unwrap()
}

#[test]
fn concurrent_warm_tuning_matches_single_threaded_replay() {
    let problem = small_problem();
    let params = vec![0.3; problem.num_params()];

    // Deterministically pin a seed whose cold guard accepts (rejection
    // under shot noise is valid tuner behavior but would leave nothing
    // in the store to race on) — same scan pattern as tests/fleet_cache.rs.
    let mut pinned = None;
    for seed in 21..36 {
        let b = backend(seed);
        let tuner = WindowTuner::new(&problem, &b, tiny_config());
        let plain = tuner.tune_dd(&params).unwrap();
        let rejected = {
            let store: SharedStore = Arc::new(ShardedStore::new(4, 256));
            tune_once(&problem, seed, &store, "dev-race")
                .stats
                .guard_rejected
        };
        if !rejected {
            pinned = Some((seed, plain));
            break;
        }
    }
    let (seed, plain) = pinned.expect("some seed's cold guard accepts");

    // Phase 1: N threads race on a COLD shared store. Whoever finishes
    // first publishes; later threads may warm-start mid-run. Either way
    // every thread must converge to the plain tuner's configuration.
    let store: SharedStore = Arc::new(ShardedStore::new(4, 256));
    let cold_reports: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..NUM_THREADS)
            .map(|_| {
                let store = Arc::clone(&store);
                let problem = &problem;
                scope.spawn(move || tune_once(problem, seed, &store, "dev-race"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for report in &cold_reports {
        assert!(
            !report.stats.guard_rejected,
            "shared trajectories re-verify"
        );
        assert_eq!(
            report.tuned.config, plain.config,
            "every racing thread converges to the single-threaded config"
        );
    }
    let windows = plain.dd_choices.len();
    assert!(windows > 0);

    // Phase 2: N threads on the WARMED store. All hits, all identical,
    // all cheaper than the cold plain run.
    let warm_reports: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..NUM_THREADS)
            .map(|_| {
                let store = Arc::clone(&store);
                let problem = &problem;
                scope.spawn(move || tune_once(problem, seed, &store, "dev-race"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for report in &warm_reports {
        assert_eq!(report.stats.misses, 0, "warmed store answers every window");
        assert!(report.stats.hits > 0);
        assert!(!report.stats.guard_rejected);
        assert_eq!(report.tuned.config, plain.config);
        assert!(report.tuned.evaluations < plain.evaluations);
    }

    // The store held exactly one entry per swept window throughout: the
    // racing publishers were idempotent.
    assert_eq!(
        store.len(),
        cold_reports[0].stats.hits + cold_reports[0].stats.misses,
        "same fingerprints overwrite, never duplicate"
    );
    let m = store.metrics();
    assert!(m.hits > 0 && m.insertions > 0);
}

#[test]
fn devices_race_on_disjoint_shards_without_contention() {
    // Two devices on shards of their own: concurrent tuning on different
    // devices must never block on a shard lock.
    let problem = small_problem();
    let store: SharedStore = Arc::new(ShardedStore::new(8, 256));
    let (east, west) = ("fleet-east", "fleet-west");
    assert_ne!(store.shard_of(east), store.shard_of(west));

    std::thread::scope(|scope| {
        for device in [east, west] {
            let store = Arc::clone(&store);
            let problem = &problem;
            scope.spawn(move || {
                for _ in 0..2 {
                    tune_once(problem, 23, &store, device);
                }
            });
        }
    });

    let per_shard = store.shard_metrics();
    let contended: u64 = per_shard.iter().map(|s| s.lock_contended).sum();
    assert_eq!(contended, 0, "cross-device traffic never meets on a lock");
    // Both device shards saw traffic.
    assert!(per_shard[store.shard_of(east)].lock_acquisitions > 0);
    assert!(per_shard[store.shard_of(west)].lock_acquisitions > 0);
}
