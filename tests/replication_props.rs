//! Properties of the journal-shipping replication layer
//! (`vaqem_runtime::DurableStore::ship_since`/`apply_ship` +
//! `vaqem_fleet_replica::ReplicaApplier` + the VQRP `JournalShip`
//! frame):
//!
//! * **torn delivery replicates losslessly** — an arbitrary mutation
//!   history, shipped batch by batch, framed, and delivered re-chunked
//!   in 1–40-byte pieces, leaves the follower byte-for-byte equal to
//!   the leader (entries and cursor);
//! * **duplicate and reordered delivery is idempotent** — re-applying
//!   any already-covered batch is a no-op: same final state, same
//!   cursor, `apply` returns `false`;
//! * **truncation is refused panic-free** — every truncation cut of an
//!   encoded `JournalShip` frame decodes to `None`, and a payload torn
//!   mid-record is refused by `apply_ship` with a typed error, not a
//!   panic;
//! * **shipped prefix ≡ local prefix** — a follower that applied the
//!   ships for the first `k` mutations holds exactly the state of a
//!   store that executed those `k` mutations locally.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use vaqem_suite::fleet_replica::ReplicaApplier;
use vaqem_suite::fleet_rpc::wire::Frame;
use vaqem_suite::runtime::persist::Codec;
use vaqem_suite::runtime::wire::{frame as wire_frame, FrameReader};
use vaqem_suite::runtime::{DurableStore, ShipBatch, ShipCursor};

type Store = DurableStore<u64, u64>;
type Replica = ReplicaApplier<u64, u64>;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vaqem-repl-props-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One journaled mutation (plus `Checkpoint`, which rolls the journal
/// generation — the cursor regime shipping must survive).
#[derive(Clone, Debug)]
enum Op {
    Insert {
        device: usize,
        epoch: u64,
        key: u64,
        value: u64,
    },
    Remove {
        device: usize,
        epoch: u64,
        key: u64,
    },
    InvalidateBefore {
        device: usize,
        epoch: u64,
    },
    InvalidateAllBefore {
        epoch: u64,
    },
    Checkpoint,
}

fn device_name(index: usize) -> String {
    format!("dev-{index}")
}

fn apply_op(store: &Store, op: &Op) {
    match op {
        Op::Insert {
            device,
            epoch,
            key,
            value,
        } => {
            store.insert(&device_name(*device), *epoch, *key, *value);
        }
        Op::Remove { device, epoch, key } => {
            store.remove(&device_name(*device), *epoch, key);
        }
        Op::InvalidateBefore { device, epoch } => {
            store.invalidate_before(&device_name(*device), *epoch);
        }
        Op::InvalidateAllBefore { epoch } => {
            store.invalidate_all_before(*epoch);
        }
        Op::Checkpoint => store.checkpoint().expect("checkpoint"),
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Insert twice: mutation histories should be insert-heavy.
        (0usize..3, 0u64..8, 0u64..24, 0u64..1000).prop_map(|(device, epoch, key, value)| {
            Op::Insert {
                device,
                epoch,
                key,
                value,
            }
        }),
        (0usize..3, 0u64..8, 0u64..24, 0u64..1000).prop_map(|(device, epoch, key, value)| {
            Op::Insert {
                device,
                epoch,
                key,
                value,
            }
        }),
        (0usize..3, 0u64..8, 0u64..24).prop_map(|(device, epoch, key)| Op::Remove {
            device,
            epoch,
            key
        }),
        (0usize..3, 0u64..8).prop_map(|(device, epoch)| Op::InvalidateBefore { device, epoch }),
        (0u64..8).prop_map(|epoch| Op::InvalidateAllBefore { epoch }),
        Just(Op::Checkpoint),
    ]
}

fn sorted_entries(store: &Store) -> Vec<(String, u64, u64, u64)> {
    let mut entries = store.export_entries();
    entries.sort();
    entries
}

/// Runs the leader side of the pull protocol: applies `ops` one at a
/// time, shipping after each from the previous shipped cursor — the
/// exact batch sequence an in-step follower would receive (including
/// the initial snapshot bootstrap from the default cursor).
fn shipped_history(leader: &Store, ops: &[Op]) -> Vec<ShipBatch> {
    let mut cursor = ShipCursor::default();
    let mut batches = Vec::new();
    let mut push = |batch: ShipBatch, cursor: &mut ShipCursor| {
        *cursor = batch.cursor;
        batches.push(batch);
    };
    push(
        leader.ship_since(cursor).expect("bootstrap ships"),
        &mut cursor,
    );
    for op in ops {
        apply_op(leader, op);
        push(leader.ship_since(cursor).expect("delta ships"), &mut cursor);
    }
    batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn torn_rechunked_shipping_replicates_losslessly(
        ops in collection::vec(op_strategy(), 1..20),
        chunk in 1usize..40,
    ) {
        let leader_dir = temp_dir("torn-lead");
        let follower_dir = temp_dir("torn-follow");
        let leader = Store::open(&leader_dir, 2, 64).expect("leader opens");
        let mut follower = Replica::open(&follower_dir, 2, 64).expect("follower opens");

        // Frame every shipped batch exactly as the wire does...
        let mut stream = Vec::new();
        for batch in shipped_history(&leader, &ops) {
            let mut payload = Vec::new();
            Frame::JournalShip {
                cursor: batch.cursor,
                snapshot: batch.snapshot,
                payload: batch.payload,
            }
            .encode(&mut payload);
            stream.extend_from_slice(&wire_frame(&payload));
        }
        // ...and deliver it torn into `chunk`-byte pieces.
        let mut reader = FrameReader::new(4 << 20);
        for piece in stream.chunks(chunk) {
            reader.push(piece);
            while let Some(payload) = reader.next_frame().expect("under the bound") {
                let mut input = payload.as_slice();
                let decoded = Frame::decode(&mut input);
                prop_assert!(
                    matches!(decoded, Some(Frame::JournalShip { .. })),
                    "stream decoded to {decoded:?}"
                );
                let Some(Frame::JournalShip { cursor, snapshot, payload }) = decoded else {
                    unreachable!("asserted above");
                };
                prop_assert!(input.is_empty(), "no trailing bytes");
                follower
                    .apply(&ShipBatch { snapshot, cursor, payload })
                    .expect("shipped batch applies");
            }
        }

        prop_assert_eq!(sorted_entries(&leader), sorted_entries(follower.store()));
        prop_assert_eq!(follower.cursor(), leader.ship_cursor());
        let _ = std::fs::remove_dir_all(&leader_dir);
        let _ = std::fs::remove_dir_all(&follower_dir);
    }

    #[test]
    fn duplicate_and_reordered_delivery_is_idempotent(
        ops in collection::vec(op_strategy(), 1..16),
        picks in collection::vec(0usize..64, 0..24),
    ) {
        let leader_dir = temp_dir("dup-lead");
        let follower_dir = temp_dir("dup-follow");
        let leader = Store::open(&leader_dir, 2, 64).expect("leader opens");
        let mut follower = Replica::open(&follower_dir, 2, 64).expect("follower opens");

        let batches = shipped_history(&leader, &ops);
        let mut picks = picks.into_iter();
        for (i, batch) in batches.iter().enumerate() {
            follower.apply(batch).expect("in-order batch applies");
            let cursor = follower.cursor();
            // Hostile redelivery: any already-covered batch (duplicate
            // or stale reordering) must be a no-op.
            if let Some(pick) = picks.next() {
                let stale = &batches[pick % (i + 1)];
                prop_assert_eq!(follower.apply(stale).expect("stale apply is clean"), false);
                prop_assert_eq!(follower.cursor(), cursor);
            }
        }

        prop_assert_eq!(sorted_entries(&leader), sorted_entries(follower.store()));
        prop_assert_eq!(follower.cursor(), leader.ship_cursor());
        let _ = std::fs::remove_dir_all(&leader_dir);
        let _ = std::fs::remove_dir_all(&follower_dir);
    }

    #[test]
    fn truncated_ship_frames_and_torn_payloads_are_refused(
        ops in collection::vec(op_strategy(), 1..12),
    ) {
        let leader_dir = temp_dir("cut-lead");
        let leader = Store::open(&leader_dir, 2, 64).expect("leader opens");
        for op in &ops {
            apply_op(&leader, op);
        }
        // A real shipped batch over the real mutation history.
        let batch = leader.ship_since(ShipCursor::default()).expect("ships");
        let frame = Frame::JournalShip {
            cursor: batch.cursor,
            snapshot: batch.snapshot,
            payload: batch.payload,
        };
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        for cut in 0..buf.len() {
            prop_assert_eq!(Frame::decode(&mut &buf[..cut]), None);
        }
        prop_assert_eq!(Frame::decode(&mut buf.as_slice()), Some(frame));
        let _ = std::fs::remove_dir_all(&leader_dir);
    }

    #[test]
    fn shipped_prefix_equals_locally_replayed_prefix(
        ops in collection::vec(op_strategy(), 1..16),
        k in 0usize..16,
    ) {
        let k = k % (ops.len() + 1);
        let leader_dir = temp_dir("prefix-lead");
        let follower_dir = temp_dir("prefix-follow");
        let local_dir = temp_dir("prefix-local");
        let leader = Store::open(&leader_dir, 2, 64).expect("leader opens");
        let mut follower = Replica::open(&follower_dir, 2, 64).expect("follower opens");

        // The follower keeps pace only through the first k mutations...
        let batches = shipped_history(&leader, &ops);
        for batch in &batches[..=k] {
            follower.apply(batch).expect("prefix batch applies");
        }
        // ...and must equal a store that simply executed those k
        // mutations itself.
        let local = Store::open(&local_dir, 2, 64).expect("local opens");
        for op in &ops[..k] {
            apply_op(&local, op);
        }
        prop_assert_eq!(sorted_entries(follower.store()), sorted_entries(&local));

        let _ = std::fs::remove_dir_all(&leader_dir);
        let _ = std::fs::remove_dir_all(&follower_dir);
        let _ = std::fs::remove_dir_all(&local_dir);
    }
}

/// The torn-payload half of the truncation property, pinned: a records
/// batch whose payload loses its last byte is refused with
/// `InvalidData` and does not advance the cursor.
#[test]
fn torn_payload_is_refused_with_a_typed_error() {
    let leader_dir = temp_dir("torn-pin-lead");
    let follower_dir = temp_dir("torn-pin-follow");
    let leader = Store::open(&leader_dir, 2, 64).expect("leader opens");
    let mut follower = Replica::open(&follower_dir, 2, 64).expect("follower opens");
    follower
        .apply(&leader.ship_since(ShipCursor::default()).expect("ships"))
        .expect("bootstrap applies");
    let synced = follower.cursor();

    leader.insert("dev-0", 1, 7, 700);
    leader.insert("dev-1", 2, 8, 800);
    let mut batch = leader.ship_since(synced).expect("delta ships");
    assert!(!batch.snapshot, "in-regime delta ships records");
    assert!(!batch.payload.is_empty());
    batch.payload.pop();

    let err = follower.apply(&batch).expect_err("torn payload refused");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert_eq!(follower.cursor(), synced, "cursor did not advance");

    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
}
