//! Property tests for the fleet cache's window fingerprints (the
//! determinism contract of the warm-start path):
//!
//! * **stability** — fingerprints are pure functions of the schedule and
//!   the calibration snapshot: re-scheduling the same circuit, permuting
//!   sweep evaluations, and relabeling job indices all leave them
//!   unchanged (so batched and sequential tuner replays key the same
//!   cache entries);
//! * **distinctness** — windows on qubits with genuinely different noise
//!   classes fingerprint differently, and within one circuit
//!   fingerprints never collide (the `(qubit, ordinal)` anchor).

use proptest::prelude::*;
use vaqem_suite::circuit::circuit::QuantumCircuit;
use vaqem_suite::circuit::schedule::{schedule, DurationModel, ScheduleKind, ScheduledCircuit};
use vaqem_suite::device::noise::NoiseParameters;
use vaqem_suite::mathkit::rng::SeedStream;
use vaqem_suite::mitigation::combined::MitigationConfig;
use vaqem_suite::mitigation::dd::DdSequence;
use vaqem_suite::vaqem::backend::QuantumBackend;
use vaqem_suite::vaqem::vqe::VqeProblem;
use vaqem_suite::vaqem::window_tuner::{
    classify_qubit_noise, window_fingerprint, TuningMode, WindowFingerprint, WindowTunerConfig,
};

/// A random concrete circuit guaranteed to contain idle windows: a CX
/// spine with random-length single-qubit bursts, so some qubits idle
/// while others work.
fn arb_windowed_circuit(n: usize) -> impl Strategy<Value = QuantumCircuit> {
    let burst = (0..n, 1usize..12);
    proptest::collection::vec(burst, 2..8).prop_map(move |bursts| {
        let mut qc = QuantumCircuit::new(n);
        for q in 0..n {
            qc.h(q).unwrap();
        }
        for (i, (q, len)) in bursts.into_iter().enumerate() {
            let a = i % (n - 1);
            qc.cx(a, a + 1).unwrap();
            for _ in 0..len {
                qc.sx(q).unwrap();
            }
        }
        for a in 0..n - 1 {
            qc.cx(a, a + 1).unwrap();
        }
        qc.measure_all();
        qc
    })
}

fn alap(qc: &QuantumCircuit) -> ScheduledCircuit {
    schedule(qc, &DurationModel::ibm_default(), ScheduleKind::Alap).unwrap()
}

fn tuner_config() -> WindowTunerConfig {
    WindowTunerConfig {
        sweep_resolution: 4,
        dd_sequence: DdSequence::Xy4,
        max_repetitions: 8,
        guard_repeats: 2,
        ..WindowTunerConfig::default()
    }
}

/// Fingerprints every idle window of `scheduled` in the tuner's canonical
/// order (per-qubit ordinals).
fn fingerprints(scheduled: &ScheduledCircuit, noise: &NoiseParameters) -> Vec<WindowFingerprint> {
    let pulse = DurationModel::ibm_default().single_qubit_ns();
    let windows = scheduled.idle_windows(pulse);
    windows
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let ordinal = windows[..i].iter().filter(|v| v.qubit == w.qubit).count();
            window_fingerprint(
                TuningMode::Dd(DdSequence::Xy4),
                w,
                ordinal,
                scheduled,
                noise,
                pulse,
                &tuner_config(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fingerprints_stable_across_rescheduling(qc in arb_windowed_circuit(3)) {
        let noise = NoiseParameters::uniform(3);
        let a = fingerprints(&alap(&qc), &noise);
        let b = fingerprints(&alap(&qc), &noise);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn fingerprints_stable_across_execution_and_relabeling(qc in arb_windowed_circuit(3)) {
        // Fingerprints are computed before any execution; running the
        // schedule batched, sequentially, or with relabeled sweep-point
        // job indices must not perturb them.
        let noise = NoiseParameters::uniform(3);
        let scheduled = alap(&qc);
        let before = fingerprints(&scheduled, &noise);

        let mut h = vaqem_suite::pauli::hamiltonian::PauliSum::new(3);
        h.add_label(1.0, "ZZI");
        h.add_label(0.5, "IXX");
        let mut bare = QuantumCircuit::new(3);
        for q in 0..3 {
            bare.ry_param(q, q).unwrap();
        }
        let problem = VqeProblem::new("prop", h, bare).unwrap();
        let backend = QuantumBackend::new(noise.clone(), SeedStream::new(5)).with_shots(32);
        let params = vec![0.2, 0.3, 0.4];
        let cache = problem.schedule_groups(&backend, &params).unwrap();

        // Batched dispatch with one labeling...
        let evals: Vec<(MitigationConfig, u64)> =
            (0..4u64).map(|j| (MitigationConfig::baseline(), j)).collect();
        let batched = problem.machine_energy_batch(&backend, &cache, &evals);
        // ...sequential execution with permuted, relabeled sweep points.
        let relabeled: Vec<(MitigationConfig, u64)> =
            [3u64, 1, 2, 0].iter().map(|&j| (MitigationConfig::baseline(), j)).collect();
        for (cfg, j) in &relabeled {
            let single = problem.machine_energy_batch(&backend, &cache, &[(cfg.clone(), *j)]);
            prop_assert_eq!(single[0], batched[*j as usize]);
        }

        let after = fingerprints(&scheduled, &noise);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn fingerprints_split_on_noise_class_and_never_collide(
        qc in arb_windowed_circuit(3),
        scale in 4.0f64..32.0,
    ) {
        let noise = NoiseParameters::uniform(3);
        let scheduled = alap(&qc);
        let base = fingerprints(&scheduled, &noise);

        // Within one circuit, fingerprints are unique (warm replays can
        // never cross-seed two windows).
        for i in 0..base.len() {
            for j in i + 1..base.len() {
                prop_assert!(base[i] != base[j], "windows {} and {} collide", i, j);
            }
        }

        // A genuinely different noise class on qubit 1 re-fingerprints
        // exactly the windows on qubit 1.
        let mut degraded = noise.clone();
        {
            let q = degraded.qubit_mut(1);
            q.t1_ns /= scale;
            q.t2_ns /= scale;
        }
        prop_assert!(
            classify_qubit_noise(degraded.qubit(1)) != classify_qubit_noise(noise.qubit(1)),
            "a {}x coherence change must switch noise class",
            scale
        );
        let shifted = fingerprints(&scheduled, &degraded);
        prop_assert_eq!(base.len(), shifted.len());
        for (b, s) in base.iter().zip(&shifted) {
            if b.qubit == 1 {
                prop_assert!(b != s, "qubit-1 window must re-fingerprint");
            } else {
                prop_assert!(b == s, "other windows must be untouched");
            }
        }
    }
}
