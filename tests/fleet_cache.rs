//! Integration tests for the fleet-scale mitigation-config cache: the
//! warm-start determinism contract (guard-accepted warm results equal
//! cold-tuned results for identical fingerprints under a fixed root
//! seed), the cost ordering (warm strictly cheaper than cold), and the
//! drift-epoch invalidation wiring.

use vaqem_suite::device::backend::DeviceModel;
use vaqem_suite::device::drift::DriftModel;
use vaqem_suite::device::noise::NoiseParameters;
use vaqem_suite::mathkit::rng::SeedStream;
use vaqem_suite::mitigation::dd::DdSequence;
use vaqem_suite::pauli::models::tfim_paper;
use vaqem_suite::runtime::{BatchDispatch, CostModel, WorkloadProfile};
use vaqem_suite::vaqem::backend::QuantumBackend;
use vaqem_suite::vaqem::pipeline::{
    run_pipeline, run_pipeline_with_cache, PipelineConfig, Strategy,
};
use vaqem_suite::vaqem::vqe::VqeProblem;
use vaqem_suite::vaqem::window_tuner::{
    FleetCacheSession, MitigationConfigStore, WarmTuneReport, WindowTuner, WindowTunerConfig,
};

fn fleet_problem() -> VqeProblem {
    let ansatz = vaqem_suite::ansatz::su2::EfficientSu2::new(
        4,
        2,
        vaqem_suite::ansatz::su2::Entanglement::Linear,
    )
    .circuit()
    .unwrap();
    VqeProblem::new("fleet_it_4q", tfim_paper(4), ansatz).unwrap()
}

fn tuner_config() -> WindowTunerConfig {
    WindowTunerConfig {
        sweep_resolution: 4,
        dd_sequence: DdSequence::Xy4,
        max_repetitions: 8,
        guard_repeats: 2,
        ..WindowTunerConfig::default()
    }
}

fn warm_run(
    tuner: &WindowTuner,
    params: &[f64],
    store: &mut MitigationConfigStore,
    epoch: u64,
    calibration: &NoiseParameters,
) -> WarmTuneReport {
    let mut session = FleetCacheSession {
        store,
        device: "it-dev",
        epoch,
        calibration,
    };
    tuner.tune_dd_warm(params, &mut session).unwrap()
}

/// The headline pin: under a fixed root seed, a guard-accepted warm
/// replay of a cold-tuned run (identical fingerprints) produces the
/// *identical* mitigation config while spending strictly fewer machine
/// evaluations. Seeds are scanned deterministically for one whose cold
/// guard accepts, so the test exercises the publish-then-replay path.
#[test]
fn guard_accepted_warm_results_equal_cold_for_identical_fingerprints() {
    let problem = fleet_problem();
    let params = vec![0.3; problem.num_params()];
    let calibration = NoiseParameters::uniform(4);

    let mut exercised = false;
    for seed in 78..90 {
        let backend =
            QuantumBackend::new(NoiseParameters::uniform(4), SeedStream::new(seed)).with_shots(128);
        let tuner = WindowTuner::new(&problem, &backend, tuner_config());
        let mut store = MitigationConfigStore::new(1024);

        // Cold: the warm path over an empty store must equal the plain
        // tuner bit for bit.
        let cold = warm_run(&tuner, &params, &mut store, 0, &calibration);
        let plain = tuner.tune_dd(&params).unwrap();
        assert_eq!(cold.tuned, plain, "seed {seed}: cold-with-store != plain");
        assert_eq!(cold.stats.hits, 0);
        if cold.stats.guard_rejected {
            assert!(store.is_empty(), "rejected runs must publish nothing");
            continue;
        }
        assert_eq!(store.len(), cold.stats.misses, "accepted choices published");

        // Warm: identical fingerprints -> identical guard-accepted config.
        let warm = warm_run(&tuner, &params, &mut store, 0, &calibration);
        assert_eq!(warm.stats.hits, cold.stats.misses);
        assert_eq!(warm.stats.misses, 0);
        assert!(!warm.stats.guard_rejected, "replay must re-accept");
        assert_eq!(
            warm.tuned.config, cold.tuned.config,
            "seed {seed}: guard-accepted warm config != cold config"
        );
        assert!(
            warm.tuned.evaluations < cold.tuned.evaluations,
            "warm must be strictly cheaper: {} vs {}",
            warm.tuned.evaluations,
            cold.tuned.evaluations
        );
        exercised = true;
        break;
    }
    assert!(exercised, "no scanned seed had an accepting cold guard");
}

/// Warm-start EM tuning is strictly cheaper than cold in priced machine
/// minutes (the `extension_fleet_cache` headline), using the measured
/// evaluation counts of a real warm replay.
#[test]
fn warm_tuning_is_strictly_cheaper_in_machine_minutes() {
    let problem = fleet_problem();
    let params = vec![0.3; problem.num_params()];
    let calibration = NoiseParameters::uniform(4);
    for seed in 78..90 {
        let backend =
            QuantumBackend::new(NoiseParameters::uniform(4), SeedStream::new(seed)).with_shots(128);
        let tuner = WindowTuner::new(&problem, &backend, tuner_config());
        let mut store = MitigationConfigStore::new(1024);
        let cold = warm_run(&tuner, &params, &mut store, 0, &calibration);
        if cold.stats.guard_rejected {
            continue;
        }
        let warm = warm_run(&tuner, &params, &mut store, 0, &calibration);

        let cost = CostModel::ibm_cloud_2021();
        let dispatch = BatchDispatch::local(8);
        let profile = WorkloadProfile {
            num_qubits: 4,
            circuit_ns: 12_000.0,
            iterations: 80,
            measurement_groups: problem.groups().len(),
            windows: cold.stats.misses,
            sweep_resolution: 4,
            shots: 128,
        };
        let cold_min = cost.em_minutes_for_evaluations(
            &profile,
            &dispatch,
            cold.tuned.evaluations,
            cold.stats.misses + 1,
        );
        let warm_min = cost.em_minutes_for_evaluations(
            &profile,
            &dispatch,
            warm.tuned.evaluations,
            warm.stats.misses + 1,
        );
        assert!(
            warm_min < cold_min,
            "warm minutes {warm_min} must be under cold {cold_min}"
        );
        return;
    }
    panic!("no scanned seed had an accepting cold guard");
}

/// A calibration-epoch crossing invalidates the device's cached configs:
/// the `EpochTracker` fires, `invalidate_before` drops the stale entries,
/// and the next tuning run at the new epoch re-tunes from scratch.
#[test]
fn drift_epoch_crossing_invalidates_and_forces_retune() {
    let problem = fleet_problem();
    let params = vec![0.3; problem.num_params()];
    let calibration = NoiseParameters::uniform(4);
    for seed in 78..90 {
        let backend =
            QuantumBackend::new(NoiseParameters::uniform(4), SeedStream::new(seed)).with_shots(128);
        let tuner = WindowTuner::new(&problem, &backend, tuner_config());
        let mut store = MitigationConfigStore::new(1024);
        let cold = warm_run(&tuner, &params, &mut store, 0, &calibration);
        if cold.stats.guard_rejected {
            continue;
        }
        let published = store.len();
        assert!(published > 0);

        // Walk the drift clock across a recalibration boundary.
        let drift = DriftModel::new(SeedStream::new(9)).with_calibration_period_hours(12.0);
        let mut tracker = drift.epoch_tracker();
        assert_eq!(tracker.observe(1.0), Some(0));
        assert_eq!(tracker.observe(11.0), None);
        let new_epoch = tracker.observe(13.0).expect("crossing fires");
        assert_eq!(new_epoch, 1);
        assert_eq!(drift.epoch_at(13.0), 1);
        let dropped = store.invalidate_before("it-dev", new_epoch);
        assert_eq!(dropped, published, "all epoch-0 entries dropped");
        assert!(store.is_empty());

        // The new epoch misses everywhere and re-tunes cold.
        let retune = warm_run(&tuner, &params, &mut store, new_epoch, &calibration);
        assert_eq!(retune.stats.hits, 0);
        assert_eq!(retune.stats.misses, cold.stats.misses);
        assert_eq!(retune.tuned.evaluations, cold.tuned.evaluations);
        // The drifted device still produces drift (sanity on the hook's
        // host model).
        let d = DeviceModel::ibmq_casablanca();
        assert_ne!(
            drift.noise_at(&d, 1.0).qubit(0).t1_ns,
            drift.noise_at(&d, 13.0).qubit(0).t1_ns
        );
        return;
    }
    panic!("no scanned seed had an accepting cold guard");
}

/// The pipeline-level warm-start path: a cache-session run over an empty
/// store matches the plain pipeline strategy for strategy, and a second
/// run over the populated store warm-starts (hits > 0) while producing
/// the identical guard-accepted strategy results.
#[test]
fn pipeline_warm_start_reproduces_cold_results() {
    let problem = {
        let ansatz = vaqem_suite::ansatz::su2::EfficientSu2::new(
            2,
            1,
            vaqem_suite::ansatz::su2::Entanglement::Linear,
        )
        .circuit()
        .unwrap();
        VqeProblem::new("fleet_pipe_2q", tfim_paper(2), ansatz).unwrap()
    };
    let noise = NoiseParameters::uniform(2);
    let config = PipelineConfig::quick();
    let strategies = [Strategy::MemBaseline, Strategy::VaqemXy];

    let plain = run_pipeline(&problem, &noise, &config, &strategies).unwrap();
    assert!(plain.cache_usage.is_none());

    let mut store = MitigationConfigStore::new(1024);
    let mut session = FleetCacheSession {
        store: &mut store,
        device: "pipe-dev",
        epoch: 0,
        calibration: &noise,
    };
    let cold = run_pipeline_with_cache(&problem, &noise, &config, &strategies, Some(&mut session))
        .unwrap();
    let cold_usage = cold.cache_usage.expect("session supplied");
    assert_eq!(cold_usage.hits, 0);
    for (a, b) in plain.results.iter().zip(&cold.results) {
        assert_eq!(a.energy, b.energy, "cold cache run must match plain");
        assert_eq!(a.config, b.config);
    }

    if cold_usage.guard_rejections == 0 && cold_usage.misses > 0 {
        let mut session = FleetCacheSession {
            store: &mut store,
            device: "pipe-dev",
            epoch: 0,
            calibration: &noise,
        };
        let warm =
            run_pipeline_with_cache(&problem, &noise, &config, &strategies, Some(&mut session))
                .unwrap();
        let warm_usage = warm.cache_usage.expect("session supplied");
        assert_eq!(warm_usage.hits, cold_usage.misses);
        assert_eq!(warm_usage.misses, 0);
        for (a, b) in cold.results.iter().zip(&warm.results) {
            assert_eq!(a.energy, b.energy, "warm pipeline must reproduce cold");
            assert_eq!(a.config, b.config);
        }
    }
}
