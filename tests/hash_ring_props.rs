//! Properties of the consistent-hash device-ownership ring
//! (`vaqem_runtime::HashRing`) that the replicated fleet leans on:
//!
//! * **determinism across processes** — ownership is a pure function of
//!   the instance-name *set*: permuted, duplicated construction input
//!   changes nothing (two daemons computing the ring independently
//!   always agree);
//! * **join stability** — adding an instance only moves devices *to*
//!   the joiner; every other device keeps its owner (the ~1/N property:
//!   nothing reshuffles among survivors);
//! * **leave stability** — removing an instance only moves the
//!   leaver's devices; everyone else's assignment is untouched;
//! * **N=1 agrees with `ShardedStore` routing** — both are pure
//!   functions of the same FNV-1a hash, and a single-instance ring
//!   (like a single-shard store) assigns everything to the one slot.

use proptest::prelude::*;
use vaqem_suite::runtime::store::fnv1a;
use vaqem_suite::runtime::HashRing;

/// Lowercase names of length `1..max` (the vendored proptest subset has
/// no string strategies).
fn name(max: usize) -> impl Strategy<Value = String> {
    collection::vec(97u8..123, 1..max)
        .prop_map(|bytes| String::from_utf8(bytes).expect("ascii lowercase"))
}

fn instances() -> impl Strategy<Value = Vec<String>> {
    collection::vec(name(8), 1..7)
}

fn devices() -> impl Strategy<Value = Vec<String>> {
    collection::vec(name(12), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ownership_is_deterministic_under_permutation_and_duplication(
        names in instances(),
        devices in devices(),
        rotate in 0usize..8,
    ) {
        let ring = HashRing::new(names.iter().cloned());
        // A second process building "the same" ring from differently
        // ordered (and partially duplicated) configuration.
        let mut shuffled = names.clone();
        let pivot = rotate % shuffled.len().max(1);
        shuffled.rotate_left(pivot);
        shuffled.extend(names.iter().take(2).cloned());
        let ring2 = HashRing::new(shuffled);
        prop_assert_eq!(ring.instances(), ring2.instances());
        for device in &devices {
            prop_assert_eq!(ring.owner(device), ring2.owner(device));
        }
    }

    #[test]
    fn join_moves_devices_only_to_the_joining_instance(
        names in instances(),
        joiner in name(8),
        devices in devices(),
    ) {
        let before = HashRing::new(names.iter().cloned());
        let mut grown = names.clone();
        grown.push(joiner.clone());
        let after = HashRing::new(grown);
        for device in &devices {
            let old = before.owner(device).expect("nonempty ring");
            let new = after.owner(device).expect("nonempty ring");
            // The ~1/N contract: a device either stays put or lands on
            // the joiner — never reshuffles between survivors.
            prop_assert!(
                new == old || new == joiner.as_str(),
                "device {device} moved {old} -> {new} on join of {joiner}"
            );
        }
    }

    #[test]
    fn leave_moves_only_the_leavers_devices(
        names in collection::vec(name(8), 2..7),
        leaver_index in 0usize..6,
        devices in devices(),
    ) {
        let leaver = names[leaver_index % names.len()].clone();
        let before = HashRing::new(names.iter().cloned());
        let after = HashRing::new(
            names.iter().filter(|n| **n != leaver).cloned(),
        );
        if after.is_empty() {
            // Every name was a duplicate of the leaver.
            return Ok(());
        }
        for device in &devices {
            let old = before.owner(device).expect("nonempty ring");
            if old != leaver {
                prop_assert!(
                    after.owner(device) == Some(old),
                    "surviving assignment of {device} moved on leave of {leaver}"
                );
            }
        }
    }

    #[test]
    fn single_instance_ring_agrees_with_single_shard_store_routing(
        instance in name(8),
        devices in devices(),
    ) {
        let ring = HashRing::new([instance.clone()]);
        // A store sharded as widely as this ring has instances: one slot.
        let num_shards = ring.len() as u64;
        for device in &devices {
            // ShardedStore routes `fnv1a(device) % num_shards`; with one
            // shard every device lands on slot 0, and the ring must
            // agree: one instance owns everything.
            prop_assert_eq!(fnv1a(device.as_bytes()) % num_shards, 0);
            prop_assert_eq!(ring.owner(device), Some(instance.as_str()));
            prop_assert!(ring.owns(&instance, device));
        }
    }
}

/// The quantitative half of the ~1/N claim, pinned deterministically:
/// growing a 4-instance ring to 5 moves roughly a fifth of a large
/// device population — well under a half, far from a full reshuffle.
#[test]
fn join_moves_roughly_one_in_n_devices() {
    let names: Vec<String> = (0..4).map(|i| format!("instance-{i}")).collect();
    let before = HashRing::new(names.iter().cloned());
    let mut grown = names.clone();
    grown.push("instance-4".into());
    let after = HashRing::new(grown);
    let total = 4000usize;
    let moved = (0..total)
        .filter(|i| {
            let device = format!("device-{i}");
            before.owner(&device) != after.owner(&device)
        })
        .count();
    let fraction = moved as f64 / total as f64;
    assert!(
        (0.05..=0.40).contains(&fraction),
        "expected ~1/5 of devices to move, got {fraction:.3}"
    );
}
