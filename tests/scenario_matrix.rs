//! Reduced scenario-matrix grid as a tier-1 integration test.
//!
//! One small workload crossed with both device classes and all four
//! tenant behaviors — 8 cells — runs through the real reactor with
//! every cross-cutting invariant asserted per cell. The full ≥24-cell
//! grid lives in the `extension_scenario_matrix` replay binary; this
//! driver keeps the cell lifecycle (cold, warm, kill, journal-replay
//! reopen, recovery, tenant contention, quota audit) under `cargo
//! test`.
//!
//! The cells here are configured identically to the quick grid's
//! first-workload cells, so the pinned seed is shared with the replay
//! binary's quick mode (overridable via `VAQEM_SEED`).

use vaqem_mathkit::rng::root_seed_from_env;
use vaqem_scenario::{run_matrix, MatrixConfig};

#[test]
fn reduced_grid_holds_every_invariant_in_every_cell() {
    let store_root = std::env::temp_dir().join("vaqem-scenario-matrix-test");
    let mut config = MatrixConfig::quick(root_seed_from_env(4243), store_root);
    config.workloads.truncate(1);
    config.mode = "test".to_string();
    assert_eq!(config.cells(), 8, "1 workload x 2 classes x 4 tenants");

    let report = run_matrix(&config).expect("matrix harness runs");
    assert_eq!(report.cells.len(), 8);

    // Every cell reports the same invariant set, in check order.
    for cell in &report.cells {
        let names: Vec<&str> = cell.invariants.iter().map(|i| i.name).collect();
        assert!(names.contains(&"warm_cheaper_than_cold"), "{names:?}");
        assert!(names.contains(&"warm_cold_parity"), "{names:?}");
        assert!(names.contains(&"restart_recovery"), "{names:?}");
        assert!(names.contains(&"starvation_bound"), "{names:?}");
        assert!(names.contains(&"quota_accounting"), "{names:?}");
    }
    // The greedy cells additionally record the typed quota rejection.
    for cell in report.cells.iter().filter(|c| c.tenant == "greedy") {
        assert!(
            cell.invariants.iter().any(|i| i.name == "quota_rejection"),
            "greedy cell must probe the in-flight cap"
        );
    }

    // The machine-readable report round-trips the grid shape.
    let json = report.to_json().render();
    assert!(json.contains("\"schema\":\"vaqem-scenario-matrix/v1\""));
    assert!(json.contains("\"cells\":8"));

    assert!(report.pass(), "cells failed invariants:\n{report}");
}
