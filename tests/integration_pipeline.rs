//! End-to-end integration tests across all workspace crates: the full
//! VAQEM feasible flow on small problems, checking determinism, soundness,
//! and the qualitative claims of the paper.

use vaqem_suite::ansatz::su2::{EfficientSu2, Entanglement};
use vaqem_suite::device::backend::DeviceModel;
use vaqem_suite::mathkit::rng::SeedStream;
use vaqem_suite::mitigation::combined::MitigationConfig;
use vaqem_suite::mitigation::dd::DdSequence;
use vaqem_suite::optim::spsa::SpsaConfig;
use vaqem_suite::pauli::models::tfim_paper;
use vaqem_suite::vaqem::backend::QuantumBackend;
use vaqem_suite::vaqem::pipeline::{run_pipeline, tune_angles, PipelineConfig, Strategy};
use vaqem_suite::vaqem::soundness::measured_energy_is_sound;
use vaqem_suite::vaqem::vqe::VqeProblem;
use vaqem_suite::vaqem::window_tuner::{WindowTuner, WindowTunerConfig};

fn small_problem() -> VqeProblem {
    let ansatz = EfficientSu2::new(3, 1, Entanglement::Linear)
        .circuit()
        .expect("ansatz builds");
    VqeProblem::new("itest_tfim3", tfim_paper(3), ansatz).expect("problem builds")
}

fn quick_config(seed: u64) -> PipelineConfig {
    PipelineConfig {
        spsa: SpsaConfig::paper_default().with_iterations(50),
        shots: 192,
        sweep_resolution: 3,
        max_repetitions: 4,
        seeds: SeedStream::new(seed),
        eval_repeats: 1,
    }
}

#[test]
fn full_pipeline_small_tfim() {
    let problem = small_problem();
    let noise = DeviceModel::ibmq_casablanca().noise().subset(&[0, 1, 2]);
    let strategies = [
        Strategy::NoEm,
        Strategy::MemBaseline,
        Strategy::DdXy,
        Strategy::VaqemXy,
        Strategy::VaqemGsXy,
    ];
    let run = run_pipeline(&problem, &noise, &quick_config(5), &strategies).expect("pipeline");
    assert_eq!(run.results.len(), strategies.len());
    for r in &run.results {
        assert!(r.energy.is_finite(), "{:?}", r.strategy);
        // Soundness (paper §V) within generous shot-noise tolerance.
        assert!(
            measured_energy_is_sound(r.energy, run.exact_ground, 0.6),
            "{:?}: {} vs {}",
            r.strategy,
            r.energy,
            run.exact_ground
        );
        assert!((0.0..=1.0).contains(&r.fraction_of_optimal));
    }
    // The angle-tuning phase must have made progress toward the ground state.
    let first = run.angle_trace.first().copied().unwrap();
    let last = run.angle_trace.last().copied().unwrap();
    assert!(
        last < first,
        "angle tuning did not descend: {first} -> {last}"
    );
    // MEM must beat No-EM (readout errors are significant on this device).
    let no_em = run.result(Strategy::NoEm).unwrap().fraction_of_optimal;
    let mem = run
        .result(Strategy::MemBaseline)
        .unwrap()
        .fraction_of_optimal;
    assert!(
        mem >= no_em - 0.05,
        "MEM should not be much worse than No-EM: {mem} vs {no_em}"
    );
}

#[test]
fn pipeline_is_deterministic() {
    let problem = small_problem();
    let noise = DeviceModel::ibmq_jakarta().noise().subset(&[0, 1, 2]);
    let strategies = [Strategy::MemBaseline, Strategy::VaqemXx];
    let a = run_pipeline(&problem, &noise, &quick_config(9), &strategies).expect("run a");
    let b = run_pipeline(&problem, &noise, &quick_config(9), &strategies).expect("run b");
    for (ra, rb) in a.results.iter().zip(b.results.iter()) {
        assert_eq!(ra.energy, rb.energy, "{:?}", ra.strategy);
        assert_eq!(ra.config, rb.config);
    }
    assert_eq!(a.tuned_params, b.tuned_params);
}

#[test]
fn vaqem_tuned_config_not_much_worse_than_baseline() {
    // The per-window tuner explicitly includes the baseline (0 repetitions)
    // in every sweep, so up to re-evaluation shot noise the tuned
    // configuration can only improve the objective.
    let problem = small_problem();
    let seeds = SeedStream::new(77);
    let (params, _) = tune_angles(
        &problem,
        &SpsaConfig::paper_default().with_iterations(60),
        &seeds,
    )
    .expect("angles");
    let noise = DeviceModel::ibmq_casablanca().noise().subset(&[0, 1, 2]);
    let mut backend = QuantumBackend::new(noise, seeds.substream("m")).with_shots(512);
    backend.calibrate_mem();
    let tuner = WindowTuner::new(
        &problem,
        &backend,
        WindowTunerConfig {
            sweep_resolution: 4,
            dd_sequence: DdSequence::Xy4,
            max_repetitions: 6,
            guard_repeats: 4,
            ..WindowTunerConfig::default()
        },
    );
    let tuned = tuner.tune_dd(&params).expect("tuning");
    // Compare averaged fresh evaluations of both configurations (single
    // draws at 512 shots are too noisy to order reliably); the whole
    // comparison ships as one run_batch.
    let cache = problem
        .schedule_groups(&backend, &params)
        .expect("schedules");
    let evals: Vec<(MitigationConfig, u64)> = (0..4u64)
        .map(|k| (MitigationConfig::baseline(), 42 + 2 * k))
        .chain((0..4u64).map(|k| (tuned.config.clone(), 43 + 2 * k)))
        .collect();
    let energies = problem.machine_energy_batch(&backend, &cache, &evals);
    let baseline = energies[..4].iter().sum::<f64>() / 4.0;
    let mitigated = energies[4..].iter().sum::<f64>() / 4.0;
    // Minimization objective: tuned should not be meaningfully above
    // baseline (tolerance = a few standard errors at 512 shots).
    assert!(
        mitigated <= baseline + 0.35,
        "tuned {mitigated} much worse than baseline {baseline}"
    );
}

#[test]
fn angle_tuning_transfers_to_machine() {
    // Paper Fig. 8: parameters tuned in ideal simulation also give a good
    // (low) objective on the noisy machine relative to random parameters.
    let problem = small_problem();
    let seeds = SeedStream::new(88);
    let (tuned_params, _) = tune_angles(
        &problem,
        &SpsaConfig::paper_default().with_iterations(120),
        &seeds,
    )
    .expect("angles");
    let noise = DeviceModel::ibmq_casablanca().noise().subset(&[0, 1, 2]);
    let mut backend = QuantumBackend::new(noise, seeds.substream("m")).with_shots(1024);
    backend.calibrate_mem();
    let e_tuned = problem
        .machine_energy(&backend, &tuned_params, &MitigationConfig::baseline(), 1)
        .expect("eval");
    let e_zero = problem
        .machine_energy(
            &backend,
            &vec![0.0; problem.num_params()],
            &MitigationConfig::baseline(),
            2,
        )
        .expect("eval");
    assert!(
        e_tuned < e_zero,
        "simulation-tuned params should beat untuned on the machine: {e_tuned} vs {e_zero}"
    );
}
