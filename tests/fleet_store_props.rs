//! Property tests for the sharded, persistent fleet store:
//!
//! * **persistence is lossless** — `store == reload(save(store))`, both
//!   through a checkpointed snapshot (content *and* per-shard LRU order)
//!   and through journal-only replay (content);
//! * **shard routing is stable under device relabeling** — a device's
//!   shard depends only on its own name and the shard count, so adding,
//!   removing, renaming, or permuting *other* devices never moves it.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use vaqem_suite::mitigation::dd::DdSequence;
use vaqem_suite::mitigation::zne::{Extrapolation, ZneConfig};
use vaqem_suite::runtime::persist::DurableStore;
use vaqem_suite::runtime::store::ShardedStore;
use vaqem_suite::vaqem::window_tuner::{
    CachedChoice, ComposedChoice, NoiseClass, StoredChoice, TuningMode, WindowFingerprint,
};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vaqem-store-props-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small pool of device names so entries collide on devices often.
fn device_name(tag: u8) -> String {
    format!("fleet-dev-{}", tag % 5)
}

/// Builds a structurally varied fingerprint from a handful of raw draws.
fn fingerprint(raw: (u8, u32, u16, u32, i16)) -> WindowFingerprint {
    let (mode, duration, qubit, ordinal, class) = raw;
    let mode = match mode % 7 {
        0 => TuningMode::Gs,
        1 => TuningMode::Dd(DdSequence::Xx),
        2 => TuningMode::Dd(DdSequence::Yy),
        3 => TuningMode::Dd(DdSequence::Xy4),
        4 => TuningMode::Dd(DdSequence::Xy8),
        5 => TuningMode::Zne,
        _ => TuningMode::Composed(DdSequence::Xy4),
    };
    WindowFingerprint {
        mode,
        duration_slots: duration,
        qubit,
        ordinal,
        noise_class: NoiseClass {
            t1: class,
            t2: class.wrapping_add(1),
            detuning: class.wrapping_sub(7),
            telegraph: if class.rem_euclid(3) == 0 {
                i16::MIN
            } else {
                class
            },
            readout: class.wrapping_mul(3),
        },
        neighbors_active: (duration % 7) as u8,
        coupled_active: (duration % 3) as u8,
        sweep_resolution: 4,
        max_repetitions: 8,
    }
}

/// One raw entry draw: `(device tag, epoch, fingerprint parts, value)`.
type RawEntry = ((u8, u64), (u8, u32, u16, u32, i16), (u32, u32));

fn entry_strategy() -> impl Strategy<Value = RawEntry> {
    (
        (0u8..10, 0u64..4),
        (0u8..10, 0u32..200, 0u16..8, 0u32..6, -20i16..20),
        (0u32..1000, 0u32..1000),
    )
}

/// Alternates between the per-window and composed store variants so the
/// persistence properties cover both encodings (and the ZNE payload).
fn choice(value: (u32, u32)) -> StoredChoice {
    if value.0.is_multiple_of(2) {
        StoredChoice::Window(CachedChoice {
            fraction_of_max: value.0 as f64 / 1000.0,
            value: value.1 as f64,
            objective: -(value.0 as f64) / 64.0,
        })
    } else {
        StoredChoice::Composed(ComposedChoice {
            gate_positions: vec![value.0 as f64 / 1000.0; (value.1 % 4) as usize],
            dd_sequence: if value.1.is_multiple_of(2) {
                Some(DdSequence::Xy4)
            } else {
                None
            },
            dd_repetitions: (0..value.0 % 5).collect(),
            zne: if value.0.is_multiple_of(3) {
                Some(ZneConfig::new(vec![0, 1, 2], Extrapolation::Exponential))
            } else {
                Some(ZneConfig::new(
                    vec![0, (1 + value.1 % 4) as u8],
                    Extrapolation::Richardson {
                        order: (value.0 % 3) as u8,
                    },
                ))
            },
            objective: -(value.0 as f64) / 64.0,
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_and_journal_round_trip_is_lossless(
        entries in collection::vec(entry_strategy(), 1..40),
        removals in collection::vec(0usize..40, 0..8),
    ) {
        // Build a durable store with random inserts and a few removals —
        // all journaled, no checkpoint yet.
        let dir = fresh_dir();
        let populated: Vec<_>;
        {
            let store: DurableStore<WindowFingerprint, StoredChoice> =
                DurableStore::open(&dir, 4, 256).expect("open");
            for ((dev, epoch), raw, val) in &entries {
                store.insert(&device_name(*dev), *epoch, fingerprint(*raw), choice(*val));
            }
            for &r in &removals {
                if let Some(((dev, epoch), raw, _)) = entries.get(r) {
                    store.remove(&device_name(*dev), *epoch, &fingerprint(*raw));
                }
            }
            prop_assert_eq!(store.journal_write_errors(), 0);
            populated = store.export_entries();
            // Journal-only reload: content must match exactly (same
            // shard count ⇒ same per-shard insertion order ⇒ same
            // export order).
            let replayed: DurableStore<WindowFingerprint, StoredChoice> =
                DurableStore::open(&dir, 4, 256).expect("reopen");
            prop_assert_eq!(replayed.export_entries(), populated.clone());
            // Now save (checkpoint) through the *replayed* handle and
            // reload again: snapshot path must also be lossless.
            replayed.checkpoint().expect("checkpoint");
        }
        let reloaded: DurableStore<WindowFingerprint, StoredChoice> =
            DurableStore::open(&dir, 4, 256).expect("reload");
        prop_assert_eq!(reloaded.recovery().journal_records, 0);
        prop_assert_eq!(reloaded.export_entries(), populated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_routing_is_stable_under_relabeling(
        device in 0u8..10,
        others in collection::vec(0u8..10, 0..12),
        shards in 1usize..9,
    ) {
        let name = device_name(device);
        let a: ShardedStore<u64, u32> = ShardedStore::new(shards, 16);
        let home = a.shard_of(&name);
        prop_assert!(home < shards);

        // Inserting, renaming, or removing other devices never moves it.
        for (i, o) in others.iter().enumerate() {
            a.insert(&device_name(*o), 0, i as u64, 1);
            a.insert(&format!("relabeled-{o}-{i}"), 0, i as u64, 2);
            prop_assert_eq!(a.shard_of(&name), home);
        }
        a.invalidate_all_before(1);
        prop_assert_eq!(a.shard_of(&name), home);

        // A different store instance with the same shard count agrees;
        // the routing is a pure function of (name, shard count).
        let b: ShardedStore<u64, u32> = ShardedStore::new(shards, 16);
        prop_assert_eq!(b.shard_of(&name), home);
    }

    #[test]
    fn sharded_store_content_is_shard_count_independent(
        entries in collection::vec(entry_strategy(), 1..30),
        shards_a in 1usize..9,
        shards_b in 1usize..9,
    ) {
        // The same inserts land with the same content whatever the shard
        // layout — only lock striping changes, never visibility.
        let a: ShardedStore<WindowFingerprint, StoredChoice> = ShardedStore::new(shards_a, 256);
        let b: ShardedStore<WindowFingerprint, StoredChoice> = ShardedStore::new(shards_b, 256);
        for ((dev, epoch), raw, val) in &entries {
            a.insert(&device_name(*dev), *epoch, fingerprint(*raw), choice(*val));
            b.insert(&device_name(*dev), *epoch, fingerprint(*raw), choice(*val));
        }
        prop_assert_eq!(a.len(), b.len());
        for ((dev, epoch), raw, _) in &entries {
            let name = device_name(*dev);
            let fp = fingerprint(*raw);
            prop_assert_eq!(a.lookup(&name, *epoch, &fp), b.lookup(&name, *epoch, &fp));
        }
    }
}
