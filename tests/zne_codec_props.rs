//! Persistence properties of the ZNE-era store values:
//!
//! * **composed choices are lossless** — a random `(gs, dd, zne)`
//!   composition encodes and decodes byte-exactly through the persist
//!   codec, alone and through a full `DurableStore` restart;
//! * **legacy files still load** — a hand-crafted format-version-1
//!   snapshot + journal (bare, untagged per-window choices, as PR 3
//!   wrote them) opens into today's `StoredChoice` store, with every
//!   entry lifted to `StoredChoice::Window` and the journal upgraded to
//!   the current format.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use vaqem_suite::mitigation::dd::DdSequence;
use vaqem_suite::mitigation::zne::{Extrapolation, ZneConfig};
use vaqem_suite::runtime::persist::{Codec, DurableStore};
use vaqem_suite::vaqem::window_tuner::{
    CachedChoice, ComposedChoice, NoiseClass, StoredChoice, TuningMode, WindowFingerprint,
};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vaqem-zne-codec-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fingerprint(mode: TuningMode, salt: u32) -> WindowFingerprint {
    WindowFingerprint {
        mode,
        duration_slots: salt,
        qubit: (salt % 7) as u16,
        ordinal: salt % 3,
        noise_class: NoiseClass {
            t1: 33,
            t2: -4,
            detuning: i16::MIN,
            telegraph: 0,
            readout: (salt % 11) as i16 - 5,
        },
        neighbors_active: (salt % 5) as u8,
        coupled_active: (salt % 2) as u8,
        sweep_resolution: 4,
        max_repetitions: 8,
    }
}

/// Random but always-valid composed choices: fold sets are distinct and
/// at least two long, objectives are finite (NaN breaks `PartialEq`-based
/// round-trip assertions, not the codec).
fn composed_strategy() -> impl Strategy<Value = ComposedChoice> {
    (
        proptest::collection::vec(0.0f64..1.0, 0..6),
        0u8..5, // 0..4 = a DD sequence, 4 = no DD
        proptest::collection::vec(0u32..30, 0..6),
        (0u8..4, 0u8..5), // (extra fold, extrapolation draw; 4 = no ZNE)
        -1000i32..1000,
    )
        .prop_map(
            |(gate_positions, seq, dd_repetitions, (extra_fold, zne_draw), obj)| {
                let dd_sequence = match seq {
                    0 => Some(DdSequence::Xx),
                    1 => Some(DdSequence::Yy),
                    2 => Some(DdSequence::Xy4),
                    3 => Some(DdSequence::Xy8),
                    _ => None,
                };
                let zne = match zne_draw {
                    4 => None,
                    3 => Some(ZneConfig::new(
                        vec![0, 1 + extra_fold],
                        Extrapolation::Exponential,
                    )),
                    order => Some(ZneConfig::new(
                        vec![0, 1 + extra_fold],
                        Extrapolation::Richardson { order },
                    )),
                };
                ComposedChoice {
                    gate_positions,
                    dd_sequence,
                    dd_repetitions,
                    zne,
                    objective: obj as f64 / 64.0,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn composed_choice_codec_round_trips_losslessly(choice in composed_strategy()) {
        let stored = StoredChoice::Composed(choice);
        let mut buf = Vec::new();
        stored.encode(&mut buf);
        let mut input = buf.as_slice();
        prop_assert_eq!(StoredChoice::decode(&mut input), Some(stored.clone()));
        prop_assert!(input.is_empty(), "no trailing bytes");
        // Truncated input fails cleanly at every cut point.
        for cut in 0..buf.len() {
            prop_assert_eq!(StoredChoice::decode(&mut &buf[..cut]), None);
        }
    }

    #[test]
    fn composed_choices_survive_a_durable_store_restart(
        choices in proptest::collection::vec(composed_strategy(), 1..8),
    ) {
        let dir = fresh_dir();
        {
            let store: DurableStore<WindowFingerprint, StoredChoice> =
                DurableStore::open(&dir, 2, 64).expect("open");
            for (i, c) in choices.iter().enumerate() {
                let mode = TuningMode::Composed(DdSequence::Xy4);
                store.insert(
                    "fleet-east",
                    0,
                    fingerprint(mode, i as u32),
                    StoredChoice::Composed(c.clone()),
                );
            }
            // No checkpoint: journal-only durability, like a kill.
        }
        let reloaded: DurableStore<WindowFingerprint, StoredChoice> =
            DurableStore::open(&dir, 2, 64).expect("reopen");
        for (i, c) in choices.iter().enumerate() {
            let mode = TuningMode::Composed(DdSequence::Xy4);
            prop_assert_eq!(
                reloaded.lookup("fleet-east", 0, &fingerprint(mode, i as u32)),
                Some(StoredChoice::Composed(c.clone()))
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Bytes of a format-version-1 snapshot: magic + version 1 + entries of
/// `(device, epoch, fingerprint, bare CachedChoice)` — exactly what the
/// pre-ZNE store wrote.
fn v1_snapshot(entries: &[(&str, u64, WindowFingerprint, CachedChoice)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"VQSN");
    1u32.encode(&mut out);
    (entries.len() as u64).encode(&mut out);
    for (device, epoch, fp, choice) in entries {
        device.to_string().encode(&mut out);
        epoch.encode(&mut out);
        fp.encode(&mut out);
        choice.encode(&mut out); // bare: no StoredChoice tag
    }
    out
}

#[test]
fn pre_zne_snapshot_files_still_decode() {
    let dir = fresh_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let legacy_fp = fingerprint(TuningMode::Dd(DdSequence::Xy4), 9);
    let legacy_gs = fingerprint(TuningMode::Gs, 4);
    let choice_a = CachedChoice {
        fraction_of_max: 0.75,
        value: 6.0,
        objective: -1.25,
    };
    let choice_b = CachedChoice {
        fraction_of_max: 1.0,
        value: 1.0,
        objective: -0.5,
    };
    let snapshot = v1_snapshot(&[
        ("fleet-east", 3, legacy_fp, choice_a),
        ("fleet-west", 0, legacy_gs, choice_b),
    ]);
    std::fs::write(dir.join("store.snapshot"), &snapshot).unwrap();
    // A version-1 journal with one more bare-choice insert record.
    let mut journal = Vec::new();
    journal.extend_from_slice(b"VQJL");
    1u32.encode(&mut journal);
    let mut payload = Vec::new();
    payload.push(1u8); // TAG_INSERT
    "fleet-east".to_string().encode(&mut payload);
    3u64.encode(&mut payload);
    fingerprint(TuningMode::Dd(DdSequence::Xx), 2).encode(&mut payload);
    choice_b.encode(&mut payload); // bare: no StoredChoice tag
    (payload.len() as u32).encode(&mut journal);
    journal.extend_from_slice(&payload);
    std::fs::write(dir.join("store.journal"), &journal).unwrap();

    let store: DurableStore<WindowFingerprint, StoredChoice> =
        DurableStore::open(&dir, 4, 64).expect("legacy files load");
    assert_eq!(store.recovery().snapshot_entries, 2);
    assert_eq!(store.recovery().journal_records, 1);
    assert_eq!(
        store.lookup("fleet-east", 3, &legacy_fp),
        Some(StoredChoice::Window(choice_a)),
        "snapshot entries lift to StoredChoice::Window"
    );
    assert_eq!(
        store.lookup("fleet-west", 0, &legacy_gs),
        Some(StoredChoice::Window(choice_b))
    );
    assert_eq!(
        store.lookup(
            "fleet-east",
            3,
            &fingerprint(TuningMode::Dd(DdSequence::Xx), 2)
        ),
        Some(StoredChoice::Window(choice_b)),
        "journal records lift too"
    );
    // The open upgraded the on-disk format: new-format entries (composed,
    // ZNE-bearing) can be written and read back across another restart.
    let composed = StoredChoice::Composed(ComposedChoice {
        gate_positions: vec![0.5],
        dd_sequence: Some(DdSequence::Xy4),
        dd_repetitions: vec![2],
        zne: Some(ZneConfig::standard()),
        objective: -2.0,
    });
    let comp_fp = fingerprint(TuningMode::Composed(DdSequence::Xy4), 1);
    store.insert("fleet-east", 3, comp_fp, composed.clone());
    drop(store);
    let again: DurableStore<WindowFingerprint, StoredChoice> =
        DurableStore::open(&dir, 4, 64).expect("reopen after upgrade");
    assert_eq!(again.lookup("fleet-east", 3, &comp_fp), Some(composed));
    assert_eq!(
        again.lookup("fleet-east", 3, &legacy_fp),
        Some(StoredChoice::Window(choice_a)),
        "legacy entries survive the upgrade round trip"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
