//! Executor parity: with a fixed `SeedStream`, `run_batch` over N jobs is
//! bit-identical to N sequential `run` calls, for all three `Executor`
//! implementations — and the batched objective paths built on top of it
//! (tuner sweeps, pipeline strategy evaluations) are therefore
//! seed-deterministic end to end.

use vaqem_suite::ansatz::su2::{EfficientSu2, Entanglement};
use vaqem_suite::circuit::circuit::QuantumCircuit;
use vaqem_suite::circuit::schedule::{schedule, DurationModel, ScheduleKind, ScheduledCircuit};
use vaqem_suite::device::noise::NoiseParameters;
use vaqem_suite::mathkit::rng::SeedStream;
use vaqem_suite::mitigation::combined::MitigationConfig;
use vaqem_suite::mitigation::dd::DdSequence;
use vaqem_suite::pauli::models::tfim_paper;
use vaqem_suite::sim::exec::{DensityExecutor, StateVectorSampler};
use vaqem_suite::sim::machine::MachineExecutor;
use vaqem_suite::vaqem::backend::QuantumBackend;
use vaqem_suite::vaqem::executor::{Executor, Job};
use vaqem_suite::vaqem::vqe::VqeProblem;

/// A family of distinct concrete circuits exercising idle windows.
fn job_circuits(n: usize) -> Vec<ScheduledCircuit> {
    let durations = DurationModel::ibm_default();
    (0..n)
        .map(|k| {
            let mut qc = QuantumCircuit::new(2);
            qc.h(0).unwrap();
            qc.cx(0, 1).unwrap();
            for _ in 0..(k % 5) {
                qc.sx(1).unwrap();
            }
            qc.ry(0.1 + 0.2 * k as f64, 0).unwrap();
            qc.cx(0, 1).unwrap();
            qc.measure_all();
            schedule(&qc, &durations, ScheduleKind::Alap).unwrap()
        })
        .collect()
}

fn assert_parity<E: Executor>(executor: &E, label: &str) {
    let jobs: Vec<Job> = job_circuits(12)
        .into_iter()
        .enumerate()
        .map(|(i, scheduled)| Job {
            scheduled,
            shots: 96 + 8 * i as u64,
            seed: 1000 + i as u64,
        })
        .collect();
    let batched = executor.run_batch(&jobs);
    assert_eq!(batched.len(), jobs.len());
    for (job, counts) in jobs.iter().zip(&batched) {
        let sequential = executor.run(&job.scheduled, job.shots, job.seed);
        assert_eq!(
            counts, &sequential,
            "{label}: batched counts diverged from sequential at seed {}",
            job.seed
        );
        assert_eq!(counts.total(), job.shots, "{label}: shot total");
    }
    // A second batched dispatch replays exactly (no hidden shared state).
    let again = executor.run_batch(&jobs);
    assert_eq!(batched, again, "{label}: run_batch must replay exactly");
}

#[test]
fn machine_executor_batch_parity() {
    let seeds = SeedStream::new(71);
    assert_parity(
        &MachineExecutor::new(NoiseParameters::uniform(2), seeds),
        "trajectory-machine",
    );
}

#[test]
fn statevector_sampler_batch_parity() {
    let seeds = SeedStream::new(72);
    assert_parity(&StateVectorSampler::new(2, seeds), "statevector-ideal");
}

#[test]
fn density_executor_batch_parity() {
    let seeds = SeedStream::new(73);
    assert_parity(
        &DensityExecutor::new(NoiseParameters::uniform(2), seeds),
        "density-markovian",
    );
}

#[test]
fn batched_energy_matches_sequential_energy() {
    // The full objective path: machine_energy_batch over many
    // (config, job) pairs equals per-pair machine_energy, bit for bit.
    let ansatz = EfficientSu2::new(3, 1, Entanglement::Linear)
        .circuit()
        .unwrap();
    let problem = VqeProblem::new("parity", tfim_paper(3), ansatz).unwrap();
    let mut backend =
        QuantumBackend::new(NoiseParameters::uniform(3), SeedStream::new(74)).with_shots(128);
    backend.calibrate_mem();
    let params = vec![0.3; problem.num_params()];
    let cache = problem.schedule_groups(&backend, &params).unwrap();

    let evals: Vec<(MitigationConfig, u64)> = vec![
        (MitigationConfig::baseline(), 10),
        (
            MitigationConfig::dynamical_decoupling(DdSequence::Xx, vec![1; 8]),
            11,
        ),
        (MitigationConfig::gate_scheduling(vec![0.5]), 12),
        (MitigationConfig::baseline(), 13),
    ];
    let batched = problem.machine_energy_batch(&backend, &cache, &evals);
    for ((cfg, job), batched_energy) in evals.iter().zip(&batched) {
        let sequential = problem
            .machine_energy(&backend, &params, cfg, *job)
            .unwrap();
        assert_eq!(
            *batched_energy, sequential,
            "objective diverged for job {job}"
        );
    }
}

#[test]
fn tuner_is_deterministic_across_runs() {
    // The batched tuner must pick identical configurations on replay —
    // thread scheduling cannot leak into results.
    let ansatz = EfficientSu2::new(3, 1, Entanglement::Linear)
        .circuit()
        .unwrap();
    let problem = VqeProblem::new("parity", tfim_paper(3), ansatz).unwrap();
    let backend =
        QuantumBackend::new(NoiseParameters::uniform(3), SeedStream::new(75)).with_shots(96);
    let params = vec![0.4; problem.num_params()];
    let tuner = vaqem_suite::vaqem::window_tuner::WindowTuner::new(
        &problem,
        &backend,
        vaqem_suite::vaqem::window_tuner::WindowTunerConfig {
            sweep_resolution: 3,
            dd_sequence: DdSequence::Xx,
            max_repetitions: 4,
            guard_repeats: 2,
            ..Default::default()
        },
    );
    let a = tuner.tune_dd(&params).unwrap();
    let b = tuner.tune_dd(&params).unwrap();
    assert_eq!(a.config, b.config);
    assert_eq!(a.dd_choices, b.dd_choices);
    assert_eq!(a.evaluations, b.evaluations);
}
