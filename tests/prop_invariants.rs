//! Property-based tests over the workspace's core invariants:
//! state normalization, channel trace preservation, scheduling validity,
//! mitigation semantics preservation, and the paper's §V soundness bounds.

use proptest::prelude::*;
use vaqem_suite::circuit::circuit::QuantumCircuit;
use vaqem_suite::circuit::gate::Gate;
use vaqem_suite::circuit::schedule::{schedule, DurationModel, ScheduleKind};
use vaqem_suite::circuit::unitary::{circuit_unitary, equal_up_to_phase};
use vaqem_suite::mathkit::matrix::CMatrix;
use vaqem_suite::mathkit::rng::SeedStream;
use vaqem_suite::mitigation::dd::{DdPass, DdSequence};
use vaqem_suite::mitigation::scheduling::GsPass;
use vaqem_suite::pauli::hamiltonian::PauliSum;
use vaqem_suite::pauli::pauli::{PauliOp, PauliString};
use vaqem_suite::sim::channels::KrausChannel;
use vaqem_suite::sim::statevector::StateVector;
use vaqem_suite::vaqem::soundness::{assert_mixed_state_bound, assert_pure_state_bound};

const SLOT: f64 = 35.56;

/// Strategy: a random concrete circuit on `n` qubits.
fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = QuantumCircuit> {
    let gate = prop_oneof![
        (0..n).prop_map(|q| (0u8, q, 0usize, 0.0f64)),
        (0..n).prop_map(|q| (1u8, q, 0usize, 0.0f64)),
        (0..n).prop_map(|q| (2u8, q, 0usize, 0.0f64)),
        ((0..n), (-3.2f64..3.2)).prop_map(|(q, t)| (3u8, q, 0usize, t)),
        ((0..n), (-3.2f64..3.2)).prop_map(|(q, t)| (4u8, q, 0usize, t)),
        ((0..n), (0..n)).prop_map(|(a, b)| (5u8, a, b, 0.0f64)),
    ];
    proptest::collection::vec(gate, 1..max_len).prop_map(move |ops| {
        let mut qc = QuantumCircuit::new(n);
        for (kind, a, b, t) in ops {
            match kind {
                0 => {
                    qc.h(a).unwrap();
                }
                1 => {
                    qc.x(a).unwrap();
                }
                2 => {
                    qc.sx(a).unwrap();
                }
                3 => {
                    qc.ry(t, a).unwrap();
                }
                4 => {
                    qc.rz(t, a).unwrap();
                }
                _ => {
                    if a != b {
                        qc.cx(a, b).unwrap();
                    } else {
                        qc.h(a).unwrap();
                    }
                }
            }
        }
        qc
    })
}

/// Strategy: a random Hermitian Pauli sum on `n` qubits.
fn arb_pauli_sum(n: usize) -> impl Strategy<Value = PauliSum> {
    let term = (proptest::collection::vec(0u8..4, n), -2.0f64..2.0);
    proptest::collection::vec(term, 1..8).prop_map(move |terms| {
        let mut h = PauliSum::new(n);
        for (ops, c) in terms {
            let paulis: Vec<PauliOp> = ops
                .into_iter()
                .map(|o| match o {
                    0 => PauliOp::I,
                    1 => PauliOp::X,
                    2 => PauliOp::Y,
                    _ => PauliOp::Z,
                })
                .collect();
            h.add(c, PauliString::from_ops(paulis));
        }
        h
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn statevector_stays_normalized(qc in arb_circuit(3, 30)) {
        let sv = StateVector::run(&qc).expect("concrete circuit");
        prop_assert!((sv.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_counts_total_matches_shots(qc in arb_circuit(2, 15), shots in 1u64..2000) {
        let sv = StateVector::run(&qc).expect("concrete circuit");
        let seeds = SeedStream::new(1);
        let counts = sv.sample_counts(&mut seeds.rng("prop"), shots);
        prop_assert_eq!(counts.total(), shots);
    }

    #[test]
    fn schedules_are_valid_and_equal_makespan(qc in arb_circuit(3, 25)) {
        let d = DurationModel::ibm_default();
        let asap = schedule(&qc, &d, ScheduleKind::Asap).expect("schedules");
        let alap = schedule(&qc, &d, ScheduleKind::Alap).expect("schedules");
        asap.validate().expect("asap valid");
        alap.validate().expect("alap valid");
        prop_assert!((asap.total_ns() - alap.total_ns()).abs() < 1e-6);
    }

    #[test]
    fn idle_windows_lie_within_the_schedule(qc in arb_circuit(3, 25)) {
        let d = DurationModel::ibm_default();
        let s = schedule(&qc, &d, ScheduleKind::Alap).expect("schedules");
        for w in s.idle_windows(SLOT) {
            prop_assert!(w.start_ns >= -1e-9);
            prop_assert!(w.end_ns <= s.total_ns() + 1e-9);
            prop_assert!(w.duration_ns() > SLOT);
            prop_assert!(w.qubit < s.num_qubits());
        }
    }

    #[test]
    fn dd_insertion_keeps_schedules_valid(qc in arb_circuit(3, 25), reps in 0usize..5) {
        let d = DurationModel::ibm_default();
        let s = schedule(&qc, &d, ScheduleKind::Alap).expect("schedules");
        let pass = DdPass::new(DdSequence::Xy4, SLOT, SLOT);
        let out = pass.apply_uniform(&s, reps);
        out.validate().expect("valid after DD");
    }

    #[test]
    fn gs_moves_keep_schedules_valid(qc in arb_circuit(3, 25), f in 0.0f64..1.0) {
        let d = DurationModel::ibm_default();
        let s = schedule(&qc, &d, ScheduleKind::Alap).expect("schedules");
        let pass = GsPass::new(SLOT);
        let out = pass.apply_uniform(&s, f);
        out.validate().expect("valid after GS");
    }

    #[test]
    fn dd_sequences_preserve_circuit_semantics(qc in arb_circuit(2, 12), seq_idx in 0usize..4) {
        // Appending a full DD sequence mid-circuit is a logical no-op.
        let seq = [DdSequence::Xx, DdSequence::Yy, DdSequence::Xy4, DdSequence::Xy8][seq_idx];
        let u_before = circuit_unitary(&qc).expect("unitary");
        let mut with_dd = qc.clone();
        for g in seq.pulses() {
            with_dd.push(*g, &[0]).unwrap();
        }
        // Move the insertion "mid-circuit" by appending the original again:
        // U * DD * U must equal U * U up to phase.
        let mut doubled = with_dd.clone();
        doubled.compose(&qc).unwrap();
        let mut reference = qc.clone();
        reference.compose(&qc).unwrap();
        let u_dd = circuit_unitary(&doubled).expect("unitary");
        let u_ref = circuit_unitary(&reference).expect("unitary");
        prop_assert!(equal_up_to_phase(&u_dd, &u_ref, 1e-8));
        let _ = u_before;
    }

    #[test]
    fn kraus_channels_are_cptp(gamma in 0.0f64..1.0, p in 0.0f64..1.0) {
        prop_assert!(KrausChannel::amplitude_damping(gamma).is_trace_preserving(1e-10));
        prop_assert!(KrausChannel::phase_damping(gamma).is_trace_preserving(1e-10));
        prop_assert!(KrausChannel::depolarizing(p).is_trace_preserving(1e-10));
        prop_assert!(
            KrausChannel::amplitude_damping(gamma)
                .then(&KrausChannel::depolarizing(p))
                .is_trace_preserving(1e-10)
        );
    }

    #[test]
    fn soundness_pure_states_never_beat_ground(
        h in arb_pauli_sum(2),
        qc in arb_circuit(2, 15),
    ) {
        // Paper §V Property 1: <phi|H|phi> >= E0 for any circuit state.
        let m = h.to_matrix();
        let e0 = h.ground_state_energy();
        let sv = StateVector::run(&qc).expect("concrete circuit");
        let e = assert_pure_state_bound(&m, sv.amplitudes(), e0);
        prop_assert!(e >= e0 - 1e-8);
    }

    #[test]
    fn soundness_mixed_states_never_beat_ground(
        h in arb_pauli_sum(2),
        qc1 in arb_circuit(2, 10),
        qc2 in arb_circuit(2, 10),
        w in 0.0f64..1.0,
    ) {
        // Paper §V Property 2: Tr[H rho] >= E0 for convex mixtures.
        let m = h.to_matrix();
        let e0 = h.ground_state_energy();
        let a = StateVector::run(&qc1).expect("runs");
        let b = StateVector::run(&qc2).expect("runs");
        let rho_a = CMatrix::vec_outer(a.amplitudes(), a.amplitudes());
        let rho_b = CMatrix::vec_outer(b.amplitudes(), b.amplitudes());
        let rho = &rho_a.scale(vaqem_suite::mathkit::c64(w, 0.0))
            + &rho_b.scale(vaqem_suite::mathkit::c64(1.0 - w, 0.0));
        let e = assert_mixed_state_bound(&m, &rho, e0);
        prop_assert!(e >= e0 - 1e-8);
    }

    #[test]
    fn circuit_inverse_is_inverse(qc in arb_circuit(3, 15)) {
        let mut round_trip = qc.clone();
        round_trip.compose(&qc.inverse()).unwrap();
        let u = circuit_unitary(&round_trip).expect("unitary");
        prop_assert!(u.is_identity(1e-8));
    }
}

#[test]
fn gate_unitaries_are_unitary_exhaustive() {
    // Deterministic sweep over the full fixed gate set (non-proptest).
    let gates = [
        Gate::I,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::Sx,
        Gate::Sxdg,
        Gate::Cx,
        Gate::Cz,
        Gate::Swap,
    ];
    for g in gates {
        assert!(g.unitary().unwrap().is_unitary(1e-12), "{g}");
    }
}
