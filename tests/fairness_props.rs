//! Property tests for the fleet's deficit-round-robin arbitration
//! (`vaqem_runtime::fleet::DrrQueue` — the policy both the live reactor
//! and the offline `schedule_sessions_fair` model dispatch with).
//!
//! The starvation-freedom bound, under **any arrival interleaving**: at
//! every point in the dispatch sequence, a client that is currently
//! backlogged has completed at least
//! `floor(weight_share x dispatches_since_it_became_backlogged) - 1`
//! sessions — for the daemon's equal-weight, uniform-cost regime, its
//! fair share minus at most one session per device.

use proptest::prelude::*;
use vaqem_runtime::fleet::{schedule_sessions_fair, schedule_sessions_queued, TuningSession};
use vaqem_runtime::DrrQueue;

/// Replays an op sequence against a `DrrQueue` with `clients`
/// equal-weight lanes and unit session costs, checking the starvation
/// bound after every dispatch. Ops: `op < clients` enqueues one session
/// for that client; `op == clients` dispatches (no-op when everything
/// is empty).
fn check_starvation_bound(clients: usize, ops: &[u8]) -> Result<(), TestCaseError> {
    let mut q: DrrQueue<()> = DrrQueue::new(1.0);
    let names: Vec<String> = (0..clients).map(|c| format!("client-{c}")).collect();
    for name in &names {
        q.register(name, 1);
    }
    // Per client: queued count, completed-since-backlogged, and the
    // dispatch clock when it last became backlogged.
    let mut queued = vec![0usize; clients];
    let mut served_since = vec![0usize; clients];
    let mut backlogged_at = vec![0u64; clients];
    let mut dispatches = 0u64;
    for &op in ops {
        let c = op as usize;
        if c < clients {
            if queued[c] == 0 {
                // (Re)joining the backlog: the bound clock restarts.
                backlogged_at[c] = dispatches;
                served_since[c] = 0;
            }
            queued[c] += 1;
            q.enqueue(&names[c], 1.0, ());
        } else if let Some((client, _, ())) = q.dispatch_next() {
            dispatches += 1;
            let idx = names.iter().position(|n| *n == client).expect("known");
            queued[idx] -= 1;
            served_since[idx] += 1;
            // The bound: every *currently backlogged* client has its
            // weight-proportional share of the dispatches issued while
            // it was backlogged, minus at most one session.
            for k in 0..clients {
                if queued[k] == 0 {
                    continue;
                }
                let window = dispatches - backlogged_at[k];
                let share = (window as f64 / clients as f64).floor() as i64 - 1;
                prop_assert!(
                    served_since[k] as i64 >= share,
                    "client {k} starved: served {} of fair {share} over a window of {window} \
                     dispatches ({clients} clients)",
                    served_since[k]
                );
            }
        }
    }
    // Drain what is left: the bound must hold to the end.
    while let Some((client, _, ())) = q.dispatch_next() {
        dispatches += 1;
        let idx = names.iter().position(|n| *n == client).expect("known");
        queued[idx] -= 1;
        served_since[idx] += 1;
        for k in 0..clients {
            if queued[k] == 0 {
                continue;
            }
            let window = dispatches - backlogged_at[k];
            let share = (window as f64 / clients as f64).floor() as i64 - 1;
            prop_assert!(
                served_since[k] as i64 >= share,
                "client {k} starved during drain: served {} of fair {share}",
                served_since[k]
            );
        }
    }
    prop_assert!(q.is_empty());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn drr_never_starves_a_backlogged_client(
        clients in 2usize..6,
        ops in proptest::collection::vec(0u8..12, 1..160),
    ) {
        // Map op codes onto the live client range: values >= clients
        // become dispatches, so arrival/dispatch interleavings of every
        // shape (bursts, alternation, long idle lanes) are generated.
        let ops: Vec<u8> = ops
            .iter()
            .map(|&o| if (o as usize) < clients { o } else { clients as u8 })
            .collect();
        check_starvation_bound(clients, &ops)?;
    }

    #[test]
    fn drr_conserves_and_orders_each_lane_fifo(
        clients in 1usize..5,
        ops in proptest::collection::vec(0u8..10, 1..120),
    ) {
        // Every enqueued item comes out exactly once, and each lane's
        // items dispatch in their enqueue order (fairness reorders
        // *across* lanes, never within one).
        let mut q: DrrQueue<(usize, usize)> = DrrQueue::new(1.0);
        let names: Vec<String> = (0..clients).map(|c| format!("c{c}")).collect();
        let mut pushed = vec![0usize; clients];
        let mut popped = vec![0usize; clients];
        let mut total_pushed = 0usize;
        let mut total_popped = 0usize;
        for &op in &ops {
            let c = op as usize % (clients + 1);
            if c < clients {
                q.enqueue(&names[c], 1.0, (c, pushed[c]));
                pushed[c] += 1;
                total_pushed += 1;
            } else if let Some((_, _, (lane, serial))) = q.dispatch_next() {
                prop_assert_eq!(serial, popped[lane]);
                popped[lane] += 1;
                total_popped += 1;
            }
        }
        while let Some((_, _, (lane, serial))) = q.dispatch_next() {
            prop_assert_eq!(serial, popped[lane]);
            popped[lane] += 1;
            total_popped += 1;
        }
        prop_assert_eq!(total_popped, total_pushed);
        prop_assert!(q.is_empty());
    }

    #[test]
    fn weighted_shares_hold_over_full_backlogs(
        weights in proptest::collection::vec(1u32..5, 2..5),
        rounds in 2usize..6,
    ) {
        // All clients fully backlogged from the start: after the whole
        // backlog drains in `rounds` DRR rotations, each client was
        // served exactly `weight x rounds` sessions — the exact
        // weighted-fair share (unit costs, quantum = cost).
        let mut q: DrrQueue<()> = DrrQueue::new(1.0);
        for (i, &w) in weights.iter().enumerate() {
            let name = format!("w{i}");
            q.register(&name, w);
            for _ in 0..(w as usize * rounds) {
                q.enqueue(&name, 1.0, ());
            }
        }
        let mut served = vec![0usize; weights.len()];
        while let Some((client, _, ())) = q.dispatch_next() {
            let idx: usize = client[1..].parse().expect("w<i> label");
            served[idx] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            prop_assert_eq!(served[i], w as usize * rounds);
        }
    }

    #[test]
    fn offline_fair_schedule_never_loses_throughput_to_fifo(
        minutes in proptest::collection::vec(1u32..40, 1..24),
        devices in 1usize..4,
        clients in 1usize..5,
    ) {
        // The fair schedule reorders who waits; devices serialize either
        // way, so makespan and sessions/hour match FIFO exactly on any
        // workload — fairness is free.
        let sessions: Vec<TuningSession> = minutes
            .iter()
            .enumerate()
            .map(|(i, &m)| TuningSession {
                client: format!("c{}", i % clients),
                device: i % devices,
                minutes: m as f64,
            })
            .collect();
        let queue: Vec<f64> = (0..devices).map(|d| 10.0 + d as f64).collect();
        let fifo = schedule_sessions_queued(devices, &sessions, &queue);
        let fair = schedule_sessions_fair(devices, &sessions, &[], &queue);
        prop_assert_eq!(&fair.schedule, &fifo);
        prop_assert!(
            fair.schedule.sessions_per_hour() >= fifo.sessions_per_hour() - 1e-12
        );
        // Completion order covers every session exactly once.
        let total: usize = fair.completion_order.iter().map(|d| d.len()).sum();
        prop_assert_eq!(total, sessions.len());
    }
}
