//! Wire-frame properties of the VQRP protocol (`vaqem-fleet-rpc`):
//!
//! * **frames are lossless** — any protocol frame, client- or
//!   server-tagged, round-trips byte-exactly through the persist codec
//!   with nothing left over;
//! * **hostile bytes never panic** — every truncation cut of a valid
//!   frame, garbage-prefixed payloads, and fully arbitrary byte soup
//!   all decode to `None` (or a valid frame, for soup that happens to
//!   parse) without panicking;
//! * **torn delivery reassembles** — a stream of frames chopped into
//!   arbitrary chunk sizes comes back out of `FrameReader` as exactly
//!   the original frame sequence.

use proptest::prelude::*;
use vaqem_suite::fleet_rpc::wire::Frame;
use vaqem_suite::fleet_service::{
    QuotaError, RpcMetricsReport, SessionError, SessionKind, SessionOutcome, SessionRequest,
};
use vaqem_suite::mitigation::combined::MitigationConfig;
use vaqem_suite::mitigation::dd::DdSequence;
use vaqem_suite::mitigation::zne::{Extrapolation, ZneConfig};
use vaqem_suite::runtime::persist::Codec;
use vaqem_suite::runtime::wire::{frame as wire_frame, FrameReader};
use vaqem_suite::runtime::ShipCursor;

/// Lowercase labels of length `0..max` (the vendored proptest subset has
/// no string strategies).
fn label(max: usize) -> impl Strategy<Value = String> {
    collection::vec(97u8..123, 0..max)
        .prop_map(|bytes| String::from_utf8(bytes).expect("ascii lowercase"))
}

fn byte() -> impl Strategy<Value = u8> {
    (0u16..256).prop_map(|b| b as u8)
}

fn kind_strategy() -> impl Strategy<Value = SessionKind> {
    prop_oneof![
        Just(SessionKind::Dd),
        Just(SessionKind::Gs),
        Just(SessionKind::Combined),
        Just(SessionKind::Zne),
        Just(SessionKind::CombinedZne),
    ]
}

fn request_strategy() -> impl Strategy<Value = SessionRequest> {
    (
        label(12),
        0.0f64..100.0,
        collection::vec(-3.2f64..3.2, 0..6),
        prop_oneof![Just(None), (0usize..4).prop_map(Some)],
        kind_strategy(),
    )
        .prop_map(|(client, t_hours, params, device, kind)| SessionRequest {
            client,
            t_hours,
            params,
            device,
            kind,
        })
}

fn mitigation_strategy() -> impl Strategy<Value = MitigationConfig> {
    (
        collection::vec(0.0f64..1.0, 0..5),
        collection::vec(0usize..9, 0..5),
        0u8..5, // 0..4 = a DD sequence, 4 = none
        0u8..3, // 0 = no ZNE, 1 = Richardson, 2 = Exponential
        1u8..4, // extra fold for distinctness
    )
        .prop_map(|(gate_positions, dd_repetitions, seq, zne_draw, extra)| {
            let dd_sequence = match seq {
                0 => Some(DdSequence::Xx),
                1 => Some(DdSequence::Yy),
                2 => Some(DdSequence::Xy4),
                3 => Some(DdSequence::Xy8),
                _ => None,
            };
            let zne = match zne_draw {
                1 => Some(ZneConfig::new(
                    vec![0, extra],
                    Extrapolation::Richardson { order: extra },
                )),
                2 => Some(ZneConfig::new(vec![0, extra], Extrapolation::Exponential)),
                _ => None,
            };
            MitigationConfig {
                gate_positions,
                dd_repetitions,
                dd_sequence,
                zne,
            }
        })
}

fn outcome_strategy() -> impl Strategy<Value = SessionOutcome> {
    (
        (label(12), 0usize..4, label(16), 0u64..50),
        (0usize..40, 0usize..40, 0u8..2, 0usize..500),
        (0.0f64..1000.0, 0usize..10, 0u64..1000),
        mitigation_strategy(),
    )
        .prop_map(
            |(
                (client, device, device_name, epoch),
                (hits, misses, guard, evaluations),
                (minutes, invalidated, sequence),
                config,
            )| SessionOutcome {
                client,
                device,
                device_name,
                epoch,
                hits,
                misses,
                guard_rejected: guard == 1,
                evaluations,
                minutes,
                invalidated,
                sequence,
                config,
            },
        )
}

fn error_strategy() -> impl Strategy<Value = SessionError> {
    prop_oneof![
        (label(10), 0usize..8).prop_map(|(client, limit)| SessionError::Quota(
            QuotaError::InFlightExceeded { client, limit }
        )),
        (
            label(10),
            0.0f64..100.0,
            0.0f64..100.0,
            0.0f64..10.0,
            0u64..9
        )
            .prop_map(|(client, limit_min, used_min, requested_min, epoch)| {
                SessionError::Quota(QuotaError::BudgetExhausted {
                    client,
                    limit_min,
                    used_min,
                    requested_min,
                    epoch,
                })
            }),
        label(30).prop_map(SessionError::Tuning),
        (0usize..1_000_000, 0usize..1_000_000).prop_map(|(pending_out_bytes, limit)| {
            SessionError::Overloaded {
                pending_out_bytes,
                limit,
            }
        }),
        label(30).prop_map(SessionError::Protocol),
    ]
}

fn metrics_strategy() -> impl Strategy<Value = RpcMetricsReport> {
    collection::vec(0u64..u64::MAX / 2, 14).prop_map(|v| RpcMetricsReport {
        connections_accepted: v[0],
        connections_open: v[1],
        connections_closed: v[2],
        frames_in: v[3],
        frames_out: v[4],
        bytes_in: v[5],
        bytes_out: v[6],
        decode_errors: v[7],
        overload_rejections: v[8],
        overload_closes: v[9],
        peak_pending_out_bytes: v[10],
        pump_cpu_micros: v[11],
        pump_passes: v[12],
        pump_wakeups: v[13],
    })
}

/// Every frame variant, client- and server-tagged alike.
fn frame_strategy() -> impl Strategy<Value = Frame> {
    prop_oneof![
        label(12).prop_map(|client| Frame::Open { client }),
        (0u64..1000, request_strategy())
            .prop_map(|(token, request)| Frame::Submit { token, request }),
        Just(Frame::Poll),
        (0u64..1000).prop_map(|token| Frame::Metrics { token }),
        Just(Frame::Shutdown),
        label(12).prop_map(|client| Frame::OpenAck { client }),
        (0u64..1000, outcome_strategy())
            .prop_map(|(token, outcome)| Frame::Outcome { token, outcome }),
        (0u64..1000, error_strategy()).prop_map(|(token, error)| Frame::Error { token, error }),
        (0u64..100, 0u64..100).prop_map(|(in_flight, completed)| Frame::PollReply {
            in_flight,
            completed
        }),
        (0u64..1000, metrics_strategy(), label(60)).prop_map(|(token, rpc, report_json)| {
            Frame::MetricsReply {
                token,
                rpc,
                report_json,
            }
        }),
        Just(Frame::ShutdownAck),
        (0u64..8, 0u64..100_000).prop_map(|(generation, offset)| Frame::JournalAck {
            cursor: ShipCursor { generation, offset },
        }),
        (
            0u64..8,
            0u64..100_000,
            0u8..2,
            collection::vec(byte(), 0..48)
        )
            .prop_map(|(generation, offset, snap, payload)| Frame::JournalShip {
                cursor: ShipCursor { generation, offset },
                snapshot: snap == 1,
                payload,
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frames_round_trip_losslessly(frame in frame_strategy()) {
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        let mut input = buf.as_slice();
        prop_assert_eq!(Frame::decode(&mut input), Some(frame.clone()));
        prop_assert!(input.is_empty(), "no trailing bytes");
    }

    #[test]
    fn every_truncation_cut_is_refused_without_panicking(frame in frame_strategy()) {
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        for cut in 0..buf.len() {
            prop_assert_eq!(Frame::decode(&mut &buf[..cut]), None);
        }
    }

    #[test]
    fn garbage_prefixed_payloads_are_refused(
        frame in frame_strategy(),
        prefix in collection::vec(byte(), 1..8),
    ) {
        // No valid tag occupies 0x07..=0x80 or 0x88.. (0x06/0x87 are
        // the replication pair): force the lead byte into the dead
        // zones so the payload cannot accidentally parse, then check
        // the decoder refuses it cleanly.
        let mut bytes = prefix;
        bytes[0] = if bytes[0] % 2 == 0 { 0x50 } else { 0xF0 };
        frame.encode(&mut bytes);
        prop_assert_eq!(Frame::decode(&mut bytes.as_slice()), None);
    }

    #[test]
    fn arbitrary_byte_soup_never_panics(bytes in collection::vec(byte(), 0..200)) {
        // Outcome is irrelevant — most soup is `None`, some happens to
        // parse — the property is "no panic, no infinite loop".
        let _ = Frame::decode(&mut bytes.as_slice());
    }

    #[test]
    fn torn_delivery_reassembles_the_exact_frame_sequence(
        frames in collection::vec(frame_strategy(), 1..6),
        chunk in 1usize..40,
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            let mut payload = Vec::new();
            f.encode(&mut payload);
            stream.extend_from_slice(&wire_frame(&payload));
        }
        let mut reader = FrameReader::new(1 << 20);
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            reader.push(piece);
            while let Some(payload) = reader.next_frame().expect("under the bound") {
                let mut input = payload.as_slice();
                let f = Frame::decode(&mut input).expect("valid frame");
                prop_assert!(input.is_empty());
                decoded.push(f);
            }
        }
        prop_assert_eq!(decoded, frames);
    }
}

#[test]
fn oversized_length_prefix_poisons_the_reader() {
    let mut reader = FrameReader::new(64);
    reader.push(&1_000_000u32.to_le_bytes());
    assert!(
        reader.next_frame().is_err(),
        "declared length over the bound"
    );
}
