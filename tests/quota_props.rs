//! Property tests for the reactor's quota ledger
//! (`vaqem_fleet_service::quota::QuotaBook`): random admit/settle/
//! epoch-advance schedules checked against an independent reference
//! model.
//!
//! The ledger's accounting is reserve-then-settle across quota epochs,
//! and its two subtle obligations are exactly the ones directed unit
//! tests cannot sweep:
//!
//! * every reservation settles **exactly once** — `reserved_min` equals
//!   the sum of outstanding admission-time estimates at every instant,
//!   and returns to zero when the ledger drains, no matter how
//!   admissions and completions interleave;
//! * a session that completes **in a later quota epoch** than it was
//!   admitted in leaks no budget: the rollover wipes settled spend but
//!   carries live reservations, and the late settle bills the new epoch
//!   once.
//!
//! Minutes are quantized to 0.25 (dyadic rationals), so every sum and
//! difference below is exact in `f64` and admission verdicts compare
//! bit-for-bit with the model's.

use proptest::prelude::*;
use vaqem_fleet_service::quota::{ClientQuota, QuotaBook, QuotaError};

const CLIENTS: [&str; 3] = ["alice", "bob", "mallory"];

// A schedule step is a generated `(kind, client, minutes_steps, jitter)`
// tuple: `kind` selects admit / settle / clock-advance; `minutes_steps`
// quantizes to quarter-minutes; `jitter` drives backdating and
// settle-index picks. Decoded inline in the property body.

/// One client's quota, decoded from `(axis_mask, cap, budget_steps)`:
/// bit 0 of the mask bounds the in-flight cap, bit 1 the budget.
type QuotaSpec = (u32, usize, u64);

fn decode_quota((mask, cap, budget_steps): QuotaSpec) -> ClientQuota {
    ClientQuota {
        max_in_flight: if mask & 1 == 0 { usize::MAX } else { cap },
        minutes_per_epoch: if mask & 2 == 0 {
            f64::INFINITY
        } else {
            8.0 + 0.25 * budget_steps as f64
        },
    }
}

/// The reference: one client's state per the documented contract,
/// re-implemented independently of the `QuotaBook` internals.
#[derive(Default)]
struct ModelClient {
    /// Outstanding admission-time estimates, one per in-flight session.
    outstanding: Vec<f64>,
    epoch: u64,
    spent_min: f64,
    completed: u64,
    rejected: u64,
}

impl ModelClient {
    fn reserved(&self) -> f64 {
        self.outstanding.iter().sum()
    }

    fn roll(&mut self, epoch: u64) {
        // Forward-only: a backdated request accounts against the
        // current epoch instead of resetting the spend.
        if epoch > self.epoch {
            self.epoch = epoch;
            self.spent_min = 0.0;
        }
    }

    fn admit(&mut self, quota: ClientQuota, epoch: u64, estimate: f64) -> bool {
        self.roll(epoch);
        if self.outstanding.len() >= quota.max_in_flight
            || self.spent_min + self.reserved() + estimate > quota.minutes_per_epoch
        {
            self.rejected += 1;
            return false;
        }
        self.outstanding.push(estimate);
        true
    }

    fn settle(&mut self, index: usize, actual: f64) -> f64 {
        let estimate = self.outstanding.remove(index);
        self.spent_min += actual;
        self.completed += 1;
        estimate
    }
}

fn check_against_model(
    book: &QuotaBook,
    model: &[(&str, ModelClient)],
    op: usize,
) -> TestCaseResult {
    let usage = book.usage();
    for (client, m) in model {
        if m.outstanding.is_empty() && m.completed == 0 && m.rejected == 0 && m.epoch == 0 {
            continue; // client never touched the book
        }
        let u = usage.iter().find(|u| u.client == *client);
        prop_assert!(u.is_some(), "op {op}: {client} missing from usage");
        let u = u.unwrap();
        prop_assert_eq!(u.in_flight, m.outstanding.len());
        prop_assert!(
            u.reserved_min == m.reserved(),
            "op {op} client {client}: reserved {} != outstanding sum {}",
            u.reserved_min,
            m.reserved()
        );
        prop_assert!(
            u.spent_min == m.spent_min,
            "op {op} client {client}: spent {} != model {}",
            u.spent_min,
            m.spent_min
        );
        prop_assert_eq!(u.epoch, m.epoch);
        prop_assert_eq!(u.completed, m.completed);
        prop_assert_eq!(u.rejected, m.rejected);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Replays a random schedule against the book and the model in
    /// lockstep, checking the full usage snapshot after every op, then
    /// drains the ledger and requires zero reservations remain.
    #[test]
    fn quota_book_matches_reference_model(
        specs in (
            (0u32..4, 1usize..5, 0u64..129),
            (0u32..4, 1usize..5, 0u64..129),
            (0u32..4, 1usize..5, 0u64..129),
        ),
        ops in collection::vec((0u32..10, 0usize..3, 0u64..48, 0u64..60), 20..250),
    ) {
        let quotas: Vec<(String, ClientQuota)> = CLIENTS
            .iter()
            .zip([specs.0, specs.1, specs.2])
            .map(|(c, s)| (c.to_string(), decode_quota(s)))
            .collect();
        let mut book = QuotaBook::new(ClientQuota::unlimited(), &quotas);
        let mut model: Vec<(&str, ModelClient)> = CLIENTS
            .iter()
            .map(|c| (*c, ModelClient::default()))
            .collect();
        // The request clock advances monotonically apart from
        // deliberate backdating, crossing several epoch boundaries per
        // case so sessions straddle rollovers.
        let mut clock = 0u64;
        for (op, &(kind, which, steps, jitter)) in ops.iter().enumerate() {
            let (client, m) = &mut model[which];
            let quota = book.quota_of(client);
            match kind {
                // Admission, possibly backdated around the boundary.
                0..=5 => {
                    if jitter % 4 == 0 {
                        clock += 1 + jitter % 2; // epoch rollover
                    }
                    let epoch = if jitter % 5 == 0 {
                        clock.saturating_sub(1 + jitter % 3) // backdated
                    } else {
                        clock
                    };
                    let estimate = 0.25 + 0.25 * steps as f64;
                    let admitted = book.admit(client, epoch, estimate);
                    let model_admits = m.admit(quota, epoch, estimate);
                    prop_assert!(
                        admitted.is_ok() == model_admits,
                        "op {op}: verdict diverged for {client} (epoch {epoch}, \
                         estimate {estimate}): book={admitted:?}"
                    );
                    if let Err(e) = admitted {
                        match e {
                            QuotaError::InFlightExceeded { limit, .. } => {
                                prop_assert_eq!(limit, quota.max_in_flight);
                            }
                            QuotaError::BudgetExhausted { epoch: reported, .. } => {
                                // The error names the request's epoch,
                                // even when backdated.
                                prop_assert_eq!(reported, epoch);
                            }
                        }
                    }
                }
                // Settle a random in-flight session; the measured bill
                // deliberately disagrees with the estimate both ways.
                6..=8 if !m.outstanding.is_empty() => {
                    let index = (jitter as usize) % m.outstanding.len();
                    let actual = 0.25 * (jitter % 61) as f64;
                    let estimate = m.settle(index, actual);
                    book.settle(client, estimate, actual);
                }
                // Pure clock advance: the next admission lands in a
                // fresh epoch.
                _ => clock += 1,
            }
            check_against_model(&book, &model, op)?;
        }
        // Drain: everything outstanding settles exactly once, after
        // which nothing is reserved and nothing is in flight.
        for (client, m) in &mut model {
            while !m.outstanding.is_empty() {
                let estimate = m.settle(0, 1.25);
                book.settle(client, estimate, 1.25);
            }
        }
        check_against_model(&book, &model, ops.len())?;
        for u in book.usage() {
            prop_assert_eq!(u.in_flight, 0);
            prop_assert!(u.reserved_min == 0.0, "drained ledger reserves {}", u.reserved_min);
        }
    }
}

/// The named rollover scenario, pinned directly: a session admitted in
/// epoch `e` completes in epoch `e + 1`. The rollover must carry the
/// reservation (no double-spendable headroom), wipe only settled spend,
/// and the late settle must bill the new epoch exactly once.
#[test]
fn completion_in_a_later_epoch_leaks_no_budget() {
    let quota = ClientQuota {
        max_in_flight: usize::MAX,
        minutes_per_epoch: 10.0,
    };
    let mut book = QuotaBook::new(quota, &[]);
    book.admit("c", 0, 6.0).expect("fits epoch-0 budget");

    // The clock crosses into epoch 1 while the session is still in
    // flight: the reservation must survive the rollover...
    let err = book.admit("c", 1, 6.0).expect_err("6 reserved + 6 > 10");
    match err {
        QuotaError::BudgetExhausted { used_min, .. } => {
            assert_eq!(used_min, 6.0, "carried reservation counts in the new epoch")
        }
        other => panic!("wrong rejection: {other:?}"),
    }
    let u = &book.usage()[0];
    assert_eq!(u.epoch, 1);
    assert_eq!(u.spent_min, 0.0, "rollover wiped settled spend only");
    assert_eq!(u.reserved_min, 6.0, "rollover carried the live reservation");

    // ...and the late completion settles once, against epoch 1.
    book.settle("c", 6.0, 5.0);
    let u = &book.usage()[0];
    assert_eq!(u.reserved_min, 0.0, "reservation released exactly once");
    assert_eq!(
        u.spent_min, 5.0,
        "measured bill lands in the completion epoch"
    );
    assert_eq!(u.completed, 1);

    // Headroom after the late settle is budget minus the *measured*
    // bill — the estimate's extra minute came back.
    book.admit("c", 1, 5.0).expect("5 spent + 5 <= 10");
    let err = book
        .admit("c", 1, 0.25)
        .expect_err("budget now exactly full");
    assert!(matches!(err, QuotaError::BudgetExhausted { .. }));
}
