//! Molecular ground-state estimation: H2 with a UCCSD ansatz.
//!
//! The chemistry workload the paper ran through Qiskit Runtime on
//! `ibmq_montreal` (§VII-A). Demonstrates the full VAQEM comparison for one
//! benchmark: No-EM, MEM baseline, naive DD, and tuned GS+DD — plus the
//! soundness check of §V (no strategy beats the exact ground energy).
//!
//! ```sh
//! cargo run --release --example h2_molecule
//! ```

use vaqem_suite::mathkit::rng::SeedStream;
use vaqem_suite::optim::spsa::SpsaConfig;
use vaqem_suite::vaqem::benchmarks::BenchmarkId;
use vaqem_suite::vaqem::pipeline::{run_pipeline, PipelineConfig, Strategy};
use vaqem_suite::vaqem::soundness::measured_energy_is_sound;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let id = BenchmarkId::UccsdH2;
    let problem = id.problem()?;
    println!("benchmark: {}", problem.label());
    println!(
        "hamiltonian: {} terms, {} measurement bases",
        problem.hamiltonian().len(),
        problem.groups().len()
    );
    println!(
        "exact ground energy: {:.5} Ha (electronic)",
        problem.exact_ground_energy()
    );

    let config = PipelineConfig {
        spsa: SpsaConfig::paper_default().with_iterations(120),
        shots: 512,
        sweep_resolution: 4,
        max_repetitions: 10,
        seeds: SeedStream::new(112),
        eval_repeats: 2,
    };
    let strategies = [
        Strategy::NoEm,
        Strategy::MemBaseline,
        Strategy::DdXy,
        Strategy::VaqemGsXy,
    ];
    let run = run_pipeline(&problem, &id.circuit_noise(), &config, &strategies)?;

    println!(
        "\nideal energy at tuned angles: {:.5} Ha",
        run.ideal_tuned_energy
    );
    println!(
        "\n{:<16} {:>12} {:>14} {:>14}",
        "strategy", "energy", "% of optimal", "vs baseline"
    );
    for r in &run.results {
        println!(
            "{:<16} {:>12.5} {:>13.1}% {:>13.2}x",
            r.strategy.label(),
            r.energy,
            100.0 * r.fraction_of_optimal,
            r.rel_baseline
        );
        // Paper §V: no mitigation strategy can beat the true optimum.
        assert!(
            measured_energy_is_sound(r.energy, run.exact_ground, 0.2),
            "soundness violated by {}",
            r.strategy.label()
        );
    }
    println!("\nsoundness check passed: no strategy beat the exact ground energy");
    Ok(())
}
