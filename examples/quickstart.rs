//! Quickstart: tune a VQE's error mitigation with VAQEM, end to end.
//!
//! Runs the feasible flow of the paper's Fig. 11 on a small TFIM instance:
//! angle tuning on the ideal simulator, MEM calibration, per-window DD
//! tuning on the noisy machine, and a before/after comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vaqem_suite::ansatz::su2::{EfficientSu2, Entanglement};
use vaqem_suite::device::backend::DeviceModel;
use vaqem_suite::mathkit::rng::SeedStream;
use vaqem_suite::mitigation::combined::MitigationConfig;
use vaqem_suite::mitigation::dd::DdSequence;
use vaqem_suite::optim::spsa::SpsaConfig;
use vaqem_suite::pauli::models::tfim_paper;
use vaqem_suite::vaqem::backend::QuantumBackend;
use vaqem_suite::vaqem::pipeline::tune_angles;
use vaqem_suite::vaqem::vqe::VqeProblem;
use vaqem_suite::vaqem::window_tuner::{WindowTuner, WindowTunerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A VQE problem: 4-qubit transverse-field Ising model on a
    //    hardware-efficient SU2 ansatz (the paper's Fig. 2 Hamiltonian).
    let hamiltonian = tfim_paper(4);
    let ansatz = EfficientSu2::new(4, 2, Entanglement::Circular).circuit()?;
    let problem = VqeProblem::new("quickstart_tfim_4q", hamiltonian, ansatz)?;
    println!(
        "problem: {} ({} parameters)",
        problem.label(),
        problem.num_params()
    );
    println!("exact ground energy: {:.4}", problem.exact_ground_energy());

    // 2. Phase (a): tune the gate angles on the ideal simulator (SPSA).
    let seeds = SeedStream::new(7);
    let spsa = SpsaConfig::paper_default().with_iterations(120);
    let (params, trace) = tune_angles(&problem, &spsa, &seeds)?;
    println!(
        "angle tuning: {:.4} -> {:.4} over {} iterations",
        trace.first().copied().unwrap_or(f64::NAN),
        trace.last().copied().unwrap_or(f64::NAN),
        trace.len()
    );

    // 3. A noisy machine: the first four qubits of an IBM-like device,
    //    with measurement-error mitigation calibrated (the paper's baseline).
    let noise = DeviceModel::ibmq_casablanca().noise().subset(&[0, 1, 2, 3]);
    let mut backend = QuantumBackend::new(noise, seeds.substream("machine")).with_shots(1024);
    backend.calibrate_mem();

    // 4. Baseline measurement on the machine.
    let baseline = problem.machine_energy(&backend, &params, &MitigationConfig::baseline(), 0)?;
    println!("machine energy, MEM baseline: {baseline:.4}");

    // 5. Phase (b): VAQEM — tune DD repetitions per idle window against the
    //    VQE objective, on the machine.
    let tuner = WindowTuner::new(
        &problem,
        &backend,
        WindowTunerConfig {
            sweep_resolution: 4,
            dd_sequence: DdSequence::Xy4,
            max_repetitions: 10,
            ..WindowTunerConfig::default()
        },
    );
    let tuned = tuner.tune_dd(&params)?;
    println!(
        "VAQEM tuned {} windows with {} machine evaluations",
        tuned.config.dd_repetitions.len(),
        tuned.evaluations
    );

    // 6. Re-measure with the tuned mitigation.
    let mitigated = problem.machine_energy(&backend, &params, &tuned.config, 1)?;
    println!("machine energy, VAQEM (XY4):  {mitigated:.4}");
    println!(
        "improvement toward optimal: {:.1}% -> {:.1}%",
        100.0 * baseline / problem.exact_ground_energy(),
        100.0 * mitigated / problem.exact_ground_energy()
    );
    Ok(())
}
