//! Temporal-variability monitoring (the paper's Fig. 16 concern).
//!
//! Evaluates a fixed VQE configuration against a drifting device across a
//! day, flagging recalibration boundaries — the kind of monitoring a
//! long-running VQA job needs (§IX-D).
//!
//! ```sh
//! cargo run --release --example drift_monitor
//! ```

use vaqem_suite::ansatz::su2::{EfficientSu2, Entanglement};
use vaqem_suite::device::backend::DeviceModel;
use vaqem_suite::device::drift::DriftModel;
use vaqem_suite::mathkit::rng::SeedStream;
use vaqem_suite::mitigation::combined::MitigationConfig;
use vaqem_suite::pauli::models::tfim_paper;
use vaqem_suite::vaqem::backend::QuantumBackend;
use vaqem_suite::vaqem::vqe::VqeProblem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ansatz = EfficientSu2::new(4, 2, Entanglement::Circular).circuit()?;
    let problem = VqeProblem::new("drift_monitor", tfim_paper(4), ansatz)?;
    let params = vec![0.35; problem.num_params()];

    let device = DeviceModel::ibmq_casablanca();
    let seeds = SeedStream::new(24);
    let drift = DriftModel::new(seeds.substream("drift"));

    println!(
        "monitoring a fixed configuration across 24 h on {}",
        device.name()
    );
    println!(
        "{:>6} {:>10} {:>12} {:>8}",
        "hour", "T1(q0) us", "objective", "recal?"
    );
    let mut prev_hour = 0.0;
    for step in 0..9 {
        let hour = step as f64 * 3.0;
        let noise = drift.noise_at(&device, hour).subset(&[0, 1, 2, 3]);
        let t1_us = noise.qubit(0).t1_ns / 1000.0;
        let backend = QuantumBackend::new(noise, seeds.substream("machine")).with_shots(512);
        let e = problem.machine_energy(&backend, &params, &MitigationConfig::baseline(), step)?;
        let recal = step > 0 && drift.crosses_recalibration(prev_hour, hour);
        println!(
            "{hour:>6.1} {t1_us:>10.1} {e:>12.4} {:>8}",
            if recal { "yes" } else { "" }
        );
        prev_hour = hour;
    }
    println!("\nobjective wander at fixed parameters motivates re-tuning mitigation");
    println!("after recalibration (paper §IX-D)");
    Ok(())
}
