//! The Hahn-echo micro-benchmark of the paper's Fig. 6, as an API tour of
//! the circuit, scheduling, and simulation layers.
//!
//! Builds the H + idle-window + X + H circuit, sweeps the X position, and
//! shows why a calibration-style Markovian simulation cannot see the effect
//! (the paper's Fig. 9 argument) while the trajectory machine can.
//!
//! ```sh
//! cargo run --release --example echo_microbenchmark
//! ```

use vaqem_suite::ansatz::micro::hahn_echo_circuit;
use vaqem_suite::circuit::schedule::{schedule, DurationModel, ScheduleKind};
use vaqem_suite::device::backend::DeviceModel;
use vaqem_suite::mathkit::rng::SeedStream;
use vaqem_suite::sim::density::run_markovian;
use vaqem_suite::sim::machine::MachineExecutor;
use vaqem_suite::sim::statevector::StateVector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let window_slots = 500;
    let shots = 2048;
    let noise = DeviceModel::ibmq_casablanca().noise().subset(&[0]);
    let machine = MachineExecutor::new(noise.clone(), SeedStream::new(66)).with_shots(shots);
    let durations = DurationModel::ibm_default();

    println!("position   ideal-P(0)   machine-fidelity   markovian-sim-fidelity");
    for &pos in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let qc = hahn_echo_circuit(window_slots, pos)?;
        let scheduled = schedule(&qc, &durations, ScheduleKind::Alap)?;

        // Ideal outcome: deterministic |0>.
        let ideal_sv = StateVector::run(&qc)?;
        let ideal = ideal_sv.exact_counts(shots);

        // The "machine" (trajectory engine, correlated noise).
        let measured = machine.run_job(&scheduled, (pos * 100.0) as u64);
        let f_machine = measured.hellinger_fidelity(&ideal);

        // A calibration-style Markovian simulation: echo-blind.
        let markovian = noise.markovian_only();
        let dm = run_markovian(&scheduled, &markovian);
        let f_sim = dm
            .counts_with_readout(&markovian, shots)
            .hellinger_fidelity(&ideal);

        println!(
            "{pos:>8.2}   {:>10.4}   {f_machine:>16.4}   {f_sim:>22.4}",
            ideal_sv.probabilities()[0]
        );
    }
    println!("\nThe machine column peaks at the centred echo; the Markovian column is");
    println!("position-independent — mitigation must be tuned on the machine (Fig. 9).");
    Ok(())
}
