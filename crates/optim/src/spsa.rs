//! Simultaneous Perturbation Stochastic Approximation (SPSA).
//!
//! The only tuner Qiskit Runtime allowed when the paper was written
//! (§VI-A), and the one used for all its angle-tuning runs. SPSA estimates
//! the gradient from exactly two objective evaluations per iteration using
//! a random simultaneous perturbation, which makes it robust to the shot
//! noise of quantum objectives.

use rand::Rng;
use vaqem_mathkit::rng::SeedStream;

/// Gain-schedule configuration (Spall's standard form).
#[derive(Debug, Clone, PartialEq)]
pub struct SpsaConfig {
    /// Numerator of the step-size schedule `a_k = a / (A + k + 1)^alpha`.
    pub a: f64,
    /// Stability constant `A`.
    pub big_a: f64,
    /// Step-size decay exponent (0.602 per Spall).
    pub alpha: f64,
    /// Numerator of the perturbation schedule `c_k = c / (k + 1)^gamma`.
    pub c: f64,
    /// Perturbation decay exponent (0.101 per Spall).
    pub gamma: f64,
    /// Number of iterations.
    pub iterations: usize,
}

impl SpsaConfig {
    /// Paper-scale defaults: 400 iterations (Fig. 8), Spall exponents, and
    /// gains sized for radian-valued angle parameters.
    pub fn paper_default() -> Self {
        SpsaConfig {
            a: 0.3,
            big_a: 40.0,
            alpha: 0.602,
            c: 0.15,
            gamma: 0.101,
            iterations: 400,
        }
    }

    /// Overrides the iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }
}

impl Default for SpsaConfig {
    fn default() -> Self {
        SpsaConfig::paper_default()
    }
}

/// Result of an SPSA minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct SpsaResult {
    /// Best parameters found.
    pub best_params: Vec<f64>,
    /// Objective at `best_params` (as evaluated; includes noise).
    pub best_value: f64,
    /// Objective value at the *current iterate* after each iteration — the
    /// convergence trace plotted in the paper's Fig. 8.
    pub trace: Vec<f64>,
    /// The iterate after each iteration (parallel to `trace`); lets callers
    /// replay the tuning trajectory on a different objective, as the
    /// paper's Fig. 8 does with the real machine.
    pub param_trace: Vec<Vec<f64>>,
    /// Total objective evaluations spent.
    pub evaluations: usize,
}

/// Minimizes `objective` starting from `initial` with SPSA.
///
/// `objective` may be stochastic (shot noise); SPSA only needs it to be an
/// unbiased estimate. Deterministic given `seeds`.
pub fn minimize<F>(
    mut objective: F,
    initial: &[f64],
    config: &SpsaConfig,
    seeds: &SeedStream,
) -> SpsaResult
where
    F: FnMut(&[f64]) -> f64,
{
    let mut rng = seeds.rng("spsa");
    let dim = initial.len();
    let mut theta = initial.to_vec();
    let mut trace = Vec::with_capacity(config.iterations);
    let mut param_trace = Vec::with_capacity(config.iterations);
    let mut evaluations = 0usize;
    let mut best_params = theta.clone();
    let mut best_value = f64::INFINITY;

    for k in 0..config.iterations {
        let ak = config.a / (config.big_a + k as f64 + 1.0).powf(config.alpha);
        let ck = config.c / (k as f64 + 1.0).powf(config.gamma);
        // Rademacher perturbation.
        let delta: Vec<f64> = (0..dim)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let plus: Vec<f64> = theta.iter().zip(&delta).map(|(t, d)| t + ck * d).collect();
        let minus: Vec<f64> = theta.iter().zip(&delta).map(|(t, d)| t - ck * d).collect();
        let y_plus = objective(&plus);
        let y_minus = objective(&minus);
        evaluations += 2;
        let g_scale = (y_plus - y_minus) / (2.0 * ck);
        for (t, d) in theta.iter_mut().zip(&delta) {
            *t -= ak * g_scale / d;
        }
        // Track the iterate's objective (one extra evaluation, as the
        // paper's Runtime traces do).
        let y = objective(&theta);
        evaluations += 1;
        trace.push(y);
        param_trace.push(theta.clone());
        if y < best_value {
            best_value = y;
            best_params = theta.clone();
        }
    }

    SpsaResult {
        best_params,
        best_value,
        trace,
        param_trace,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(x: &[f64]) -> f64 {
        x.iter()
            .enumerate()
            .map(|(i, v)| (i as f64 + 1.0) * v * v)
            .sum()
    }

    #[test]
    fn converges_on_smooth_quadratic() {
        let config = SpsaConfig::paper_default().with_iterations(300);
        let seeds = SeedStream::new(1);
        let r = minimize(quadratic, &[1.0, -1.5, 0.7], &config, &seeds);
        assert!(r.best_value < 0.05, "best {}", r.best_value);
        assert_eq!(r.trace.len(), 300);
        assert_eq!(r.param_trace.len(), 300);
        assert_eq!(r.evaluations, 900);
    }

    #[test]
    fn converges_under_observation_noise() {
        let seeds = SeedStream::new(2);
        let mut noise_rng = seeds.rng("objective-noise");
        let noisy = |x: &[f64]| quadratic(x) + 0.02 * (noise_rng.gen::<f64>() - 0.5);
        let config = SpsaConfig::paper_default().with_iterations(400);
        let r = minimize(noisy, &[2.0, -2.0], &config, &seeds);
        assert!(r.best_value < 0.1, "best {}", r.best_value);
    }

    #[test]
    fn trace_trends_downward() {
        let config = SpsaConfig::paper_default().with_iterations(200);
        let seeds = SeedStream::new(3);
        let r = minimize(quadratic, &[3.0, 3.0, 3.0, 3.0], &config, &seeds);
        let early: f64 = r.trace[..20].iter().sum::<f64>() / 20.0;
        let late: f64 = r.trace[r.trace.len() - 20..].iter().sum::<f64>() / 20.0;
        assert!(late < early / 4.0, "early {early} late {late}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let config = SpsaConfig::paper_default().with_iterations(50);
        let a = minimize(quadratic, &[1.0, 1.0], &config, &SeedStream::new(5));
        let b = minimize(quadratic, &[1.0, 1.0], &config, &SeedStream::new(5));
        assert_eq!(a.best_params, b.best_params);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn different_seeds_take_different_paths() {
        let config = SpsaConfig::paper_default().with_iterations(50);
        let a = minimize(quadratic, &[1.0, 1.0], &config, &SeedStream::new(5));
        let b = minimize(quadratic, &[1.0, 1.0], &config, &SeedStream::new(6));
        assert_ne!(a.trace, b.trace);
    }

    #[test]
    fn handles_single_parameter() {
        let config = SpsaConfig::paper_default().with_iterations(150);
        let r = minimize(
            |x| (x[0] - 2.0).powi(2),
            &[0.0],
            &config,
            &SeedStream::new(7),
        );
        assert!((r.best_params[0] - 2.0).abs() < 0.2, "{:?}", r.best_params);
    }
}
