//! One-dimensional sweep tuners — the paper's per-window EM search.
//!
//! Section VI-C: "The number of DD sequences inserted is swept from none to
//! maximum ... and the objective function is measured for the tuned ansatz.
//! The tuning with the lowest objective function value is selected." The
//! sweep resolution is a resource knob (§VI-C notes it is constrained by
//! the execution framework), exposed here for the resolution ablation.

/// Result of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult<T> {
    /// The winning candidate.
    pub best_candidate: T,
    /// Objective at the winner.
    pub best_value: f64,
    /// `(candidate, objective)` for every point evaluated, in sweep order.
    pub evaluations: Vec<(T, f64)>,
}

/// Evaluates every candidate and returns the minimizer.
///
/// Ties resolve to the earliest candidate, which makes the baseline win
/// ties against equally-scoring alternatives when listed first.
///
/// # Panics
///
/// Panics when `candidates` is empty.
pub fn sweep_minimize<T, F>(candidates: &[T], mut objective: F) -> SweepResult<T>
where
    T: Clone,
    F: FnMut(&T) -> f64,
{
    assert!(!candidates.is_empty(), "sweep needs at least one candidate");
    let mut evaluations = Vec::with_capacity(candidates.len());
    let mut best_idx = 0usize;
    let mut best_value = f64::INFINITY;
    for (i, c) in candidates.iter().enumerate() {
        let v = objective(c);
        if v < best_value {
            best_value = v;
            best_idx = i;
        }
        evaluations.push((c.clone(), v));
    }
    SweepResult {
        best_candidate: candidates[best_idx].clone(),
        best_value,
        evaluations,
    }
}

/// Integer candidates `0..=max` subsampled to at most `resolution + 1`
/// points — the DD repetition sweep. Always keeps `0` (the baseline), `1`
/// (the naive single-round DD the paper compares against), and `max`, so
/// the variational search space contains every static policy.
pub fn integer_candidates(max: usize, resolution: usize) -> Vec<usize> {
    assert!(resolution >= 2, "resolution must be at least 2");
    if max < resolution {
        return (0..=max).collect();
    }
    let mut out: Vec<usize> = (0..resolution)
        .map(|i| (i as f64 * max as f64 / (resolution - 1) as f64).round() as usize)
        .collect();
    if max >= 1 && !out.contains(&1) {
        out.insert(1, 1);
    }
    out.dedup();
    out
}

/// Fractional candidates in `[0, 1]` with `resolution` points — the gate
/// position sweep (1.0 = ALAP baseline listed last so the baseline only
/// wins outright ties at the front).
pub fn position_candidates(resolution: usize) -> Vec<f64> {
    assert!(resolution >= 2, "resolution must be at least 2");
    (0..resolution)
        .map(|i| i as f64 / (resolution - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_minimum_of_discrete_objective() {
        let r = sweep_minimize(&[0usize, 1, 2, 3, 4], |&k| (k as f64 - 2.6).powi(2));
        assert_eq!(r.best_candidate, 3);
        assert_eq!(r.evaluations.len(), 5);
    }

    #[test]
    fn ties_resolve_to_first() {
        let r = sweep_minimize(&[0, 1, 2], |&k| if k == 0 || k == 2 { 1.0 } else { 5.0 });
        assert_eq!(r.best_candidate, 0);
    }

    #[test]
    fn integer_candidates_cover_range() {
        assert_eq!(integer_candidates(3, 8), vec![0, 1, 2, 3]);
        let c = integer_candidates(100, 5);
        assert_eq!(c.first(), Some(&0));
        assert_eq!(c.last(), Some(&100));
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn integer_candidates_always_include_naive_dd_point() {
        for max in [2usize, 5, 10, 50, 200] {
            for res in [2usize, 3, 5, 8] {
                let c = integer_candidates(max, res);
                assert!(c.contains(&0), "max {max} res {res}: {c:?}");
                assert!(c.contains(&1), "max {max} res {res}: {c:?}");
                assert!(c.contains(&max), "max {max} res {res}: {c:?}");
            }
        }
    }

    #[test]
    fn position_candidates_include_alap() {
        let c = position_candidates(5);
        assert_eq!(c, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn sweep_tracks_all_evaluations() {
        let r = sweep_minimize(&position_candidates(11), |&x| (x - 0.5).abs());
        assert!((r.best_candidate - 0.5).abs() < 1e-12);
        assert_eq!(r.evaluations.len(), 11);
        // The trace must be usable for Fig. 6-style plots.
        let xs: Vec<f64> = r.evaluations.iter().map(|(x, _)| *x).collect();
        assert!(xs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_sweep_panics() {
        let _: SweepResult<usize> = sweep_minimize(&[], |_| 0.0);
    }
}
