//! # vaqem-optim
//!
//! Classical optimizers for the VAQEM (HPCA 2022) reproduction:
//!
//! * [`spsa`] — Simultaneous Perturbation Stochastic Approximation, the
//!   paper's (and Qiskit Runtime's) angle tuner;
//! * [`nelder_mead`] — a derivative-free simplex tuner for the "ideal flow"
//!   comparison;
//! * [`sweep`] — the per-window 1-D exhaustive sweep used by the paper's
//!   independent-window error-mitigation tuner (§VI-C).

pub mod nelder_mead;
pub mod spsa;
pub mod sweep;

pub use spsa::{SpsaConfig, SpsaResult};
pub use sweep::{sweep_minimize, SweepResult};
