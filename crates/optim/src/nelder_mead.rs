//! Nelder-Mead simplex minimization.
//!
//! The paper notes Qiskit Runtime only allowed SPSA (§VI-A) and lists
//! richer classical tuners as an advantage of the "ideal flow" (Fig. 11).
//! This implementation provides that comparison point for the ablation
//! benches: a deterministic derivative-free simplex method.

/// Configuration for Nelder-Mead.
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMeadConfig {
    /// Maximum objective evaluations.
    pub max_evaluations: usize,
    /// Absolute simplex-size convergence threshold.
    pub tolerance: f64,
    /// Initial simplex step per coordinate.
    pub initial_step: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        NelderMeadConfig {
            max_evaluations: 2000,
            tolerance: 1e-8,
            initial_step: 0.5,
        }
    }
}

/// Result of a Nelder-Mead minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMeadResult {
    /// Best parameters found.
    pub best_params: Vec<f64>,
    /// Objective at the best vertex.
    pub best_value: f64,
    /// Objective evaluations spent.
    pub evaluations: usize,
    /// Best-so-far value after each accepted step.
    pub trace: Vec<f64>,
}

/// Minimizes `objective` from `initial` using the Nelder-Mead simplex.
pub fn minimize<F>(mut objective: F, initial: &[f64], config: &NelderMeadConfig) -> NelderMeadResult
where
    F: FnMut(&[f64]) -> f64,
{
    let n = initial.len();
    assert!(n >= 1, "at least one parameter required");
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);

    let mut evaluations = 0usize;
    let mut eval = |x: &[f64], evaluations: &mut usize| {
        *evaluations += 1;
        objective(x)
    };

    // Initial simplex: initial point plus one step along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let f0 = eval(initial, &mut evaluations);
    simplex.push((initial.to_vec(), f0));
    for i in 0..n {
        let mut v = initial.to_vec();
        v[i] += config.initial_step;
        let f = eval(&v, &mut evaluations);
        simplex.push((v, f));
    }

    let mut trace = Vec::new();
    while evaluations < config.max_evaluations {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite objective"));
        trace.push(simplex[0].1);

        // Convergence: simplex collapsed in objective spread.
        let spread = simplex[n].1 - simplex[0].1;
        if spread.abs() < config.tolerance {
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (v, _) in simplex.iter().take(n) {
            for (c, x) in centroid.iter_mut().zip(v.iter()) {
                *c += x / n as f64;
            }
        }
        let worst = simplex[n].clone();
        let reflected: Vec<f64> = centroid
            .iter()
            .zip(worst.0.iter())
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        let fr = eval(&reflected, &mut evaluations);

        if fr < simplex[0].1 {
            // Try expansion.
            let expanded: Vec<f64> = centroid
                .iter()
                .zip(reflected.iter())
                .map(|(c, r)| c + gamma * (r - c))
                .collect();
            let fe = eval(&expanded, &mut evaluations);
            simplex[n] = if fe < fr {
                (expanded, fe)
            } else {
                (reflected, fr)
            };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflected, fr);
        } else {
            // Contraction.
            let contracted: Vec<f64> = centroid
                .iter()
                .zip(worst.0.iter())
                .map(|(c, w)| c + rho * (w - c))
                .collect();
            let fc = eval(&contracted, &mut evaluations);
            if fc < worst.1 {
                simplex[n] = (contracted, fc);
            } else {
                // Shrink toward the best vertex.
                let best = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let v: Vec<f64> = best
                        .iter()
                        .zip(entry.0.iter())
                        .map(|(b, x)| b + sigma * (x - b))
                        .collect();
                    let f = eval(&v, &mut evaluations);
                    *entry = (v, f);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite objective"));
    NelderMeadResult {
        best_params: simplex[0].0.clone(),
        best_value: simplex[0].1,
        evaluations,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_exactly() {
        let r = minimize(
            |x| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2),
            &[0.0, 0.0],
            &NelderMeadConfig::default(),
        );
        assert!((r.best_params[0] - 1.0).abs() < 1e-3, "{:?}", r.best_params);
        assert!((r.best_params[1] + 2.0).abs() < 1e-3, "{:?}", r.best_params);
        assert!(r.best_value < 1e-6);
    }

    #[test]
    fn minimizes_rosenbrock() {
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let cfg = NelderMeadConfig {
            max_evaluations: 5000,
            ..Default::default()
        };
        let r = minimize(rosen, &[-1.2, 1.0], &cfg);
        assert!(r.best_value < 1e-4, "best {}", r.best_value);
    }

    #[test]
    fn respects_evaluation_budget() {
        let cfg = NelderMeadConfig {
            max_evaluations: 57,
            tolerance: 0.0,
            ..Default::default()
        };
        let r = minimize(|x| x[0] * x[0], &[5.0], &cfg);
        // Budget may be exceeded only by the ops in flight during the last
        // iteration (at most n + 2 extra evals).
        assert!(r.evaluations <= 57 + 3, "{}", r.evaluations);
    }

    #[test]
    fn trace_is_monotone_nonincreasing() {
        let r = minimize(
            |x| x.iter().map(|v| v * v).sum(),
            &[2.0, -3.0, 1.0],
            &NelderMeadConfig::default(),
        );
        for w in r.trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn single_dimension() {
        let r = minimize(
            |x| (x[0] - 4.0).powi(2),
            &[0.0],
            &NelderMeadConfig::default(),
        );
        assert!((r.best_params[0] - 4.0).abs() < 1e-4);
    }
}
