//! Error types for circuit construction and scheduling.

use std::error::Error;
use std::fmt;

/// Errors raised while building, binding, or scheduling circuits.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate referenced a qubit index outside the circuit.
    QubitOutOfRange {
        /// Offending qubit index.
        qubit: usize,
        /// Number of qubits in the circuit.
        num_qubits: usize,
    },
    /// A multi-qubit gate was applied to duplicate qubit indices.
    DuplicateQubits {
        /// The duplicated index.
        qubit: usize,
    },
    /// A gate was applied with the wrong number of qubit operands.
    ArityMismatch {
        /// Gate name.
        gate: &'static str,
        /// Expected operand count.
        expected: usize,
        /// Provided operand count.
        actual: usize,
    },
    /// An operation requires concrete angles but the circuit still contains
    /// symbolic parameters.
    UnboundParameter {
        /// Index of the first unbound parameter encountered.
        param: usize,
    },
    /// `bind` was called with the wrong number of parameter values.
    ParameterCountMismatch {
        /// Parameters declared by the circuit.
        expected: usize,
        /// Values supplied.
        actual: usize,
    },
    /// Two scheduled operations overlap on the same qubit.
    OverlappingOps {
        /// Qubit where the overlap occurs.
        qubit: usize,
        /// Start time (ns) of the second op.
        at_ns: f64,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {num_qubits}-qubit circuit"
                )
            }
            CircuitError::DuplicateQubits { qubit } => {
                write!(f, "duplicate qubit operand {qubit}")
            }
            CircuitError::ArityMismatch {
                gate,
                expected,
                actual,
            } => {
                write!(f, "gate {gate} expects {expected} qubits, got {actual}")
            }
            CircuitError::UnboundParameter { param } => {
                write!(f, "circuit contains unbound parameter {param}")
            }
            CircuitError::ParameterCountMismatch { expected, actual } => {
                write!(f, "expected {expected} parameter values, got {actual}")
            }
            CircuitError::OverlappingOps { qubit, at_ns } => {
                write!(
                    f,
                    "scheduled operations overlap on qubit {qubit} at {at_ns} ns"
                )
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CircuitError::QubitOutOfRange {
            qubit: 9,
            num_qubits: 4,
        };
        assert_eq!(e.to_string(), "qubit 9 out of range for 4-qubit circuit");
        let e = CircuitError::ParameterCountMismatch {
            expected: 3,
            actual: 1,
        };
        assert!(e.to_string().contains("expected 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
