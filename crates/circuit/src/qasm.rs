//! OpenQASM 2-style text emission.
//!
//! A lightweight serializer so circuits can be inspected, diffed, and
//! embedded in experiment logs. Only emission is provided; this workspace
//! never needs to parse QASM.

use crate::circuit::QuantumCircuit;
use crate::gate::{Angle, Gate};
use std::fmt::Write as _;

/// Renders a circuit as OpenQASM 2 text.
///
/// Symbolic parameters are rendered as `theta_k` identifiers, which makes
/// the output human-readable but not executable until bound.
pub fn to_qasm(circuit: &QuantumCircuit) -> String {
    let mut s = String::new();
    s.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let n = circuit.num_qubits();
    let _ = writeln!(s, "qreg q[{n}];");
    let _ = writeln!(s, "creg c[{n}];");
    for inst in circuit.instructions() {
        match inst.gate {
            Gate::Barrier => {
                let args: Vec<String> = inst.qubits.iter().map(|q| format!("q[{q}]")).collect();
                let _ = writeln!(s, "barrier {};", args.join(","));
            }
            Gate::Measure => {
                let q = inst.qubits[0];
                let _ = writeln!(s, "measure q[{q}] -> c[{q}];");
            }
            Gate::Delay { duration_ns } => {
                let _ = writeln!(s, "delay({duration_ns}ns) q[{}];", inst.qubits[0]);
            }
            ref g => {
                let name = g.name();
                let angle = match g {
                    Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) | Gate::P(a) => Some(*a),
                    _ => None,
                };
                let args: Vec<String> = inst.qubits.iter().map(|q| format!("q[{q}]")).collect();
                match angle {
                    Some(Angle::Fixed(t)) => {
                        let _ = writeln!(s, "{name}({t}) {};", args.join(","));
                    }
                    Some(Angle::Param(k)) => {
                        let _ = writeln!(s, "{name}(theta_{k}) {};", args.join(","));
                    }
                    None => {
                        let _ = writeln!(s, "{name} {};", args.join(","));
                    }
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_header_and_registers() {
        let qc = QuantumCircuit::new(3);
        let s = to_qasm(&qc);
        assert!(s.starts_with("OPENQASM 2.0;"));
        assert!(s.contains("qreg q[3];"));
        assert!(s.contains("creg c[3];"));
    }

    #[test]
    fn emits_gates_and_measures() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        qc.rx(0.5, 1).unwrap();
        qc.measure_all();
        let s = to_qasm(&qc);
        assert!(s.contains("h q[0];"));
        assert!(s.contains("cx q[0],q[1];"));
        assert!(s.contains("rx(0.5) q[1];"));
        assert!(s.contains("measure q[0] -> c[0];"));
        assert!(s.contains("barrier q[0],q[1];"));
    }

    #[test]
    fn emits_symbolic_params() {
        let mut qc = QuantumCircuit::new(1);
        qc.ry_param(2, 0).unwrap();
        let s = to_qasm(&qc);
        assert!(s.contains("ry(theta_2) q[0];"));
    }

    #[test]
    fn emits_delay() {
        let mut qc = QuantumCircuit::new(1);
        qc.delay(128.0, 0).unwrap();
        let s = to_qasm(&qc);
        assert!(s.contains("delay(128ns) q[0];"));
    }
}
