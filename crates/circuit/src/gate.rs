//! Gate set and gate unitaries.
//!
//! The gate vocabulary mirrors what the paper's experiments need: the IBM
//! basis (`sx`, `x`, `rz`, `cx`, `id`), the textbook gates used in ansatz
//! construction (`h`, `ry`, ...), DD pulse gates (`x`, `y`), `delay`,
//! `barrier`, and `measure`. Rotation gates carry an [`Angle`] which is
//! either a concrete value or a symbolic parameter index bound later — the
//! mechanism the variational tuning loop relies on.

use crate::error::CircuitError;
use std::fmt;
use vaqem_mathkit::complex::{c64, Complex64};
use vaqem_mathkit::matrix::{gates2x2, CMatrix};

/// A rotation angle: concrete or a reference to circuit parameter `k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Angle {
    /// A fixed angle in radians.
    Fixed(f64),
    /// The `k`-th variational parameter of the circuit.
    Param(usize),
}

impl Angle {
    /// Resolves the angle against bound parameter values.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnboundParameter`] when `self` is symbolic and
    /// `params` is `None`, or [`CircuitError::ParameterCountMismatch`]-style
    /// out-of-range lookups as `UnboundParameter`.
    pub fn resolve(self, params: Option<&[f64]>) -> Result<f64, CircuitError> {
        match self {
            Angle::Fixed(v) => Ok(v),
            Angle::Param(k) => params
                .and_then(|p| p.get(k).copied())
                .ok_or(CircuitError::UnboundParameter { param: k }),
        }
    }

    /// Returns `true` if the angle is symbolic.
    pub fn is_param(self) -> bool {
        matches!(self, Angle::Param(_))
    }
}

impl From<f64> for Angle {
    fn from(v: f64) -> Self {
        Angle::Fixed(v)
    }
}

/// A quantum operation.
///
/// `Delay` represents explicit idle time (used by the Fig. 6 micro-benchmark
/// which builds a window out of identity slots); `Barrier` constrains the
/// scheduler; `Measure` terminates a qubit's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Gate {
    /// Identity (explicit `id` instruction, one timing slot long).
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// S-dagger.
    Sdg,
    /// T = diag(1, e^{i pi/4}).
    T,
    /// T-dagger.
    Tdg,
    /// Square-root of X (IBM basis gate).
    Sx,
    /// Inverse square-root of X.
    Sxdg,
    /// Rotation about X.
    Rx(Angle),
    /// Rotation about Y.
    Ry(Angle),
    /// Rotation about Z (virtual on IBM hardware: zero duration).
    Rz(Angle),
    /// Phase rotation diag(1, e^{i theta}).
    P(Angle),
    /// Controlled-X (control is the first operand).
    Cx,
    /// Controlled-Z.
    Cz,
    /// SWAP.
    Swap,
    /// Explicit idle period of the given duration in nanoseconds.
    Delay {
        /// Idle duration in nanoseconds.
        duration_ns: f64,
    },
    /// Scheduling barrier across its operand qubits (zero duration).
    Barrier,
    /// Computational-basis measurement.
    Measure,
}

impl Gate {
    /// Number of qubit operands the gate expects. `Barrier` is variadic and
    /// returns 0 here; callers treat 0 as "any arity".
    pub fn arity(&self) -> usize {
        match self {
            Gate::Cx | Gate::Cz | Gate::Swap => 2,
            Gate::Barrier => 0,
            _ => 1,
        }
    }

    /// Lowercase mnemonic, matching OpenQASM where a counterpart exists.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Sxdg => "sxdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::P(_) => "p",
            Gate::Cx => "cx",
            Gate::Cz => "cz",
            Gate::Swap => "swap",
            Gate::Delay { .. } => "delay",
            Gate::Barrier => "barrier",
            Gate::Measure => "measure",
        }
    }

    /// Returns `true` for gates that contribute unitary evolution (excludes
    /// delay, barrier, and measurement).
    pub fn is_unitary_gate(&self) -> bool {
        !matches!(self, Gate::Delay { .. } | Gate::Barrier | Gate::Measure)
    }

    /// Returns `true` if the gate still references a symbolic parameter.
    pub fn is_parameterized(&self) -> bool {
        matches!(
            self,
            Gate::Rx(Angle::Param(_))
                | Gate::Ry(Angle::Param(_))
                | Gate::Rz(Angle::Param(_))
                | Gate::P(Angle::Param(_))
        )
    }

    /// Highest parameter index referenced, if any.
    pub fn param_index(&self) -> Option<usize> {
        match self {
            Gate::Rx(Angle::Param(k))
            | Gate::Ry(Angle::Param(k))
            | Gate::Rz(Angle::Param(k))
            | Gate::P(Angle::Param(k)) => Some(*k),
            _ => None,
        }
    }

    /// The inverse gate (for reversibility-based tests and tuning circuits
    /// in the style of the gate-scheduling prior work \[42\]).
    ///
    /// # Panics
    ///
    /// Panics for `Measure`, which has no inverse.
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Sx => Gate::Sxdg,
            Gate::Sxdg => Gate::Sx,
            Gate::Rx(Angle::Fixed(t)) => Gate::Rx(Angle::Fixed(-t)),
            Gate::Ry(Angle::Fixed(t)) => Gate::Ry(Angle::Fixed(-t)),
            Gate::Rz(Angle::Fixed(t)) => Gate::Rz(Angle::Fixed(-t)),
            Gate::P(Angle::Fixed(t)) => Gate::P(Angle::Fixed(-t)),
            Gate::Rx(Angle::Param(_))
            | Gate::Ry(Angle::Param(_))
            | Gate::Rz(Angle::Param(_))
            | Gate::P(Angle::Param(_)) => {
                panic!("cannot invert a gate with unbound parameters")
            }
            Gate::Measure => panic!("measurement has no inverse"),
            g => g, // self-inverse: I, X, Y, Z, H, CX, CZ, SWAP, Delay, Barrier
        }
    }

    /// Rebinds symbolic angles using `params`, producing a concrete gate.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnboundParameter`] if a referenced parameter
    /// is missing from `params`.
    pub fn bind(&self, params: &[f64]) -> Result<Gate, CircuitError> {
        Ok(match *self {
            Gate::Rx(a) => Gate::Rx(Angle::Fixed(a.resolve(Some(params))?)),
            Gate::Ry(a) => Gate::Ry(Angle::Fixed(a.resolve(Some(params))?)),
            Gate::Rz(a) => Gate::Rz(Angle::Fixed(a.resolve(Some(params))?)),
            Gate::P(a) => Gate::P(Angle::Fixed(a.resolve(Some(params))?)),
            g => g,
        })
    }

    /// Dense unitary matrix of the gate (2x2 or 4x4).
    ///
    /// For two-qubit gates the first operand is the more significant bit,
    /// matching [`CMatrix::kron`] conventions.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnboundParameter`] for symbolic gates.
    ///
    /// # Panics
    ///
    /// Panics for non-unitary operations (`Delay`, `Barrier`, `Measure`).
    pub fn unitary(&self) -> Result<CMatrix, CircuitError> {
        let one = Complex64::ONE;
        let zero = Complex64::ZERO;
        Ok(match *self {
            Gate::I => CMatrix::identity(2),
            Gate::X => gates2x2::pauli_x(),
            Gate::Y => gates2x2::pauli_y(),
            Gate::Z => gates2x2::pauli_z(),
            Gate::H => gates2x2::hadamard(),
            Gate::S => CMatrix::from_diagonal(&[one, Complex64::I]),
            Gate::Sdg => CMatrix::from_diagonal(&[one, -Complex64::I]),
            Gate::T => CMatrix::from_diagonal(&[one, Complex64::cis(std::f64::consts::FRAC_PI_4)]),
            Gate::Tdg => {
                CMatrix::from_diagonal(&[one, Complex64::cis(-std::f64::consts::FRAC_PI_4)])
            }
            Gate::Sx => gates2x2::sx(),
            Gate::Sxdg => gates2x2::sx().adjoint(),
            Gate::Rx(a) => gates2x2::rx(a.resolve(None).map_err(|_| unbound(a))?),
            Gate::Ry(a) => gates2x2::ry(a.resolve(None).map_err(|_| unbound(a))?),
            Gate::Rz(a) => gates2x2::rz(a.resolve(None).map_err(|_| unbound(a))?),
            Gate::P(a) => {
                let t = a.resolve(None).map_err(|_| unbound(a))?;
                CMatrix::from_diagonal(&[one, Complex64::cis(t)])
            }
            Gate::Cx => CMatrix::from_rows(&[
                &[one, zero, zero, zero],
                &[zero, one, zero, zero],
                &[zero, zero, zero, one],
                &[zero, zero, one, zero],
            ]),
            Gate::Cz => CMatrix::from_diagonal(&[one, one, one, c64(-1.0, 0.0)]),
            Gate::Swap => CMatrix::from_rows(&[
                &[one, zero, zero, zero],
                &[zero, zero, one, zero],
                &[zero, one, zero, zero],
                &[zero, zero, zero, one],
            ]),
            Gate::Delay { .. } | Gate::Barrier | Gate::Measure => {
                panic!("{} has no unitary representation", self.name())
            }
        })
    }
}

fn unbound(a: Angle) -> CircuitError {
    match a {
        Angle::Param(k) => CircuitError::UnboundParameter { param: k },
        Angle::Fixed(_) => unreachable!("fixed angles always resolve"),
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Rx(Angle::Fixed(t)) => write!(f, "rx({t:.6})"),
            Gate::Ry(Angle::Fixed(t)) => write!(f, "ry({t:.6})"),
            Gate::Rz(Angle::Fixed(t)) => write!(f, "rz({t:.6})"),
            Gate::P(Angle::Fixed(t)) => write!(f, "p({t:.6})"),
            Gate::Rx(Angle::Param(k)) => write!(f, "rx(θ[{k}])"),
            Gate::Ry(Angle::Param(k)) => write!(f, "ry(θ[{k}])"),
            Gate::Rz(Angle::Param(k)) => write!(f, "rz(θ[{k}])"),
            Gate::P(Angle::Param(k)) => write!(f, "p(θ[{k}])"),
            Gate::Delay { duration_ns } => write!(f, "delay({duration_ns}ns)"),
            g => write!(f, "{}", g.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn all_unitary_gates_are_unitary() {
        let gates = [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Sxdg,
            Gate::Rx(Angle::Fixed(0.3)),
            Gate::Ry(Angle::Fixed(1.1)),
            Gate::Rz(Angle::Fixed(-0.7)),
            Gate::P(Angle::Fixed(2.0)),
            Gate::Cx,
            Gate::Cz,
            Gate::Swap,
        ];
        for g in gates {
            let u = g.unitary().expect("bound gate");
            assert!(u.is_unitary(1e-12), "{g} is not unitary");
        }
    }

    #[test]
    fn inverse_composes_to_identity() {
        let gates = [
            Gate::X,
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Rx(Angle::Fixed(0.9)),
            Gate::Ry(Angle::Fixed(-2.2)),
            Gate::Rz(Angle::Fixed(0.4)),
            Gate::Cx,
            Gate::Swap,
        ];
        for g in gates {
            let u = g.unitary().unwrap();
            let v = g.inverse().unitary().unwrap();
            assert!((&u * &v).is_identity(1e-12), "{g} inverse failed");
        }
    }

    #[test]
    fn s_squared_is_z() {
        let s = Gate::S.unitary().unwrap();
        assert!((&s * &s).max_abs_diff(&Gate::Z.unitary().unwrap()) < 1e-12);
    }

    #[test]
    fn t_squared_is_s() {
        let t = Gate::T.unitary().unwrap();
        assert!((&t * &t).max_abs_diff(&Gate::S.unitary().unwrap()) < 1e-12);
    }

    #[test]
    fn rx_pi_equals_x_up_to_global_phase() {
        let rx = Gate::Rx(Angle::Fixed(PI)).unitary().unwrap();
        let x = Gate::X.unitary().unwrap().scale(c64(0.0, -1.0));
        assert!(rx.max_abs_diff(&x) < 1e-12);
    }

    #[test]
    fn cx_maps_basis_states_correctly() {
        let cx = Gate::Cx.unitary().unwrap();
        // |10> (control=1, target=0) -> |11>
        let v = vec![
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ONE,
            Complex64::ZERO,
        ];
        let w = cx.mul_vec(&v);
        assert!(w[3].approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn param_binding() {
        let g = Gate::Ry(Angle::Param(2));
        assert!(g.is_parameterized());
        assert_eq!(g.param_index(), Some(2));
        let bound = g.bind(&[0.0, 0.0, 1.5]).unwrap();
        assert_eq!(bound, Gate::Ry(Angle::Fixed(1.5)));
        assert!(!bound.is_parameterized());
    }

    #[test]
    fn binding_missing_param_errors() {
        let g = Gate::Rz(Angle::Param(5));
        let err = g.bind(&[0.0]).unwrap_err();
        assert_eq!(err, CircuitError::UnboundParameter { param: 5 });
    }

    #[test]
    fn unitary_of_unbound_param_errors() {
        let g = Gate::Rx(Angle::Param(0));
        assert!(g.unitary().is_err());
    }

    #[test]
    #[should_panic(expected = "no unitary")]
    fn measure_has_no_unitary() {
        let _ = Gate::Measure.unitary();
    }

    #[test]
    fn arity_and_names() {
        assert_eq!(Gate::Cx.arity(), 2);
        assert_eq!(Gate::H.arity(), 1);
        assert_eq!(Gate::Cx.name(), "cx");
        assert_eq!(Gate::Delay { duration_ns: 10.0 }.name(), "delay");
        assert!(!Gate::Measure.is_unitary_gate());
        assert!(Gate::X.is_unitary_gate());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Gate::Rx(Angle::Fixed(0.5)).to_string(), "rx(0.500000)");
        assert_eq!(Gate::Ry(Angle::Param(3)).to_string(), "ry(θ[3])");
        assert_eq!(Gate::Cx.to_string(), "cx");
    }
}
