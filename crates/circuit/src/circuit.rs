//! The [`QuantumCircuit`] intermediate representation.
//!
//! A circuit is an ordered list of [`Instruction`]s over `n` qubits, with an
//! optional pool of symbolic parameters referenced by rotation gates. The
//! representation intentionally mirrors the shape of a transpiled Qiskit
//! circuit right before scheduling: flat, basis-level, and measured at the
//! end.
//!
//! # Examples
//!
//! ```
//! use vaqem_circuit::circuit::QuantumCircuit;
//!
//! let mut qc = QuantumCircuit::new(2);
//! qc.h(0).unwrap();
//! qc.cx(0, 1).unwrap();
//! qc.measure_all();
//! assert_eq!(qc.num_qubits(), 2);
//! assert_eq!(qc.depth(), 3);
//! ```

use crate::error::CircuitError;
use crate::gate::{Angle, Gate};
use std::fmt;

/// One gate application: a [`Gate`] plus its qubit operands.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The operation.
    pub gate: Gate,
    /// Operand qubits; for `Cx` the first entry is the control.
    pub qubits: Vec<usize>,
}

impl Instruction {
    /// Creates an instruction, validating arity and operand uniqueness.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ArityMismatch`] or
    /// [`CircuitError::DuplicateQubits`] on malformed operands.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Result<Self, CircuitError> {
        let arity = gate.arity();
        if arity != 0 && qubits.len() != arity {
            return Err(CircuitError::ArityMismatch {
                gate: gate.name(),
                expected: arity,
                actual: qubits.len(),
            });
        }
        for (i, q) in qubits.iter().enumerate() {
            if qubits[..i].contains(q) {
                return Err(CircuitError::DuplicateQubits { qubit: *q });
            }
        }
        Ok(Instruction { gate, qubits })
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ", self.gate)?;
        for (i, q) in self.qubits.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "q{q}")?;
        }
        Ok(())
    }
}

/// A flat quantum circuit over `num_qubits` qubits.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuantumCircuit {
    num_qubits: usize,
    instructions: Vec<Instruction>,
    num_params: usize,
}

impl QuantumCircuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        QuantumCircuit {
            num_qubits,
            instructions: Vec::new(),
            num_params: 0,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of symbolic parameters declared (`max index + 1`).
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Instruction list in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` when the circuit contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends a validated instruction.
    ///
    /// # Errors
    ///
    /// Propagates operand validation errors and returns
    /// [`CircuitError::QubitOutOfRange`] for bad indices.
    pub fn push(&mut self, gate: Gate, qubits: &[usize]) -> Result<&mut Self, CircuitError> {
        for &q in qubits {
            if q >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        if let Some(k) = gate.param_index() {
            self.num_params = self.num_params.max(k + 1);
        }
        self.instructions
            .push(Instruction::new(gate, qubits.to_vec())?);
        Ok(self)
    }

    // --- Convenience builders (one per basis/ansatz gate) -----------------

    /// Appends an identity gate.
    pub fn id(&mut self, q: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::I, &[q])
    }

    /// Appends a Pauli X.
    pub fn x(&mut self, q: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::X, &[q])
    }

    /// Appends a Pauli Y.
    pub fn y(&mut self, q: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Y, &[q])
    }

    /// Appends a Pauli Z.
    pub fn z(&mut self, q: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Z, &[q])
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::H, &[q])
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::S, &[q])
    }

    /// Appends an S-dagger gate.
    pub fn sdg(&mut self, q: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Sdg, &[q])
    }

    /// Appends a square-root-of-X gate.
    pub fn sx(&mut self, q: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Sx, &[q])
    }

    /// Appends an inverse square-root-of-X gate.
    pub fn sxdg(&mut self, q: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Sxdg, &[q])
    }

    /// Appends a fixed-angle X rotation.
    pub fn rx(&mut self, theta: f64, q: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Rx(Angle::Fixed(theta)), &[q])
    }

    /// Appends a fixed-angle Y rotation.
    pub fn ry(&mut self, theta: f64, q: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Ry(Angle::Fixed(theta)), &[q])
    }

    /// Appends a fixed-angle Z rotation.
    pub fn rz(&mut self, theta: f64, q: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Rz(Angle::Fixed(theta)), &[q])
    }

    /// Appends a symbolic X rotation referencing parameter `k`.
    pub fn rx_param(&mut self, k: usize, q: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Rx(Angle::Param(k)), &[q])
    }

    /// Appends a symbolic Y rotation referencing parameter `k`.
    pub fn ry_param(&mut self, k: usize, q: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Ry(Angle::Param(k)), &[q])
    }

    /// Appends a symbolic Z rotation referencing parameter `k`.
    pub fn rz_param(&mut self, k: usize, q: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Rz(Angle::Param(k)), &[q])
    }

    /// Appends a CX with `control` and `target`.
    pub fn cx(&mut self, control: usize, target: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Cx, &[control, target])
    }

    /// Appends a CZ.
    pub fn cz(&mut self, a: usize, b: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Cz, &[a, b])
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Swap, &[a, b])
    }

    /// Appends an explicit idle period on one qubit.
    pub fn delay(&mut self, duration_ns: f64, q: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Delay { duration_ns }, &[q])
    }

    /// Appends a barrier across all qubits.
    pub fn barrier_all(&mut self) -> &mut Self {
        let qubits: Vec<usize> = (0..self.num_qubits).collect();
        self.instructions.push(Instruction {
            gate: Gate::Barrier,
            qubits,
        });
        self
    }

    /// Appends a measurement on one qubit.
    pub fn measure(&mut self, q: usize) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Measure, &[q])
    }

    /// Measures every qubit (preceded by a barrier, Qiskit-style).
    pub fn measure_all(&mut self) -> &mut Self {
        self.barrier_all();
        for q in 0..self.num_qubits {
            self.instructions.push(Instruction {
                gate: Gate::Measure,
                qubits: vec![q],
            });
        }
        self
    }

    /// Appends all instructions of `other` (same width required).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if `other` is wider.
    pub fn compose(&mut self, other: &QuantumCircuit) -> Result<&mut Self, CircuitError> {
        if other.num_qubits > self.num_qubits {
            return Err(CircuitError::QubitOutOfRange {
                qubit: other.num_qubits - 1,
                num_qubits: self.num_qubits,
            });
        }
        for inst in &other.instructions {
            if let Some(k) = inst.gate.param_index() {
                self.num_params = self.num_params.max(k + 1);
            }
            self.instructions.push(inst.clone());
        }
        Ok(self)
    }

    /// Returns the inverse circuit (reversed order, inverted gates),
    /// excluding measurements and barriers.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains unbound parameters.
    pub fn inverse(&self) -> QuantumCircuit {
        let mut inv = QuantumCircuit::new(self.num_qubits);
        for inst in self.instructions.iter().rev() {
            match inst.gate {
                Gate::Measure | Gate::Barrier => continue,
                g => inv.instructions.push(Instruction {
                    gate: g.inverse(),
                    qubits: inst.qubits.clone(),
                }),
            }
        }
        inv
    }

    /// Binds parameter values, producing a fully concrete circuit.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ParameterCountMismatch`] when `values.len()`
    /// differs from [`Self::num_params`].
    pub fn bind(&self, values: &[f64]) -> Result<QuantumCircuit, CircuitError> {
        if values.len() != self.num_params {
            return Err(CircuitError::ParameterCountMismatch {
                expected: self.num_params,
                actual: values.len(),
            });
        }
        let mut out = QuantumCircuit::new(self.num_qubits);
        for inst in &self.instructions {
            out.instructions.push(Instruction {
                gate: inst.gate.bind(values)?,
                qubits: inst.qubits.clone(),
            });
        }
        Ok(out)
    }

    /// Returns `true` if any instruction still references a parameter.
    pub fn is_parameterized(&self) -> bool {
        self.instructions.iter().any(|i| i.gate.is_parameterized())
    }

    /// Circuit depth: length of the longest qubit-dependency chain, counting
    /// every non-barrier instruction as one layer contribution.
    pub fn depth(&self) -> usize {
        self.depth_filtered(|g| !matches!(g, Gate::Barrier))
    }

    /// Depth counting only CX gates — the "Depth" column of Table I.
    pub fn cx_depth(&self) -> usize {
        self.depth_filtered(|g| matches!(g, Gate::Cx))
    }

    fn depth_filtered(&self, count: impl Fn(&Gate) -> bool) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        for inst in &self.instructions {
            if inst.qubits.is_empty() {
                continue;
            }
            let base = inst.qubits.iter().map(|&q| level[q]).max().unwrap_or(0);
            let next = if count(&inst.gate) { base + 1 } else { base };
            for &q in &inst.qubits {
                level[q] = next;
            }
        }
        level.into_iter().max().unwrap_or(0)
    }

    /// Counts instructions whose gate name matches `name`.
    pub fn count_gate(&self, name: &str) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate.name() == name)
            .count()
    }

    /// Total number of CX gates.
    pub fn cx_count(&self) -> usize {
        self.count_gate("cx")
    }
}

impl fmt::Display for QuantumCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit({} qubits, {} params)",
            self.num_qubits, self.num_params
        )?;
        for inst in &self.instructions {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn bell() -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        qc
    }

    #[test]
    fn builder_chain_and_len() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).unwrap().cx(0, 1).unwrap().cx(1, 2).unwrap();
        assert_eq!(qc.len(), 3);
        assert!(!qc.is_empty());
    }

    #[test]
    fn out_of_range_qubit_rejected() {
        let mut qc = QuantumCircuit::new(2);
        let err = qc.h(2).unwrap_err();
        assert_eq!(
            err,
            CircuitError::QubitOutOfRange {
                qubit: 2,
                num_qubits: 2
            }
        );
    }

    #[test]
    fn duplicate_operands_rejected() {
        let mut qc = QuantumCircuit::new(2);
        let err = qc.cx(1, 1).unwrap_err();
        assert_eq!(err, CircuitError::DuplicateQubits { qubit: 1 });
    }

    #[test]
    fn depth_counts_dependency_chains() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap(); // depth 1 on q0
        qc.h(1).unwrap(); // parallel, depth 1 on q1
        qc.cx(0, 1).unwrap(); // depth 2
        assert_eq!(qc.depth(), 2);
    }

    #[test]
    fn cx_depth_ignores_single_qubit_gates() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        qc.h(1).unwrap();
        qc.cx(1, 2).unwrap();
        qc.cx(0, 1).unwrap();
        assert_eq!(qc.cx_depth(), 3);
        assert_eq!(qc.cx_count(), 3);
    }

    #[test]
    fn barriers_do_not_add_depth() {
        let mut qc = bell();
        let d = qc.depth();
        qc.barrier_all();
        assert_eq!(qc.depth(), d);
    }

    #[test]
    fn measure_all_appends_per_qubit_measures() {
        let mut qc = bell();
        qc.measure_all();
        assert_eq!(qc.count_gate("measure"), 2);
        assert_eq!(qc.count_gate("barrier"), 1);
    }

    #[test]
    fn parameter_tracking_via_builders() {
        let mut qc = QuantumCircuit::new(2);
        qc.ry_param(0, 0).unwrap();
        qc.ry_param(3, 1).unwrap();
        assert_eq!(qc.num_params(), 4);
        assert!(qc.is_parameterized());
    }

    #[test]
    fn bind_produces_concrete_circuit() {
        let mut qc = QuantumCircuit::new(1);
        qc.ry_param(0, 0).unwrap();
        qc.rz_param(1, 0).unwrap();
        let bound = qc.bind(&[0.5, -0.25]).unwrap();
        assert!(!bound.is_parameterized());
        assert_eq!(bound.instructions()[0].gate, Gate::Ry(Angle::Fixed(0.5)));
        assert_eq!(bound.instructions()[1].gate, Gate::Rz(Angle::Fixed(-0.25)));
    }

    #[test]
    fn bind_with_wrong_count_errors() {
        let mut qc = QuantumCircuit::new(1);
        qc.ry_param(0, 0).unwrap();
        let err = qc.bind(&[]).unwrap_err();
        assert_eq!(
            err,
            CircuitError::ParameterCountMismatch {
                expected: 1,
                actual: 0
            }
        );
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.s(0).unwrap();
        qc.cx(0, 1).unwrap();
        qc.measure_all();
        let inv = qc.inverse();
        assert_eq!(inv.len(), 3); // measures and barrier dropped
        assert_eq!(inv.instructions()[0].gate, Gate::Cx);
        assert_eq!(inv.instructions()[1].gate, Gate::Sdg);
        assert_eq!(inv.instructions()[2].gate, Gate::H);
    }

    #[test]
    fn compose_appends_and_tracks_params() {
        let mut a = QuantumCircuit::new(2);
        a.h(0).unwrap();
        let mut b = QuantumCircuit::new(2);
        b.ry_param(2, 1).unwrap();
        a.compose(&b).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a.num_params(), 3);
    }

    #[test]
    fn compose_wider_circuit_rejected() {
        let mut a = QuantumCircuit::new(1);
        let b = QuantumCircuit::new(2);
        assert!(a.compose(&b).is_err());
    }

    #[test]
    fn rotations_with_fixed_angles() {
        let mut qc = QuantumCircuit::new(1);
        qc.rx(PI, 0)
            .unwrap()
            .ry(PI / 2.0, 0)
            .unwrap()
            .rz(-PI, 0)
            .unwrap();
        assert_eq!(qc.len(), 3);
        assert!(!qc.is_parameterized());
    }

    #[test]
    fn display_contains_instructions() {
        let qc = bell();
        let s = qc.to_string();
        assert!(s.contains("h q0"));
        assert!(s.contains("cx q0,q1"));
    }
}
