//! Timing, scheduling, and idle-window extraction.
//!
//! The two mitigation techniques the paper tunes both live in **idle
//! windows**: per-qubit gaps on the scheduled timeline between consecutive
//! operations (Section III). This module turns a [`QuantumCircuit`] into a
//! [`ScheduledCircuit`] under a [`DurationModel`] using ASAP or ALAP list
//! scheduling (ALAP is the Qiskit-style baseline, Section III-B), and
//! extracts the [`IdleWindow`]s that the mitigation passes later fill with DD
//! sequences or reposition gates within.

use crate::circuit::QuantumCircuit;
use crate::error::CircuitError;
use crate::gate::Gate;
use std::fmt;

/// Gate-duration table in nanoseconds, modeled on IBM backends.
///
/// `rz` is virtual (zero duration) as on IBM hardware; every other
/// single-qubit gate takes one timing slot; `cx` and `measure` dominate.
#[derive(Debug, Clone, PartialEq)]
pub struct DurationModel {
    single_qubit_ns: f64,
    rz_ns: f64,
    cx_ns: f64,
    measure_ns: f64,
}

impl DurationModel {
    /// IBM-like defaults: 35.56 ns single-qubit slot (the paper's ID slot
    /// duration in Fig. 6), 320 ns CX, 5 µs measurement, virtual RZ.
    pub fn ibm_default() -> Self {
        DurationModel {
            single_qubit_ns: 35.56,
            rz_ns: 0.0,
            cx_ns: 320.0,
            measure_ns: 5000.0,
        }
    }

    /// Creates a custom duration table.
    pub fn new(single_qubit_ns: f64, rz_ns: f64, cx_ns: f64, measure_ns: f64) -> Self {
        DurationModel {
            single_qubit_ns,
            rz_ns,
            cx_ns,
            measure_ns,
        }
    }

    /// Duration of one single-qubit slot (also the ID/DD pulse duration).
    pub fn single_qubit_ns(&self) -> f64 {
        self.single_qubit_ns
    }

    /// Duration of a CX gate.
    pub fn cx_ns(&self) -> f64 {
        self.cx_ns
    }

    /// Duration of a measurement.
    pub fn measure_ns(&self) -> f64 {
        self.measure_ns
    }

    /// Duration of `gate` in nanoseconds.
    pub fn duration_of(&self, gate: &Gate) -> f64 {
        match gate {
            Gate::Rz(_) | Gate::P(_) | Gate::Z | Gate::S | Gate::Sdg | Gate::T | Gate::Tdg => {
                self.rz_ns
            }
            Gate::Cx | Gate::Cz | Gate::Swap => self.cx_ns,
            Gate::Measure => self.measure_ns,
            Gate::Barrier => 0.0,
            Gate::Delay { duration_ns } => *duration_ns,
            _ => self.single_qubit_ns,
        }
    }
}

impl Default for DurationModel {
    fn default() -> Self {
        DurationModel::ibm_default()
    }
}

/// Scheduling direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// As soon as possible.
    Asap,
    /// As late as possible — the standard compilation baseline (paper §III-B).
    Alap,
}

/// A gate application pinned to wall-clock time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedOp {
    /// The operation (concrete angles only).
    pub gate: Gate,
    /// Operand qubits.
    pub qubits: Vec<usize>,
    /// Start time in nanoseconds from circuit start.
    pub start_ns: f64,
    /// Duration in nanoseconds.
    pub duration_ns: f64,
}

impl TimedOp {
    /// End time in nanoseconds.
    pub fn end_ns(&self) -> f64 {
        self.start_ns + self.duration_ns
    }
}

impl fmt::Display for TimedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:9.2}..{:9.2}] {} {:?}",
            self.start_ns,
            self.end_ns(),
            self.gate,
            self.qubits
        )
    }
}

/// A per-qubit idle gap on the scheduled timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct IdleWindow {
    /// Qubit whose timeline contains the gap.
    pub qubit: usize,
    /// Gap start (end of the preceding op).
    pub start_ns: f64,
    /// Gap end (start of the following op).
    pub end_ns: f64,
    /// Index into [`ScheduledCircuit::ops`] of the op preceding the gap.
    pub prev_op: usize,
    /// Index into [`ScheduledCircuit::ops`] of the op following the gap.
    pub next_op: usize,
    /// `true` when the *following* op is a movable single-qubit unitary, so
    /// gate-scheduling mitigation can reposition it within this window.
    pub next_op_movable: bool,
}

impl IdleWindow {
    /// Gap duration in nanoseconds.
    pub fn duration_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }

    /// Maximum number of DD sequence repetitions that fit, where one
    /// repetition consists of `pulses_per_seq` pulses of `pulse_ns` each.
    pub fn max_dd_repetitions(&self, pulses_per_seq: usize, pulse_ns: f64) -> usize {
        if pulse_ns <= 0.0 || pulses_per_seq == 0 {
            return 0;
        }
        (self.duration_ns() / (pulses_per_seq as f64 * pulse_ns)).floor() as usize
    }
}

/// A circuit whose every operation has a start time; the input to the noisy
/// "machine" executor and to the mitigation passes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledCircuit {
    num_qubits: usize,
    ops: Vec<TimedOp>,
    total_ns: f64,
}

impl ScheduledCircuit {
    /// Builds a scheduled circuit from raw timed ops.
    ///
    /// Ops are sorted by start time. Use [`Self::validate`] to check for
    /// overlaps after manual edits.
    pub fn from_ops(num_qubits: usize, mut ops: Vec<TimedOp>) -> Self {
        ops.sort_by(|a, b| a.start_ns.partial_cmp(&b.start_ns).expect("finite times"));
        let total_ns = ops.iter().map(|o| o.end_ns()).fold(0.0, f64::max);
        ScheduledCircuit {
            num_qubits,
            ops,
            total_ns,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Scheduled ops sorted by start time.
    pub fn ops(&self) -> &[TimedOp] {
        &self.ops
    }

    /// Makespan in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.total_ns
    }

    /// Checks that no two ops overlap on any qubit.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::OverlappingOps`] at the first conflict.
    pub fn validate(&self) -> Result<(), CircuitError> {
        const EPS: f64 = 1e-6;
        for q in 0..self.num_qubits {
            let mut intervals: Vec<(f64, f64)> = self
                .ops
                .iter()
                .filter(|o| o.qubits.contains(&q) && o.duration_ns > 0.0)
                .map(|o| (o.start_ns, o.end_ns()))
                .collect();
            intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
            for w in intervals.windows(2) {
                if w[1].0 < w[0].1 - EPS {
                    return Err(CircuitError::OverlappingOps {
                        qubit: q,
                        at_ns: w[1].0,
                    });
                }
            }
        }
        Ok(())
    }

    /// Extracts idle windows longer than `min_ns`, per qubit, within each
    /// qubit's runtime (after its first op, before its measurement).
    ///
    /// Windows are returned sorted by `(qubit, start_ns)`. Barriers are
    /// transparent: they do not terminate a window.
    pub fn idle_windows(&self, min_ns: f64) -> Vec<IdleWindow> {
        let mut windows = Vec::new();
        for q in 0..self.num_qubits {
            // Indices of real (non-barrier) ops on this qubit, in time order.
            let mut op_idx: Vec<usize> = self
                .ops
                .iter()
                .enumerate()
                .filter(|(_, o)| o.qubits.contains(&q) && !matches!(o.gate, Gate::Barrier))
                .map(|(i, _)| i)
                .collect();
            op_idx.sort_by(|&a, &b| {
                self.ops[a]
                    .start_ns
                    .partial_cmp(&self.ops[b].start_ns)
                    .expect("finite times")
            });
            for pair in op_idx.windows(2) {
                let (pi, ni) = (pair[0], pair[1]);
                let prev = &self.ops[pi];
                let next = &self.ops[ni];
                let gap = next.start_ns - prev.end_ns();
                if gap > min_ns {
                    let movable = next.qubits.len() == 1 && next.gate.is_unitary_gate();
                    windows.push(IdleWindow {
                        qubit: q,
                        start_ns: prev.end_ns(),
                        end_ns: next.start_ns,
                        prev_op: pi,
                        next_op: ni,
                        next_op_movable: movable,
                    });
                }
            }
        }
        windows.sort_by(|a, b| {
            (a.qubit, a.start_ns)
                .partial_cmp(&(b.qubit, b.start_ns))
                .expect("finite times")
        });
        windows
    }

    /// Replaces the ops vector wholesale (used by mitigation passes), re-sorting
    /// and recomputing the makespan.
    pub fn with_ops(&self, ops: Vec<TimedOp>) -> ScheduledCircuit {
        ScheduledCircuit::from_ops(self.num_qubits, ops)
    }
}

impl fmt::Display for ScheduledCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scheduled circuit: {} qubits, {} ops, {:.1} ns",
            self.num_qubits,
            self.ops.len(),
            self.total_ns
        )?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

/// Schedules a concrete circuit under `durations`.
///
/// # Errors
///
/// Returns [`CircuitError::UnboundParameter`] if the circuit still contains
/// symbolic angles.
pub fn schedule(
    circuit: &QuantumCircuit,
    durations: &DurationModel,
    kind: ScheduleKind,
) -> Result<ScheduledCircuit, CircuitError> {
    if let Some(inst) = circuit
        .instructions()
        .iter()
        .find(|i| i.gate.is_parameterized())
    {
        return Err(CircuitError::UnboundParameter {
            param: inst
                .gate
                .param_index()
                .expect("parameterized gate has index"),
        });
    }
    match kind {
        ScheduleKind::Asap => Ok(schedule_asap(circuit, durations)),
        ScheduleKind::Alap => Ok(schedule_alap(circuit, durations)),
    }
}

fn schedule_asap(circuit: &QuantumCircuit, durations: &DurationModel) -> ScheduledCircuit {
    let n = circuit.num_qubits();
    let mut ready = vec![0.0f64; n];
    let mut ops = Vec::with_capacity(circuit.len());
    for inst in circuit.instructions() {
        let dur = durations.duration_of(&inst.gate);
        let qubits: Vec<usize> = if inst.qubits.is_empty() {
            (0..n).collect()
        } else {
            inst.qubits.clone()
        };
        let start = qubits.iter().map(|&q| ready[q]).fold(0.0, f64::max);
        for &q in &qubits {
            ready[q] = start + dur;
        }
        ops.push(TimedOp {
            gate: inst.gate,
            qubits: inst.qubits.clone(),
            start_ns: start,
            duration_ns: dur,
        });
    }
    ScheduledCircuit::from_ops(n, ops)
}

fn schedule_alap(circuit: &QuantumCircuit, durations: &DurationModel) -> ScheduledCircuit {
    // ALAP = ASAP on the reversed program, mirrored about the makespan.
    let n = circuit.num_qubits();
    let mut deadline = vec![0.0f64; n];
    let mut rev_ops: Vec<TimedOp> = Vec::with_capacity(circuit.len());
    for inst in circuit.instructions().iter().rev() {
        let dur = durations.duration_of(&inst.gate);
        let qubits: Vec<usize> = if inst.qubits.is_empty() {
            (0..n).collect()
        } else {
            inst.qubits.clone()
        };
        let start = qubits.iter().map(|&q| deadline[q]).fold(0.0, f64::max);
        for &q in &qubits {
            deadline[q] = start + dur;
        }
        rev_ops.push(TimedOp {
            gate: inst.gate,
            qubits: inst.qubits.clone(),
            start_ns: start,
            duration_ns: dur,
        });
    }
    let makespan = rev_ops.iter().map(|o| o.end_ns()).fold(0.0, f64::max);
    for op in rev_ops.iter_mut() {
        op.start_ns = makespan - op.end_ns();
    }
    // Restore program order so the stable sort in `from_ops` breaks
    // equal-start ties (zero-duration RZ gates) in execution order.
    rev_ops.reverse();
    ScheduledCircuit::from_ops(n, rev_ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn durations() -> DurationModel {
        DurationModel::ibm_default()
    }

    fn staircase() -> QuantumCircuit {
        // q0: H --- CX(0,1) ............. M
        // q1: ....... CX(0,1) CX(1,2) ... M
        // q2: ................ CX(1,2) .. M
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        qc.cx(1, 2).unwrap();
        qc.measure_all();
        qc
    }

    #[test]
    fn asap_schedules_dependencies_in_order() {
        let s = schedule(&staircase(), &durations(), ScheduleKind::Asap).unwrap();
        s.validate().unwrap();
        let h = &s.ops()[0];
        assert_eq!(h.gate, Gate::H);
        assert_eq!(h.start_ns, 0.0);
        // First CX starts after H ends.
        let cx0 = s.ops().iter().find(|o| o.gate == Gate::Cx).unwrap();
        assert!((cx0.start_ns - 35.56).abs() < 1e-9);
    }

    #[test]
    fn alap_pushes_gates_late() {
        // q1's H has slack: q0 runs a 5-gate chain before the CX.
        let mut qc = QuantumCircuit::new(2);
        qc.h(1).unwrap();
        for _ in 0..5 {
            qc.sx(0).unwrap();
        }
        qc.cx(0, 1).unwrap();
        let asap = schedule(&qc, &durations(), ScheduleKind::Asap).unwrap();
        let alap = schedule(&qc, &durations(), ScheduleKind::Alap).unwrap();
        asap.validate().unwrap();
        alap.validate().unwrap();
        assert!((asap.total_ns() - alap.total_ns()).abs() < 1e-9);
        let h1_asap = asap
            .ops()
            .iter()
            .find(|o| o.gate == Gate::H && o.qubits == vec![1])
            .unwrap();
        let h1_alap = alap
            .ops()
            .iter()
            .find(|o| o.gate == Gate::H && o.qubits == vec![1])
            .unwrap();
        assert_eq!(h1_asap.start_ns, 0.0);
        // ALAP packs the H directly before the CX: start = 4 slots.
        assert!(
            (h1_alap.start_ns - 4.0 * 35.56).abs() < 1e-9,
            "ALAP should delay the idle-side H, got {}",
            h1_alap.start_ns
        );
    }

    #[test]
    fn alap_equals_asap_for_chain_circuits() {
        // A fully serial circuit has no slack; schedules must agree.
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).unwrap().x(0).unwrap().h(0).unwrap();
        let asap = schedule(&qc, &durations(), ScheduleKind::Asap).unwrap();
        let alap = schedule(&qc, &durations(), ScheduleKind::Alap).unwrap();
        for (a, b) in asap.ops().iter().zip(alap.ops().iter()) {
            assert!((a.start_ns - b.start_ns).abs() < 1e-9);
        }
    }

    #[test]
    fn idle_windows_found_between_ops() {
        // q0 does H, then waits for q1's long chain before the final CX.
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.h(1).unwrap();
        for _ in 0..5 {
            qc.sx(1).unwrap();
        }
        qc.cx(0, 1).unwrap();
        let s = schedule(&qc, &durations(), ScheduleKind::Asap).unwrap();
        let windows = s.idle_windows(durations().single_qubit_ns());
        assert_eq!(windows.len(), 1, "{windows:?}");
        let w = &windows[0];
        assert_eq!(w.qubit, 0);
        assert!((w.duration_ns() - 5.0 * 35.56).abs() < 1e-6);
        // The next op is the CX (2-qubit) so it is not movable.
        assert!(!w.next_op_movable);
    }

    #[test]
    fn idle_window_movable_flag() {
        // Anchor q0 early with a CX, let q1 run a long chain, then X + CX on
        // q0. Under ALAP the X packs against the final CX and the idle
        // window precedes it — so the window's following op is movable.
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        for _ in 0..5 {
            qc.sx(1).unwrap();
        }
        qc.x(0).unwrap();
        qc.cx(0, 1).unwrap();
        let s = schedule(&qc, &durations(), ScheduleKind::Alap).unwrap();
        let windows = s.idle_windows(durations().single_qubit_ns());
        let w0: Vec<_> = windows.iter().filter(|w| w.qubit == 0).collect();
        assert_eq!(w0.len(), 1, "{windows:?}");
        assert!(w0[0].next_op_movable, "X before CX should be movable");
        // The window spans the q1 chain minus the X slot.
        assert!((w0[0].duration_ns() - 4.0 * 35.56).abs() < 1e-6);
    }

    #[test]
    fn windows_respect_min_duration() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.h(1).unwrap();
        qc.sx(1).unwrap(); // 1-slot gap on q0
        qc.cx(0, 1).unwrap();
        let s = schedule(&qc, &durations(), ScheduleKind::Asap).unwrap();
        assert!(s.idle_windows(2.0 * 35.56).is_empty());
        assert_eq!(s.idle_windows(0.5 * 35.56).len(), 1);
    }

    #[test]
    fn max_dd_repetitions() {
        let w = IdleWindow {
            qubit: 0,
            start_ns: 0.0,
            end_ns: 356.0,
            prev_op: 0,
            next_op: 1,
            next_op_movable: false,
        };
        // XY4 = 4 pulses of 35.56 ns = 142.24 ns per repetition -> 2 fit.
        assert_eq!(w.max_dd_repetitions(4, 35.56), 2);
        // XX = 2 pulses -> 5 fit.
        assert_eq!(w.max_dd_repetitions(2, 35.56), 5);
        assert_eq!(w.max_dd_repetitions(0, 35.56), 0);
    }

    #[test]
    fn barriers_synchronize_all_qubits() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.barrier_all();
        qc.h(1).unwrap();
        let s = schedule(&qc, &durations(), ScheduleKind::Asap).unwrap();
        let h1 = s
            .ops()
            .iter()
            .find(|o| o.gate == Gate::H && o.qubits == vec![1])
            .unwrap();
        assert!(
            (h1.start_ns - 35.56).abs() < 1e-9,
            "barrier must delay q1's H"
        );
    }

    #[test]
    fn unbound_circuit_rejected() {
        let mut qc = QuantumCircuit::new(1);
        qc.ry_param(0, 0).unwrap();
        let err = schedule(&qc, &durations(), ScheduleKind::Asap).unwrap_err();
        assert!(matches!(err, CircuitError::UnboundParameter { .. }));
    }

    #[test]
    fn validate_detects_overlap() {
        let ops = vec![
            TimedOp {
                gate: Gate::X,
                qubits: vec![0],
                start_ns: 0.0,
                duration_ns: 50.0,
            },
            TimedOp {
                gate: Gate::Y,
                qubits: vec![0],
                start_ns: 25.0,
                duration_ns: 50.0,
            },
        ];
        let s = ScheduledCircuit::from_ops(1, ops);
        assert!(matches!(
            s.validate(),
            Err(CircuitError::OverlappingOps { qubit: 0, .. })
        ));
    }

    #[test]
    fn delay_occupies_timeline() {
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).unwrap();
        qc.delay(1000.0, 0).unwrap();
        qc.x(0).unwrap();
        let s = schedule(&qc, &durations(), ScheduleKind::Asap).unwrap();
        let x = s.ops().iter().find(|o| o.gate == Gate::X).unwrap();
        assert!((x.start_ns - (35.56 + 1000.0)).abs() < 1e-9);
        assert!((s.total_ns() - (2.0 * 35.56 + 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn alap_keeps_program_order_for_zero_duration_ties() {
        // H, RZ(pi), H: the virtual RZ shares its start time with the second
        // H; executing them out of order flips the final state.
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).unwrap();
        qc.rz(std::f64::consts::PI, 0).unwrap();
        qc.h(0).unwrap();
        let s = schedule(&qc, &durations(), ScheduleKind::Alap).unwrap();
        let order: Vec<&str> = s.ops().iter().map(|o| o.gate.name()).collect();
        assert_eq!(order, vec!["h", "rz", "h"], "{s}");
    }

    #[test]
    fn rz_is_virtual() {
        let mut qc = QuantumCircuit::new(1);
        qc.rz(1.0, 0).unwrap();
        qc.x(0).unwrap();
        let s = schedule(&qc, &durations(), ScheduleKind::Asap).unwrap();
        let x = s.ops().iter().find(|o| o.gate == Gate::X).unwrap();
        assert_eq!(x.start_ns, 0.0, "virtual rz must not consume time");
    }
}
