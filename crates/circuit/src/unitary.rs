//! Full-circuit unitary synthesis for small registers.
//!
//! Used by tests and by the soundness analysis: composing every gate of a
//! (concrete) circuit into a single `2^n x 2^n` unitary lets us verify that
//! mitigation passes preserve circuit semantics (paper §III: inserted
//! `XX = I` sequences must not change the logical circuit).

use crate::circuit::QuantumCircuit;
use crate::error::CircuitError;
use crate::gate::Gate;
use vaqem_mathkit::complex::Complex64;
use vaqem_mathkit::matrix::CMatrix;

/// Expands a 1-qubit unitary to the full register, acting on `q`.
///
/// Qubit 0 is the least significant bit of the basis index.
pub fn embed_single(u: &CMatrix, q: usize, n: usize) -> CMatrix {
    assert_eq!(u.rows(), 2, "expected a 2x2 matrix");
    let dim = 1usize << n;
    let mut out = CMatrix::zeros(dim, dim);
    let bit = 1usize << q;
    for col in 0..dim {
        let cb = (col & bit != 0) as usize;
        for rb in 0..2 {
            let row = (col & !bit) | (rb << q);
            let amp = u[(rb, cb)];
            if amp != Complex64::ZERO {
                out[(row, col)] += amp;
            }
        }
    }
    out
}

/// Expands a 2-qubit unitary to the full register.
///
/// The gate matrix follows [`Gate::unitary`] conventions: the first operand
/// (`q_hi`) is the more significant bit of the 4-dim gate space.
pub fn embed_two(u: &CMatrix, q_hi: usize, q_lo: usize, n: usize) -> CMatrix {
    assert_eq!(u.rows(), 4, "expected a 4x4 matrix");
    assert_ne!(q_hi, q_lo, "distinct qubits required");
    let dim = 1usize << n;
    let mut out = CMatrix::zeros(dim, dim);
    let (bh, bl) = (1usize << q_hi, 1usize << q_lo);
    for col in 0..dim {
        let ch = (col & bh != 0) as usize;
        let cl = (col & bl != 0) as usize;
        let gate_col = (ch << 1) | cl;
        for gate_row in 0..4 {
            let amp = u[(gate_row, gate_col)];
            if amp == Complex64::ZERO {
                continue;
            }
            let rh = (gate_row >> 1) & 1;
            let rl = gate_row & 1;
            let row = (col & !(bh | bl)) | (rh << q_hi) | (rl << q_lo);
            out[(row, col)] += amp;
        }
    }
    out
}

/// Composes a concrete circuit into its full unitary, ignoring barriers and
/// delays and rejecting measurements.
///
/// # Errors
///
/// Returns [`CircuitError::UnboundParameter`] for symbolic circuits.
///
/// # Panics
///
/// Panics if the circuit contains measurements (not a unitary operation).
pub fn circuit_unitary(circuit: &QuantumCircuit) -> Result<CMatrix, CircuitError> {
    let n = circuit.num_qubits();
    let mut u = CMatrix::identity(1 << n);
    for inst in circuit.instructions() {
        match inst.gate {
            Gate::Barrier | Gate::Delay { .. } | Gate::I => continue,
            Gate::Measure => panic!("cannot form the unitary of a measured circuit"),
            g => {
                let gu = g.unitary()?;
                let full = match inst.qubits.len() {
                    1 => embed_single(&gu, inst.qubits[0], n),
                    2 => embed_two(&gu, inst.qubits[0], inst.qubits[1], n),
                    k => panic!("unsupported gate arity {k}"),
                };
                u = &full * &u;
            }
        }
    }
    Ok(u)
}

/// Checks whether two unitaries are equal up to a global phase.
pub fn equal_up_to_phase(a: &CMatrix, b: &CMatrix, tol: f64) -> bool {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return false;
    }
    // Find the largest-magnitude entry of `a` to anchor the phase.
    let mut best = (0usize, 0usize);
    let mut best_mag = 0.0;
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            let m = a[(i, j)].norm();
            if m > best_mag {
                best_mag = m;
                best = (i, j);
            }
        }
    }
    if best_mag < tol {
        return a.max_abs_diff(b) <= tol;
    }
    let phase = b[best] / a[best];
    if (phase.norm() - 1.0).abs() > tol {
        return false;
    }
    a.scale(phase).max_abs_diff(b) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaqem_mathkit::c64;

    #[test]
    fn embed_single_acts_on_correct_qubit() {
        let x = Gate::X.unitary().unwrap();
        let n = 3;
        let u = embed_single(&x, 1, n);
        // |000> -> |010>
        let mut v = vec![Complex64::ZERO; 8];
        v[0] = Complex64::ONE;
        let w = u.mul_vec(&v);
        assert!(w[0b010].approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn embed_two_cx_conventions() {
        let cx = Gate::Cx.unitary().unwrap();
        // control=q2, target=q0 in a 3-qubit register.
        let u = embed_two(&cx, 2, 0, 3);
        // |100> (q2=1) -> |101>
        let mut v = vec![Complex64::ZERO; 8];
        v[0b100] = Complex64::ONE;
        let w = u.mul_vec(&v);
        assert!(w[0b101].approx_eq(Complex64::ONE, 1e-12), "{w:?}");
        // |001> (control 0) unchanged.
        let mut v = vec![Complex64::ZERO; 8];
        v[0b001] = Complex64::ONE;
        let w = u.mul_vec(&v);
        assert!(w[0b001].approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn embedded_unitaries_stay_unitary() {
        let h = Gate::H.unitary().unwrap();
        assert!(embed_single(&h, 2, 4).is_unitary(1e-12));
        let cx = Gate::Cx.unitary().unwrap();
        assert!(embed_two(&cx, 0, 3, 4).is_unitary(1e-12));
    }

    #[test]
    fn bell_circuit_unitary() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        let u = circuit_unitary(&qc).unwrap();
        assert!(u.is_unitary(1e-12));
        // |00> -> (|00> + |11>)/sqrt(2). Note qubit 0 is control; with qubit 0
        // the LSB, |11> = index 3.
        let v = u.mul_vec(&[
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ZERO,
        ]);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(v[0].approx_eq(c64(s, 0.0), 1e-12));
        assert!(v[3].approx_eq(c64(s, 0.0), 1e-12));
    }

    #[test]
    fn inverse_circuit_gives_identity() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.ry(0.7, 1).unwrap();
        qc.cx(0, 1).unwrap();
        qc.rz(-0.3, 0).unwrap();
        let mut full = qc.clone();
        full.compose(&qc.inverse()).unwrap();
        let u = circuit_unitary(&full).unwrap();
        assert!(u.is_identity(1e-10));
    }

    #[test]
    fn xx_insertion_preserves_semantics() {
        // The DD primitive: inserting X X mid-circuit is a logical no-op.
        let mut base = QuantumCircuit::new(1);
        base.h(0).unwrap();
        base.rz(0.4, 0).unwrap();
        let mut with_dd = QuantumCircuit::new(1);
        with_dd.h(0).unwrap();
        with_dd.x(0).unwrap();
        with_dd.x(0).unwrap();
        with_dd.rz(0.4, 0).unwrap();
        let u1 = circuit_unitary(&base).unwrap();
        let u2 = circuit_unitary(&with_dd).unwrap();
        assert!(equal_up_to_phase(&u1, &u2, 1e-10));
    }

    #[test]
    fn xyxy_insertion_preserves_semantics_up_to_phase() {
        // XYXY = -I: identity up to global phase (universal DD sequence).
        let mut base = QuantumCircuit::new(1);
        base.h(0).unwrap();
        let mut with_dd = QuantumCircuit::new(1);
        with_dd.h(0).unwrap();
        for _ in 0..1 {
            with_dd.x(0).unwrap();
            with_dd.y(0).unwrap();
            with_dd.x(0).unwrap();
            with_dd.y(0).unwrap();
        }
        let u1 = circuit_unitary(&base).unwrap();
        let u2 = circuit_unitary(&with_dd).unwrap();
        assert!(equal_up_to_phase(&u1, &u2, 1e-10));
    }

    #[test]
    fn equal_up_to_phase_detects_difference() {
        let x = Gate::X.unitary().unwrap();
        let z = Gate::Z.unitary().unwrap();
        assert!(!equal_up_to_phase(&x, &z, 1e-10));
    }

    #[test]
    #[should_panic(expected = "measured circuit")]
    fn measured_circuit_panics() {
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).unwrap();
        qc.measure(0).unwrap();
        let _ = circuit_unitary(&qc);
    }
}
