//! # vaqem-circuit
//!
//! Quantum circuit intermediate representation for the VAQEM (HPCA 2022)
//! reproduction: a Qiskit-shaped gate set with symbolic parameters, a
//! duration-aware ASAP/ALAP scheduler, idle-window extraction (the
//! substrate both mitigation techniques operate on), full-circuit unitary
//! synthesis for semantics checks, and OpenQASM text emission.
//!
//! # Examples
//!
//! ```
//! use vaqem_circuit::circuit::QuantumCircuit;
//! use vaqem_circuit::schedule::{schedule, DurationModel, ScheduleKind};
//!
//! # fn main() -> Result<(), vaqem_circuit::error::CircuitError> {
//! let mut qc = QuantumCircuit::new(2);
//! qc.h(0)?;
//! qc.cx(0, 1)?;          // anchors qubit 0 early
//! for _ in 0..4 { qc.sx(1)?; }
//! qc.x(0)?;              // packs late under ALAP; idle window before it
//! qc.cx(0, 1)?;
//! let scheduled = schedule(&qc, &DurationModel::ibm_default(), ScheduleKind::Alap)?;
//! let windows = scheduled.idle_windows(35.56);
//! assert!(!windows.is_empty());
//! # Ok(())
//! # }
//! ```

pub mod circuit;
pub mod error;
pub mod gate;
pub mod qasm;
pub mod schedule;
pub mod unitary;

pub use circuit::{Instruction, QuantumCircuit};
pub use error::CircuitError;
pub use gate::{Angle, Gate};
pub use schedule::{schedule, DurationModel, IdleWindow, ScheduleKind, ScheduledCircuit, TimedOp};
