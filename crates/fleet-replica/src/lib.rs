//! # vaqem-fleet-replica
//!
//! Multi-process replication for the VAQEM fleet daemon. Three pieces
//! turn a single `fleetd` into a replicated pair (or fleet of pairs):
//!
//! - **Device ownership** ([`vaqem_runtime::HashRing`], re-exported
//!   here): a consistent-hash ring partitions device names across N
//!   daemon instances with the same FNV-1a discipline the sharded
//!   store uses for key routing, so a join or leave moves only ~1/N of
//!   the devices.
//! - **Journal shipping** ([`ReplicaApplier`]): a follower keeps a
//!   cursor `(generation, offset)` into the leader's `VQJL` journal and
//!   applies the byte-exact record slices (or a snapshot bootstrap) the
//!   leader ships over the VQRP `JournalAck`/`JournalShip` frame pair.
//!   Record replay goes through the follower's *own* journaled mutation
//!   paths, so the follower's on-disk state is always openable — which
//!   is exactly what promotion does.
//! - **Failover** ([`Follower`]): the poll loop that drives a live
//!   follower process, notices leader death (EOF on the replication
//!   connection), and [`Follower::promote`]s — reopening the replicated
//!   store as a fresh [`FleetService`] and taking over the leader's
//!   socket so reconnecting [`vaqem_fleet_rpc::FailoverClient`]s land
//!   on warm state.
//!
//! The pull-based protocol keeps the leader stateless about follower
//! progress beyond a per-connection watermark: the follower's
//! `JournalAck{cursor}` both acknowledges durability up to `cursor`
//! (releasing the leader's gated replies) and requests the next batch.
//! A follower always starts from its *own* durable cursor — a fresh
//! follower acks `(0, 0)`, which never matches a live journal and so
//! provokes a snapshot bootstrap.

#![deny(missing_docs)]

use std::hash::Hash;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use vaqem::vqe::VqeProblem;
use vaqem::window_tuner::{StoredChoice, WindowFingerprint};
use vaqem_fleet_rpc::client::RpcClient;
use vaqem_fleet_rpc::server::{RpcListener, RpcServer, RpcServerConfig};
use vaqem_fleet_rpc::FailoverTarget;
use vaqem_fleet_service::{DeviceSpec, FleetService, FleetServiceConfig};
use vaqem_mathkit::rng::SeedStream;
use vaqem_runtime::persist::{Codec, DurableStore};
use vaqem_runtime::{ShipBatch, ShipCursor};

pub use vaqem_runtime::HashRing;

/// Cursor-deduplicating apply layer over a [`DurableStore`]: the pure
/// core of a follower, usable without sockets (the replication
/// proptests drive it directly against `ShipBatch`es).
///
/// Invariant: `cursor()` is exactly the leader position whose effects
/// are durably applied locally. Batches at or behind the cursor are
/// ignored (duplicate or reordered delivery is idempotent); batches
/// ahead of it advance it.
pub struct ReplicaApplier<F, V> {
    store: DurableStore<F, V>,
    cursor: ShipCursor,
    ships_applied: u64,
    records_applied: u64,
    snapshots_applied: u64,
}

impl<F, V> ReplicaApplier<F, V>
where
    F: Codec + Hash + Eq + Clone,
    V: Codec + Clone,
{
    /// Wraps an already-open store. The cursor starts at the default
    /// `(0, 0)`, which no live journal ever matches — the first sync
    /// therefore bootstraps via snapshot, eliminating any divergence a
    /// stale local state could cause.
    pub fn new(store: DurableStore<F, V>) -> Self {
        ReplicaApplier {
            store,
            cursor: ShipCursor::default(),
            ships_applied: 0,
            records_applied: 0,
            snapshots_applied: 0,
        }
    }

    /// Opens (or creates) the follower store under `dir` and wraps it.
    ///
    /// # Errors
    ///
    /// Store open failures (I/O, bad snapshot/journal headers).
    pub fn open(dir: &Path, num_shards: usize, capacity_per_shard: usize) -> io::Result<Self> {
        Ok(Self::new(DurableStore::open(
            dir,
            num_shards,
            capacity_per_shard,
        )?))
    }

    /// The leader-journal position durably applied locally — what the
    /// follower acks.
    pub fn cursor(&self) -> ShipCursor {
        self.cursor
    }

    /// Ship batches applied (i.e. not dropped as duplicates).
    pub fn ships_applied(&self) -> u64 {
        self.ships_applied
    }

    /// Individual journal records replayed across all applied batches.
    pub fn records_applied(&self) -> u64 {
        self.records_applied
    }

    /// Snapshot bootstraps performed.
    pub fn snapshots_applied(&self) -> u64 {
        self.snapshots_applied
    }

    /// The wrapped store (read access — e.g. entry counts in tests).
    pub fn store(&self) -> &DurableStore<F, V> {
        &self.store
    }

    /// Applies one shipped batch if it advances the cursor; returns
    /// `true` if it did, `false` for duplicate/stale batches (including
    /// the empty heartbeat the leader sends when nothing is new).
    ///
    /// # Errors
    ///
    /// `InvalidData` for torn or malformed shipped payloads, plus local
    /// journal I/O failures. The cursor does not advance on error.
    pub fn apply(&mut self, batch: &ShipBatch) -> io::Result<bool> {
        if batch.cursor <= self.cursor {
            return Ok(false);
        }
        let records = self.store.apply_ship(batch)?;
        self.cursor = batch.cursor;
        self.ships_applied += 1;
        if batch.snapshot {
            self.snapshots_applied += 1;
        }
        self.records_applied += records as u64;
        Ok(true)
    }

    /// Unwraps the store — the promotion path drops the handle this way
    /// before reopening the directory as a live service.
    pub fn into_store(self) -> DurableStore<F, V> {
        self.store
    }
}

/// How a [`Follower`] connects, stores, and paces.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// The leader's socket address.
    pub leader: FailoverTarget,
    /// Directory for the follower's replicated store.
    pub store_dir: PathBuf,
    /// Store geometry — match the leader's [`FleetServiceConfig`] so a
    /// promotion reopens with identical sharding.
    pub shards: usize,
    /// Per-shard capacity, as above.
    pub capacity_per_shard: usize,
    /// Poll sleep after a sync that shipped nothing new; doubles up to
    /// `poll_ceiling` while idle, resets on progress.
    pub poll_floor: Duration,
    /// Idle poll-sleep ceiling.
    pub poll_ceiling: Duration,
    /// Read timeout on the replication connection. A SIGKILLed leader
    /// yields EOF immediately, but a wedged one only trips this.
    pub read_timeout: Option<Duration>,
}

impl ReplicaConfig {
    /// A config with the pacing defaults (1ms floor, 10ms ceiling, 5s
    /// read timeout); geometry should be overridden to match the
    /// leader.
    pub fn new(leader: FailoverTarget, store_dir: PathBuf) -> Self {
        ReplicaConfig {
            leader,
            store_dir,
            shards: 4,
            capacity_per_shard: 128,
            poll_floor: Duration::from_millis(1),
            poll_ceiling: Duration::from_millis(10),
            read_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// Why [`Follower::run`] returned.
#[derive(Debug)]
pub enum FollowerExit {
    /// The replication connection died — the leader is gone. Time to
    /// [`Follower::promote`].
    LeaderDied(io::Error),
    /// The stop flag was raised.
    Stopped,
}

/// A live follower process: an open replicated store plus the VQRP
/// connection it syncs over. Drive it with [`Follower::run`] (or
/// [`Follower::sync_once`] for test-controlled pacing), then
/// [`Follower::promote`] when the leader dies.
pub struct Follower {
    applier: MitigationReplica,
    client: RpcClient,
    config: ReplicaConfig,
}

impl Follower {
    /// Opens the follower store and connects to the leader, retrying
    /// the connection for a few seconds (a follower is often launched
    /// in the same breath as its leader).
    ///
    /// # Errors
    ///
    /// Store open failures, or the leader never appearing.
    pub fn connect(config: ReplicaConfig) -> io::Result<Self> {
        let applier =
            ReplicaApplier::open(&config.store_dir, config.shards, config.capacity_per_shard)?;
        let mut last_err: io::Error = io::ErrorKind::NotConnected.into();
        for attempt in 0..200u32 {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(50));
            }
            match Self::dial(&config) {
                Ok(client) => {
                    return Ok(Follower {
                        applier,
                        client,
                        config,
                    })
                }
                Err(e) => last_err = e,
            }
        }
        Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("follower: leader never appeared: {last_err}"),
        ))
    }

    fn dial(config: &ReplicaConfig) -> io::Result<RpcClient> {
        let mut client = match &config.leader {
            FailoverTarget::Tcp(addr) => RpcClient::connect_tcp(addr.as_str())?,
            FailoverTarget::Unix(path) => RpcClient::connect_unix(path)?,
        };
        client.set_read_timeout(config.read_timeout)?;
        Ok(client)
    }

    /// The leader-journal position durably applied locally.
    pub fn cursor(&self) -> ShipCursor {
        self.applier.cursor()
    }

    /// The apply layer (cursor, counters, store) — read access for
    /// tests and promotion-time reporting.
    pub fn applier(&self) -> &MitigationReplica {
        &self.applier
    }

    /// One ack→ship round-trip: acks the current cursor, applies
    /// whatever the leader ships. Returns `true` if the batch advanced
    /// the cursor (i.e. something new arrived).
    ///
    /// # Errors
    ///
    /// Connection failures (how leader death surfaces) or malformed
    /// shipped payloads.
    pub fn sync_once(&mut self) -> io::Result<bool> {
        let batch = self.client.journal_sync(self.applier.cursor())?;
        self.applier.apply(&batch)
    }

    /// Syncs until the stop flag is raised or the leader dies, pacing
    /// idle polls with the adaptive floor→ceiling backoff from the
    /// config.
    pub fn run(&mut self, stop: &AtomicBool) -> FollowerExit {
        let mut backoff =
            vaqem_runtime::IdleBackoff::new(self.config.poll_floor, self.config.poll_ceiling);
        while !stop.load(Ordering::Relaxed) {
            match self.sync_once() {
                Ok(progressed) => {
                    if let Some(pause) = backoff.after(progressed) {
                        std::thread::sleep(pause);
                    }
                }
                Err(e) => return FollowerExit::LeaderDied(e),
            }
        }
        FollowerExit::Stopped
    }

    /// Promotion: closes the replication connection and the store
    /// handle, reopens the replicated directory as a live
    /// [`FleetService`] (journal replay — the follower's own journal
    /// re-recorded everything it applied), and takes over `listener` —
    /// for Unix sockets, [`RpcListener::bind_unix`] removes the dead
    /// leader's stale socket file, so the caller binds the *leader's*
    /// address and clients reconnect to warm state.
    ///
    /// `config.store_dir` is overridden with the follower's own
    /// directory — promotion serves the replicated state, nothing else.
    ///
    /// # Errors
    ///
    /// Service open or serve failures.
    pub fn promote(
        self,
        mut config: FleetServiceConfig,
        devices: Vec<DeviceSpec>,
        problem: VqeProblem,
        seeds: SeedStream,
        listener: RpcListener,
        rpc_config: RpcServerConfig,
    ) -> io::Result<(FleetService, RpcServer)> {
        config.store_dir = self.config.store_dir.clone();
        // Release the journal + shard locks before the service reopens
        // the same directory.
        drop(self.client);
        drop(self.applier);
        let service = FleetService::open(config, devices, problem, seeds)?;
        let server = RpcServer::serve(&service, listener, rpc_config)?;
        Ok((service, server))
    }
}

/// Type alias for the applier specialised to the fleet daemon's store
/// — the thing a [`Follower`] wraps.
pub type MitigationReplica = ReplicaApplier<WindowFingerprint, StoredChoice>;

#[cfg(test)]
mod tests {
    use super::*;
    use vaqem_runtime::persist::DurableStore;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vaqem-replica-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn applier_dedupes_and_advances() {
        let leader_dir = tmp("lead");
        let follower_dir = tmp("follow");
        let leader: DurableStore<u64, u64> = DurableStore::open(&leader_dir, 2, 32).unwrap();
        leader.insert("dev", 1, 10, 100);
        leader.insert("dev", 1, 11, 110);

        let mut replica: ReplicaApplier<u64, u64> =
            ReplicaApplier::open(&follower_dir, 2, 32).unwrap();
        // Fresh follower acks (0,0) -> snapshot bootstrap.
        let batch = leader.ship_since(ShipCursor::default()).unwrap();
        assert!(batch.snapshot);
        assert!(replica.apply(&batch).unwrap());
        assert_eq!(replica.store().len(), 2);
        assert_eq!(replica.cursor(), batch.cursor);
        assert_eq!(replica.snapshots_applied(), 1);

        // Re-delivering the same batch is a no-op.
        assert!(!replica.apply(&batch).unwrap());
        assert_eq!(replica.ships_applied(), 1);

        // Incremental records after the bootstrap.
        leader.insert("dev", 2, 12, 120);
        let delta = leader.ship_since(replica.cursor()).unwrap();
        assert!(!delta.snapshot);
        assert!(replica.apply(&delta).unwrap());
        assert_eq!(replica.store().len(), 3);

        // Promotion contract: the follower's own journal re-recorded
        // everything, so a plain reopen sees the full state.
        let reopened: DurableStore<u64, u64> = DurableStore::open(&follower_dir, 2, 32).unwrap();
        assert_eq!(reopened.len(), 3);

        let _ = std::fs::remove_dir_all(&leader_dir);
        let _ = std::fs::remove_dir_all(&follower_dir);
    }

    #[test]
    fn stale_and_reordered_batches_are_ignored() {
        let leader_dir = tmp("lead2");
        let follower_dir = tmp("follow2");
        let leader: DurableStore<u64, u64> = DurableStore::open(&leader_dir, 2, 32).unwrap();
        let mut replica: ReplicaApplier<u64, u64> =
            ReplicaApplier::open(&follower_dir, 2, 32).unwrap();

        let boot = leader.ship_since(ShipCursor::default()).unwrap();
        replica.apply(&boot).unwrap();
        let c0 = replica.cursor();

        leader.insert("a", 1, 1, 1);
        let b1 = leader.ship_since(c0).unwrap();
        leader.insert("a", 1, 2, 2);
        let b2 = leader.ship_since(c0).unwrap();

        // Apply the later batch first; the earlier one is then stale.
        assert!(replica.apply(&b2).unwrap());
        assert!(!replica.apply(&b1).unwrap());
        assert_eq!(replica.store().len(), 2);

        let _ = std::fs::remove_dir_all(&leader_dir);
        let _ = std::fs::remove_dir_all(&follower_dir);
    }
}
