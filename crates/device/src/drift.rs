//! Temporal variability: intra-cycle drift and recalibration jumps.
//!
//! The paper's Fig. 16 shows the measured objective for *fixed* VQA
//! parameters wandering by 10-20% of the ideal value over 24 hours, with a
//! distribution shift at machine recalibration. [`DriftModel`] reproduces
//! that phenomenology:
//!
//! * within a calibration cycle, coherence times and detuning follow a slow
//!   deterministic random walk (an Ornstein-Uhlenbeck-flavoured multiplier
//!   sampled from a per-cycle stream), and
//! * at each recalibration boundary the walk is re-anchored with a fresh
//!   draw, producing the cluster-to-cluster jumps seen in the figure.

use crate::backend::DeviceModel;
use crate::noise::NoiseParameters;
use rand::Rng;
use vaqem_mathkit::rng::{sample_standard_normal, SeedStream};

/// Deterministic temporal drift generator for a device.
#[derive(Debug, Clone)]
pub struct DriftModel {
    seeds: SeedStream,
    calibration_period_hours: f64,
    /// Relative T1/T2 drift amplitude within a cycle.
    coherence_amplitude: f64,
    /// Relative detuning-sigma drift amplitude within a cycle.
    detuning_amplitude: f64,
    /// Relative jump size applied at recalibration.
    recalibration_jump: f64,
}

impl DriftModel {
    /// Creates a drift model with paper-scale defaults: 12-hour calibration
    /// cycles, ±15% coherence wander, ±25% detuning wander, and a ±20%
    /// recalibration jump.
    pub fn new(seeds: SeedStream) -> Self {
        DriftModel {
            seeds,
            calibration_period_hours: 12.0,
            coherence_amplitude: 0.15,
            detuning_amplitude: 0.25,
            recalibration_jump: 0.20,
        }
    }

    /// Overrides the calibration period.
    pub fn with_calibration_period_hours(mut self, hours: f64) -> Self {
        assert!(hours > 0.0, "calibration period must be positive");
        self.calibration_period_hours = hours;
        self
    }

    /// Overrides the drift amplitudes `(coherence, detuning, jump)`.
    pub fn with_amplitudes(mut self, coherence: f64, detuning: f64, jump: f64) -> Self {
        self.coherence_amplitude = coherence;
        self.detuning_amplitude = detuning;
        self.recalibration_jump = jump;
        self
    }

    /// Calibration period in hours.
    pub fn calibration_period_hours(&self) -> f64 {
        self.calibration_period_hours
    }

    /// Index of the calibration cycle containing hour `t`.
    pub fn cycle_index(&self, t_hours: f64) -> u64 {
        cycle_of(t_hours, self.calibration_period_hours)
    }

    /// Returns `true` when `t0` and `t1` fall in different calibration
    /// cycles — the condition under which the paper observes distribution
    /// shifts (Fig. 16's pink-to-grey transition).
    pub fn crosses_recalibration(&self, t0_hours: f64, t1_hours: f64) -> bool {
        self.cycle_index(t0_hours) != self.cycle_index(t1_hours)
    }

    /// The calibration epoch at hour `t_hours` — the cache-key component
    /// fleet-scale config reuse is scoped by. An epoch is simply the
    /// calibration cycle index: tuned mitigation choices recorded in one
    /// epoch are presumed valid within it and stale outside it (Fig. 16's
    /// distribution shift at recalibration).
    pub fn epoch_at(&self, t_hours: f64) -> u64 {
        self.cycle_index(t_hours)
    }

    /// Creates an [`EpochTracker`] for this model's calibration period.
    pub fn epoch_tracker(&self) -> EpochTracker {
        EpochTracker {
            period_hours: self.calibration_period_hours,
            current: None,
        }
    }

    /// Noise parameters for `device` as they would be at hour `t_hours`.
    pub fn noise_at(&self, device: &DeviceModel, t_hours: f64) -> NoiseParameters {
        let cycle = self.cycle_index(t_hours);
        let phase = (t_hours / self.calibration_period_hours).fract();

        // Per-cycle anchor: the recalibration jump.
        let mut anchor_rng = self.seeds.rng_indexed("drift-anchor", cycle);
        let coherence_anchor =
            (self.recalibration_jump * sample_standard_normal(&mut anchor_rng)).exp();
        let detuning_anchor =
            (self.recalibration_jump * sample_standard_normal(&mut anchor_rng)).exp();

        // Intra-cycle wander: a smooth pseudo-random walk over the cycle,
        // built from a few Fourier components with per-cycle phases.
        let mut wander_rng = self.seeds.rng_indexed("drift-wander", cycle);
        let coherence_wander = smooth_wander(&mut wander_rng, phase, self.coherence_amplitude);
        let detuning_wander = smooth_wander(&mut wander_rng, phase, self.detuning_amplitude);

        let mut noise = device.noise().clone();
        noise.scale_coherence(coherence_anchor * coherence_wander);
        for q in 0..noise.num_qubits() {
            let qn = noise.qubit_mut(q);
            qn.quasi_static_sigma_rad_ns *= detuning_anchor * detuning_wander;
            // Readout drifts with the same anchor but gentler.
            qn.readout_p10 = (qn.readout_p10 * (2.0 - coherence_anchor).max(0.5)).min(0.3);
        }
        noise
    }
}

/// Surfaces calibration-epoch *transitions* as discrete events — the hook
/// a fleet-scale config cache wires its drift invalidation to.
///
/// Feed it the wall-clock of each observation (monotonically); whenever
/// the clock crosses into a new calibration cycle the tracker returns the
/// new epoch once, which is the caller's cue to invalidate cached tuned
/// configurations from earlier epochs
/// (`ConfigStore::invalidate_before` in `vaqem-runtime`).
#[derive(Debug, Clone)]
pub struct EpochTracker {
    period_hours: f64,
    current: Option<u64>,
}

impl EpochTracker {
    /// Observes wall-clock hour `t_hours`. Returns `Some(epoch)` on the
    /// first observation and whenever the time has crossed into a new
    /// calibration cycle since the last observation; `None` while the
    /// epoch is unchanged.
    pub fn observe(&mut self, t_hours: f64) -> Option<u64> {
        let epoch = cycle_of(t_hours, self.period_hours);
        if self.current == Some(epoch) {
            None
        } else {
            self.current = Some(epoch);
            Some(epoch)
        }
    }

    /// The last observed epoch, if any time has been observed yet.
    pub fn epoch(&self) -> Option<u64> {
        self.current
    }
}

/// The fleet-wide epoch feed: one named [`EpochTracker`] per device,
/// surfacing every device's recalibration crossings through a single
/// observer — the hook a fleet daemon wires its store invalidation to
/// (each crossing maps to one `ConfigStore::invalidate_before` call and
/// one journal record in `vaqem-runtime`).
///
/// ```
/// use vaqem_device::drift::{DriftModel, EpochFeed};
/// use vaqem_mathkit::rng::SeedStream;
///
/// let east = DriftModel::new(SeedStream::new(1));
/// let west = DriftModel::new(SeedStream::new(2)).with_calibration_period_hours(6.0);
/// let mut feed = EpochFeed::new(&[("fleet-east", &east), ("fleet-west", &west)]);
/// assert_eq!(feed.observe(0, 1.0), Some(("fleet-east", 0)));
/// assert_eq!(feed.observe(0, 5.0), None, "same cycle is silent");
/// assert_eq!(feed.observe(1, 7.0), Some(("fleet-west", 1)));
/// ```
#[derive(Debug, Clone)]
pub struct EpochFeed {
    devices: Vec<(String, EpochTracker)>,
}

impl EpochFeed {
    /// Builds a feed with one tracker per `(name, drift model)` pair,
    /// each using its model's calibration period.
    pub fn new(devices: &[(&str, &DriftModel)]) -> Self {
        EpochFeed {
            devices: devices
                .iter()
                .map(|(name, drift)| (name.to_string(), drift.epoch_tracker()))
                .collect(),
        }
    }

    /// Number of tracked devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Returns `true` when no device is tracked.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The name of device `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn name(&self, index: usize) -> &str {
        &self.devices[index].0
    }

    /// Observes wall-clock hour `t_hours` on device `index`. Returns
    /// `Some((name, epoch))` on the first observation and on every
    /// recalibration crossing — the caller's cue to invalidate that
    /// device's stale cached configs.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn observe(&mut self, index: usize, t_hours: f64) -> Option<(&str, u64)> {
        let (name, tracker) = &mut self.devices[index];
        tracker.observe(t_hours).map(|epoch| (name.as_str(), epoch))
    }

    /// The last observed epoch of device `index`, if any.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn epoch(&self, index: usize) -> Option<u64> {
        self.devices[index].1.epoch()
    }
}

/// The one definition of "which calibration cycle is hour `t` in" —
/// shared by [`DriftModel::cycle_index`]/[`DriftModel::epoch_at`] and
/// [`EpochTracker::observe`] so cache keys and invalidation events can
/// never number epochs differently.
fn cycle_of(t_hours: f64, period_hours: f64) -> u64 {
    (t_hours / period_hours).floor().max(0.0) as u64
}

/// A smooth multiplicative wander in `[e^{-3a}, e^{3a}]` roughly, built from
/// three Fourier modes with random phases.
fn smooth_wander<R: Rng + ?Sized>(rng: &mut R, phase: f64, amplitude: f64) -> f64 {
    let mut x = 0.0;
    for k in 1..=3 {
        let p: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let a: f64 = rng.gen_range(0.3..1.0);
        x += a * (std::f64::consts::TAU * k as f64 * phase + p).sin() / k as f64;
    }
    (amplitude * x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DriftModel {
        DriftModel::new(SeedStream::new(99))
    }

    #[test]
    fn drift_is_deterministic() {
        let d = DeviceModel::ibmq_casablanca();
        let m = model();
        let a = m.noise_at(&d, 3.5);
        let b = m.noise_at(&d, 3.5);
        assert_eq!(a, b);
    }

    #[test]
    fn drift_changes_over_time() {
        let d = DeviceModel::ibmq_casablanca();
        let m = model();
        let a = m.noise_at(&d, 1.0);
        let b = m.noise_at(&d, 7.0);
        assert_ne!(
            a.qubit(0).t1_ns,
            b.qubit(0).t1_ns,
            "coherence should wander within a cycle"
        );
    }

    #[test]
    fn recalibration_boundaries() {
        let m = model().with_calibration_period_hours(12.0);
        assert_eq!(m.cycle_index(0.0), 0);
        assert_eq!(m.cycle_index(11.9), 0);
        assert_eq!(m.cycle_index(12.1), 1);
        assert!(m.crosses_recalibration(11.0, 13.0));
        assert!(!m.crosses_recalibration(1.0, 11.0));
    }

    #[test]
    fn recalibration_jump_is_visible() {
        let d = DeviceModel::ibmq_casablanca();
        let m = model();
        // Compare just before and after the cycle boundary: the anchors
        // differ, so the change should exceed typical intra-cycle wander
        // between adjacent samples.
        let before = m.noise_at(&d, 11.99).qubit(0).t1_ns;
        let after = m.noise_at(&d, 12.01).qubit(0).t1_ns;
        let within_a = m.noise_at(&d, 5.00).qubit(0).t1_ns;
        let within_b = m.noise_at(&d, 5.02).qubit(0).t1_ns;
        let jump = (after / before - 1.0).abs();
        let wander = (within_b / within_a - 1.0).abs();
        assert!(jump > wander, "jump {jump} should exceed wander {wander}");
    }

    #[test]
    fn drifted_noise_stays_physical() {
        let d = DeviceModel::ibmq_casablanca();
        let m = model();
        for h in 0..48 {
            let n = m.noise_at(&d, h as f64 * 0.5);
            for q in 0..n.num_qubits() {
                let qn = n.qubit(q);
                assert!(qn.t1_ns > 0.0);
                assert!(qn.t2_ns <= 2.0 * qn.t1_ns + 1e-6);
                assert!(qn.readout_p10 <= 0.3);
            }
        }
    }

    #[test]
    fn epoch_tracker_fires_once_per_crossing() {
        let m = model().with_calibration_period_hours(12.0);
        let mut t = m.epoch_tracker();
        assert_eq!(t.epoch(), None);
        assert_eq!(t.observe(0.5), Some(0), "first observation reports");
        assert_eq!(t.observe(5.0), None, "same cycle is silent");
        assert_eq!(t.observe(11.9), None);
        assert_eq!(t.observe(12.1), Some(1), "recalibration crossing fires");
        assert_eq!(t.observe(13.0), None);
        assert_eq!(t.observe(36.5), Some(3), "skipped cycles still fire once");
        assert_eq!(t.epoch(), Some(3));
        assert_eq!(m.epoch_at(36.5), 3, "tracker agrees with the model");
    }

    #[test]
    fn epoch_feed_tracks_devices_independently() {
        let east = model().with_calibration_period_hours(12.0);
        let west = model().with_calibration_period_hours(6.0);
        let mut feed = EpochFeed::new(&[("east", &east), ("west", &west)]);
        assert_eq!(feed.len(), 2);
        assert_eq!(feed.name(1), "west");
        assert_eq!(feed.observe(0, 1.0), Some(("east", 0)));
        assert_eq!(feed.observe(1, 1.0), Some(("west", 0)));
        // 7 h: west (6 h cycles) has recalibrated, east has not.
        assert_eq!(feed.observe(0, 7.0), None);
        assert_eq!(feed.observe(1, 7.0), Some(("west", 1)));
        assert_eq!(feed.epoch(0), Some(0));
        assert_eq!(feed.epoch(1), Some(1));
        assert_eq!(feed.observe(0, 13.0), Some(("east", 1)));
    }

    #[test]
    fn builder_overrides() {
        let m = model()
            .with_calibration_period_hours(6.0)
            .with_amplitudes(0.1, 0.2, 0.3);
        assert_eq!(m.calibration_period_hours(), 6.0);
        assert_eq!(m.cycle_index(7.0), 1);
    }
}
