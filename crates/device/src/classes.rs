//! Device-class presets: named noise/drift regimes for the scenario
//! matrix's device axis.
//!
//! The paper's machines differ along two temporal axes the fleet stack
//! cares about — how fast coherence decays *within* a circuit
//! ([`crate::noise::QubitNoise`]) and how fast calibration drifts
//! *between* sessions ([`crate::drift::DriftModel`]). A
//! [`DeviceClass`] bundles one point in that plane into a reproducible
//! preset; the scenario harness instantiates each class at whatever
//! width its workload needs (the trajectory machine is all-to-all, so
//! width is free — what a class pins down is the physics).
//!
//! Both presets keep a strong quasi-static detuning component relative
//! to their coherence: that is the Fig. 5 regime where idle-window DD
//! has a real optimum, so the tuner's acceptance-guard verdicts reflect
//! physics rather than shot noise.

use crate::backend::DeviceModel;
use crate::drift::DriftModel;
use crate::noise::{NoiseParameters, QubitNoise};
use vaqem_circuit::schedule::DurationModel;
use vaqem_mathkit::rng::SeedStream;

/// A named device noise/drift regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Slow decoherence, slow drift: T1 = 120 µs / T2 = 90 µs, 12-hour
    /// calibration cycles with gentle wander — the well-behaved lab
    /// backend most of the paper's runs assume.
    StableLab,
    /// Fast decoherence, fast drift: T1 = 45 µs / T2 = 30 µs, 6-hour
    /// calibration cycles with strong wander and recalibration jumps —
    /// the aggressive end of the fleet, where cached configs go stale
    /// twice as often and DD has more to refocus.
    NoisyFab,
}

impl DeviceClass {
    /// Both classes, in grid order.
    pub const ALL: [DeviceClass; 2] = [DeviceClass::StableLab, DeviceClass::NoisyFab];

    /// Stable grid label (`stable-lab` / `noisy-fab`).
    pub fn label(&self) -> &'static str {
        match self {
            DeviceClass::StableLab => "stable-lab",
            DeviceClass::NoisyFab => "noisy-fab",
        }
    }

    /// The class's per-qubit noise point.
    pub fn qubit_noise(&self) -> QubitNoise {
        match self {
            DeviceClass::StableLab => QubitNoise {
                t1_ns: 120_000.0,
                t2_ns: 90_000.0,
                quasi_static_sigma_rad_ns: 2.0e-3,
                telegraph_rate_per_ns: 2.0e-6,
                readout_p01: 0.012,
                readout_p10: 0.025,
                gate_error_1q: 1.5e-4,
            },
            DeviceClass::NoisyFab => QubitNoise {
                t1_ns: 45_000.0,
                t2_ns: 30_000.0,
                quasi_static_sigma_rad_ns: 3.0e-3,
                telegraph_rate_per_ns: 6.0e-6,
                readout_p01: 0.02,
                readout_p10: 0.035,
                gate_error_1q: 4.0e-4,
            },
        }
    }

    /// Linear-chain coupling map for an `n`-qubit instance.
    pub fn coupling(&self, n: usize) -> Vec<(usize, usize)> {
        (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect()
    }

    /// Full noise parameters at width `n`: the class's qubit point on
    /// every qubit, plus always-on ZZ coupling along the chain.
    pub fn noise(&self, n: usize) -> NoiseParameters {
        let zz = match self {
            DeviceClass::StableLab => 1.0e-5,
            DeviceClass::NoisyFab => 2.5e-5,
        };
        let mut noise = NoiseParameters::from_qubits(vec![self.qubit_noise(); n]);
        for (a, b) in self.coupling(n) {
            noise.set_zz(a, b, zz);
        }
        noise
    }

    /// The class's drift regime, seeded from `seeds` (callers derive a
    /// per-device substream so two devices of the same class drift
    /// independently).
    pub fn drift(&self, seeds: SeedStream) -> DriftModel {
        match self {
            DeviceClass::StableLab => DriftModel::new(seeds)
                .with_calibration_period_hours(12.0)
                .with_amplitudes(0.10, 0.18, 0.15),
            DeviceClass::NoisyFab => DriftModel::new(seeds)
                .with_calibration_period_hours(6.0)
                .with_amplitudes(0.22, 0.35, 0.30),
        }
    }

    /// A complete `n`-qubit [`DeviceModel`] of this class named `name`.
    pub fn device(&self, name: &str, n: usize) -> DeviceModel {
        DeviceModel::new(
            name,
            n,
            self.coupling(n),
            DurationModel::ibm_default(),
            self.noise(n),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_ordered_fast_vs_slow() {
        let lab = DeviceClass::StableLab.qubit_noise();
        let fab = DeviceClass::NoisyFab.qubit_noise();
        assert!(lab.t1_ns > fab.t1_ns && lab.t2_ns > fab.t2_ns);
        assert!(lab.gate_error_1q < fab.gate_error_1q);
        let seeds = SeedStream::new(1);
        let lab_drift = DeviceClass::StableLab.drift(seeds);
        let fab_drift = DeviceClass::NoisyFab.drift(seeds);
        assert!(
            lab_drift.calibration_period_hours() > fab_drift.calibration_period_hours(),
            "the noisy class recalibrates more often"
        );
    }

    #[test]
    fn device_instantiates_at_any_width() {
        for n in [2, 4, 6] {
            let d = DeviceClass::NoisyFab.device("fab-0", n);
            assert_eq!(d.noise().num_qubits(), n);
            let drifted = DeviceClass::NoisyFab
                .drift(SeedStream::new(3))
                .noise_at(&d, 1.0);
            assert_eq!(drifted.num_qubits(), n);
        }
    }

    #[test]
    fn zz_coupling_present_on_every_chain_edge() {
        let noise = DeviceClass::StableLab.noise(4);
        assert_eq!(noise.zz_couplings().count(), 3);
    }
}
