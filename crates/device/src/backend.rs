//! Device (backend) models.
//!
//! [`DeviceModel`] bundles everything a transpile-and-execute flow needs:
//! qubit count, coupling map, duration table, and nominal noise parameters.
//! Four presets mirror the machines the paper evaluates on
//! (§VII-A): `ibmq_casablanca` and `ibmq_jakarta` (7 qubits, "H" topology),
//! `ibmq_guadalupe` (16 qubits), and `ibmq_montreal` (27 qubits, heavy-hex).
//! Per-qubit parameters vary deterministically around the nominal values so
//! that "good" and "bad" qubits exist, as on real hardware (the paper notes
//! TFIM_6q_c_4r is forced onto noisy qubits).

use crate::noise::{NoiseParameters, QubitNoise};
use rand::Rng;
use vaqem_circuit::schedule::DurationModel;
use vaqem_mathkit::rng::SeedStream;

/// A quantum backend: topology, timing, and nominal noise.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    name: String,
    num_qubits: usize,
    coupling: Vec<(usize, usize)>,
    durations: DurationModel,
    noise: NoiseParameters,
}

impl DeviceModel {
    /// Builds a device from explicit parts.
    pub fn new(
        name: impl Into<String>,
        num_qubits: usize,
        coupling: Vec<(usize, usize)>,
        durations: DurationModel,
        noise: NoiseParameters,
    ) -> Self {
        assert_eq!(
            noise.num_qubits(),
            num_qubits,
            "noise parameters must cover every qubit"
        );
        DeviceModel {
            name: name.into(),
            num_qubits,
            coupling,
            durations,
            noise,
        }
    }

    /// Backend name, e.g. `"ibmq_casablanca"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Undirected coupling map.
    pub fn coupling(&self) -> &[(usize, usize)] {
        &self.coupling
    }

    /// Returns `true` if `a` and `b` are directly coupled.
    pub fn are_coupled(&self, a: usize, b: usize) -> bool {
        self.coupling
            .iter()
            .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }

    /// Gate duration table.
    pub fn durations(&self) -> &DurationModel {
        &self.durations
    }

    /// Nominal noise parameters (most recent calibration).
    pub fn noise(&self) -> &NoiseParameters {
        &self.noise
    }

    /// Mutable noise access (drift application).
    pub fn noise_mut(&mut self) -> &mut NoiseParameters {
        &mut self.noise
    }

    /// The 7-qubit "H"-shaped device the paper ran most experiments on.
    pub fn ibmq_casablanca() -> Self {
        Self::falcon7("ibmq_casablanca", 0xCA5A)
    }

    /// The second 7-qubit device used for the non-Runtime workloads.
    pub fn ibmq_jakarta() -> Self {
        Self::falcon7("ibmq_jakarta", 0x1A4A)
    }

    /// 16-qubit Falcon (heavy-hex fragment).
    pub fn ibmq_guadalupe() -> Self {
        let coupling = vec![
            (0, 1),
            (1, 2),
            (1, 4),
            (2, 3),
            (3, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
        ];
        Self::build("ibmq_guadalupe", 16, coupling, 0x6A7E)
    }

    /// 27-qubit Falcon used for the Qiskit Runtime chemistry workloads.
    pub fn ibmq_montreal() -> Self {
        let coupling = vec![
            (0, 1),
            (1, 2),
            (1, 4),
            (2, 3),
            (3, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
            (14, 16),
            (15, 18),
            (16, 19),
            (17, 18),
            (18, 21),
            (19, 20),
            (19, 22),
            (21, 23),
            (22, 25),
            (23, 24),
            (24, 25),
            (25, 26),
        ];
        Self::build("ibmq_montreal", 27, coupling, 0x304E)
    }

    fn falcon7(name: &str, seed: u64) -> Self {
        // IBM 7-qubit "H" topology: 0-1-2 across the top with 1-3 the stem,
        // 3-5, and 4-5-6 across the bottom.
        let coupling = vec![(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)];
        Self::build(name, 7, coupling, seed)
    }

    fn build(name: &str, n: usize, coupling: Vec<(usize, usize)>, seed: u64) -> Self {
        let stream = SeedStream::new(seed);
        let mut rng = stream.rng("device-fabrication");
        let mut qubits = Vec::with_capacity(n);
        for _ in 0..n {
            let nominal = QubitNoise::default();
            // Log-normal-ish fabrication spread: some qubits are 2-3x worse.
            let t1 = nominal.t1_ns * lognormal_factor(&mut rng, 0.35);
            let t2 = (nominal.t2_ns * lognormal_factor(&mut rng, 0.40)).min(2.0 * t1);
            qubits.push(QubitNoise {
                t1_ns: t1,
                t2_ns: t2,
                quasi_static_sigma_rad_ns: nominal.quasi_static_sigma_rad_ns
                    * lognormal_factor(&mut rng, 0.5),
                telegraph_rate_per_ns: nominal.telegraph_rate_per_ns
                    * lognormal_factor(&mut rng, 0.5),
                readout_p01: (nominal.readout_p01 * lognormal_factor(&mut rng, 0.4)).min(0.2),
                readout_p10: (nominal.readout_p10 * lognormal_factor(&mut rng, 0.4)).min(0.25),
                gate_error_1q: nominal.gate_error_1q * lognormal_factor(&mut rng, 0.4),
            });
        }
        let mut noise = NoiseParameters::from_qubits(qubits);
        for &(a, b) in &coupling {
            noise.set_cx_error(a, b, 1.0e-2 * lognormal_factor(&mut rng, 0.4));
            // Always-on ZZ: ~2π * 40-120 kHz.
            noise.set_zz(a, b, 2.5e-4 * lognormal_factor(&mut rng, 0.4));
        }
        DeviceModel::new(name, n, coupling, DurationModel::ibm_default(), noise)
    }
}

fn lognormal_factor<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    (sigma * vaqem_mathkit::rng::sample_standard_normal(rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn casablanca_topology() {
        let d = DeviceModel::ibmq_casablanca();
        assert_eq!(d.num_qubits(), 7);
        assert_eq!(d.name(), "ibmq_casablanca");
        assert!(d.are_coupled(1, 3));
        assert!(d.are_coupled(3, 1));
        assert!(!d.are_coupled(0, 6));
        assert_eq!(d.coupling().len(), 6);
    }

    #[test]
    fn presets_have_expected_sizes() {
        assert_eq!(DeviceModel::ibmq_jakarta().num_qubits(), 7);
        assert_eq!(DeviceModel::ibmq_guadalupe().num_qubits(), 16);
        assert_eq!(DeviceModel::ibmq_montreal().num_qubits(), 27);
    }

    #[test]
    fn coupling_indices_in_range() {
        for d in [
            DeviceModel::ibmq_casablanca(),
            DeviceModel::ibmq_jakarta(),
            DeviceModel::ibmq_guadalupe(),
            DeviceModel::ibmq_montreal(),
        ] {
            for &(a, b) in d.coupling() {
                assert!(a < d.num_qubits() && b < d.num_qubits(), "{}", d.name());
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn fabrication_spread_exists_but_is_bounded() {
        let d = DeviceModel::ibmq_casablanca();
        let t1s: Vec<f64> = (0..7).map(|q| d.noise().qubit(q).t1_ns).collect();
        let min = t1s.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = t1s.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "qubits should differ");
        assert!(min > 10_000.0, "T1 should stay physical: {min}");
        assert!(max < 1_000_000.0, "T1 should stay physical: {max}");
        for q in 0..7 {
            let qn = d.noise().qubit(q);
            assert!(qn.t2_ns <= 2.0 * qn.t1_ns + 1e-9);
        }
    }

    #[test]
    fn devices_are_deterministic() {
        let a = DeviceModel::ibmq_casablanca();
        let b = DeviceModel::ibmq_casablanca();
        assert_eq!(a, b);
    }

    #[test]
    fn different_devices_differ() {
        let a = DeviceModel::ibmq_casablanca();
        let b = DeviceModel::ibmq_jakarta();
        assert_ne!(
            a.noise().qubit(0).t1_ns,
            b.noise().qubit(0).t1_ns,
            "fabrication seeds should differ"
        );
    }

    #[test]
    fn coupled_pairs_have_zz() {
        let d = DeviceModel::ibmq_casablanca();
        let zz: Vec<_> = d.noise().zz_couplings().collect();
        assert_eq!(zz.len(), d.coupling().len());
        for (_, zeta) in zz {
            assert!(zeta > 0.0);
        }
    }
}
