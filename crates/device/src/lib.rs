//! # vaqem-device
//!
//! NISQ device models for the VAQEM (HPCA 2022) reproduction. This crate
//! stands in for the IBM backends the paper ran on: it provides topologies
//! and duration tables for `ibmq_casablanca`, `ibmq_jakarta`,
//! `ibmq_guadalupe`, and `ibmq_montreal`, a two-tier noise description
//! (Markovian calibration terms vs. correlated quasi-static/ZZ terms — the
//! distinction behind the paper's Fig. 9), and a temporal drift model
//! reproducing Fig. 16's recalibration behaviour.
//!
//! # Examples
//!
//! ```
//! use vaqem_device::backend::DeviceModel;
//!
//! let dev = DeviceModel::ibmq_casablanca();
//! assert_eq!(dev.num_qubits(), 7);
//! // Calibration-style noise model: correlated channels stripped.
//! let sim_model = dev.noise().markovian_only();
//! assert_eq!(sim_model.qubit(0).quasi_static_sigma_rad_ns, 0.0);
//! ```

pub mod backend;
pub mod classes;
pub mod drift;
pub mod noise;

pub use backend::DeviceModel;
pub use classes::DeviceClass;
pub use drift::DriftModel;
pub use noise::{NoiseParameters, QubitNoise};
