//! Noise parameterization consumed by the simulators.
//!
//! [`NoiseParameters`] is the full physical description the trajectory
//! executor needs. It separates two classes of noise, which is the crux of
//! reproducing the paper's Fig. 9 (noisy *simulation* vs. the real machine):
//!
//! * **Markovian** terms — T1 amplitude damping, T2 pure dephasing,
//!   depolarizing gate error, readout assignment error. These are what a
//!   calibration-derived Qiskit noise model captures.
//! * **Correlated** terms — quasi-static (low-frequency) detuning and
//!   always-on ZZ coupling between neighbours. These are *not* captured by
//!   calibration noise models, but they are exactly what dynamical
//!   decoupling and echo-based gate scheduling act on.
//!
//! [`NoiseParameters::markovian_only`] strips the correlated terms, yielding
//! the "noisy simulation" model of Fig. 9; the full set plays the "real
//! machine".

use std::collections::HashMap;

/// Per-qubit physical noise properties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QubitNoise {
    /// Amplitude-damping time constant in nanoseconds.
    pub t1_ns: f64,
    /// Total dephasing time constant in nanoseconds (T2 <= 2*T1).
    pub t2_ns: f64,
    /// Standard deviation of the quasi-static angular detuning in rad/ns.
    ///
    /// Sampled once per trajectory (shot); models 1/f flux noise and slow
    /// TLS drift. This is the component an echo refocuses.
    pub quasi_static_sigma_rad_ns: f64,
    /// Telegraph-noise switching rate in 1/ns (two-level-system hops). The
    /// detuning sign flips at this Poisson rate within a trajectory, which
    /// bounds how much a *single* echo can refocus and rewards shorter DD
    /// periods — the mechanism behind interior optima in Fig. 5.
    pub telegraph_rate_per_ns: f64,
    /// Probability of reading 1 when the qubit is 0.
    pub readout_p01: f64,
    /// Probability of reading 0 when the qubit is 1.
    pub readout_p10: f64,
    /// Depolarizing error probability per single-qubit gate.
    pub gate_error_1q: f64,
}

impl QubitNoise {
    /// Pure-dephasing rate `1/T_phi = 1/T2 - 1/(2 T1)` in 1/ns, clamped at 0.
    pub fn pure_dephasing_rate(&self) -> f64 {
        (1.0 / self.t2_ns - 0.5 / self.t1_ns).max(0.0)
    }

    /// Returns a copy with the correlated noise channels removed.
    pub fn markovian_only(&self) -> QubitNoise {
        QubitNoise {
            quasi_static_sigma_rad_ns: 0.0,
            telegraph_rate_per_ns: 0.0,
            ..*self
        }
    }
}

impl Default for QubitNoise {
    /// A median IBM-Falcon-era qubit.
    fn default() -> Self {
        QubitNoise {
            t1_ns: 100_000.0,
            t2_ns: 80_000.0,
            quasi_static_sigma_rad_ns: 1.8e-4,
            telegraph_rate_per_ns: 8.0e-6,
            readout_p01: 0.015,
            readout_p10: 0.03,
            gate_error_1q: 3.0e-4,
        }
    }
}

/// Complete noise description for a device.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NoiseParameters {
    qubits: Vec<QubitNoise>,
    cx_error: HashMap<(usize, usize), f64>,
    zz_rad_ns: HashMap<(usize, usize), f64>,
}

impl NoiseParameters {
    /// Creates noise parameters for `n` identical default qubits.
    pub fn uniform(n: usize) -> Self {
        NoiseParameters {
            qubits: vec![QubitNoise::default(); n],
            cx_error: HashMap::new(),
            zz_rad_ns: HashMap::new(),
        }
    }

    /// Creates noise parameters from explicit per-qubit properties.
    pub fn from_qubits(qubits: Vec<QubitNoise>) -> Self {
        NoiseParameters {
            qubits,
            cx_error: HashMap::new(),
            zz_rad_ns: HashMap::new(),
        }
    }

    /// Number of qubits described.
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Per-qubit noise for `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn qubit(&self, q: usize) -> &QubitNoise {
        &self.qubits[q]
    }

    /// Mutable access to qubit noise (used by drift application).
    pub fn qubit_mut(&mut self, q: usize) -> &mut QubitNoise {
        &mut self.qubits[q]
    }

    /// Sets the CX depolarizing error for a directed pair; stored
    /// symmetrically.
    pub fn set_cx_error(&mut self, a: usize, b: usize, p: f64) {
        self.cx_error.insert(ordered(a, b), p);
    }

    /// CX depolarizing error for a pair (default `1e-2` when unset).
    pub fn cx_error(&self, a: usize, b: usize) -> f64 {
        self.cx_error.get(&ordered(a, b)).copied().unwrap_or(1.0e-2)
    }

    /// Sets the always-on ZZ coupling strength (rad/ns) for a pair.
    pub fn set_zz(&mut self, a: usize, b: usize, zeta_rad_ns: f64) {
        self.zz_rad_ns.insert(ordered(a, b), zeta_rad_ns);
    }

    /// Iterates over `(pair, zeta)` ZZ couplings.
    pub fn zz_couplings(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.zz_rad_ns.iter().map(|(&k, &v)| (k, v))
    }

    /// Returns a calibration-style model: same Markovian rates, no
    /// correlated noise — what a Qiskit `NoiseModel.from_backend` captures.
    pub fn markovian_only(&self) -> NoiseParameters {
        NoiseParameters {
            qubits: self.qubits.iter().map(QubitNoise::markovian_only).collect(),
            cx_error: self.cx_error.clone(),
            zz_rad_ns: HashMap::new(),
        }
    }

    /// Returns a copy with every noise channel disabled (ideal device).
    pub fn noiseless(n: usize) -> NoiseParameters {
        let q = QubitNoise {
            t1_ns: f64::INFINITY,
            t2_ns: f64::INFINITY,
            quasi_static_sigma_rad_ns: 0.0,
            telegraph_rate_per_ns: 0.0,
            readout_p01: 0.0,
            readout_p10: 0.0,
            gate_error_1q: 0.0,
        };
        let mut p = NoiseParameters::from_qubits(vec![q; n]);
        p.cx_error = HashMap::new();
        // Explicit zero CX error for any pair.
        for a in 0..n {
            for b in (a + 1)..n {
                p.cx_error.insert((a, b), 0.0);
            }
        }
        p
    }

    /// Extracts the noise description for a subset of physical qubits,
    /// renumbering them `0..layout.len()` in order. CX errors and ZZ
    /// couplings between selected qubits are carried over; couplings to
    /// unselected spectators are dropped.
    ///
    /// This is how a circuit mapped onto physical qubits `layout` sees the
    /// device.
    ///
    /// # Panics
    ///
    /// Panics if `layout` references a qubit out of range or repeats one.
    pub fn subset(&self, layout: &[usize]) -> NoiseParameters {
        let mut index_of = HashMap::new();
        for (virt, &phys) in layout.iter().enumerate() {
            assert!(phys < self.qubits.len(), "layout qubit {phys} out of range");
            assert!(
                index_of.insert(phys, virt).is_none(),
                "layout repeats qubit {phys}"
            );
        }
        let qubits = layout.iter().map(|&p| self.qubits[p]).collect();
        let mut out = NoiseParameters::from_qubits(qubits);
        for (&(a, b), &p) in &self.cx_error {
            if let (Some(&va), Some(&vb)) = (index_of.get(&a), index_of.get(&b)) {
                out.set_cx_error(va, vb, p);
            }
        }
        for (&(a, b), &z) in &self.zz_rad_ns {
            if let (Some(&va), Some(&vb)) = (index_of.get(&a), index_of.get(&b)) {
                out.set_zz(va, vb, z);
            }
        }
        out
    }

    /// Scales T1 and T2 on every qubit by `factor` (drift helper).
    pub fn scale_coherence(&mut self, factor: f64) {
        for q in self.qubits.iter_mut() {
            q.t1_ns *= factor;
            q.t2_ns *= factor;
            // T2 <= 2*T1 must keep holding.
            q.t2_ns = q.t2_ns.min(2.0 * q.t1_ns);
        }
    }
}

fn ordered(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_qubit_is_physical() {
        let q = QubitNoise::default();
        assert!(q.t2_ns <= 2.0 * q.t1_ns);
        assert!(q.pure_dephasing_rate() > 0.0);
        assert!(q.readout_p01 < 0.5 && q.readout_p10 < 0.5);
    }

    #[test]
    fn pure_dephasing_rate_clamps_at_zero() {
        let q = QubitNoise {
            t1_ns: 100.0,
            t2_ns: 200.0, // T2 = 2*T1: no pure dephasing
            ..QubitNoise::default()
        };
        assert_eq!(q.pure_dephasing_rate(), 0.0);
    }

    #[test]
    fn markovian_only_strips_correlated_noise() {
        let p = NoiseParameters::uniform(3);
        let m = p.markovian_only();
        for q in 0..3 {
            assert_eq!(m.qubit(q).quasi_static_sigma_rad_ns, 0.0);
            assert_eq!(m.qubit(q).telegraph_rate_per_ns, 0.0);
            // Markovian rates preserved.
            assert_eq!(m.qubit(q).t1_ns, p.qubit(q).t1_ns);
            assert_eq!(m.qubit(q).readout_p10, p.qubit(q).readout_p10);
        }
        assert_eq!(m.zz_couplings().count(), 0);
    }

    #[test]
    fn cx_error_is_symmetric() {
        let mut p = NoiseParameters::uniform(3);
        p.set_cx_error(2, 0, 0.02);
        assert_eq!(p.cx_error(0, 2), 0.02);
        assert_eq!(p.cx_error(2, 0), 0.02);
        // Unset pairs fall back to the default.
        assert_eq!(p.cx_error(0, 1), 1.0e-2);
    }

    #[test]
    fn zz_round_trip() {
        let mut p = NoiseParameters::uniform(2);
        p.set_zz(1, 0, 3.0e-4);
        let pairs: Vec<_> = p.zz_couplings().collect();
        assert_eq!(pairs, vec![((0, 1), 3.0e-4)]);
    }

    #[test]
    fn noiseless_has_no_error() {
        let p = NoiseParameters::noiseless(2);
        assert_eq!(p.qubit(0).gate_error_1q, 0.0);
        assert_eq!(p.cx_error(0, 1), 0.0);
        assert!(p.qubit(0).t1_ns.is_infinite());
    }

    #[test]
    fn subset_renumbers_and_carries_couplings() {
        let mut p = NoiseParameters::uniform(5);
        p.qubit_mut(3).t1_ns = 12_345.0;
        p.set_cx_error(1, 3, 0.05);
        p.set_zz(1, 3, 4.0e-4);
        p.set_zz(0, 1, 1.0e-4); // dropped: qubit 0 not selected
        let s = p.subset(&[1, 3]);
        assert_eq!(s.num_qubits(), 2);
        assert_eq!(s.qubit(1).t1_ns, 12_345.0);
        assert_eq!(s.cx_error(0, 1), 0.05);
        let zz: Vec<_> = s.zz_couplings().collect();
        assert_eq!(zz, vec![((0, 1), 4.0e-4)]);
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn subset_rejects_duplicates() {
        let p = NoiseParameters::uniform(3);
        let _ = p.subset(&[1, 1]);
    }

    #[test]
    fn scale_coherence_keeps_t2_bound() {
        let mut p = NoiseParameters::from_qubits(vec![QubitNoise {
            t1_ns: 100.0,
            t2_ns: 200.0,
            ..QubitNoise::default()
        }]);
        p.scale_coherence(0.5);
        let q = p.qubit(0);
        assert_eq!(q.t1_ns, 50.0);
        assert!(q.t2_ns <= 2.0 * q.t1_ns + 1e-12);
    }
}
