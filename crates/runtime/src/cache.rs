//! The fleet-scale tuned-configuration store.
//!
//! The paper's per-idle-window EM tuning is the dominant machine-time cost
//! of the feasible flow (Fig. 15), yet its own transfer result (Fig. 8,
//! §IX) shows tuned choices carry across runs. [`ConfigStore`] is the
//! amortization vehicle: a bounded LRU map from `(device, calibration
//! epoch, window fingerprint)` to a tuned per-window choice, shared by
//! every client running against the same device.
//!
//! The store is deliberately generic over the fingerprint (`F`) and the
//! cached value (`V`): the core crate defines the concrete
//! `WindowFingerprint` (it needs circuit and noise types this crate must
//! not depend on), while this crate owns eviction, metrics, and the
//! invalidation contract.
//!
//! # Invalidation contract
//!
//! * The **calibration epoch is part of the key**: entries recorded under
//!   one calibration never answer lookups from another, so a recalibrated
//!   device misses naturally and re-tunes.
//! * [`ConfigStore::invalidate_before`] additionally *drops* every entry
//!   of a device older than a given epoch — wired to
//!   `vaqem_device::drift` recalibration crossings so dead entries do not
//!   squat in the LRU budget.
//! * [`ConfigStore::remove`] evicts a single entry; the warm-start tuner
//!   calls it when the acceptance guard rejects a cache-seeded
//!   configuration (the entry is stale even though its epoch is current).
//!
//! # Determinism
//!
//! The store itself is pure bookkeeping: lookups and insertions never
//! touch an RNG, and eviction order is decided by a monotonic use counter,
//! never by hash-map iteration order alone (ties are impossible). A fleet
//! replay that interacts with the store in a fixed order is therefore
//! bit-reproducible.

use std::collections::HashMap;
use std::hash::Hash;

/// Hit/miss/eviction counters for one [`ConfigStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheMetrics {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries written (fresh keys and overwrites alike).
    pub insertions: u64,
    /// Entries dropped to respect the capacity bound — and *only* those:
    /// capacity pressure and staleness are separate operational signals,
    /// so invalidation-driven removals never count here (pinned by
    /// `crate::store` tests).
    pub evictions: u64,
    /// Entries dropped by explicit invalidation ([`ConfigStore::remove`],
    /// [`ConfigStore::invalidate_before`],
    /// [`ConfigStore::invalidate_all_before`]).
    pub invalidations: u64,
}

impl CacheMetrics {
    /// Fraction of lookups answered from the store (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another counter set into this one — used to aggregate
    /// per-shard metrics (`crate::store::ShardedStore::metrics`).
    pub fn merge(&mut self, other: &CacheMetrics) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
    }

    /// Field-wise saturating difference `self - earlier` — what happened
    /// *between* two metric snapshots. This is the per-session
    /// attribution primitive: a daemon snapshots the store counters
    /// around one client's session and attributes the delta to that
    /// client (`crate::store::ShardedStore::attribute_client`).
    /// Saturating, so a counter reset between snapshots yields zeros
    /// rather than wrapping.
    pub fn saturating_delta(&self, earlier: &CacheMetrics) -> CacheMetrics {
        CacheMetrics {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            insertions: self.insertions.saturating_sub(earlier.insertions),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
        }
    }
}

/// Full key of one cached entry: device, calibration epoch, fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StoreKey<F> {
    device: String,
    epoch: u64,
    fingerprint: F,
}

#[derive(Debug, Clone)]
struct Entry<V> {
    value: V,
    last_used: u64,
}

/// A bounded LRU store of tuned mitigation choices, keyed by
/// `(device, calibration epoch, fingerprint)`.
///
/// Implementation note: lookups build an owned key (one small `String`
/// allocation) and eviction at capacity scans all entries for the LRU
/// minimum — O(capacity) per insert once full. Both are deliberate: a
/// store access costs ~1 µs (see `bench_fleet_cache`) against the
/// ~10-100 ms of machine evaluations a single hit saves, and the flat
/// map keeps eviction trivially deterministic. Revisit with an intrusive
/// LRU list only if profiles ever show the store on a hot path.
///
/// ```
/// use vaqem_runtime::cache::ConfigStore;
///
/// let mut store: ConfigStore<u32, &str> = ConfigStore::new(2);
/// store.insert("dev-a", 0, 7, "two XY4 repetitions");
/// assert_eq!(store.get("dev-a", 0, &7), Some(&"two XY4 repetitions"));
/// assert_eq!(store.get("dev-a", 1, &7), None); // new epoch: natural miss
/// store.insert("dev-a", 0, 8, "centered gate");
/// store.insert("dev-a", 0, 9, "one XX repetition"); // evicts LRU (fp 8)
/// assert_eq!(store.len(), 2);
/// assert_eq!(store.metrics().hits, 1);
/// assert_eq!(store.metrics().evictions, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ConfigStore<F, V> {
    capacity: usize,
    map: HashMap<StoreKey<F>, Entry<V>>,
    clock: u64,
    metrics: CacheMetrics,
}

impl<F: Hash + Eq + Clone, V> ConfigStore<F, V> {
    /// Creates a store holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ConfigStore {
            capacity,
            map: HashMap::new(),
            clock: 0,
            metrics: CacheMetrics::default(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries before LRU eviction kicks in.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counters accumulated since creation (or the last
    /// [`Self::reset_metrics`]).
    pub fn metrics(&self) -> &CacheMetrics {
        &self.metrics
    }

    /// Zeroes the counters (entries are untouched).
    pub fn reset_metrics(&mut self) {
        self.metrics = CacheMetrics::default();
    }

    /// Drops every entry without touching the traffic counters — a
    /// replication snapshot install, not client traffic (the same
    /// exemption recovery inserts get).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    fn key(device: &str, epoch: u64, fingerprint: F) -> StoreKey<F> {
        StoreKey {
            device: device.to_string(),
            epoch,
            fingerprint,
        }
    }

    /// Looks up the cached value for a fingerprint on a device at a
    /// calibration epoch, recording a hit or miss and refreshing the
    /// entry's LRU position.
    pub fn get(&mut self, device: &str, epoch: u64, fingerprint: &F) -> Option<&V> {
        self.clock += 1;
        let key = Self::key(device, epoch, fingerprint.clone());
        match self.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.clock;
                self.metrics.hits += 1;
                Some(&entry.value)
            }
            None => {
                self.metrics.misses += 1;
                None
            }
        }
    }

    /// Like [`Self::get`] but without touching metrics or LRU order
    /// (diagnostics and tests).
    pub fn peek(&self, device: &str, epoch: u64, fingerprint: &F) -> Option<&V> {
        self.map
            .get(&Self::key(device, epoch, fingerprint.clone()))
            .map(|e| &e.value)
    }

    /// Inserts (or overwrites) an entry, evicting the least-recently-used
    /// entry first when the store is at capacity.
    pub fn insert(&mut self, device: &str, epoch: u64, fingerprint: F, value: V) {
        self.clock += 1;
        let key = Self::key(device, epoch, fingerprint);
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            // Unique use counters make the LRU minimum unambiguous, so
            // eviction is deterministic despite hash-map iteration.
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.metrics.evictions += 1;
            }
        }
        self.metrics.insertions += 1;
        self.map.insert(
            key,
            Entry {
                value,
                last_used: self.clock,
            },
        );
    }

    /// Drops one entry, returning whether it existed. Used when the
    /// acceptance guard rejects a cache-seeded configuration: the entry is
    /// stale even though its epoch is current.
    pub fn remove(&mut self, device: &str, epoch: u64, fingerprint: &F) -> bool {
        let existed = self
            .map
            .remove(&Self::key(device, epoch, fingerprint.clone()))
            .is_some();
        if existed {
            self.metrics.invalidations += 1;
        }
        existed
    }

    /// Drops every entry of `device` with an epoch strictly before
    /// `epoch`, returning how many were dropped — the drift-invalidation
    /// hook, called when a device crosses a recalibration boundary.
    pub fn invalidate_before(&mut self, device: &str, epoch: u64) -> usize {
        let before = self.map.len();
        self.map
            .retain(|k, _| !(k.device == device && k.epoch < epoch));
        let dropped = before - self.map.len();
        self.metrics.invalidations += dropped as u64;
        dropped
    }

    /// Drops every entry with an epoch strictly before `epoch`, whatever
    /// its device — the per-shard leg of a fleet-wide drift broadcast
    /// (`crate::store::ShardedStore::invalidate_all_before`).
    pub fn invalidate_all_before(&mut self, epoch: u64) -> usize {
        let before = self.map.len();
        self.map.retain(|k, _| k.epoch >= epoch);
        let dropped = before - self.map.len();
        self.metrics.invalidations += dropped as u64;
        dropped
    }

    /// Every live entry as `(device, epoch, fingerprint, value)`, ordered
    /// oldest-to-newest by LRU recency — the persistence snapshot order:
    /// re-inserting the entries in this order into an empty store
    /// reproduces both the content and the eviction order.
    pub fn export_entries(&self) -> Vec<(String, u64, F, V)>
    where
        V: Clone,
    {
        let mut entries: Vec<(&StoreKey<F>, &Entry<V>)> = self.map.iter().collect();
        entries.sort_by_key(|(_, e)| e.last_used);
        entries
            .into_iter()
            .map(|(k, e)| {
                (
                    k.device.clone(),
                    k.epoch,
                    k.fingerprint.clone(),
                    e.value.clone(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let mut s: ConfigStore<u64, u32> = ConfigStore::new(8);
        assert_eq!(s.get("d", 0, &1), None);
        s.insert("d", 0, 1, 42);
        assert_eq!(s.get("d", 0, &1), Some(&42));
        assert_eq!(s.get("d", 1, &1), None, "epoch is part of the key");
        assert_eq!(s.get("e", 0, &1), None, "device is part of the key");
        let m = s.metrics();
        assert_eq!((m.hits, m.misses, m.insertions), (1, 3, 1));
        assert!((m.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_is_by_recency() {
        let mut s: ConfigStore<u64, u32> = ConfigStore::new(2);
        s.insert("d", 0, 1, 10);
        s.insert("d", 0, 2, 20);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(s.get("d", 0, &1), Some(&10));
        s.insert("d", 0, 3, 30);
        assert_eq!(s.len(), 2);
        assert!(s.peek("d", 0, &1).is_some());
        assert!(s.peek("d", 0, &2).is_none(), "LRU entry evicted");
        assert!(s.peek("d", 0, &3).is_some());
        assert_eq!(s.metrics().evictions, 1);
    }

    #[test]
    fn overwrite_does_not_evict() {
        let mut s: ConfigStore<u64, u32> = ConfigStore::new(2);
        s.insert("d", 0, 1, 10);
        s.insert("d", 0, 2, 20);
        s.insert("d", 0, 1, 11);
        assert_eq!(s.len(), 2);
        assert_eq!(s.peek("d", 0, &1), Some(&11));
        assert_eq!(s.metrics().evictions, 0);
    }

    #[test]
    fn invalidate_before_drops_only_stale_epochs_of_that_device() {
        let mut s: ConfigStore<u64, u32> = ConfigStore::new(16);
        s.insert("a", 0, 1, 1);
        s.insert("a", 1, 1, 2);
        s.insert("a", 2, 1, 3);
        s.insert("b", 0, 1, 4);
        let dropped = s.invalidate_before("a", 2);
        assert_eq!(dropped, 2);
        assert!(s.peek("a", 2, &1).is_some());
        assert!(s.peek("b", 0, &1).is_some(), "other devices untouched");
        assert_eq!(s.len(), 2);
        assert_eq!(s.metrics().invalidations, 2);
    }

    #[test]
    fn remove_counts_invalidation() {
        let mut s: ConfigStore<u64, u32> = ConfigStore::new(4);
        s.insert("d", 0, 1, 10);
        assert!(s.remove("d", 0, &1));
        assert!(!s.remove("d", 0, &1));
        assert_eq!(s.metrics().invalidations, 1);
        assert!(s.is_empty());
    }

    #[test]
    fn saturating_delta_attributes_a_window() {
        let earlier = CacheMetrics {
            hits: 3,
            misses: 1,
            insertions: 1,
            evictions: 0,
            invalidations: 0,
        };
        let later = CacheMetrics {
            hits: 5,
            misses: 4,
            insertions: 2,
            evictions: 1,
            invalidations: 0,
        };
        let delta = later.saturating_delta(&earlier);
        assert_eq!((delta.hits, delta.misses), (2, 3));
        assert_eq!(
            (delta.insertions, delta.evictions, delta.invalidations),
            (1, 1, 0)
        );
        // A counter reset between snapshots saturates to zero.
        let reset = CacheMetrics::default().saturating_delta(&later);
        assert_eq!(reset, CacheMetrics::default());
    }

    #[test]
    fn empty_metrics_hit_rate_is_zero() {
        let s: ConfigStore<u64, u32> = ConfigStore::new(1);
        assert_eq!(s.metrics().hit_rate(), 0.0);
        assert_eq!(s.capacity(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _: ConfigStore<u64, u32> = ConfigStore::new(0);
    }

    #[test]
    fn export_preserves_lru_order_and_roundtrips() {
        let mut s: ConfigStore<u64, u32> = ConfigStore::new(8);
        s.insert("d", 0, 1, 10);
        s.insert("d", 0, 2, 20);
        s.insert("e", 1, 3, 30);
        assert_eq!(s.get("d", 0, &1), Some(&10)); // refresh 1: now newest
        let exported = s.export_entries();
        assert_eq!(exported.len(), 3);
        assert_eq!(exported.last().unwrap().2, 1, "refreshed entry is newest");
        // Re-inserting in export order reproduces content and LRU order.
        let mut r: ConfigStore<u64, u32> = ConfigStore::new(8);
        for (d, ep, f, v) in exported {
            r.insert(&d, ep, f, v);
        }
        assert_eq!(r.export_entries(), s.export_entries());
    }

    #[test]
    fn invalidate_all_before_sweeps_every_device() {
        let mut s: ConfigStore<u64, u32> = ConfigStore::new(8);
        s.insert("a", 0, 1, 1);
        s.insert("b", 0, 1, 2);
        s.insert("b", 2, 1, 3);
        assert_eq!(s.invalidate_all_before(1), 2);
        assert_eq!(s.len(), 1);
        assert!(s.peek("b", 2, &1).is_some());
        assert_eq!(s.metrics().invalidations, 2);
    }
}
