//! Adaptive idle backoff for polling loops.
//!
//! Two loops in the fleet poll for work they cannot block on: the RPC
//! front-end's portable fallback pump (nonblocking accept/read/write
//! over every connection) and the replication follower's journal-sync
//! loop. Both face the same tension — a fixed short sleep burns a
//! measurable fraction of a core on a quiet daemon, a fixed long sleep
//! adds latency to the first byte after a quiet spell. [`IdleBackoff`]
//! resolves it the same way for both: sleep starts at a floor, doubles
//! per consecutive idle pass up to a ceiling, and snaps back to the
//! floor the moment any pass does work. An active loop keeps the
//! floor's responsiveness; an idle one converges to the ceiling's doze.

use std::time::Duration;

/// Adaptive idle sleep: floor-to-ceiling exponential backoff that
/// resets on activity. See the module docs for why both the fallback
/// RPC pump and the follower poll loop share this.
#[derive(Debug, Clone)]
pub struct IdleBackoff {
    floor: Duration,
    ceiling: Duration,
    current: Duration,
}

impl IdleBackoff {
    /// A backoff sleeping `floor` after the first idle pass, doubling
    /// per consecutive idle pass, capped at `ceiling`.
    ///
    /// # Panics
    ///
    /// Panics when `ceiling < floor` or `floor` is zero (a zero floor
    /// would never back off — the loop would spin).
    pub fn new(floor: Duration, ceiling: Duration) -> Self {
        assert!(!floor.is_zero(), "idle backoff floor must be nonzero");
        assert!(ceiling >= floor, "idle backoff ceiling below floor");
        IdleBackoff {
            floor,
            ceiling,
            current: floor,
        }
    }

    /// Called once per loop pass: returns how long to sleep (`None`
    /// after an active pass, which also resets the backoff to the
    /// floor).
    pub fn after(&mut self, active: bool) -> Option<Duration> {
        if active {
            self.current = self.floor;
            return None;
        }
        let sleep = self.current;
        self.current = (self.current * 2).min(self.ceiling);
        Some(sleep)
    }

    /// The configured floor (the first idle sleep after activity).
    pub fn floor(&self) -> Duration {
        self.floor
    }

    /// The configured ceiling (the idle sleep cap).
    pub fn ceiling(&self) -> Duration {
        self.ceiling
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_to_ceiling_and_resets_on_activity() {
        let mut backoff = IdleBackoff::new(Duration::from_millis(1), Duration::from_millis(10));
        let expected = [1u64, 2, 4, 8, 10, 10];
        for (pass, &ms) in expected.iter().enumerate() {
            assert_eq!(
                backoff.after(false),
                Some(Duration::from_millis(ms)),
                "idle pass {pass}"
            );
        }
        assert_eq!(backoff.after(true), None);
        assert_eq!(backoff.after(false), Some(Duration::from_millis(1)));
    }

    #[test]
    fn degenerate_equal_floor_and_ceiling_stays_flat() {
        let mut backoff = IdleBackoff::new(Duration::from_micros(500), Duration::from_micros(500));
        for _ in 0..4 {
            assert_eq!(backoff.after(false), Some(Duration::from_micros(500)));
        }
    }

    #[test]
    #[should_panic(expected = "ceiling below floor")]
    fn ceiling_below_floor_is_refused() {
        let _ = IdleBackoff::new(Duration::from_millis(2), Duration::from_millis(1));
    }
}
