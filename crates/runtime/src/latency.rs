//! A fixed-footprint latency histogram for the load-generation harness.
//!
//! The RPC load generator measures hundreds of thousands of
//! submit-to-result round trips and must report p50/p95/p99 without
//! keeping every sample (and without sorting a million-element vector
//! under memory pressure). [`LatencyHistogram`] is the standard
//! log-bucketed design: samples land in geometrically-growing buckets
//! (~7.2% wide, 300 buckets spanning 1µs to ~18min), quantiles are read
//! by walking the cumulative counts, and two histograms merge by adding
//! buckets — so per-thread recording needs no locks.
//!
//! Quantile error is bounded by the bucket width (one bucket ≈ 7.2%
//! relative error), which is far below the run-to-run noise of any
//! wall-clock latency measurement this repo makes.
//!
//! ```
//! use vaqem_runtime::latency::LatencyHistogram;
//!
//! let mut h = LatencyHistogram::new();
//! for us in [100.0, 200.0, 300.0, 400.0, 1000.0] {
//!     h.record_us(us);
//! }
//! assert_eq!(h.count(), 5);
//! let p50 = h.quantile_us(0.50);
//! assert!((200.0..=400.0).contains(&p50), "p50 {p50}");
//! assert!(h.quantile_us(0.99) >= p50);
//! ```

/// Buckets per octave: 2^(1/10) spacing ≈ 7.2% relative width.
const BUCKETS_PER_OCTAVE: f64 = 10.0;
/// Bucket count: 30 octaves cover 1µs .. 2^30µs ≈ 18 minutes; anything
/// slower clamps into the last bucket (the exact max is kept anyway).
const NUM_BUCKETS: usize = 300;

/// A log-bucketed histogram of latencies in microseconds. Merge-able,
/// fixed-size, quantile-readable. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    /// Exact extrema (the histogram quantizes everything else).
    min_us_bits: u64,
    max_us_bits: u64,
    /// Exact running sum for the mean.
    sum_us: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(us: f64) -> usize {
    if us <= 1.0 {
        return 0;
    }
    let b = (us.log2() * BUCKETS_PER_OCTAVE).floor() as usize;
    b.min(NUM_BUCKETS - 1)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            min_us_bits: f64::INFINITY.to_bits(),
            max_us_bits: 0.0f64.to_bits(),
            sum_us: 0.0,
        }
    }

    /// Records one latency sample, in microseconds. Negative and NaN
    /// samples are clamped to 0 (they can only come from clock skew).
    pub fn record_us(&mut self, us: f64) {
        let us = if us.is_finite() { us.max(0.0) } else { 0.0 };
        self.buckets[bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us += us;
        if us < f64::from_bits(self.min_us_bits) {
            self.min_us_bits = us.to_bits();
        }
        if us > f64::from_bits(self.max_us_bits) {
            self.max_us_bits = us.to_bits();
        }
    }

    /// Records an `std::time::Duration` sample.
    pub fn record(&mut self, d: std::time::Duration) {
        self.record_us(d.as_secs_f64() * 1e6);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the recorded samples (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64
        }
    }

    /// Exact smallest sample (0 when empty).
    pub fn min_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            f64::from_bits(self.min_us_bits)
        }
    }

    /// Exact largest sample (0 when empty).
    pub fn max_us(&self) -> f64 {
        f64::from_bits(self.max_us_bits)
    }

    /// The latency at quantile `q` (0..=1), in µs: linearly
    /// interpolated *within* the bucket holding the q-th sample (by the
    /// rank's position among that bucket's samples), clamped to the
    /// exact observed extrema so p0/p100 never over-report. Returns 0
    /// when empty.
    ///
    /// Interpolation matters at the tail: a heavy-tailed run can land
    /// both the p95 and p99 ranks in one ~7.2%-wide bucket, and
    /// returning the bucket's single representative value collapsed
    /// them to the identical number (the committed `BENCH_rpc.json`
    /// once showed `p99_us == p95_us` exactly). Distinct ranks now map
    /// to distinct positions within the bucket's span.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    pub fn quantile_us(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        // Fractional rank of the target sample, 1-based — p50 of 5
        // samples targets rank 2.5, between the 2nd and 3rd smallest.
        let rank = (q * self.count as f64).clamp(1.0, self.count as f64);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = seen;
            seen += n;
            if seen as f64 >= rank {
                // Interpolate across the bucket's span [2^(b/k),
                // 2^((b+1)/k)) by where the rank falls among its
                // samples. Tightening the span to the exact extrema is
                // a no-op for interior buckets (the min/max live
                // outside them) but keeps the first/last bucket from
                // interpolating into unoccupied space — without it, a
                // tail bucket only partially filled pushes every tail
                // quantile past `max_us` and the clamp collapses p95
                // and p99 to the identical value again.
                let lo = 2f64.powf(b as f64 / BUCKETS_PER_OCTAVE).max(self.min_us());
                let hi = 2f64
                    .powf((b as f64 + 1.0) / BUCKETS_PER_OCTAVE)
                    .min(self.max_us());
                let frac = (rank - before as f64) / n as f64;
                return lo + (hi - lo) * frac;
            }
        }
        self.max_us()
    }

    /// Adds another histogram's samples into this one (per-thread
    /// recording, merged at report time).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        // The raw extrema start at the +inf/0 identities, so comparing
        // bits-decoded values is correct whether either side is empty.
        if f64::from_bits(other.min_us_bits) < f64::from_bits(self.min_us_bits) {
            self.min_us_bits = other.min_us_bits;
        }
        if f64::from_bits(other.max_us_bits) > f64::from_bits(self.max_us_bits) {
            self.max_us_bits = other.max_us_bits;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0.0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.min_us(), 0.0);
        assert_eq!(h.max_us(), 0.0);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded_by_extrema() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000 {
            h.record_us(i as f64 * 50.0); // 50µs .. 50ms, uniform
        }
        let (p50, p95, p99) = (h.quantile_us(0.5), h.quantile_us(0.95), h.quantile_us(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= h.max_us());
        assert!(h.quantile_us(0.0) >= h.min_us());
        // Log-bucket relative error: one bucket is ~7.2% wide; allow 2.
        assert!((p50 / 25_000.0 - 1.0).abs() < 0.15, "p50 {p50}");
        assert!((p99 / 49_500.0 - 1.0).abs() < 0.15, "p99 {p99}");
        assert!((h.mean_us() - 25_025.0).abs() < 1.0, "mean is exact");
    }

    #[test]
    fn interpolation_keeps_p95_and_p99_distinct() {
        // A 1000-sample spread over many buckets: interpolated
        // quantiles track the true order statistics closely.
        let mut h = LatencyHistogram::new();
        for i in 1..=1000 {
            h.record_us(i as f64); // 1µs .. 1000µs, uniform
        }
        let (p95, p99) = (h.quantile_us(0.95), h.quantile_us(0.99));
        assert!(p99 > p95, "p95 {p95} p99 {p99}");
        assert!((p95 / 950.0 - 1.0).abs() < 0.08, "p95 {p95}");
        assert!((p99 / 990.0 - 1.0).abs() < 0.08, "p99 {p99}");

        // The regression BENCH_rpc.json exposed: a tight tail lands
        // *both* ranks in one ~7.2%-wide bucket. The pre-interpolation
        // quantile returned the bucket's single representative value
        // for each, so p95 == p99 exactly; interpolation keeps them
        // distinct and ordered.
        let mut tight = LatencyHistogram::new();
        for i in 0..1000 {
            tight.record_us(1000.0 + i as f64 * 0.07); // ≈1 bucket wide
        }
        let (tp95, tp99) = (tight.quantile_us(0.95), tight.quantile_us(0.99));
        assert!(tp99 > tp95, "tight tail must not collapse: {tp95} {tp99}");
        assert!(tp95 >= tight.min_us() && tp99 <= tight.max_us());
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut all = LatencyHistogram::new();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..100 {
            let us = (i * 37 % 9000) as f64 + 3.0;
            all.record_us(us);
            if i % 2 == 0 { &mut a } else { &mut b }.record_us(us);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
    }

    #[test]
    fn hostile_samples_clamp() {
        let mut h = LatencyHistogram::new();
        h.record_us(-5.0);
        h.record_us(f64::NAN);
        h.record_us(f64::INFINITY);
        h.record_us(1e300); // beyond the last bucket: clamps, no panic
        assert_eq!(h.count(), 4);
        assert!(h.quantile_us(1.0).is_finite());
    }

    #[test]
    fn duration_recording_matches_us() {
        let mut h = LatencyHistogram::new();
        h.record(std::time::Duration::from_micros(1500));
        assert!((h.mean_us() - 1500.0).abs() < 1e-9);
    }
}
