//! A fixed-footprint latency histogram for the load-generation harness.
//!
//! The RPC load generator measures hundreds of thousands of
//! submit-to-result round trips and must report p50/p95/p99 without
//! keeping every sample (and without sorting a million-element vector
//! under memory pressure). [`LatencyHistogram`] is the standard
//! log-bucketed design: samples land in geometrically-growing buckets
//! (~7.2% wide, 300 buckets spanning 1µs to ~18min), quantiles are read
//! by walking the cumulative counts, and two histograms merge by adding
//! buckets — so per-thread recording needs no locks.
//!
//! Quantile error is bounded by the bucket width (one bucket ≈ 7.2%
//! relative error), which is far below the run-to-run noise of any
//! wall-clock latency measurement this repo makes.
//!
//! ```
//! use vaqem_runtime::latency::LatencyHistogram;
//!
//! let mut h = LatencyHistogram::new();
//! for us in [100.0, 200.0, 300.0, 400.0, 1000.0] {
//!     h.record_us(us);
//! }
//! assert_eq!(h.count(), 5);
//! let p50 = h.quantile_us(0.50);
//! assert!((200.0..=400.0).contains(&p50), "p50 {p50}");
//! assert!(h.quantile_us(0.99) >= p50);
//! ```

/// Buckets per octave: 2^(1/10) spacing ≈ 7.2% relative width.
const BUCKETS_PER_OCTAVE: f64 = 10.0;
/// Bucket count: 30 octaves cover 1µs .. 2^30µs ≈ 18 minutes; anything
/// slower clamps into the last bucket (the exact max is kept anyway).
const NUM_BUCKETS: usize = 300;

/// A log-bucketed histogram of latencies in microseconds. Merge-able,
/// fixed-size, quantile-readable. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    /// Exact extrema (the histogram quantizes everything else).
    min_us_bits: u64,
    max_us_bits: u64,
    /// Exact running sum for the mean.
    sum_us: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(us: f64) -> usize {
    if us <= 1.0 {
        return 0;
    }
    let b = (us.log2() * BUCKETS_PER_OCTAVE).floor() as usize;
    b.min(NUM_BUCKETS - 1)
}

/// The (geometric-mean) representative latency of a bucket, in µs.
fn bucket_value(b: usize) -> f64 {
    2f64.powf((b as f64 + 0.5) / BUCKETS_PER_OCTAVE)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            min_us_bits: f64::INFINITY.to_bits(),
            max_us_bits: 0.0f64.to_bits(),
            sum_us: 0.0,
        }
    }

    /// Records one latency sample, in microseconds. Negative and NaN
    /// samples are clamped to 0 (they can only come from clock skew).
    pub fn record_us(&mut self, us: f64) {
        let us = if us.is_finite() { us.max(0.0) } else { 0.0 };
        self.buckets[bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us += us;
        if us < f64::from_bits(self.min_us_bits) {
            self.min_us_bits = us.to_bits();
        }
        if us > f64::from_bits(self.max_us_bits) {
            self.max_us_bits = us.to_bits();
        }
    }

    /// Records an `std::time::Duration` sample.
    pub fn record(&mut self, d: std::time::Duration) {
        self.record_us(d.as_secs_f64() * 1e6);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the recorded samples (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64
        }
    }

    /// Exact smallest sample (0 when empty).
    pub fn min_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            f64::from_bits(self.min_us_bits)
        }
    }

    /// Exact largest sample (0 when empty).
    pub fn max_us(&self) -> f64 {
        f64::from_bits(self.max_us_bits)
    }

    /// The latency at quantile `q` (0..=1), in µs: the representative
    /// value of the bucket holding the q-th sample, clamped to the
    /// exact observed extrema so p0/p100 never over-report. Returns 0
    /// when empty.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    pub fn quantile_us(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        // Rank of the target sample, 1-based, ceil — p50 of 5 samples is
        // the 3rd smallest.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_value(b).clamp(self.min_us(), self.max_us());
            }
        }
        self.max_us()
    }

    /// Adds another histogram's samples into this one (per-thread
    /// recording, merged at report time).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        // The raw extrema start at the +inf/0 identities, so comparing
        // bits-decoded values is correct whether either side is empty.
        if f64::from_bits(other.min_us_bits) < f64::from_bits(self.min_us_bits) {
            self.min_us_bits = other.min_us_bits;
        }
        if f64::from_bits(other.max_us_bits) > f64::from_bits(self.max_us_bits) {
            self.max_us_bits = other.max_us_bits;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0.0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.min_us(), 0.0);
        assert_eq!(h.max_us(), 0.0);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded_by_extrema() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000 {
            h.record_us(i as f64 * 50.0); // 50µs .. 50ms, uniform
        }
        let (p50, p95, p99) = (h.quantile_us(0.5), h.quantile_us(0.95), h.quantile_us(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= h.max_us());
        assert!(h.quantile_us(0.0) >= h.min_us());
        // Log-bucket relative error: one bucket is ~7.2% wide; allow 2.
        assert!((p50 / 25_000.0 - 1.0).abs() < 0.15, "p50 {p50}");
        assert!((p99 / 49_500.0 - 1.0).abs() < 0.15, "p99 {p99}");
        assert!((h.mean_us() - 25_025.0).abs() < 1.0, "mean is exact");
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut all = LatencyHistogram::new();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..100 {
            let us = (i * 37 % 9000) as f64 + 3.0;
            all.record_us(us);
            if i % 2 == 0 { &mut a } else { &mut b }.record_us(us);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
    }

    #[test]
    fn hostile_samples_clamp() {
        let mut h = LatencyHistogram::new();
        h.record_us(-5.0);
        h.record_us(f64::NAN);
        h.record_us(f64::INFINITY);
        h.record_us(1e300); // beyond the last bucket: clamps, no panic
        assert_eq!(h.count(), 4);
        assert!(h.quantile_us(1.0).is_finite());
    }

    #[test]
    fn duration_recording_matches_us() {
        let mut h = LatencyHistogram::new();
        h.record(std::time::Duration::from_micros(1500));
        assert!((h.mean_us() - 1500.0).abs() < 1e-9);
    }
}
