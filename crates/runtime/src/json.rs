//! A minimal, dependency-free JSON document builder — the text-format
//! counterpart of the byte [`crate::persist::Codec`] discipline.
//!
//! The fleet's machine-readable reports (the scenario-matrix grid, the
//! structured `metrics_report()` dump) must be consumable by external
//! tooling, and the build is offline — no serde. This module is the one
//! JSON writer every report goes through, with the same rules the byte
//! codec follows:
//!
//! * **Handwritten and total** — every [`JsonValue`] renders; there is
//!   no fallible serialization path to mishandle.
//! * **Deterministic** — object keys render in insertion order (reports
//!   list fields in their struct order), so two runs of the same replay
//!   produce byte-identical documents and goldens can pin the schema.
//! * **Loud about lossy cases** — non-finite floats have no JSON
//!   encoding; they render as `null` (the conventional lossy mapping)
//!   and [`JsonValue::key_paths`] still lists the key, so a schema pin
//!   cannot silently drop a field that happens to be `NaN` in one run.
//!
//! Schema pinning: [`JsonValue::key_paths`] flattens a document into
//! sorted `a.b[].c`-style paths. Golden tests compare those paths
//! against a committed list, so any drift in a report's structure —
//! a renamed field, a vanished array — fails loudly instead of breaking
//! external consumers downstream (`crates/fleet-service/tests/`
//! `metrics_schema.rs` pins the live daemon's report this way).
//!
//! # Examples
//!
//! ```
//! use vaqem_runtime::json::JsonValue;
//!
//! let doc = JsonValue::object([
//!     ("device", JsonValue::from("fleet-east")),
//!     ("hits", JsonValue::from(42u64)),
//!     ("hit_rate", JsonValue::from(0.5)),
//!     ("lanes", JsonValue::array(vec![JsonValue::from(1u64)])),
//! ]);
//! assert_eq!(
//!     doc.render(),
//!     r#"{"device":"fleet-east","hits":42,"hit_rate":0.5,"lanes":[1]}"#
//! );
//! assert_eq!(doc.key_paths(), vec!["device", "hit_rate", "hits", "lanes"]);
//! ```

use std::fmt::Write as _;

/// One JSON value: the full document model.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, rendered exactly (never via `f64`, so `u64` counters
    /// like journal sequence numbers survive round-trips).
    Int(i128),
    /// A float. Non-finite values render as `null` — JSON has no
    /// encoding for them.
    Num(f64),
    /// A string (escaped per RFC 8259 on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object. Keys render in insertion order and are expected to be
    /// unique (the builders below always produce unique keys).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, JsonValue)>>(pairs: I) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn array<I: IntoIterator<Item = JsonValue>>(items: I) -> JsonValue {
        JsonValue::Array(items.into_iter().collect())
    }

    /// Renders the document compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the document with `indent`-space indentation — the form
    /// written to report files for humans and diff tools.
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    /// Flattens the document into its sorted, deduplicated key paths:
    /// object keys joined by `.`, arrays contributing a `[]` segment.
    /// The structural fingerprint golden-schema tests pin.
    pub fn key_paths(&self) -> Vec<String> {
        let mut paths = Vec::new();
        self.collect_paths("", &mut paths);
        paths.sort();
        paths.dedup();
        paths
    }

    fn collect_paths(&self, prefix: &str, out: &mut Vec<String>) {
        match self {
            JsonValue::Object(pairs) => {
                for (k, v) in pairs {
                    let path = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    out.push(path.clone());
                    v.collect_paths(&path, out);
                }
            }
            JsonValue::Array(items) => {
                let path = format!("{prefix}[]");
                for v in items {
                    v.collect_paths(&path, out);
                }
            }
            _ => {}
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Num(x) => {
                if x.is_finite() {
                    // `{}` on f64 prints the shortest representation
                    // that round-trips; integral floats gain a `.0` so
                    // the value reads back as a float.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Int(v as i128)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Int(v as i128)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Int(v as i128)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v as i128)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::from(true).render(), "true");
        assert_eq!(JsonValue::from(42u64).render(), "42");
        assert_eq!(
            JsonValue::Int(u64::MAX as i128).render(),
            "18446744073709551615"
        );
        assert_eq!(JsonValue::from(-3i64).render(), "-3");
        assert_eq!(JsonValue::from(0.5).render(), "0.5");
        assert_eq!(
            JsonValue::from(3.0).render(),
            "3.0",
            "integral floats keep .0"
        );
        assert_eq!(JsonValue::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(JsonValue::from(f64::NAN).render(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).render(), "null");
        assert_eq!(JsonValue::from(f64::NEG_INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape_controls_and_quotes() {
        let s = JsonValue::from("a\"b\\c\nd\te\u{01}f");
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
    }

    #[test]
    fn nested_compact_and_pretty_agree_on_content() {
        let doc = JsonValue::object([
            (
                "a",
                JsonValue::array(vec![JsonValue::from(1u64), JsonValue::Null]),
            ),
            ("b", JsonValue::object([("c", JsonValue::from(false))])),
            ("empty_arr", JsonValue::array(vec![])),
            (
                "empty_obj",
                JsonValue::object(Vec::<(String, JsonValue)>::new()),
            ),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"a":[1,null],"b":{"c":false},"empty_arr":[],"empty_obj":{}}"#
        );
        let pretty = doc.render_pretty(2);
        assert!(pretty.contains("\n  \"a\": [\n    1,\n    null\n  ]"));
        // Same token stream: stripping indentation whitespace recovers
        // the compact form.
        let stripped: String = pretty
            .lines()
            .map(|l| l.trim_start())
            .collect::<Vec<_>>()
            .join("")
            .replace("\": ", "\":");
        assert_eq!(stripped, doc.render());
    }

    #[test]
    fn key_paths_flatten_sorted_and_deduped() {
        let doc = JsonValue::object([
            (
                "cells",
                JsonValue::array(vec![
                    JsonValue::object([("pass", JsonValue::from(true))]),
                    JsonValue::object([("pass", JsonValue::from(false))]),
                ]),
            ),
            ("seed", JsonValue::from(7u64)),
        ]);
        assert_eq!(doc.key_paths(), vec!["cells", "cells[].pass", "seed"]);
    }

    #[test]
    fn object_key_order_is_insertion_order() {
        let doc = JsonValue::object([("z", JsonValue::Null), ("a", JsonValue::Null)]);
        assert_eq!(doc.render(), r#"{"z":null,"a":null}"#);
    }
}
