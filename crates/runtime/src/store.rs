//! The store-backend abstraction and the sharded, lock-striped store.
//!
//! PR 2's [`crate::cache::ConfigStore`] is a single-owner LRU map: perfect
//! for a deterministic replay, useless for a daemon where many client
//! threads tune concurrently. This module splits the two concerns:
//!
//! * [`StoreBackend`] is the interface the warm-start tuner actually
//!   needs — lookup, publish, discard, drift invalidation — extracted
//!   from `ConfigStore`'s inherent API so the tuner can run unchanged
//!   against a plain store, a sharded store, or a persistent store.
//! * [`ShardedStore`] stripes one `ConfigStore` per shard behind its own
//!   `Mutex`, routing by a stable hash of the **device name** only. Two
//!   clients tuning different devices touch different locks; clients on
//!   the same device serialize on one shard, which is exactly the
//!   physical contention model (a tuning session holds the machine).
//!
//! # Shard routing
//!
//! The shard of a device is `fnv1a(device) % num_shards`: a pure function
//! of the device's own name and the shard count. Adding, removing, or
//! relabeling *other* devices can never move a device's entries between
//! shards, and two store instances with the same shard count always agree
//! (`tests/fleet_store_props.rs` pins both properties).
//!
//! # Contention metrics
//!
//! Every shard counts lock acquisitions and the subset that found the
//! lock already held (`try_lock` failed and the caller had to block).
//! A healthy fleet layout — distinct devices on distinct shards, one
//! tuning session per device at a time — shows zero cross-device
//! contention, which the `extension_fleet_service` replay asserts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};

use crate::cache::{CacheMetrics, ConfigStore};
use std::hash::Hash;

/// The store interface the warm-start tuner runs against.
///
/// Methods take `&mut self` so the single-owner [`ConfigStore`] can
/// implement them directly; shared backends ([`ShardedStore`] behind an
/// `Arc`, `DurableStore` in [`crate::persist`]) use interior locking and
/// implement the trait for their `Arc` handles, where `&mut self` costs
/// nothing.
///
/// ```
/// use std::sync::Arc;
/// use vaqem_runtime::cache::ConfigStore;
/// use vaqem_runtime::store::{ShardedStore, StoreBackend};
///
/// // Code written against the trait runs unchanged on a deterministic
/// // single-owner store and on a shared sharded store.
/// fn warm_lookup<S: StoreBackend<u64, u32>>(store: &mut S) -> Option<u32> {
///     store.lookup("dev", 0, &7)
/// }
/// let mut plain: ConfigStore<u64, u32> = ConfigStore::new(8);
/// plain.insert("dev", 0, 7, 42);
/// assert_eq!(warm_lookup(&mut plain), Some(42));
///
/// let mut shared = Arc::new(ShardedStore::<u64, u32>::new(2, 8));
/// StoreBackend::publish(&mut shared, "dev", 0, 7, 43);
/// assert_eq!(warm_lookup(&mut shared), Some(43));
/// ```
pub trait StoreBackend<F, V> {
    /// Looks up the cached value for a fingerprint on a device at a
    /// calibration epoch, recording a hit or miss.
    fn lookup(&mut self, device: &str, epoch: u64, fingerprint: &F) -> Option<V>;

    /// Publishes a guard-accepted value (insert or overwrite).
    fn publish(&mut self, device: &str, epoch: u64, fingerprint: F, value: V);

    /// Drops one entry (guard rejection of a cache-seeded config),
    /// returning whether it existed.
    fn discard(&mut self, device: &str, epoch: u64, fingerprint: &F) -> bool;

    /// Drops every entry of `device` with an epoch strictly before
    /// `epoch` — the drift-invalidation hook. Returns how many dropped.
    fn invalidate_device_before(&mut self, device: &str, epoch: u64) -> usize;

    /// A copy of the backend's aggregate hit/miss/eviction counters.
    fn metrics_snapshot(&self) -> CacheMetrics;
}

impl<F: Hash + Eq + Clone, V: Clone> StoreBackend<F, V> for ConfigStore<F, V> {
    fn lookup(&mut self, device: &str, epoch: u64, fingerprint: &F) -> Option<V> {
        self.get(device, epoch, fingerprint).cloned()
    }

    fn publish(&mut self, device: &str, epoch: u64, fingerprint: F, value: V) {
        self.insert(device, epoch, fingerprint, value);
    }

    fn discard(&mut self, device: &str, epoch: u64, fingerprint: &F) -> bool {
        self.remove(device, epoch, fingerprint)
    }

    fn invalidate_device_before(&mut self, device: &str, epoch: u64) -> usize {
        self.invalidate_before(device, epoch)
    }

    fn metrics_snapshot(&self) -> CacheMetrics {
        *self.metrics()
    }
}

/// 64-bit FNV-1a — the stable, dependency-free device-routing hash.
/// (`std`'s `DefaultHasher` is explicitly unstable across releases, which
/// would silently re-route persisted shards after a toolchain bump.)
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One shard: a `ConfigStore` behind a mutex plus lock-traffic counters.
#[derive(Debug)]
struct Shard<F, V> {
    store: Mutex<ConfigStore<F, V>>,
    acquisitions: AtomicU64,
    contended: AtomicU64,
}

impl<F: Hash + Eq + Clone, V> Shard<F, V> {
    /// The counted lock, used by the client-traffic paths (lookups and
    /// mutations): acquisitions and blocked acquisitions feed the
    /// contention metrics.
    fn lock(&self) -> MutexGuard<'_, ConfigStore<F, V>> {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        match self.store.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.store.lock().expect("shard lock poisoned")
            }
            Err(TryLockError::Poisoned(_)) => panic!("shard lock poisoned"),
        }
    }

    /// The uncounted lock, used by observer paths (`metrics`, `len`,
    /// `shard_metrics`, `export_entries`, `reset_metrics`): monitoring a
    /// live store must not register as client contention, or a dashboard
    /// poll racing a tuning session would break the zero-cross-device-
    /// contention invariant the fleet replay asserts.
    fn lock_quiet(&self) -> MutexGuard<'_, ConfigStore<F, V>> {
        self.store.lock().expect("shard lock poisoned")
    }
}

/// Per-shard observability snapshot: cache counters plus lock traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Live entries in the shard.
    pub entries: usize,
    /// The shard's cache counters.
    pub cache: CacheMetrics,
    /// Total lock acquisitions on the shard.
    pub lock_acquisitions: u64,
    /// Acquisitions that found the lock held and had to block — the
    /// contention signal.
    pub lock_contended: u64,
}

/// A lock-striped config store: one [`ConfigStore`] per shard, routed by
/// device name, safe to share across threads (`&self` API throughout).
///
/// ```
/// use std::sync::Arc;
/// use vaqem_runtime::store::ShardedStore;
///
/// let store: Arc<ShardedStore<u64, &str>> = Arc::new(ShardedStore::new(4, 64));
/// store.insert("fleet-east", 0, 7, "two XY4 repetitions");
/// assert_eq!(store.lookup("fleet-east", 0, &7), Some("two XY4 repetitions"));
/// assert_eq!(store.lookup("fleet-west", 0, &7), None);
/// // Routing is a pure function of the device's own name:
/// assert_eq!(store.shard_of("fleet-east"), store.shard_of("fleet-east"));
/// ```
#[derive(Debug)]
pub struct ShardedStore<F, V> {
    shards: Vec<Shard<F, V>>,
    /// Per-client traffic attribution, keyed by client label in
    /// first-attribution order. The store itself cannot know which
    /// client caused a lookup (the tuner speaks [`StoreBackend`], which
    /// has no client notion), so the fleet layer measures each session's
    /// counter delta ([`CacheMetrics::saturating_delta`]) and credits it
    /// here — the per-client usage signal the fairness/quota layer and
    /// the observability report read back.
    attribution: Mutex<AttributionInner>,
}

/// The attribution ledger plus its read-mostly reporting snapshot.
///
/// `entries` is the write-side truth (first-attribution order);
/// `snapshot` is the sorted copy reports hand out. Rebuilding the
/// snapshot only when `dirty` makes `client_attribution()` O(1) between
/// mutations — every `metrics_report()` used to clone and re-sort the
/// whole vector under the lock, a cost that grew with accumulated
/// clients even on an idle store.
#[derive(Debug, Default)]
struct AttributionInner {
    entries: Vec<(String, CacheMetrics)>,
    snapshot: Arc<Vec<(String, CacheMetrics)>>,
    dirty: bool,
    rebuilds: u64,
}

impl<F: Hash + Eq + Clone, V> ShardedStore<F, V> {
    /// Creates a store with `num_shards` shards of `capacity_per_shard`
    /// LRU entries each.
    ///
    /// # Panics
    ///
    /// Panics when either argument is zero.
    pub fn new(num_shards: usize, capacity_per_shard: usize) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        ShardedStore {
            shards: (0..num_shards)
                .map(|_| Shard {
                    store: Mutex::new(ConfigStore::new(capacity_per_shard)),
                    acquisitions: AtomicU64::new(0),
                    contended: AtomicU64::new(0),
                })
                .collect(),
            attribution: Mutex::new(AttributionInner::default()),
        }
    }

    /// Credits `delta` store traffic to `client` (see the field docs on
    /// `attribution`). Merges into the client's running total.
    pub fn attribute_client(&self, client: &str, delta: &CacheMetrics) {
        let mut inner = self.attribution.lock().expect("attribution lock");
        match inner.entries.iter_mut().find(|(c, _)| c == client) {
            Some((_, total)) => total.merge(delta),
            None => {
                let entry = (client.to_string(), *delta);
                inner.entries.push(entry);
            }
        }
        inner.dirty = true;
    }

    /// Per-client attributed traffic, sorted by client label for
    /// deterministic reporting. Returns a shared snapshot: between
    /// attributions the same `Arc` is handed out again (no clone, no
    /// re-sort), so report cost stays flat however many clients have
    /// accumulated.
    pub fn client_attribution(&self) -> Arc<Vec<(String, CacheMetrics)>> {
        let mut inner = self.attribution.lock().expect("attribution lock");
        if inner.dirty {
            let mut snap = inner.entries.clone();
            snap.sort_by(|(a, _), (b, _)| a.cmp(b));
            inner.snapshot = Arc::new(snap);
            inner.dirty = false;
            inner.rebuilds += 1;
        }
        Arc::clone(&inner.snapshot)
    }

    /// How many times the attribution snapshot has been rebuilt —
    /// the micro-assertion hook proving `client_attribution()` does no
    /// per-report work while the ledger is unchanged.
    pub fn attribution_rebuilds(&self) -> u64 {
        self.attribution.lock().expect("attribution lock").rebuilds
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `device` routes to — depends only on the device's
    /// own name and the shard count.
    pub fn shard_of(&self, device: &str) -> usize {
        (fnv1a(device.as_bytes()) % self.shards.len() as u64) as usize
    }

    fn shard(&self, device: &str) -> &Shard<F, V> {
        &self.shards[self.shard_of(device)]
    }

    /// Looks up a fingerprint on the device's shard, recording hit/miss
    /// there.
    pub fn lookup(&self, device: &str, epoch: u64, fingerprint: &F) -> Option<V>
    where
        V: Clone,
    {
        self.shard(device)
            .lock()
            .get(device, epoch, fingerprint)
            .cloned()
    }

    /// Inserts (or overwrites) an entry on the device's shard.
    pub fn insert(&self, device: &str, epoch: u64, fingerprint: F, value: V) {
        self.shard(device)
            .lock()
            .insert(device, epoch, fingerprint, value);
    }

    /// Drops one entry, returning whether it existed.
    pub fn remove(&self, device: &str, epoch: u64, fingerprint: &F) -> bool {
        self.shard(device).lock().remove(device, epoch, fingerprint)
    }

    /// Drops every entry of `device` older than `epoch` from its shard.
    pub fn invalidate_before(&self, device: &str, epoch: u64) -> usize {
        self.shard(device).lock().invalidate_before(device, epoch)
    }

    /// Drops every entry older than `epoch` on **every** shard, whatever
    /// its device — the fleet-wide drift broadcast. Returns the total
    /// dropped.
    pub fn invalidate_all_before(&self, epoch: u64) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().invalidate_all_before(epoch))
            .sum()
    }

    /// Drops every entry on every shard without touching the traffic
    /// counters — a replication snapshot install, not client traffic
    /// (see [`crate::cache::ConfigStore::clear`]).
    pub fn clear_all(&self) {
        for shard in &self.shards {
            shard.lock_quiet().clear();
        }
    }

    /// Total live entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock_quiet().len()).sum()
    }

    /// Returns `true` when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate cache counters summed over shards.
    pub fn metrics(&self) -> CacheMetrics {
        let mut total = CacheMetrics::default();
        for s in &self.shards {
            total.merge(s.lock_quiet().metrics());
        }
        total
    }

    /// Per-shard observability snapshots, in shard order.
    pub fn shard_metrics(&self) -> Vec<ShardMetrics> {
        (0..self.shards.len())
            .map(|i| self.shard_metrics_of(i))
            .collect()
    }

    /// One shard's observability snapshot, touching **only** that
    /// shard's lock (quietly). Observers watching a single device —
    /// e.g. a worker measuring its own session's counter delta — must
    /// use this rather than sweeping [`Self::shard_metrics`]: a full
    /// sweep briefly holds every shard's mutex, which a concurrent
    /// counted access on an unrelated shard would register as
    /// contention.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn shard_metrics_of(&self, shard: usize) -> ShardMetrics {
        let s = &self.shards[shard];
        let guard = s.lock_quiet();
        ShardMetrics {
            shard,
            entries: guard.len(),
            cache: *guard.metrics(),
            lock_acquisitions: s.acquisitions.load(Ordering::Relaxed),
            lock_contended: s.contended.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every shard's cache counters (entries and lock counters are
    /// untouched).
    pub fn reset_metrics(&self) {
        for s in &self.shards {
            s.lock_quiet().reset_metrics();
        }
    }

    /// Every live entry as `(device, epoch, fingerprint, value)`: shard 0
    /// first, each shard's entries oldest-to-newest in LRU order — the
    /// order the persistence snapshot writes, so a reload into an
    /// equally-sharded store reproduces per-shard LRU order exactly.
    pub fn export_entries(&self) -> Vec<(String, u64, F, V)>
    where
        V: Clone,
    {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.lock_quiet().export_entries());
        }
        out
    }
}

impl<F: Hash + Eq + Clone, V: Clone> StoreBackend<F, V> for ShardedStore<F, V> {
    fn lookup(&mut self, device: &str, epoch: u64, fingerprint: &F) -> Option<V> {
        ShardedStore::lookup(self, device, epoch, fingerprint)
    }

    fn publish(&mut self, device: &str, epoch: u64, fingerprint: F, value: V) {
        ShardedStore::insert(self, device, epoch, fingerprint, value);
    }

    fn discard(&mut self, device: &str, epoch: u64, fingerprint: &F) -> bool {
        ShardedStore::remove(self, device, epoch, fingerprint)
    }

    fn invalidate_device_before(&mut self, device: &str, epoch: u64) -> usize {
        ShardedStore::invalidate_before(self, device, epoch)
    }

    fn metrics_snapshot(&self) -> CacheMetrics {
        self.metrics()
    }
}

/// Shared handles implement the backend too: each worker thread clones
/// the `Arc` and hands the tuner its own `&mut Arc<...>`, while all
/// mutation goes through the shard locks.
impl<F: Hash + Eq + Clone, V: Clone> StoreBackend<F, V> for std::sync::Arc<ShardedStore<F, V>> {
    fn lookup(&mut self, device: &str, epoch: u64, fingerprint: &F) -> Option<V> {
        ShardedStore::lookup(self, device, epoch, fingerprint)
    }

    fn publish(&mut self, device: &str, epoch: u64, fingerprint: F, value: V) {
        ShardedStore::insert(self, device, epoch, fingerprint, value);
    }

    fn discard(&mut self, device: &str, epoch: u64, fingerprint: &F) -> bool {
        ShardedStore::remove(self, device, epoch, fingerprint)
    }

    fn invalidate_device_before(&mut self, device: &str, epoch: u64) -> usize {
        ShardedStore::invalidate_before(self, device, epoch)
    }

    fn metrics_snapshot(&self) -> CacheMetrics {
        self.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn routing_is_pure_and_stable() {
        let a: ShardedStore<u64, u32> = ShardedStore::new(8, 16);
        let b: ShardedStore<u64, u32> = ShardedStore::new(8, 16);
        for name in ["fleet-east", "fleet-west", "ibmq_casablanca", "x"] {
            assert_eq!(a.shard_of(name), b.shard_of(name));
            assert_eq!(a.shard_of(name), a.shard_of(name));
            assert!(a.shard_of(name) < 8);
        }
    }

    #[test]
    fn sharded_basic_flow() {
        let s: ShardedStore<u64, u32> = ShardedStore::new(4, 8);
        assert_eq!(s.lookup("d", 0, &1), None);
        s.insert("d", 0, 1, 42);
        assert_eq!(s.lookup("d", 0, &1), Some(42));
        assert_eq!(s.lookup("d", 1, &1), None, "epoch is part of the key");
        assert_eq!(s.len(), 1);
        let m = s.metrics();
        assert_eq!((m.hits, m.misses, m.insertions), (1, 2, 1));
        assert!(s.remove("d", 0, &1));
        assert!(s.is_empty());
    }

    #[test]
    fn invalidation_routes_and_broadcasts() {
        let s: ShardedStore<u64, u32> = ShardedStore::new(4, 8);
        s.insert("a", 0, 1, 1);
        s.insert("a", 1, 1, 2);
        s.insert("b", 0, 1, 3);
        assert_eq!(s.invalidate_before("a", 1), 1);
        assert_eq!(s.lookup("b", 0, &1), Some(3), "other devices untouched");
        assert_eq!(
            s.invalidate_all_before(1),
            1,
            "broadcast sweeps every shard"
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.lookup("a", 1, &1), Some(2));
    }

    #[test]
    fn shard_metrics_report_per_shard_traffic() {
        let s: ShardedStore<u64, u32> = ShardedStore::new(2, 8);
        s.insert("d", 0, 1, 10);
        s.lookup("d", 0, &1);
        let per = s.shard_metrics();
        assert_eq!(per.len(), 2);
        let busy = &per[s.shard_of("d")];
        assert_eq!(busy.entries, 1);
        assert_eq!(busy.cache.hits, 1);
        assert!(busy.lock_acquisitions >= 2);
        let idle = &per[1 - s.shard_of("d")];
        assert_eq!(idle.entries, 0);
    }

    #[test]
    fn concurrent_inserts_land_once() {
        let s: Arc<ShardedStore<u64, u64>> = Arc::new(ShardedStore::new(4, 1024));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for k in 0..64u64 {
                        s.insert("shared", 0, k, t * 1000 + k);
                        assert!(ShardedStore::lookup(&s, "shared", 0, &k).is_some());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.len(), 64, "same keys overwrite, never duplicate");
        let total: u64 = s.shard_metrics().iter().map(|m| m.lock_acquisitions).sum();
        assert!(total >= 8 * 64 * 2);
    }

    #[test]
    fn backend_trait_dispatch_matches_inherent() {
        let mut s: ShardedStore<u64, u32> = ShardedStore::new(2, 8);
        StoreBackend::publish(&mut s, "d", 0, 5, 50);
        assert_eq!(StoreBackend::lookup(&mut s, "d", 0, &5), Some(50));
        assert_eq!(StoreBackend::invalidate_device_before(&mut s, "d", 1), 1);
        assert!(!StoreBackend::discard(&mut s, "d", 0, &5));
        let mut arc = Arc::new(ShardedStore::<u64, u32>::new(2, 8));
        StoreBackend::publish(&mut arc, "d", 0, 5, 51);
        assert_eq!(StoreBackend::lookup(&mut arc, "d", 0, &5), Some(51));
        assert_eq!(arc.metrics_snapshot().hits, 1);
    }

    #[test]
    fn client_attribution_merges_and_sorts() {
        let s: ShardedStore<u64, u32> = ShardedStore::new(2, 8);
        let hit = CacheMetrics {
            hits: 1,
            ..CacheMetrics::default()
        };
        let miss = CacheMetrics {
            misses: 1,
            insertions: 1,
            ..CacheMetrics::default()
        };
        s.attribute_client("zeta", &miss);
        s.attribute_client("alpha", &hit);
        s.attribute_client("zeta", &hit);
        let per_client = s.client_attribution();
        assert_eq!(per_client.len(), 2);
        assert_eq!(per_client[0].0, "alpha", "sorted by label");
        assert_eq!(per_client[0].1.hits, 1);
        assert_eq!((per_client[1].1.hits, per_client[1].1.misses), (1, 1));
        assert_eq!(per_client[1].1.insertions, 1);
    }

    #[test]
    fn client_attribution_reports_are_snapshot_cheap() {
        // metrics_report() used to clone + sort the whole ledger under
        // the lock on every call; with the read-mostly snapshot, repeat
        // reports on an unchanged ledger return the same Arc and never
        // rebuild — report cost stays flat as clients accumulate.
        let s: ShardedStore<u64, u32> = ShardedStore::new(2, 8);
        let hit = CacheMetrics {
            hits: 1,
            ..CacheMetrics::default()
        };
        for i in 0..256 {
            s.attribute_client(&format!("tenant-{i}"), &hit);
        }
        let first = s.client_attribution();
        assert_eq!(s.attribution_rebuilds(), 1, "one rebuild per dirty epoch");
        for _ in 0..100 {
            let again = s.client_attribution();
            assert!(Arc::ptr_eq(&first, &again), "unchanged ledger is O(1)");
        }
        assert_eq!(s.attribution_rebuilds(), 1, "100 reports, zero rebuilds");
        // A new attribution dirties the snapshot exactly once more.
        s.attribute_client("tenant-0", &hit);
        let fresh = s.client_attribution();
        assert!(!Arc::ptr_eq(&first, &fresh));
        assert_eq!(s.attribution_rebuilds(), 2);
    }

    #[test]
    #[should_panic(expected = "shard")]
    fn zero_shards_rejected() {
        let _: ShardedStore<u64, u32> = ShardedStore::new(0, 8);
    }

    #[test]
    fn aggregate_metrics_split_evictions_from_invalidations() {
        // Capacity pressure and staleness are different operational
        // signals: an LRU overflow must count *only* as an eviction and
        // an explicit removal / drift invalidation *only* as an
        // invalidation — in each shard's counters and in the fleet-wide
        // aggregation alike. Pinned here so no future path can fold one
        // counter into the other.
        let s: ShardedStore<u64, u32> = ShardedStore::new(2, 2);
        // Two device names that provably land on different shards.
        let names: Vec<String> = (0..32).map(|i| format!("fleet-dev-{i}")).collect();
        let a = names[0].as_str();
        let b = names[1..]
            .iter()
            .find(|n| s.shard_of(n) != s.shard_of(a))
            .expect("some name routes to the other shard")
            .as_str();

        // Device A overflows its shard's capacity: exactly one eviction.
        s.insert(a, 0, 1, 10);
        s.insert(a, 0, 2, 20);
        s.insert(a, 0, 3, 30);
        // Device B takes one explicit removal and one drift invalidation.
        s.insert(b, 0, 1, 40);
        s.insert(b, 0, 2, 50);
        assert!(s.remove(b, 0, &1));
        assert_eq!(s.invalidate_before(b, 1), 1);

        let shard_a = &s.shard_metrics()[s.shard_of(a)];
        assert_eq!(
            (shard_a.cache.evictions, shard_a.cache.invalidations),
            (1, 0),
            "capacity overflow is eviction-only"
        );
        let shard_b = &s.shard_metrics()[s.shard_of(b)];
        assert_eq!(
            (shard_b.cache.evictions, shard_b.cache.invalidations),
            (0, 2),
            "removal + drift are invalidation-only"
        );
        let total = s.metrics();
        assert_eq!((total.evictions, total.invalidations), (1, 2));
        assert_eq!(total.insertions, 5);
    }
}
