//! Fleet-level scheduling: many VQA clients, few shared devices.
//!
//! The ROADMAP's north star is "millions of users"; the unit of contention
//! on a quantum cloud is the per-client EM-tuning session (the dominant
//! machine-time cost, Fig. 15). This module answers the throughput
//! question cluster-evaluation work frames as *jobs per hour under
//! contention*: given per-session minutes (measured or priced by
//! [`crate::cost::CostModel`]), how long does a fleet of clients take on a
//! pool of devices, and how much does the warm-start cache buy?
//!
//! The model is deliberately simple and deterministic: each device
//! serializes its sessions (a tuning session holds the machine), clients
//! are assigned round-robin, and the fleet finishes when its slowest
//! device drains. No RNG is involved, so a replay is bit-reproducible.

/// One client's EM-tuning session on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningSession {
    /// Client label (reporting only).
    pub client: String,
    /// Index of the device the session runs on.
    pub device: usize,
    /// Machine minutes the session occupies its device.
    pub minutes: f64,
}

/// The fleet timeline that results from draining a set of sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSchedule {
    /// Busy minutes accumulated per device (machine time only — queue
    /// waits are tracked separately in [`Self::device_queue_min`]).
    pub device_busy_min: Vec<f64>,
    /// Queue-wait minutes charged per device before its sessions start.
    /// All zeros unless built by [`schedule_sessions_queued`]; idle time
    /// in a cloud queue is wall-clock, never machine time, so it extends
    /// the makespan without inflating [`Self::total_machine_min`].
    pub device_queue_min: Vec<f64>,
    /// Number of sessions scheduled.
    pub sessions: usize,
}

impl FleetSchedule {
    /// Fleet makespan: minutes until the slowest device drains (its
    /// queue wait plus its busy minutes).
    pub fn makespan_min(&self) -> f64 {
        self.device_busy_min
            .iter()
            .zip(&self.device_queue_min)
            .fold(0.0, |a, (&b, &q)| a.max(b + q))
    }

    /// Total machine minutes consumed across the fleet (queue waits
    /// excluded — nothing executes while a session queues).
    pub fn total_machine_min(&self) -> f64 {
        self.device_busy_min.iter().sum()
    }

    /// Throughput: tuning sessions completed per wall-clock hour
    /// (0 when no session ran).
    pub fn sessions_per_hour(&self) -> f64 {
        let makespan = self.makespan_min();
        if makespan <= 0.0 {
            0.0
        } else {
            self.sessions as f64 * 60.0 / makespan
        }
    }

    /// Load imbalance: makespan over the ideal (perfectly balanced)
    /// drain time. 1.0 means perfectly balanced; larger means one device
    /// is the bottleneck.
    pub fn imbalance(&self) -> f64 {
        let ideal = self.total_machine_min() / self.device_busy_min.len().max(1) as f64;
        if ideal <= 0.0 {
            1.0
        } else {
            self.makespan_min() / ideal
        }
    }
}

/// Assigns device `i % num_devices` to the `i`-th client — the fleet
/// replay's deterministic placement policy.
pub fn round_robin_device(client_index: usize, num_devices: usize) -> usize {
    assert!(num_devices > 0, "fleet needs at least one device");
    client_index % num_devices
}

/// Drains `sessions` over `num_devices` serializing devices.
///
/// # Panics
///
/// Panics when `num_devices` is zero or a session names a device out of
/// range.
pub fn schedule_sessions(num_devices: usize, sessions: &[TuningSession]) -> FleetSchedule {
    assert!(num_devices > 0, "fleet needs at least one device");
    let mut busy = vec![0.0f64; num_devices];
    for s in sessions {
        assert!(
            s.device < num_devices,
            "session {} targets device {} of {}",
            s.client,
            s.device,
            num_devices
        );
        assert!(s.minutes >= 0.0, "negative session time");
        busy[s.device] += s.minutes;
    }
    FleetSchedule {
        device_queue_min: vec![0.0; num_devices],
        device_busy_min: busy,
        sessions: sessions.len(),
    }
}

/// [`schedule_sessions`] with cloud queuing folded in: each device that
/// runs at least one session first pays its queue wait (minutes, e.g.
/// sampled from [`crate::cost::CostModel::queuing_minutes`]) before its
/// sessions drain. Devices with no sessions stay idle and pay nothing —
/// queue waits are per held block, not per existing machine.
///
/// This is the ROADMAP's "queueing-aware fleet scheduler" primitive: the
/// makespan now reflects that a lightly-loaded device behind a long queue
/// can still be the fleet bottleneck.
///
/// # Panics
///
/// Panics when `num_devices` is zero, `queue_min.len() != num_devices`, a
/// queue wait is negative, or a session names a device out of range.
pub fn schedule_sessions_queued(
    num_devices: usize,
    sessions: &[TuningSession],
    queue_min: &[f64],
) -> FleetSchedule {
    assert_eq!(
        queue_min.len(),
        num_devices,
        "one queue wait per device required"
    );
    assert!(queue_min.iter().all(|&q| q >= 0.0), "negative queue wait");
    let mut schedule = schedule_sessions(num_devices, sessions);
    let mut used = vec![false; num_devices];
    for s in sessions {
        used[s.device] = true;
    }
    for (d, queue) in schedule.device_queue_min.iter_mut().enumerate() {
        if used[d] {
            *queue = queue_min[d];
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(client: &str, device: usize, minutes: f64) -> TuningSession {
        TuningSession {
            client: client.into(),
            device,
            minutes,
        }
    }

    #[test]
    fn devices_serialize_their_sessions() {
        let s = schedule_sessions(
            2,
            &[
                session("c0", 0, 10.0),
                session("c1", 1, 5.0),
                session("c2", 0, 7.0),
            ],
        );
        assert_eq!(s.device_busy_min, vec![17.0, 5.0]);
        assert_eq!(s.makespan_min(), 17.0);
        assert_eq!(s.total_machine_min(), 22.0);
        assert_eq!(s.sessions, 3);
    }

    #[test]
    fn throughput_and_imbalance() {
        let s = schedule_sessions(2, &[session("a", 0, 30.0), session("b", 1, 30.0)]);
        assert!((s.sessions_per_hour() - 4.0).abs() < 1e-12);
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
        let skewed = schedule_sessions(2, &[session("a", 0, 30.0), session("b", 0, 30.0)]);
        assert!(skewed.imbalance() > 1.9);
        assert!(skewed.sessions_per_hour() < s.sessions_per_hour());
    }

    #[test]
    fn round_robin_cycles() {
        assert_eq!(round_robin_device(0, 3), 0);
        assert_eq!(round_robin_device(4, 3), 1);
    }

    #[test]
    fn empty_fleet_is_defined() {
        let s = schedule_sessions(3, &[]);
        assert_eq!(s.makespan_min(), 0.0);
        assert_eq!(s.sessions_per_hour(), 0.0);
        assert_eq!(s.imbalance(), 1.0);
    }

    #[test]
    #[should_panic(expected = "device")]
    fn out_of_range_device_rejected() {
        schedule_sessions(1, &[session("c", 1, 1.0)]);
    }

    #[test]
    fn queued_schedule_charges_only_used_devices() {
        let sessions = [session("a", 0, 10.0), session("b", 0, 5.0)];
        let s = schedule_sessions_queued(2, &sessions, &[7.0, 1000.0]);
        assert_eq!(
            s.device_queue_min,
            vec![7.0, 0.0],
            "idle device pays no queue"
        );
        assert_eq!(s.makespan_min(), 22.0);
        assert_eq!(
            s.total_machine_min(),
            15.0,
            "queue waits never count as machine time"
        );
    }

    #[test]
    fn queuing_minutes_feed_pins_the_makespan() {
        // The ROADMAP "Concurrency" item: CostModel::queuing_minutes flows
        // into the fleet schedule. The sampled waits are deterministic per
        // (seed, device label), so the queued makespan is pinned to the
        // recomputed expectation and reproducible run to run.
        use crate::cost::{AngleTuningMode, CostModel, WorkloadProfile};
        use vaqem_mathkit::rng::SeedStream;
        let model = CostModel::ibm_cloud_2021();
        let seeds = SeedStream::new(77);
        let profile = WorkloadProfile {
            num_qubits: 4,
            circuit_ns: 12_000.0,
            iterations: 100,
            measurement_groups: 2,
            windows: 12,
            sweep_resolution: 4,
            shots: 512,
        };
        let queue: Vec<f64> = ["fleet-east", "fleet-west"]
            .iter()
            .map(|d| model.queuing_minutes(&profile, AngleTuningMode::IdealSimulation, &seeds, d))
            .collect();
        assert!(queue.iter().all(|&q| q > 0.0));
        let sessions = [
            session("c0", 0, 30.0),
            session("c1", 1, 30.0),
            session("c2", 0, 10.0),
        ];
        let queued = schedule_sessions_queued(2, &sessions, &queue);
        let plain = schedule_sessions(2, &sessions);
        let expected = (40.0 + queue[0]).max(30.0 + queue[1]);
        assert!((queued.makespan_min() - expected).abs() < 1e-12);
        assert!(queued.makespan_min() > plain.makespan_min());
        assert_eq!(
            queued.total_machine_min(),
            plain.total_machine_min(),
            "queuing extends the makespan, not the machine bill"
        );
        // Replays are bit-identical: same seed, same labels, same makespan.
        let queue2: Vec<f64> = ["fleet-east", "fleet-west"]
            .iter()
            .map(|d| model.queuing_minutes(&profile, AngleTuningMode::IdealSimulation, &seeds, d))
            .collect();
        assert_eq!(queue, queue2);
        assert_eq!(
            schedule_sessions_queued(2, &sessions, &queue2).makespan_min(),
            queued.makespan_min()
        );
    }

    #[test]
    #[should_panic(expected = "queue wait")]
    fn queue_vector_length_must_match() {
        schedule_sessions_queued(2, &[], &[1.0]);
    }
}
