//! Fleet-level scheduling: many VQA clients, few shared devices.
//!
//! The ROADMAP's north star is "millions of users"; the unit of contention
//! on a quantum cloud is the per-client EM-tuning session (the dominant
//! machine-time cost, Fig. 15). This module answers the throughput
//! question cluster-evaluation work frames as *jobs per hour under
//! contention*: given per-session minutes (measured or priced by
//! [`crate::cost::CostModel`]), how long does a fleet of clients take on a
//! pool of devices, and how much does the warm-start cache buy?
//!
//! The model is deliberately simple and deterministic: each device
//! serializes its sessions (a tuning session holds the machine), clients
//! are assigned round-robin, and the fleet finishes when its slowest
//! device drains. No RNG is involved, so a replay is bit-reproducible.
//!
//! # Fair arbitration
//!
//! [`DrrQueue`] is the fleet's single arbitration policy: deficit-
//! round-robin weighted fair queueing across clients. The live daemon
//! (`vaqem-fleet-service`) instantiates one per device to pick the next
//! session, and [`schedule_sessions_fair`] drives the *same* type to
//! predict the offline makespan and completion order — model and service
//! can never disagree about who runs next.

use std::collections::VecDeque;

/// One client's EM-tuning session on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningSession {
    /// Client label (reporting only).
    pub client: String,
    /// Index of the device the session runs on.
    pub device: usize,
    /// Machine minutes the session occupies its device.
    pub minutes: f64,
}

/// The fleet timeline that results from draining a set of sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSchedule {
    /// Busy minutes accumulated per device (machine time only — queue
    /// waits are tracked separately in [`Self::device_queue_min`]).
    pub device_busy_min: Vec<f64>,
    /// Queue-wait minutes charged per device before its sessions start.
    /// All zeros unless built by [`schedule_sessions_queued`]; idle time
    /// in a cloud queue is wall-clock, never machine time, so it extends
    /// the makespan without inflating [`Self::total_machine_min`].
    pub device_queue_min: Vec<f64>,
    /// Number of sessions scheduled.
    pub sessions: usize,
}

impl FleetSchedule {
    /// Fleet makespan: minutes until the slowest device drains (its
    /// queue wait plus its busy minutes).
    pub fn makespan_min(&self) -> f64 {
        self.device_busy_min
            .iter()
            .zip(&self.device_queue_min)
            .fold(0.0, |a, (&b, &q)| a.max(b + q))
    }

    /// Total machine minutes consumed across the fleet (queue waits
    /// excluded — nothing executes while a session queues).
    pub fn total_machine_min(&self) -> f64 {
        self.device_busy_min.iter().sum()
    }

    /// Throughput: tuning sessions completed per wall-clock hour
    /// (0 when no session ran).
    pub fn sessions_per_hour(&self) -> f64 {
        let makespan = self.makespan_min();
        if makespan <= 0.0 {
            0.0
        } else {
            self.sessions as f64 * 60.0 / makespan
        }
    }

    /// Load imbalance: makespan over the ideal (perfectly balanced)
    /// drain time. 1.0 means perfectly balanced; larger means one device
    /// is the bottleneck.
    pub fn imbalance(&self) -> f64 {
        let ideal = self.total_machine_min() / self.device_busy_min.len().max(1) as f64;
        if ideal <= 0.0 {
            1.0
        } else {
            self.makespan_min() / ideal
        }
    }
}

/// Assigns device `i % num_devices` to the `i`-th client — the fleet
/// replay's deterministic placement policy.
pub fn round_robin_device(client_index: usize, num_devices: usize) -> usize {
    assert!(num_devices > 0, "fleet needs at least one device");
    client_index % num_devices
}

/// Drains `sessions` over `num_devices` serializing devices.
///
/// # Panics
///
/// Panics when `num_devices` is zero or a session names a device out of
/// range.
pub fn schedule_sessions(num_devices: usize, sessions: &[TuningSession]) -> FleetSchedule {
    assert!(num_devices > 0, "fleet needs at least one device");
    let mut busy = vec![0.0f64; num_devices];
    for s in sessions {
        assert!(
            s.device < num_devices,
            "session {} targets device {} of {}",
            s.client,
            s.device,
            num_devices
        );
        assert!(s.minutes >= 0.0, "negative session time");
        busy[s.device] += s.minutes;
    }
    FleetSchedule {
        device_queue_min: vec![0.0; num_devices],
        device_busy_min: busy,
        sessions: sessions.len(),
    }
}

/// [`schedule_sessions`] with cloud queuing folded in: each device that
/// runs at least one session first pays its queue wait (minutes, e.g.
/// sampled from [`crate::cost::CostModel::queuing_minutes`]) before its
/// sessions drain. Devices with no sessions stay idle and pay nothing —
/// queue waits are per held block, not per existing machine.
///
/// This is the ROADMAP's "queueing-aware fleet scheduler" primitive: the
/// makespan now reflects that a lightly-loaded device behind a long queue
/// can still be the fleet bottleneck.
///
/// # Panics
///
/// Panics when `num_devices` is zero, `queue_min.len() != num_devices`, a
/// queue wait is negative, or a session names a device out of range.
pub fn schedule_sessions_queued(
    num_devices: usize,
    sessions: &[TuningSession],
    queue_min: &[f64],
) -> FleetSchedule {
    assert_eq!(
        queue_min.len(),
        num_devices,
        "one queue wait per device required"
    );
    assert!(queue_min.iter().all(|&q| q >= 0.0), "negative queue wait");
    let mut schedule = schedule_sessions(num_devices, sessions);
    let mut used = vec![false; num_devices];
    for s in sessions {
        used[s.device] = true;
    }
    for (d, queue) in schedule.device_queue_min.iter_mut().enumerate() {
        if used[d] {
            *queue = queue_min[d];
        }
    }
    schedule
}

/// A deficit-round-robin (DRR) weighted fair queue over per-client lanes.
///
/// This is the fleet's arbitration policy, shared by the live daemon
/// (one `DrrQueue` per device) and the offline
/// [`schedule_sessions_fair`] model. Lanes are visited in registration
/// order (ties between equally-eligible lanes always break toward the
/// **lowest lane index**, i.e. earliest registration); on each visit a
/// lane is granted `weight x quantum` minutes of deficit, serves queued
/// items while its deficit covers their cost, and carries the remainder
/// to its next visit. A lane that drains empty forfeits its deficit —
/// the standard DRR rule that stops an idle client from banking credit.
///
/// # Starvation-freedom bound
///
/// With every queued item costing at most the quantum, a lane of weight
/// `w` is served at least `w` items per full rotation while it stays
/// backlogged, and one rotation serves at most `sum(w_i)` items. Hence a
/// continuously-backlogged client's completed share never falls below
/// its weight share by more than one rotation's worth — for unit
/// weights, **at most one session** behind the proportional share per
/// device (`tests/fairness_props.rs` pins this under arbitrary arrival
/// interleavings).
///
/// Everything is deterministic: no RNG, no clocks — the dispatch order
/// is a pure function of the enqueue/next call sequence.
#[derive(Debug)]
pub struct DrrQueue<T> {
    quantum_min: f64,
    lanes: Vec<DrrLane<T>>,
    cursor: usize,
    queued: usize,
}

#[derive(Debug)]
struct DrrLane<T> {
    client: String,
    weight: u32,
    deficit_min: f64,
    granted_this_visit: bool,
    queue: VecDeque<(f64, T)>,
}

/// One lane's observable state (metrics/debugging; see
/// [`DrrQueue::lanes`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DrrLaneSnapshot {
    /// Client label of the lane.
    pub client: String,
    /// The lane's weight.
    pub weight: u32,
    /// Deficit carried into the lane's next visit (minutes).
    pub deficit_min: f64,
    /// Sessions currently queued in the lane.
    pub queued: usize,
    /// Total estimated minutes queued in the lane.
    pub queued_min: f64,
}

impl<T> DrrQueue<T> {
    /// Creates an arbiter whose per-visit grant is `weight x quantum_min`.
    ///
    /// Pick the quantum at least as large as the costliest single item so
    /// every backlogged lane is served on every rotation (the daemon uses
    /// the per-session cost estimate itself, which makes DRR degenerate
    /// to exact weighted round-robin for uniform sessions).
    ///
    /// # Panics
    ///
    /// Panics when `quantum_min` is not strictly positive and finite.
    pub fn new(quantum_min: f64) -> Self {
        assert!(
            quantum_min.is_finite() && quantum_min > 0.0,
            "DRR quantum must be positive and finite"
        );
        DrrQueue {
            quantum_min,
            lanes: Vec::new(),
            cursor: 0,
            queued: 0,
        }
    }

    /// Registers a client lane with the given weight. Idempotent: a
    /// client registered twice keeps its original lane (and therefore its
    /// tie-break position); the weight is updated in place.
    ///
    /// # Panics
    ///
    /// Panics when `weight` is zero (a zero-weight lane would starve by
    /// construction).
    pub fn register(&mut self, client: &str, weight: u32) {
        assert!(weight > 0, "DRR weight must be positive");
        if let Some(lane) = self.lanes.iter_mut().find(|l| l.client == client) {
            lane.weight = weight;
            return;
        }
        self.lanes.push(DrrLane {
            client: client.to_string(),
            weight,
            deficit_min: 0.0,
            granted_this_visit: false,
            queue: VecDeque::new(),
        });
    }

    /// Queues an item of `cost_min` estimated minutes on the client's
    /// lane, registering the client with weight 1 first if unknown.
    ///
    /// # Panics
    ///
    /// Panics when `cost_min` is negative or non-finite.
    pub fn enqueue(&mut self, client: &str, cost_min: f64, item: T) {
        assert!(
            cost_min.is_finite() && cost_min >= 0.0,
            "session cost must be finite and non-negative"
        );
        if !self.lanes.iter().any(|l| l.client == client) {
            self.register(client, 1);
        }
        let lane = self
            .lanes
            .iter_mut()
            .find(|l| l.client == client)
            .expect("registered above");
        lane.queue.push_back((cost_min, item));
        self.queued += 1;
    }

    /// Dispatches the next item under DRR, or `None` when every lane is
    /// empty. Returns `(client, cost_min, item)`.
    pub fn dispatch_next(&mut self) -> Option<(String, f64, T)> {
        if self.queued == 0 {
            return None;
        }
        loop {
            let n = self.lanes.len();
            let lane = &mut self.lanes[self.cursor];
            if lane.queue.is_empty() {
                // Empty lanes forfeit their credit and their visit.
                lane.deficit_min = 0.0;
                lane.granted_this_visit = false;
                self.cursor = (self.cursor + 1) % n;
                continue;
            }
            if !lane.granted_this_visit {
                lane.deficit_min += lane.weight as f64 * self.quantum_min;
                lane.granted_this_visit = true;
            }
            let head_cost = lane.queue.front().expect("non-empty").0;
            if lane.deficit_min + 1e-12 >= head_cost {
                let (cost, item) = lane.queue.pop_front().expect("non-empty");
                lane.deficit_min -= cost;
                self.queued -= 1;
                // The cursor stays: the lane keeps serving while its
                // deficit covers the next head (the DRR burst).
                return Some((lane.client.clone(), cost, item));
            }
            // Deficit exhausted: carry it and move on.
            lane.granted_this_visit = false;
            self.cursor = (self.cursor + 1) % n;
        }
    }

    /// Items queued across all lanes.
    pub fn len(&self) -> usize {
        self.queued
    }

    /// Returns `true` when no lane holds a queued item.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Total estimated minutes queued across all lanes.
    pub fn backlog_min(&self) -> f64 {
        // Explicit fold: `Sum for f64` seeds with -0.0, which would
        // render an empty backlog as "-0.00" in reports.
        self.lanes
            .iter()
            .flat_map(|l| l.queue.iter())
            .fold(0.0, |acc, (c, _)| acc + c)
    }

    /// Per-lane snapshots in registration (tie-break) order.
    pub fn lanes(&self) -> Vec<DrrLaneSnapshot> {
        self.lanes
            .iter()
            .map(|l| DrrLaneSnapshot {
                client: l.client.clone(),
                weight: l.weight,
                deficit_min: l.deficit_min,
                queued: l.queue.len(),
                queued_min: l.queue.iter().fold(0.0, |acc, (c, _)| acc + c),
            })
            .collect()
    }
}

/// A [`FleetSchedule`] plus the per-device session completion order the
/// DRR arbiter produced — the offline counterpart of the live daemon's
/// dispatch log, used to audit starvation-freedom without running the
/// service.
#[derive(Debug, Clone, PartialEq)]
pub struct FairFleetSchedule {
    /// The priced timeline (same accounting as
    /// [`schedule_sessions_queued`]).
    pub schedule: FleetSchedule,
    /// Per device: the client label of each completed session, in
    /// completion order.
    pub completion_order: Vec<Vec<String>>,
}

/// Drains `sessions` over `num_devices` serializing devices with
/// **deficit-round-robin weighted fair queueing** across clients on each
/// device — the same [`DrrQueue`] policy the live daemon dispatches
/// with. `weights` overrides per-client weights (unlisted clients weigh
/// 1); lanes are registered in first-appearance order of `sessions`, so
/// the dispatch order is a pure function of the inputs.
///
/// The timeline is accumulated **from the DRR drain itself**: each
/// dispatched session adds its minutes to its device, and a device that
/// dispatched at least one session pays its queue wait, exactly as in
/// [`schedule_sessions_queued`]. Comparing the two is therefore a real
/// conservation check on the arbiter — a `DrrQueue` that dropped,
/// duplicated, or misrouted a session would produce a different
/// timeline. Because every device serializes its sessions, a correct
/// drain yields the same makespan and machine minutes as FIFO: fairness
/// reorders *who waits*, never how long the device works, so a uniform
/// workload never loses throughput to it (pinned by a unit test, a
/// proptest, and the fleet replay). What changes is
/// [`FairFleetSchedule::completion_order`], where light clients no
/// longer trail a heavy tenant's backlog.
///
/// The per-visit quantum is each device's largest single session, so
/// every backlogged client is served on every rotation (the
/// starvation-freedom bound in [`DrrQueue`]).
///
/// # Panics
///
/// Panics as [`schedule_sessions_queued`] does (empty fleet, queue
/// vector length mismatch, negative waits, out-of-range device,
/// negative minutes), and when a weight override is zero.
pub fn schedule_sessions_fair(
    num_devices: usize,
    sessions: &[TuningSession],
    weights: &[(String, u32)],
    queue_min: &[f64],
) -> FairFleetSchedule {
    assert!(num_devices > 0, "fleet needs at least one device");
    assert_eq!(
        queue_min.len(),
        num_devices,
        "one queue wait per device required"
    );
    assert!(queue_min.iter().all(|&q| q >= 0.0), "negative queue wait");
    for s in sessions {
        assert!(
            s.device < num_devices,
            "session {} targets device {} of {}",
            s.client,
            s.device,
            num_devices
        );
    }
    let weight_of = |client: &str| {
        weights
            .iter()
            .find(|(c, _)| c == client)
            .map(|&(_, w)| w)
            .unwrap_or(1)
    };
    let mut schedule = FleetSchedule {
        device_busy_min: vec![0.0; num_devices],
        device_queue_min: vec![0.0; num_devices],
        sessions: 0,
    };
    let mut completion_order = Vec::with_capacity(num_devices);
    for (device, &wait_min) in queue_min.iter().enumerate() {
        let device_sessions: Vec<&TuningSession> =
            sessions.iter().filter(|s| s.device == device).collect();
        if device_sessions.is_empty() {
            completion_order.push(Vec::new());
            continue;
        }
        let quantum = device_sessions
            .iter()
            .map(|s| s.minutes)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let mut arbiter: DrrQueue<()> = DrrQueue::new(quantum);
        for s in &device_sessions {
            arbiter.register(&s.client, weight_of(&s.client));
            arbiter.enqueue(&s.client, s.minutes, ());
        }
        // The device's timeline is what the arbiter actually dispatches.
        let mut order = Vec::with_capacity(device_sessions.len());
        while let Some((client, minutes, ())) = arbiter.dispatch_next() {
            schedule.device_busy_min[device] += minutes;
            schedule.sessions += 1;
            order.push(client);
        }
        schedule.device_queue_min[device] = wait_min;
        completion_order.push(order);
    }
    FairFleetSchedule {
        schedule,
        completion_order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(client: &str, device: usize, minutes: f64) -> TuningSession {
        TuningSession {
            client: client.into(),
            device,
            minutes,
        }
    }

    #[test]
    fn devices_serialize_their_sessions() {
        let s = schedule_sessions(
            2,
            &[
                session("c0", 0, 10.0),
                session("c1", 1, 5.0),
                session("c2", 0, 7.0),
            ],
        );
        assert_eq!(s.device_busy_min, vec![17.0, 5.0]);
        assert_eq!(s.makespan_min(), 17.0);
        assert_eq!(s.total_machine_min(), 22.0);
        assert_eq!(s.sessions, 3);
    }

    #[test]
    fn throughput_and_imbalance() {
        let s = schedule_sessions(2, &[session("a", 0, 30.0), session("b", 1, 30.0)]);
        assert!((s.sessions_per_hour() - 4.0).abs() < 1e-12);
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
        let skewed = schedule_sessions(2, &[session("a", 0, 30.0), session("b", 0, 30.0)]);
        assert!(skewed.imbalance() > 1.9);
        assert!(skewed.sessions_per_hour() < s.sessions_per_hour());
    }

    #[test]
    fn round_robin_cycles() {
        assert_eq!(round_robin_device(0, 3), 0);
        assert_eq!(round_robin_device(4, 3), 1);
    }

    #[test]
    fn empty_fleet_is_defined() {
        let s = schedule_sessions(3, &[]);
        assert_eq!(s.makespan_min(), 0.0);
        assert_eq!(s.sessions_per_hour(), 0.0);
        assert_eq!(s.imbalance(), 1.0);
    }

    #[test]
    #[should_panic(expected = "device")]
    fn out_of_range_device_rejected() {
        schedule_sessions(1, &[session("c", 1, 1.0)]);
    }

    #[test]
    fn queued_schedule_charges_only_used_devices() {
        let sessions = [session("a", 0, 10.0), session("b", 0, 5.0)];
        let s = schedule_sessions_queued(2, &sessions, &[7.0, 1000.0]);
        assert_eq!(
            s.device_queue_min,
            vec![7.0, 0.0],
            "idle device pays no queue"
        );
        assert_eq!(s.makespan_min(), 22.0);
        assert_eq!(
            s.total_machine_min(),
            15.0,
            "queue waits never count as machine time"
        );
    }

    #[test]
    fn queuing_minutes_feed_pins_the_makespan() {
        // The ROADMAP "Concurrency" item: CostModel::queuing_minutes flows
        // into the fleet schedule. The sampled waits are deterministic per
        // (seed, device label), so the queued makespan is pinned to the
        // recomputed expectation and reproducible run to run.
        use crate::cost::{AngleTuningMode, CostModel, WorkloadProfile};
        use vaqem_mathkit::rng::SeedStream;
        let model = CostModel::ibm_cloud_2021();
        let seeds = SeedStream::new(77);
        let profile = WorkloadProfile {
            num_qubits: 4,
            circuit_ns: 12_000.0,
            iterations: 100,
            measurement_groups: 2,
            windows: 12,
            sweep_resolution: 4,
            shots: 512,
        };
        let queue: Vec<f64> = ["fleet-east", "fleet-west"]
            .iter()
            .map(|d| model.queuing_minutes(&profile, AngleTuningMode::IdealSimulation, &seeds, d))
            .collect();
        assert!(queue.iter().all(|&q| q > 0.0));
        let sessions = [
            session("c0", 0, 30.0),
            session("c1", 1, 30.0),
            session("c2", 0, 10.0),
        ];
        let queued = schedule_sessions_queued(2, &sessions, &queue);
        let plain = schedule_sessions(2, &sessions);
        let expected = (40.0 + queue[0]).max(30.0 + queue[1]);
        assert!((queued.makespan_min() - expected).abs() < 1e-12);
        assert!(queued.makespan_min() > plain.makespan_min());
        assert_eq!(
            queued.total_machine_min(),
            plain.total_machine_min(),
            "queuing extends the makespan, not the machine bill"
        );
        // Replays are bit-identical: same seed, same labels, same makespan.
        let queue2: Vec<f64> = ["fleet-east", "fleet-west"]
            .iter()
            .map(|d| model.queuing_minutes(&profile, AngleTuningMode::IdealSimulation, &seeds, d))
            .collect();
        assert_eq!(queue, queue2);
        assert_eq!(
            schedule_sessions_queued(2, &sessions, &queue2).makespan_min(),
            queued.makespan_min()
        );
    }

    #[test]
    #[should_panic(expected = "queue wait")]
    fn queue_vector_length_must_match() {
        schedule_sessions_queued(2, &[], &[1.0]);
    }

    #[test]
    fn drr_equal_weights_round_robin() {
        // Unit-cost sessions, quantum = cost: DRR degenerates to plain
        // round-robin over backlogged lanes, ties toward the earliest-
        // registered lane.
        let mut q: DrrQueue<usize> = DrrQueue::new(1.0);
        for (c, item) in [("a", 0), ("a", 1), ("a", 2), ("b", 3), ("c", 4)] {
            q.enqueue(c, 1.0, item);
        }
        let order: Vec<(String, usize)> =
            std::iter::from_fn(|| q.dispatch_next().map(|(c, _, i)| (c, i))).collect();
        let clients: Vec<&str> = order.iter().map(|(c, _)| c.as_str()).collect();
        assert_eq!(clients, ["a", "b", "c", "a", "a"]);
        // FIFO within a lane.
        let a_items: Vec<usize> = order
            .iter()
            .filter(|(c, _)| c == "a")
            .map(|&(_, i)| i)
            .collect();
        assert_eq!(a_items, [0, 1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn drr_weighted_shares_per_rotation() {
        // Weights 1:2:3 with unit costs and quantum 1: each full rotation
        // serves exactly (1, 2, 3) sessions per lane while all stay
        // backlogged.
        let mut q: DrrQueue<()> = DrrQueue::new(1.0);
        q.register("w1", 1);
        q.register("w2", 2);
        q.register("w3", 3);
        for c in ["w1", "w2", "w3"] {
            for _ in 0..6 {
                q.enqueue(c, 1.0, ());
            }
        }
        let first_rotation: Vec<String> = (0..6).map(|_| q.dispatch_next().unwrap().0).collect();
        assert_eq!(first_rotation, ["w1", "w2", "w2", "w3", "w3", "w3"]);
        let second_rotation: Vec<String> = (0..6).map(|_| q.dispatch_next().unwrap().0).collect();
        assert_eq!(second_rotation, first_rotation);
    }

    #[test]
    fn drr_empty_lane_forfeits_deficit() {
        let mut q: DrrQueue<()> = DrrQueue::new(1.0);
        q.enqueue("a", 1.0, ());
        assert_eq!(q.dispatch_next().unwrap().0, "a");
        assert!(q.dispatch_next().is_none());
        // While "a" sat empty it banked nothing: a rival enqueued later
        // is not starved by stored credit.
        q.enqueue("b", 1.0, ());
        q.enqueue("a", 1.0, ());
        let order: Vec<String> = (0..2).map(|_| q.dispatch_next().unwrap().0).collect();
        assert_eq!(order.iter().filter(|c| *c == "a").count(), 1);
        let lanes = q.lanes();
        assert_eq!(lanes.len(), 2);
        assert!(lanes.iter().all(|l| l.queued == 0));
    }

    #[test]
    fn drr_costly_item_accumulates_deficit_over_rotations() {
        // A 3-minute session under a 1-minute quantum needs three visits'
        // worth of deficit; cheap rivals keep flowing meanwhile and the
        // expensive lane is served as soon as its credit covers the cost.
        let mut q: DrrQueue<&'static str> = DrrQueue::new(1.0);
        q.enqueue("big", 3.0, "B");
        for i in 0..4 {
            q.enqueue("small", 1.0, ["s0", "s1", "s2", "s3"][i]);
        }
        let order: Vec<&str> =
            std::iter::from_fn(|| q.dispatch_next().map(|(_, _, i)| i)).collect();
        assert_eq!(order, ["s0", "s1", "B", "s2", "s3"]);
    }

    #[test]
    fn drr_accounting_and_registration() {
        let mut q: DrrQueue<()> = DrrQueue::new(2.0);
        q.register("a", 2);
        q.register("a", 3); // idempotent: weight updated, lane kept
        q.enqueue("a", 1.5, ());
        q.enqueue("b", 0.5, ());
        assert_eq!(q.len(), 2);
        assert!((q.backlog_min() - 2.0).abs() < 1e-12);
        let lanes = q.lanes();
        assert_eq!(lanes[0].client, "a");
        assert_eq!(lanes[0].weight, 3);
        assert_eq!(lanes[1].client, "b");
        assert_eq!(lanes[1].queued, 1);
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn drr_rejects_zero_quantum() {
        let _: DrrQueue<()> = DrrQueue::new(0.0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn drr_rejects_zero_weight() {
        let mut q: DrrQueue<()> = DrrQueue::new(1.0);
        q.register("a", 0);
    }

    #[test]
    fn fair_schedule_matches_fifo_throughput_and_interleaves() {
        // One heavy client (4 sessions) vs two light ones (1 each), all
        // on device 0. Fairness cannot change the makespan (the device
        // serializes either way) but must reorder completions so the
        // light clients finish inside the first rotation instead of
        // behind the heavy backlog.
        let mut sessions = vec![
            session("heavy", 0, 10.0),
            session("heavy", 0, 10.0),
            session("heavy", 0, 10.0),
            session("heavy", 0, 10.0),
        ];
        sessions.push(session("light-a", 0, 10.0));
        sessions.push(session("light-b", 0, 10.0));
        let queue = [5.0];
        let fifo = schedule_sessions_queued(1, &sessions, &queue);
        let fair = schedule_sessions_fair(1, &sessions, &[], &queue);
        assert_eq!(fair.schedule.makespan_min(), fifo.makespan_min());
        assert_eq!(
            fair.schedule.sessions_per_hour(),
            fifo.sessions_per_hour(),
            "fairness never costs uniform throughput"
        );
        let order = &fair.completion_order[0];
        assert_eq!(order.len(), 6);
        // Every client completes within the first rotation (3 clients):
        // the light tenants are not parked behind heavy's backlog.
        assert!(order[..3].contains(&"light-a".to_string()));
        assert!(order[..3].contains(&"light-b".to_string()));
        assert_eq!(order.iter().filter(|c| *c == "heavy").count(), 4);
    }

    #[test]
    fn fair_schedule_honours_weight_overrides() {
        let sessions: Vec<TuningSession> = (0..8)
            .map(|i| session(if i % 2 == 0 { "gold" } else { "econ" }, 0, 1.0))
            .collect();
        let fair = schedule_sessions_fair(1, &sessions, &[("gold".to_string(), 3)], &[0.0]);
        // First rotation: gold's weight-3 burst, then econ's single slot.
        assert_eq!(
            fair.completion_order[0][..4],
            ["gold", "gold", "gold", "econ"].map(String::from)
        );
    }

    #[test]
    fn fair_schedule_empty_devices_are_defined() {
        let fair = schedule_sessions_fair(2, &[session("c", 1, 4.0)], &[], &[9.0, 2.0]);
        assert_eq!(fair.completion_order[0], Vec::<String>::new());
        assert_eq!(fair.completion_order[1], vec!["c".to_string()]);
        assert_eq!(fair.schedule.makespan_min(), 6.0);
    }
}
