//! Persistence for the fleet config store: versioned snapshot +
//! append-only journal, with a handwritten byte codec (the build is
//! offline — no serde).
//!
//! A fleet daemon must not lose its tuned-configuration capital when the
//! process dies: the ROADMAP calls for a store that "survives restarts".
//! The design is the classic snapshot/journal pair:
//!
//! * **Snapshot** (`store.snapshot`): the full store content, written
//!   atomically (temp file + rename) by [`DurableStore::checkpoint`].
//!   Entries are written shard 0 first, each shard oldest-to-newest in
//!   LRU order, so reloading into an equally-sharded store reproduces
//!   per-shard eviction order exactly.
//! * **Journal** (`store.journal`): every mutation since the last
//!   checkpoint, appended as a length-prefixed record. Recovery loads the
//!   snapshot, then replays the journal in order; a torn tail (crash
//!   mid-append) is detected by the length prefix and ignored.
//!
//! Both files carry a 4-byte magic and a `u32` version; an unknown magic
//! or version fails recovery loudly rather than misparsing.
//!
//! # Locking
//!
//! [`DurableStore`] wraps a [`ShardedStore`] plus one journal writer.
//! **Mutations take the journal lock first, then the shard lock** (via
//! the inner store), so record order in the journal always matches
//! mutation order in the store and replay converges to the same content.
//! Lookups never touch the journal — they contend only on their device's
//! shard, which is where fleet concurrency matters.
//!
//! What the journal does *not* record: LRU touches from lookups. After a
//! journal-only recovery the content is exact but recency order is
//! insertion order; a [`DurableStore::checkpoint`] (which snapshots
//! recency) restores it. The round-trip property — content equality
//! through save/reload — is pinned in `tests/fleet_store_props.rs`.

use std::fs::{File, OpenOptions};
use std::hash::Hash;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::cache::CacheMetrics;
use crate::store::{ShardMetrics, ShardedStore, StoreBackend};

/// Handwritten byte serialization: little-endian, length-prefixed where
/// variable. Implemented here for primitives and `String`; the concrete
/// fingerprint/value types implement it in the crate that owns them.
pub trait Codec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from the front of `input`, advancing it.
    /// Returns `None` on malformed or truncated input.
    fn decode(input: &mut &[u8]) -> Option<Self>;
    /// Decodes one value written by a file of the given format
    /// `version` (see [`FORMAT_VERSION`]). The default delegates to
    /// [`Self::decode`] — the right behavior for every type whose
    /// encoding never changed. Types that gained a richer encoding in a
    /// later format (e.g. the core crate's `StoredChoice`, whose
    /// version-1 form was a bare untagged choice) override this to keep
    /// old snapshots and journals loadable.
    fn decode_versioned(input: &mut &[u8], version: u32) -> Option<Self> {
        let _ = version;
        Self::decode(input)
    }
}

/// Splits `n` bytes off the front of `input`.
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if input.len() < n {
        return None;
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Some(head)
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Option<Self> {
                let bytes = take(input, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i16);

impl Codec for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(f64::from_bits(u64::decode(input)?))
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

/// `usize` travels as `u64` so encodings are identical across word
/// sizes; decoding fails cleanly on a value the local word cannot hold.
impl Codec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        usize::try_from(u64::decode(input)?).ok()
    }
}

/// Presence-flagged: one tag byte (0 = `None`, 1 = `Some`) then the
/// value. Any other tag is corruption.
impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(None),
            1 => Some(Some(T::decode(input)?)),
            _ => None,
        }
    }
}

/// `u32` element count then the elements, mirroring `String`. The count
/// is bounds-checked against the remaining input before reserving, so a
/// hostile length prefix cannot force a huge allocation.
impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let n = u32::decode(input)? as usize;
        // Every element consumes at least one byte in this codec family,
        // so a count beyond the remaining bytes is provably corrupt.
        if n > input.len() {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(input)?);
        }
        Some(out)
    }
}

const SNAPSHOT_MAGIC: [u8; 4] = *b"VQSN";
const JOURNAL_MAGIC: [u8; 4] = *b"VQJL";

/// The snapshot/journal format version new files are written at.
///
/// * **1** — the PR-3 format: bare per-window choice values.
/// * **2** — values are tagged `StoredChoice` encodings (per-window or
///   composed `(gs, dd, zne)`); fingerprints gained the `Zne`/`Composed`
///   mode tags (a superset encoding, readable by the same decoder).
///
/// Files at any version in
/// `MIN_SUPPORTED_VERSION..=FORMAT_VERSION` are readable: the header
/// version is threaded into every value decode via
/// [`Codec::decode_versioned`], so a fleet upgraded across the ZNE
/// change keeps its persisted tuning capital.
pub const FORMAT_VERSION: u32 = 2;

/// Oldest format version [`DurableStore::open`] still reads.
pub const MIN_SUPPORTED_VERSION: u32 = 1;

const SNAPSHOT_FILE: &str = "store.snapshot";
const JOURNAL_FILE: &str = "store.journal";

/// Journal record tags.
const TAG_INSERT: u8 = 1;
const TAG_REMOVE: u8 = 2;
const TAG_INVALIDATE_BEFORE: u8 = 3;
const TAG_INVALIDATE_ALL_BEFORE: u8 = 4;

fn bad_data(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Validates a file header and returns the format version it declares
/// (any version in the supported range).
fn check_header(input: &mut &[u8], magic: [u8; 4], what: &str) -> io::Result<u32> {
    let head = take(input, 4).ok_or_else(|| bad_data(what))?;
    if head != magic {
        return Err(bad_data(what));
    }
    let version = u32::decode(input).ok_or_else(|| bad_data(what))?;
    if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{what}: unsupported version {version}"),
        ));
    }
    Ok(version)
}

/// Serializes a flat entry list (snapshot body).
fn encode_entries<F: Codec, V: Codec>(entries: &[(String, u64, F, V)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    FORMAT_VERSION.encode(&mut out);
    (entries.len() as u64).encode(&mut out);
    for (device, epoch, fp, value) in entries {
        device.encode(&mut out);
        epoch.encode(&mut out);
        fp.encode(&mut out);
        value.encode(&mut out);
    }
    out
}

fn decode_entries<F: Codec, V: Codec>(mut input: &[u8]) -> io::Result<Vec<(String, u64, F, V)>> {
    let input = &mut input;
    let version = check_header(input, SNAPSHOT_MAGIC, "snapshot header")?;
    let count = u64::decode(input).ok_or_else(|| bad_data("snapshot count"))?;
    let mut entries = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let device = String::decode(input).ok_or_else(|| bad_data("snapshot entry"))?;
        let epoch = u64::decode(input).ok_or_else(|| bad_data("snapshot entry"))?;
        let fp = F::decode_versioned(input, version).ok_or_else(|| bad_data("snapshot entry"))?;
        let value =
            V::decode_versioned(input, version).ok_or_else(|| bad_data("snapshot entry"))?;
        entries.push((device, epoch, fp, value));
    }
    Ok(entries)
}

/// One journaled mutation.
#[derive(Debug, Clone, PartialEq)]
enum JournalRecord<F, V> {
    Insert {
        device: String,
        epoch: u64,
        fingerprint: F,
        value: V,
    },
    Remove {
        device: String,
        epoch: u64,
        fingerprint: F,
    },
    InvalidateBefore {
        device: String,
        epoch: u64,
    },
    InvalidateAllBefore {
        epoch: u64,
    },
}

impl<F: Codec, V: Codec> JournalRecord<F, V> {
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            JournalRecord::Insert {
                device,
                epoch,
                fingerprint,
                value,
            } => {
                out.push(TAG_INSERT);
                device.encode(&mut out);
                epoch.encode(&mut out);
                fingerprint.encode(&mut out);
                value.encode(&mut out);
            }
            JournalRecord::Remove {
                device,
                epoch,
                fingerprint,
            } => {
                out.push(TAG_REMOVE);
                device.encode(&mut out);
                epoch.encode(&mut out);
                fingerprint.encode(&mut out);
            }
            JournalRecord::InvalidateBefore { device, epoch } => {
                out.push(TAG_INVALIDATE_BEFORE);
                device.encode(&mut out);
                epoch.encode(&mut out);
            }
            JournalRecord::InvalidateAllBefore { epoch } => {
                out.push(TAG_INVALIDATE_ALL_BEFORE);
                epoch.encode(&mut out);
            }
        }
        out
    }

    fn decode_payload(mut payload: &[u8], version: u32) -> Option<Self> {
        let input = &mut payload;
        let record = match u8::decode(input)? {
            TAG_INSERT => JournalRecord::Insert {
                device: String::decode(input)?,
                epoch: u64::decode(input)?,
                fingerprint: F::decode_versioned(input, version)?,
                value: V::decode_versioned(input, version)?,
            },
            TAG_REMOVE => JournalRecord::Remove {
                device: String::decode(input)?,
                epoch: u64::decode(input)?,
                fingerprint: F::decode_versioned(input, version)?,
            },
            TAG_INVALIDATE_BEFORE => JournalRecord::InvalidateBefore {
                device: String::decode(input)?,
                epoch: u64::decode(input)?,
            },
            TAG_INVALIDATE_ALL_BEFORE => JournalRecord::InvalidateAllBefore {
                epoch: u64::decode(input)?,
            },
            _ => return None,
        };
        if input.is_empty() {
            Some(record)
        } else {
            None // trailing garbage inside a record is corruption
        }
    }
}

/// Length of the journal file header (magic + `u32` version).
const JOURNAL_HEADER_LEN: u64 = 8;

/// The append side of the journal.
///
/// Two write disciplines share this struct. **Per-record** (`append`):
/// every record hits the file immediately — one write syscall per
/// mutation, the follower/standalone default. **Group commit**
/// (`buffer` + `flush_buffered`): records accumulate in `buf` and reach
/// the file in one write per batch — the leader reactor flushes once
/// per event-loop drain and gates its replies on the flush, so
/// *acknowledged ⇒ on disk* holds with far fewer syscalls.
///
/// `bytes` is the **durable** file length and therefore the replication
/// ship offset: it advances only when bytes actually reach the file,
/// never while they sit in `buf` — `ship_since` reads the on-disk file
/// byte-exactly, so buffered bytes must never be claimable.
#[derive(Debug)]
struct JournalWriter {
    file: File,
    records: u64,
    /// Durable journal file length in bytes, header included — the
    /// replication shipping offset (see [`ShipCursor`]).
    bytes: u64,
    /// Framed records awaiting the next group-commit flush.
    buf: Vec<u8>,
    /// Records inside `buf`.
    buf_records: u64,
}

impl JournalWriter {
    fn frame_into(payload: &[u8], out: &mut Vec<u8>) {
        (payload.len() as u32).encode(out);
        out.extend_from_slice(payload);
    }

    fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut framed = Vec::with_capacity(payload.len() + 4);
        Self::frame_into(payload, &mut framed);
        self.file.write_all(&framed)?;
        self.file.flush()?;
        self.records += 1;
        self.bytes += framed.len() as u64;
        Ok(())
    }

    /// Queues one record for the next [`JournalWriter::flush_buffered`];
    /// cannot fail — I/O errors surface at flush time.
    fn buffer(&mut self, payload: &[u8]) {
        Self::frame_into(payload, &mut self.buf);
        self.buf_records += 1;
    }

    /// Writes every buffered record in one syscall. On error the batch
    /// is dropped (the in-memory store stays ahead of the journal,
    /// exactly like a failed per-record append) and the durable length
    /// is left untouched.
    fn flush_buffered(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let result = self
            .file
            .write_all(&self.buf)
            .and_then(|()| self.file.flush());
        if result.is_ok() {
            self.records += self.buf_records;
            self.bytes += self.buf.len() as u64;
        }
        self.buf.clear();
        self.buf_records = 0;
        result
    }
}

/// A replication position in a leader's journal: which journal
/// *incarnation* (`generation` — bumped by every checkpoint, which
/// truncates and recreates the journal file) and how many bytes of it
/// (header included) a follower has durably applied.
///
/// Cursors order lexicographically — generation first, then offset — and
/// [`ShipCursor::covers`] is exactly that order: a follower sitting at a
/// *later* generation has applied a full snapshot taken at-or-after any
/// point in an earlier generation, so generation-crossing comparisons are
/// safe.
///
/// `ShipCursor::default()` — generation 0, offset 0 — matches no live
/// journal and therefore always provokes a snapshot bootstrap from
/// [`DurableStore::ship_since`]: the canonical "I have nothing" ack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct ShipCursor {
    /// Journal incarnation: starts at 1 on open, +1 per checkpoint.
    pub generation: u64,
    /// Bytes of that incarnation's journal file applied (the 8-byte
    /// header counts, so a freshly-bootstrapped follower sits at 8).
    pub offset: u64,
}

impl ShipCursor {
    /// Whether this cursor has durably applied everything up to `point`.
    pub fn covers(&self, point: ShipCursor) -> bool {
        *self >= point
    }
}

/// One leader→follower shipment produced by [`DurableStore::ship_since`].
///
/// The payload is either a byte-exact slice of the on-disk journal
/// (`snapshot == false` — the same `u32`-framed records
/// [`DurableStore::open`] replays) or a full snapshot body
/// (`snapshot == true` — the same bytes [`DurableStore::checkpoint`]
/// writes). One serialization discipline for disk, wire, and
/// replication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipBatch {
    /// `true`: `payload` is a full snapshot body (magic + version +
    /// entries); `false`: `payload` is raw framed journal records.
    pub snapshot: bool,
    /// Where a follower stands after durably applying `payload`.
    pub cursor: ShipCursor,
    /// The bytes to apply — possibly empty (follower already caught up).
    pub payload: Vec<u8>,
}

/// When a [`DurableStore`] compacts its journal into a snapshot on its
/// own — the self-compacting durability policy.
///
/// An append-only journal grows without bound between explicit
/// checkpoints, and every record slows the next recovery replay. The
/// policy bounds that: once the journal holds more than
/// `max_journal_records` records, [`DurableStore::maybe_compact`]
/// checkpoints (snapshot written atomically, journal truncated). The
/// fleet reactor calls `maybe_compact` on its checkpoint ticks, so a
/// long-lived daemon keeps recovery O(snapshot + bounded journal) with
/// no operator in the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Journal records beyond which the next compaction check
    /// checkpoints. `0` disables auto-compaction (explicit
    /// [`DurableStore::checkpoint`] calls only).
    pub max_journal_records: u64,
}

impl CompactionPolicy {
    /// Auto-compaction disabled: only explicit checkpoints compact.
    pub const fn disabled() -> Self {
        CompactionPolicy {
            max_journal_records: 0,
        }
    }

    /// Compact once the journal exceeds `max_journal_records` records.
    pub const fn after_records(max_journal_records: u64) -> Self {
        CompactionPolicy {
            max_journal_records,
        }
    }
}

impl Default for CompactionPolicy {
    /// Compact past 4096 journal records — roughly a few hundred fleet
    /// sessions' worth of mutations, small enough that recovery replay
    /// stays instant and large enough that snapshot writes stay rare.
    fn default() -> Self {
        CompactionPolicy::after_records(4096)
    }
}

/// Counters describing one [`DurableStore::open`] recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Entries loaded from the snapshot.
    pub snapshot_entries: usize,
    /// Journal records replayed on top of the snapshot.
    pub journal_records: usize,
    /// `true` when a torn record terminated journal replay early (the
    /// well-formed prefix was still applied).
    pub journal_truncated: bool,
}

/// A [`ShardedStore`] that survives restarts: every mutation is appended
/// to an on-disk journal, and [`Self::checkpoint`] compacts the journal
/// into a versioned snapshot.
///
/// All methods take `&self`; share the store across worker threads behind
/// an `Arc`. The warm-start tuner runs against `Arc<DurableStore>` via
/// [`StoreBackend`].
///
/// ```
/// use vaqem_runtime::persist::DurableStore;
///
/// let dir = std::env::temp_dir().join(format!("vaqem-doc-store-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// {
///     let store: DurableStore<u64, u64> = DurableStore::open(&dir, 4, 256)?;
///     store.insert("fleet-east", 0, 7, 42);
///     // Dropped without a checkpoint — like a process kill: the
///     // append-only journal is the only durable record.
/// }
/// let store: DurableStore<u64, u64> = DurableStore::open(&dir, 4, 256)?;
/// assert_eq!(store.recovery().journal_records, 1);
/// assert_eq!(store.lookup("fleet-east", 0, &7), Some(42));
/// store.checkpoint()?; // compact: snapshot written, journal truncated
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct DurableStore<F, V> {
    store: ShardedStore<F, V>,
    journal: Mutex<JournalWriter>,
    dir: PathBuf,
    recovery: RecoveryReport,
    journal_write_errors: AtomicU64,
    /// Journal incarnation counter for replication cursors; bumped by
    /// every checkpoint. Only ever written under the journal lock — the
    /// atomic is for lock-free reads in metrics paths.
    generation: AtomicU64,
    /// Group-commit mode: mutations buffer their journal records and a
    /// caller (the leader reactor) flushes once per batch via
    /// [`DurableStore::flush_journal`]. Off by default — follower and
    /// standalone stores keep the per-record flush discipline.
    group_commit: AtomicBool,
}

impl<F, V> DurableStore<F, V>
where
    F: Codec + Hash + Eq + Clone,
    V: Codec + Clone,
{
    /// Opens (or creates) the store persisted under `dir`: loads the
    /// snapshot if present, replays the journal on top, and reopens the
    /// journal for appending. Cache metrics start at zero — recovery
    /// inserts are not client traffic.
    ///
    /// # Errors
    ///
    /// I/O failures, or a snapshot/journal header with the wrong magic or
    /// an unsupported version.
    pub fn open(dir: &Path, num_shards: usize, capacity_per_shard: usize) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let store = ShardedStore::new(num_shards, capacity_per_shard);
        let mut recovery = RecoveryReport::default();

        let snapshot_path = dir.join(SNAPSHOT_FILE);
        if snapshot_path.exists() {
            let mut bytes = Vec::new();
            File::open(&snapshot_path)?.read_to_end(&mut bytes)?;
            let entries = decode_entries::<F, V>(&bytes)?;
            recovery.snapshot_entries = entries.len();
            for (device, epoch, fp, value) in entries {
                store.insert(&device, epoch, fp, value);
            }
        }

        let journal_path = dir.join(JOURNAL_FILE);
        let mut journal_upgraded = false;
        let mut journal_bytes = JOURNAL_HEADER_LEN;
        if journal_path.exists() {
            let mut bytes = Vec::new();
            File::open(&journal_path)?.read_to_end(&mut bytes)?;
            let mut input = bytes.as_slice();
            let version = check_header(&mut input, JOURNAL_MAGIC, "journal header")?;
            // An old-format journal is replayed, then rewritten at the
            // current version: records appended by this process use the
            // current encoding, which must never land behind a header
            // declaring the old one.
            journal_upgraded = version < FORMAT_VERSION;
            // Bytes of well-formed journal prefix (header + valid records):
            // a torn tail is truncated to this length before reopening for
            // append, so post-recovery records never land behind garbage
            // (which the next open's replay would discard).
            let mut valid_len = bytes.len() - input.len();
            loop {
                if input.is_empty() {
                    break;
                }
                let remaining_before = input.len();
                let framed = (|| {
                    let len = u32::decode(&mut input)? as usize;
                    let payload = take(&mut input, len)?;
                    JournalRecord::<F, V>::decode_payload(payload, version)
                })();
                let Some(record) = framed else {
                    // Torn tail from a crash mid-append: the well-formed
                    // prefix is the durable history; stop here.
                    recovery.journal_truncated = true;
                    break;
                };
                valid_len += remaining_before - input.len();
                recovery.journal_records += 1;
                match record {
                    JournalRecord::Insert {
                        device,
                        epoch,
                        fingerprint,
                        value,
                    } => store.insert(&device, epoch, fingerprint, value),
                    JournalRecord::Remove {
                        device,
                        epoch,
                        fingerprint,
                    } => {
                        store.remove(&device, epoch, &fingerprint);
                    }
                    JournalRecord::InvalidateBefore { device, epoch } => {
                        store.invalidate_before(&device, epoch);
                    }
                    JournalRecord::InvalidateAllBefore { epoch } => {
                        store.invalidate_all_before(epoch);
                    }
                }
            }
            if recovery.journal_truncated {
                let file = OpenOptions::new().write(true).open(&journal_path)?;
                file.set_len(valid_len as u64)?;
                file.sync_all()?;
            }
            journal_bytes = valid_len as u64;
        } else {
            let mut file = File::create(&journal_path)?;
            file.write_all(&JOURNAL_MAGIC)?;
            let mut v = Vec::new();
            FORMAT_VERSION.encode(&mut v);
            file.write_all(&v)?;
            file.flush()?;
        }

        let file = OpenOptions::new().append(true).open(&journal_path)?;
        store.reset_metrics();
        let opened = DurableStore {
            store,
            journal: Mutex::new(JournalWriter {
                file,
                records: recovery.journal_records as u64,
                bytes: journal_bytes,
                buf: Vec::new(),
                buf_records: 0,
            }),
            dir: dir.to_path_buf(),
            recovery,
            journal_write_errors: AtomicU64::new(0),
            generation: AtomicU64::new(1),
            group_commit: AtomicBool::new(false),
        };
        if journal_upgraded {
            // Old-format journal: compact immediately so every on-disk
            // byte — snapshot and journal header alike — is at the
            // current format before any new record is appended.
            opened.checkpoint()?;
        }
        Ok(opened)
    }

    /// What [`Self::open`] recovered from disk.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Journal appends that failed with an I/O error since open. The
    /// in-memory store stays correct when this is non-zero, but
    /// durability of those mutations is lost; a daemon should checkpoint
    /// and alert.
    pub fn journal_write_errors(&self) -> u64 {
        self.journal_write_errors.load(Ordering::Relaxed)
    }

    /// Records durably appended to the journal since the last
    /// checkpoint (including replayed ones at open). Under group commit
    /// this excludes records still buffered toward the next flush.
    pub fn journal_records(&self) -> u64 {
        self.journal.lock().expect("journal lock").records
    }

    /// Switches between per-record flushing (`false`, the default) and
    /// group commit (`true`): mutations buffer their journal records
    /// until [`DurableStore::flush_journal`] writes the whole batch in
    /// one syscall. Callers enabling group commit own the durability
    /// contract — nothing may be acknowledged to a client before the
    /// flush covering it returns. Disabling flushes whatever is
    /// buffered.
    pub fn set_group_commit(&self, enabled: bool) {
        self.group_commit.store(enabled, Ordering::Relaxed);
        if !enabled {
            let _ = self.flush_journal();
        }
    }

    /// Writes every buffered journal record in one syscall (a no-op
    /// when nothing is buffered). The group-commit barrier: once this
    /// returns `Ok`, every mutation applied before the call is durable
    /// and [`DurableStore::ship_cursor`] covers it.
    ///
    /// # Errors
    ///
    /// Journal write failures (also counted in
    /// [`DurableStore::journal_write_errors`]; the batch is dropped,
    /// like a failed per-record append).
    pub fn flush_journal(&self) -> io::Result<()> {
        let mut journal = self.journal.lock().expect("journal lock");
        let result = journal.flush_buffered();
        if result.is_err() {
            self.journal_write_errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// The replication position a reply must wait for: the durable
    /// cursor *plus* any records still buffered toward the next group
    /// commit. Gate replies on this point and release them once
    /// [`DurableStore::ship_cursor`] (after a flush) covers it —
    /// acknowledged ⇒ on disk.
    pub fn pending_cursor(&self) -> ShipCursor {
        let journal = self.journal.lock().expect("journal lock");
        ShipCursor {
            generation: self.generation.load(Ordering::Relaxed),
            offset: journal.bytes + journal.buf.len() as u64,
        }
    }

    /// Applies a mutation and appends its record — but only when `apply`
    /// reports it was effectful, so no-op removals/invalidations (a guard
    /// discarding an already-evicted seed, a fresh epoch with nothing
    /// stale) don't bloat the journal and slow every future replay.
    ///
    /// Journal lock first, shard lock second (inside `apply`): journal
    /// order always matches store mutation order.
    fn journaled(
        &self,
        record: JournalRecord<F, V>,
        apply: impl FnOnce(&ShardedStore<F, V>) -> bool,
    ) {
        let mut journal = self.journal.lock().expect("journal lock");
        if apply(&self.store) {
            if self.group_commit.load(Ordering::Relaxed) {
                // Buffering cannot fail; I/O errors surface (and are
                // counted) at the batch flush.
                journal.buffer(&record.encode_payload());
            } else if journal.append(&record.encode_payload()).is_err() {
                self.journal_write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Looks up a fingerprint — shard lock only, never journaled.
    pub fn lookup(&self, device: &str, epoch: u64, fingerprint: &F) -> Option<V> {
        self.store.lookup(device, epoch, fingerprint)
    }

    /// Inserts an entry and journals the mutation.
    pub fn insert(&self, device: &str, epoch: u64, fingerprint: F, value: V) {
        self.journaled(
            JournalRecord::Insert {
                device: device.to_string(),
                epoch,
                fingerprint: fingerprint.clone(),
                value: value.clone(),
            },
            |s| {
                s.insert(device, epoch, fingerprint, value);
                true
            },
        );
    }

    /// Removes one entry and journals the mutation.
    pub fn remove(&self, device: &str, epoch: u64, fingerprint: &F) -> bool {
        let mut existed = false;
        self.journaled(
            JournalRecord::Remove {
                device: device.to_string(),
                epoch,
                fingerprint: fingerprint.clone(),
            },
            |s| {
                existed = s.remove(device, epoch, fingerprint);
                existed
            },
        );
        existed
    }

    /// Drops a device's stale-epoch entries and journals the event.
    pub fn invalidate_before(&self, device: &str, epoch: u64) -> usize {
        let mut dropped = 0;
        self.journaled(
            JournalRecord::InvalidateBefore {
                device: device.to_string(),
                epoch,
            },
            |s| {
                dropped = s.invalidate_before(device, epoch);
                dropped > 0
            },
        );
        dropped
    }

    /// Fleet-wide drift broadcast: drops stale-epoch entries on every
    /// shard and journals the event.
    pub fn invalidate_all_before(&self, epoch: u64) -> usize {
        let mut dropped = 0;
        self.journaled(JournalRecord::InvalidateAllBefore { epoch }, |s| {
            dropped = s.invalidate_all_before(epoch);
            dropped > 0
        });
        dropped
    }

    /// Writes a fresh snapshot atomically (temp file + rename) and
    /// truncates the journal. Blocks mutations (journal lock) for the
    /// duration; lookups keep flowing.
    ///
    /// # Errors
    ///
    /// I/O failures; the previous snapshot and journal stay intact.
    pub fn checkpoint(&self) -> io::Result<()> {
        let mut journal = self.journal.lock().expect("journal lock");
        let bytes = encode_entries(&self.store.export_entries());
        let tmp = self.dir.join("store.snapshot.tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        let journal_path = self.dir.join(JOURNAL_FILE);
        let mut file = File::create(&journal_path)?;
        file.write_all(&JOURNAL_MAGIC)?;
        let mut v = Vec::new();
        FORMAT_VERSION.encode(&mut v);
        file.write_all(&v)?;
        file.flush()?;
        // Replacing the writer also discards any group-commit buffer:
        // the buffered records were applied to the in-memory store
        // before they were buffered, so the snapshot just written
        // already covers them — their durability point only moves
        // *earlier*, and replies gated on a pre-checkpoint
        // `pending_cursor` release via the generation bump
        // (lexicographic `covers`).
        *journal = JournalWriter {
            file,
            records: 0,
            bytes: JOURNAL_HEADER_LEN,
            buf: Vec::new(),
            buf_records: 0,
        };
        // New journal incarnation: replication cursors into the old file
        // are dead, so followers behind them get a snapshot bootstrap.
        self.generation.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The store's current replication position: everything a follower
    /// must durably hold to have applied every mutation so far.
    pub fn ship_cursor(&self) -> ShipCursor {
        let journal = self.journal.lock().expect("journal lock");
        ShipCursor {
            generation: self.generation.load(Ordering::Relaxed),
            offset: journal.bytes,
        }
    }

    /// Produces the next leader→follower shipment for a follower that
    /// has durably applied up to `acked`.
    ///
    /// When `acked` points into the live journal incarnation, the
    /// payload is the byte-exact on-disk journal slice from that offset
    /// to the current end (possibly empty — caught up). Any other
    /// cursor — the `(0, 0)` bootstrap ack, a cursor from a compacted
    /// generation, or an offset past the end (a foreign journal) — gets
    /// a full snapshot body instead.
    ///
    /// # Errors
    ///
    /// Journal file read failures.
    pub fn ship_since(&self, acked: ShipCursor) -> io::Result<ShipBatch> {
        use std::io::{Seek, SeekFrom};
        let journal = self.journal.lock().expect("journal lock");
        let cursor = ShipCursor {
            generation: self.generation.load(Ordering::Relaxed),
            offset: journal.bytes,
        };
        let live = acked.generation == cursor.generation
            && acked.offset >= JOURNAL_HEADER_LEN
            && acked.offset <= cursor.offset;
        if live {
            let mut file = File::open(self.dir.join(JOURNAL_FILE))?;
            file.seek(SeekFrom::Start(acked.offset))?;
            let mut payload = vec![0u8; (cursor.offset - acked.offset) as usize];
            file.read_exact(&mut payload)?;
            Ok(ShipBatch {
                snapshot: false,
                cursor,
                payload,
            })
        } else {
            // Journal lock is already held, so export_entries (shard
            // locks) follows the journal→shard order every mutation
            // path uses.
            Ok(ShipBatch {
                snapshot: true,
                cursor,
                payload: encode_entries(&self.store.export_entries()),
            })
        }
    }

    /// Applies one shipment to this (follower) store and returns the
    /// number of entries or records applied.
    ///
    /// Snapshot shipments replace the whole store contents and
    /// checkpoint immediately, so the follower's own on-disk state is a
    /// faithful restart point. Record shipments replay each journal
    /// record through the store's own journaled mutation paths — a
    /// follower's local journal therefore re-records everything it
    /// applies, and promotion is a plain [`DurableStore::open`] of the
    /// follower's directory.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the payload is torn or malformed (a follower
    /// should re-ack `ShipCursor::default()` to force a snapshot
    /// resync); checkpoint I/O errors on the snapshot path.
    pub fn apply_ship(&self, batch: &ShipBatch) -> io::Result<usize> {
        if batch.snapshot {
            let entries = decode_entries::<F, V>(&batch.payload)?;
            let count = entries.len();
            self.store.clear_all();
            for (device, epoch, fp, value) in entries {
                self.store.insert(&device, epoch, fp, value);
            }
            // Compact immediately: the follower's snapshot now equals
            // the leader's shipped state and its journal is empty.
            self.checkpoint()?;
            Ok(count)
        } else {
            let mut input = batch.payload.as_slice();
            let mut applied = 0usize;
            while !input.is_empty() {
                let record = (|| {
                    let len = u32::decode(&mut input)? as usize;
                    let payload = take(&mut input, len)?;
                    JournalRecord::<F, V>::decode_payload(payload, FORMAT_VERSION)
                })();
                let Some(record) = record else {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "torn or malformed shipped journal record",
                    ));
                };
                match record {
                    JournalRecord::Insert {
                        device,
                        epoch,
                        fingerprint,
                        value,
                    } => self.insert(&device, epoch, fingerprint, value),
                    JournalRecord::Remove {
                        device,
                        epoch,
                        fingerprint,
                    } => {
                        self.remove(&device, epoch, &fingerprint);
                    }
                    JournalRecord::InvalidateBefore { device, epoch } => {
                        self.invalidate_before(&device, epoch);
                    }
                    JournalRecord::InvalidateAllBefore { epoch } => {
                        self.invalidate_all_before(epoch);
                    }
                }
                applied += 1;
            }
            Ok(applied)
        }
    }

    /// Checkpoints if (and only if) `policy` says the journal has grown
    /// past its record bound, returning whether a compaction ran. The
    /// check is one journal-lock acquisition when it declines — cheap
    /// enough to call on every reactor checkpoint tick.
    ///
    /// # Errors
    ///
    /// Checkpoint I/O errors (the previous snapshot and journal stay
    /// intact, exactly as for [`Self::checkpoint`]).
    pub fn maybe_compact(&self, policy: CompactionPolicy) -> io::Result<bool> {
        if policy.max_journal_records == 0 || self.journal_records() <= policy.max_journal_records {
            return Ok(false);
        }
        self.checkpoint()?;
        Ok(true)
    }

    /// Credits `delta` store traffic to `client`
    /// (see [`ShardedStore::attribute_client`]).
    pub fn attribute_client(&self, client: &str, delta: &CacheMetrics) {
        self.store.attribute_client(client, delta)
    }

    /// Per-client attributed traffic, sorted by client label
    /// (see [`ShardedStore::client_attribution`] — a shared snapshot,
    /// O(1) between attributions).
    pub fn client_attribution(&self) -> Arc<Vec<(String, CacheMetrics)>> {
        self.store.client_attribution()
    }

    /// Total live entries.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Returns `true` when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Aggregate cache counters since open (recovery inserts excluded).
    pub fn metrics(&self) -> CacheMetrics {
        self.store.metrics()
    }

    /// Per-shard observability snapshots.
    pub fn shard_metrics(&self) -> Vec<ShardMetrics> {
        self.store.shard_metrics()
    }

    /// One shard's snapshot, touching only that shard's lock
    /// (see [`ShardedStore::shard_metrics_of`]).
    pub fn shard_metrics_of(&self, shard: usize) -> ShardMetrics {
        self.store.shard_metrics_of(shard)
    }

    /// Zeroes the cache counters on every shard.
    pub fn reset_metrics(&self) {
        self.store.reset_metrics()
    }

    /// The shard a device routes to (see [`ShardedStore::shard_of`]).
    pub fn shard_of(&self, device: &str) -> usize {
        self.store.shard_of(device)
    }

    /// Every live entry in snapshot order.
    pub fn export_entries(&self) -> Vec<(String, u64, F, V)> {
        self.store.export_entries()
    }
}

impl<F, V> Drop for DurableStore<F, V> {
    fn drop(&mut self) {
        // A graceful drop under group commit flushes the tail batch —
        // only a genuine crash (SIGKILL, power loss) can lose buffered,
        // *unacknowledged* records.
        if let Ok(mut journal) = self.journal.lock() {
            let _ = journal.flush_buffered();
        }
    }
}

impl<F, V> StoreBackend<F, V> for std::sync::Arc<DurableStore<F, V>>
where
    F: Codec + Hash + Eq + Clone,
    V: Codec + Clone,
{
    fn lookup(&mut self, device: &str, epoch: u64, fingerprint: &F) -> Option<V> {
        DurableStore::lookup(self, device, epoch, fingerprint)
    }

    fn publish(&mut self, device: &str, epoch: u64, fingerprint: F, value: V) {
        DurableStore::insert(self, device, epoch, fingerprint, value);
    }

    fn discard(&mut self, device: &str, epoch: u64, fingerprint: &F) -> bool {
        DurableStore::remove(self, device, epoch, fingerprint)
    }

    fn invalidate_device_before(&mut self, device: &str, epoch: u64) -> usize {
        DurableStore::invalidate_before(self, device, epoch)
    }

    fn metrics_snapshot(&self) -> CacheMetrics {
        self.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vaqem-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn primitive_codecs_round_trip() {
        let mut buf = Vec::new();
        42u8.encode(&mut buf);
        7u16.encode(&mut buf);
        9u32.encode(&mut buf);
        u64::MAX.encode(&mut buf);
        (-3i16).encode(&mut buf);
        1.5f64.encode(&mut buf);
        true.encode(&mut buf);
        "fleet-east".to_string().encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(u8::decode(&mut input), Some(42));
        assert_eq!(u16::decode(&mut input), Some(7));
        assert_eq!(u32::decode(&mut input), Some(9));
        assert_eq!(u64::decode(&mut input), Some(u64::MAX));
        assert_eq!(i16::decode(&mut input), Some(-3));
        assert_eq!(f64::decode(&mut input), Some(1.5));
        assert_eq!(bool::decode(&mut input), Some(true));
        assert_eq!(String::decode(&mut input), Some("fleet-east".into()));
        assert!(input.is_empty());
        assert_eq!(u8::decode(&mut input), None, "empty input fails cleanly");
    }

    #[test]
    fn journal_replay_restores_content() {
        let dir = temp_dir("journal");
        {
            let store: DurableStore<u64, u64> = DurableStore::open(&dir, 4, 64).unwrap();
            store.insert("a", 0, 1, 10);
            store.insert("a", 0, 2, 20);
            store.insert("b", 1, 1, 30);
            store.remove("a", 0, &2);
            store.invalidate_before("b", 1); // no-op: entry is at epoch 1
            assert!(!store.remove("a", 0, &2), "second removal is a no-op");
            assert_eq!(
                store.journal_records(),
                4,
                "no-op removals/invalidations are not journaled"
            );
            assert_eq!(store.journal_write_errors(), 0);
            // No checkpoint: the journal alone carries the state.
        }
        let reloaded: DurableStore<u64, u64> = DurableStore::open(&dir, 4, 64).unwrap();
        assert_eq!(reloaded.recovery().journal_records, 4);
        assert_eq!(reloaded.recovery().snapshot_entries, 0);
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.lookup("a", 0, &1), Some(10));
        assert_eq!(reloaded.lookup("a", 0, &2), None);
        assert_eq!(reloaded.lookup("b", 1, &1), Some(30));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_preserves_lru_order() {
        let dir = temp_dir("checkpoint");
        let before;
        {
            let store: DurableStore<u64, u64> = DurableStore::open(&dir, 2, 64).unwrap();
            for k in 0..16u64 {
                store.insert("dev", 0, k, k * 2);
            }
            store.lookup("dev", 0, &3); // refresh: 3 becomes newest
            store.checkpoint().unwrap();
            assert_eq!(store.journal_records(), 0, "checkpoint truncates");
            store.insert("dev", 0, 99, 198); // post-checkpoint journal tail
            before = store.export_entries();
        }
        let reloaded: DurableStore<u64, u64> = DurableStore::open(&dir, 2, 64).unwrap();
        assert_eq!(reloaded.recovery().snapshot_entries, 16);
        assert_eq!(reloaded.recovery().journal_records, 1);
        assert_eq!(
            reloaded.export_entries(),
            before,
            "content and order survive"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_compaction_shrinks_the_journal_and_round_trips() {
        let dir = temp_dir("autocompact");
        let policy = CompactionPolicy::after_records(8);
        let before;
        {
            let store: DurableStore<u64, u64> = DurableStore::open(&dir, 2, 64).unwrap();
            for k in 0..6u64 {
                store.insert("dev", 0, k, k);
            }
            // Under the bound: the policy declines, the journal keeps
            // its records and the disk file keeps its bytes.
            let bytes_before = std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len();
            assert!(!store.maybe_compact(policy).unwrap());
            assert_eq!(store.journal_records(), 6);
            assert_eq!(
                std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len(),
                bytes_before
            );
            // Disabled policy never compacts, whatever the length.
            assert!(!store.maybe_compact(CompactionPolicy::disabled()).unwrap());

            // Past the bound: one check compacts — snapshot written,
            // journal truncated back to its bare header.
            for k in 6..12u64 {
                store.insert("dev", 0, k, k * 10);
            }
            assert!(store.journal_records() > policy.max_journal_records);
            assert!(store.maybe_compact(policy).unwrap());
            assert_eq!(store.journal_records(), 0, "journal truncated");
            let bytes_after = std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len();
            assert!(
                bytes_after < bytes_before,
                "journal file shrank: {bytes_after} vs {bytes_before}"
            );
            assert!(dir.join(SNAPSHOT_FILE).exists());
            // Immediately after compacting, the policy has nothing to do.
            assert!(!store.maybe_compact(policy).unwrap());
            before = store.export_entries();
        }
        // Recovery after an auto-compaction round-trips content and
        // per-shard LRU order from the snapshot alone.
        let reloaded: DurableStore<u64, u64> = DurableStore::open(&dir, 2, 64).unwrap();
        assert_eq!(reloaded.recovery().snapshot_entries, 12);
        assert_eq!(reloaded.recovery().journal_records, 0);
        assert_eq!(reloaded.export_entries(), before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_journal_tail_is_ignored() {
        let dir = temp_dir("torn");
        {
            let store: DurableStore<u64, u64> = DurableStore::open(&dir, 2, 64).unwrap();
            store.insert("dev", 0, 1, 10);
            store.insert("dev", 0, 2, 20);
        }
        // Simulate a crash mid-append: a length prefix promising more
        // bytes than exist.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(JOURNAL_FILE))
                .unwrap();
            f.write_all(&[200, 0, 0, 0, TAG_INSERT, 1, 2]).unwrap();
        }
        let reloaded: DurableStore<u64, u64> = DurableStore::open(&dir, 2, 64).unwrap();
        assert!(reloaded.recovery().journal_truncated);
        assert_eq!(reloaded.recovery().journal_records, 2);
        assert_eq!(reloaded.len(), 2, "well-formed prefix still applied");
        // The torn bytes were truncated away, so post-recovery mutations
        // append cleanly and survive the *next* restart too.
        reloaded.insert("dev", 0, 3, 30);
        drop(reloaded);
        let again: DurableStore<u64, u64> = DurableStore::open(&dir, 2, 64).unwrap();
        assert!(!again.recovery().journal_truncated, "tail was repaired");
        assert_eq!(again.recovery().journal_records, 3);
        assert_eq!(
            again.lookup("dev", 0, &3),
            Some(30),
            "post-recovery record durable"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_1_snapshot_and_journal_still_load() {
        // Hand-craft version-1 files (the u64 codec is unchanged across
        // versions) and open them: the entries must load, and the journal
        // must be upgraded to the current format by an immediate
        // compaction so new records never land behind an old header.
        let dir = temp_dir("v1-compat");
        std::fs::create_dir_all(&dir).unwrap();
        let mut snap = Vec::new();
        snap.extend_from_slice(&SNAPSHOT_MAGIC);
        1u32.encode(&mut snap);
        1u64.encode(&mut snap); // one entry
        "dev-legacy".to_string().encode(&mut snap);
        3u64.encode(&mut snap); // epoch
        7u64.encode(&mut snap); // fingerprint
        70u64.encode(&mut snap); // value
        std::fs::write(dir.join(SNAPSHOT_FILE), &snap).unwrap();
        let mut journal = Vec::new();
        journal.extend_from_slice(&JOURNAL_MAGIC);
        1u32.encode(&mut journal);
        let payload = JournalRecord::<u64, u64>::Insert {
            device: "dev-legacy".into(),
            epoch: 3,
            fingerprint: 8,
            value: 80,
        }
        .encode_payload();
        (payload.len() as u32).encode(&mut journal);
        journal.extend_from_slice(&payload);
        std::fs::write(dir.join(JOURNAL_FILE), &journal).unwrap();

        let store: DurableStore<u64, u64> = DurableStore::open(&dir, 2, 64).unwrap();
        assert_eq!(store.recovery().snapshot_entries, 1);
        assert_eq!(store.recovery().journal_records, 1);
        assert_eq!(store.lookup("dev-legacy", 3, &7), Some(70));
        assert_eq!(store.lookup("dev-legacy", 3, &8), Some(80));
        // The upgrade compacted: the on-disk journal header is current.
        let bytes = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();
        let mut input = &bytes[4..];
        assert_eq!(u32::decode(&mut input), Some(FORMAT_VERSION));
        // Post-upgrade mutations survive the next restart.
        store.insert("dev-legacy", 3, 9, 90);
        drop(store);
        let again: DurableStore<u64, u64> = DurableStore::open(&dir, 2, 64).unwrap();
        assert_eq!(again.len(), 3);
        assert_eq!(again.lookup("dev-legacy", 3, &9), Some(90));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn future_versions_fail_loudly() {
        let dir = temp_dir("future");
        std::fs::create_dir_all(&dir).unwrap();
        let mut snap = Vec::new();
        snap.extend_from_slice(&SNAPSHOT_MAGIC);
        (FORMAT_VERSION + 1).encode(&mut snap);
        0u64.encode(&mut snap);
        std::fs::write(dir.join(SNAPSHOT_FILE), &snap).unwrap();
        let err = DurableStore::<u64, u64>::open(&dir, 2, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_fails_loudly() {
        let dir = temp_dir("magic");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(SNAPSHOT_FILE), b"NOPE\x01\x00\x00\x00").unwrap();
        let err = DurableStore::<u64, u64>::open(&dir, 2, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalidate_all_before_is_journaled() {
        let dir = temp_dir("broadcast");
        {
            let store: DurableStore<u64, u64> = DurableStore::open(&dir, 4, 64).unwrap();
            store.insert("a", 0, 1, 1);
            store.insert("b", 0, 1, 2);
            store.insert("b", 3, 1, 3);
            assert_eq!(store.invalidate_all_before(2), 2);
        }
        let reloaded: DurableStore<u64, u64> = DurableStore::open(&dir, 4, 64).unwrap();
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.lookup("b", 3, &1), Some(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_mutations_replay_consistently() {
        let dir = temp_dir("concurrent");
        {
            let store = std::sync::Arc::new(DurableStore::<u64, u64>::open(&dir, 4, 1024).unwrap());
            let threads: Vec<_> = (0..4)
                .map(|t| {
                    let store = std::sync::Arc::clone(&store);
                    std::thread::spawn(move || {
                        for k in 0..32u64 {
                            store.insert(&format!("dev-{t}"), 0, k, t * 100 + k);
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(store.len(), 128);
            assert_eq!(store.journal_write_errors(), 0);
        }
        let reloaded: DurableStore<u64, u64> = DurableStore::open(&dir, 4, 1024).unwrap();
        assert_eq!(reloaded.len(), 128);
        for t in 0..4u64 {
            for k in 0..32u64 {
                assert_eq!(
                    reloaded.lookup(&format!("dev-{t}"), 0, &k),
                    Some(t * 100 + k)
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Copies the on-disk state of a live store to a fresh directory —
    /// what a crash leaves behind: the durable files only, never the
    /// group-commit buffer.
    fn crash_copy(from: &Path, tag: &str) -> PathBuf {
        let to = temp_dir(tag);
        std::fs::create_dir_all(&to).unwrap();
        for name in [SNAPSHOT_FILE, JOURNAL_FILE] {
            let src = from.join(name);
            if src.exists() {
                std::fs::copy(&src, to.join(name)).unwrap();
            }
        }
        to
    }

    #[test]
    fn group_commit_buffers_until_flush() {
        let dir = temp_dir("gc-buffer");
        let store: DurableStore<u64, u64> = DurableStore::open(&dir, 2, 64).unwrap();
        store.set_group_commit(true);
        store.insert("dev", 0, 1, 10);
        store.insert("dev", 0, 2, 20);
        store.insert("dev", 0, 3, 30);

        // Buffered records are applied in memory but not durable: the
        // ship cursor (the on-disk truth) must not advance, while the
        // pending cursor (the reply gate point) must.
        let shipped = store.ship_cursor();
        let pending = store.pending_cursor();
        assert_eq!(store.journal_records(), 0, "nothing durable yet");
        assert_eq!(shipped.offset, JOURNAL_HEADER_LEN);
        assert!(pending > shipped, "buffered bytes gate replies");
        assert!(!shipped.covers(pending));

        // A crash now (durable files only) loses the whole batch —
        // which is exactly why replies gate on the pending cursor.
        let crashed = crash_copy(&dir, "gc-buffer-crash1");
        let lost: DurableStore<u64, u64> = DurableStore::open(&crashed, 2, 64).unwrap();
        assert_eq!(lost.recovery().journal_records, 0);
        assert_eq!(lost.len(), 0);

        // The flush is the group-commit barrier: everything buffered
        // becomes durable at once and the cursors meet.
        store.flush_journal().unwrap();
        assert_eq!(store.journal_records(), 3);
        assert_eq!(store.ship_cursor(), pending);
        assert!(store.ship_cursor().covers(pending));
        let durable = crash_copy(&dir, "gc-buffer-crash2");
        let recovered: DurableStore<u64, u64> = DurableStore::open(&durable, 2, 64).unwrap();
        assert_eq!(recovered.recovery().journal_records, 3);
        assert_eq!(recovered.lookup("dev", 0, &2), Some(20));

        drop(store);
        for d in [dir, crashed, durable] {
            std::fs::remove_dir_all(&d).unwrap();
        }
    }

    #[test]
    fn group_commit_graceful_drop_flushes_tail() {
        let dir = temp_dir("gc-drop");
        {
            let store: DurableStore<u64, u64> = DurableStore::open(&dir, 2, 64).unwrap();
            store.set_group_commit(true);
            store.insert("dev", 0, 7, 70);
            // No explicit flush: dropping the store (halt path) writes
            // the tail batch.
        }
        let reloaded: DurableStore<u64, u64> = DurableStore::open(&dir, 2, 64).unwrap();
        assert_eq!(reloaded.recovery().journal_records, 1);
        assert_eq!(reloaded.lookup("dev", 0, &7), Some(70));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_discards_buffer_because_snapshot_covers_it() {
        let dir = temp_dir("gc-checkpoint");
        let store: DurableStore<u64, u64> = DurableStore::open(&dir, 2, 64).unwrap();
        store.set_group_commit(true);
        store.insert("dev", 0, 1, 10);
        store.flush_journal().unwrap();
        store.insert("dev", 0, 2, 20); // buffered, unflushed
        let gated_point = store.pending_cursor();

        store.checkpoint().unwrap();
        assert_eq!(store.journal_records(), 0, "journal truncated");
        let after = store.ship_cursor();
        assert_eq!(
            after,
            store.pending_cursor(),
            "checkpoint leaves nothing buffered"
        );
        assert!(
            after.covers(gated_point),
            "generation bump releases pre-checkpoint gates: {after:?} vs {gated_point:?}"
        );

        // The buffered record rode the snapshot, not the journal.
        let crashed = crash_copy(&dir, "gc-checkpoint-crash");
        let recovered: DurableStore<u64, u64> = DurableStore::open(&crashed, 2, 64).unwrap();
        assert_eq!(recovered.recovery().snapshot_entries, 2);
        assert_eq!(recovered.lookup("dev", 0, &2), Some(20));

        drop(store);
        for d in [dir, crashed] {
            std::fs::remove_dir_all(&d).unwrap();
        }
    }

    #[test]
    fn ship_since_never_ships_buffered_bytes() {
        let dir = temp_dir("gc-ship");
        let store: DurableStore<u64, u64> = DurableStore::open(&dir, 2, 64).unwrap();
        store.set_group_commit(true);
        store.insert("dev", 0, 1, 10);
        store.flush_journal().unwrap();
        let durable = store.ship_cursor();
        store.insert("dev", 0, 2, 20); // buffered

        // A follower caught up to the durable cursor gets nothing: the
        // buffered record is not yet on disk, and shipping it early
        // would let a follower ack bytes a leader crash can still lose.
        let batch = store.ship_since(durable).unwrap();
        assert!(!batch.snapshot);
        assert!(batch.payload.is_empty(), "buffered bytes are unshippable");
        assert_eq!(batch.cursor, durable);

        store.flush_journal().unwrap();
        let batch = store.ship_since(durable).unwrap();
        assert!(!batch.payload.is_empty(), "flushed bytes ship");
        assert_eq!(batch.cursor, store.ship_cursor());

        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
