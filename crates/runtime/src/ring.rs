//! Consistent-hash device ownership for a multi-process fleet.
//!
//! A replicated fleet partitions its devices across N daemon instances.
//! The assignment must be:
//!
//! * **deterministic across processes** — every daemon, and every
//!   client, computes the same owner for a device from nothing but the
//!   instance list, with no coordination;
//! * **stable under membership change** — when an instance joins or
//!   leaves, only ~1/N of the devices move; everything else keeps its
//!   owner (and therefore its warm cache);
//! * **consistent with the in-process discipline** — the hash is the
//!   same FNV-1a the [`crate::store::ShardedStore`] uses to route
//!   devices to shards, so a one-instance ring agrees with a one-shard
//!   store: everything routes to the single slot.
//!
//! [`HashRing`] is the classic virtual-node construction: each instance
//! contributes [`VNODES_PER_INSTANCE`] points at
//! `spread(fnv1a("{instance}#{vnode}"))` on the `u64` ring, and a
//! device is owned by the first point clockwise from
//! `spread(fnv1a(device))` (wrapping). Ties on a ring point
//! (astronomically unlikely, but cheap to make deterministic) resolve
//! to the lexicographically smallest instance name.
//!
//! The `spread` finalizer matters: FNV-1a's final-byte avalanche only
//! reaches the low ~48 bits (one multiply by the prime `2^40 + 2^8 +
//! 0xb3`), so vnode points that differ only in their `#{vnode}` suffix
//! share their high bits and clump into one arc — an instance would own
//! one contiguous sliver instead of 64 scattered ones. `ShardedStore`
//! is immune (it routes on `fnv1a % shards`, the well-mixed low bits);
//! the ring orders on the *full* word, so it runs the raw FNV value
//! through a SplitMix64-style finalizer first. Still a pure
//! deterministic function of the name — cross-process agreement holds.
//!
//! ```
//! use vaqem_runtime::ring::HashRing;
//!
//! let ring = HashRing::new(["alpha", "beta", "gamma"]);
//! let owner = ring.owner("rpc-fleet-3").unwrap();
//! assert!(["alpha", "beta", "gamma"].contains(&owner));
//! // Same list, any order, separate process: same answer.
//! let again = HashRing::new(["gamma", "alpha", "beta"]);
//! assert_eq!(again.owner("rpc-fleet-3"), Some(owner));
//! ```

use crate::store::fnv1a;

/// Virtual nodes per instance: enough that a 2–8 instance ring balances
/// within a few percent, small enough that ring construction is
/// microseconds.
pub const VNODES_PER_INSTANCE: usize = 64;

/// SplitMix64-style finalizer: full-width avalanche over the raw FNV
/// value, so ring ordering sees uniform high bits (see module docs).
fn spread(hash: u64) -> u64 {
    let mut z = hash;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A consistent-hash ring mapping device names to instance names. See
/// the module docs for the construction and its guarantees.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Ring points sorted by position: `(point, instance index)`.
    points: Vec<(u64, usize)>,
    /// Instance names, sorted and deduplicated.
    instances: Vec<String>,
}

impl HashRing {
    /// Builds a ring from instance names. Order and duplicates are
    /// irrelevant — the ring is a pure function of the name *set*.
    pub fn new<I, S>(instances: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut names: Vec<String> = instances.into_iter().map(Into::into).collect();
        names.sort();
        names.dedup();
        let mut points = Vec::with_capacity(names.len() * VNODES_PER_INSTANCE);
        for (index, name) in names.iter().enumerate() {
            for vnode in 0..VNODES_PER_INSTANCE {
                let point = spread(fnv1a(format!("{name}#{vnode}").as_bytes()));
                points.push((point, index));
            }
        }
        // Sort by point; on a point collision the smaller instance index
        // (lexicographically smaller name) wins deterministically.
        points.sort();
        points.dedup_by_key(|&mut (point, _)| point);
        HashRing {
            points,
            instances: names,
        }
    }

    /// The instance names on the ring, sorted.
    pub fn instances(&self) -> &[String] {
        &self.instances
    }

    /// Number of distinct instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Returns `true` when the ring has no instances (every lookup is
    /// `None`).
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// The instance owning `device`: the first ring point clockwise from
    /// `fnv1a(device)`, wrapping past the top. `None` on an empty ring.
    pub fn owner(&self, device: &str) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let point = spread(fnv1a(device.as_bytes()));
        let slot = self.points.partition_point(|&(p, _)| p < point);
        let (_, index) = self.points[slot % self.points.len()];
        Some(&self.instances[index])
    }

    /// Whether `instance` owns `device` on this ring.
    pub fn owns(&self, instance: &str, device: &str) -> bool {
        self.owner(device) == Some(instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new(Vec::<String>::new());
        assert!(ring.is_empty());
        assert_eq!(ring.owner("anything"), None);
    }

    #[test]
    fn single_instance_owns_everything() {
        let ring = HashRing::new(["solo"]);
        for i in 0..100 {
            assert_eq!(ring.owner(&format!("device-{i}")), Some("solo"));
        }
    }

    #[test]
    fn construction_order_and_duplicates_are_irrelevant() {
        let a = HashRing::new(["x", "y", "z"]);
        let b = HashRing::new(["z", "y", "x", "y"]);
        for i in 0..200 {
            let device = format!("rpc-fleet-{i}");
            assert_eq!(a.owner(&device), b.owner(&device));
        }
    }

    #[test]
    fn leave_moves_only_the_leavers_devices() {
        let before = HashRing::new(["a", "b", "c", "d"]);
        let after = HashRing::new(["a", "b", "c"]);
        for i in 0..500 {
            let device = format!("dev-{i}");
            let was = before.owner(&device).unwrap();
            if was != "d" {
                // A surviving instance's devices never move.
                assert_eq!(after.owner(&device), Some(was));
            }
        }
    }
}
