//! Execution-time cost model for quantum-cloud workflows.
//!
//! Reproduces the structure of the paper's Fig. 15: total VQA wall-clock
//! decomposed into (1) angle tuning in simulation, (2) angle tuning via
//! Qiskit Runtime, (3) error-mitigation tuning on the machine, and (4)
//! cloud queuing. The constants are calibrated to the paper's reported
//! scales: Runtime gives ~120x faster iteration than the classic
//! client-server loop \[2\], sessions are capped at 5 hours (§VI-A), queue
//! times dominate everything else, and EM tuning adds "under one hour"
//! (§VIII-D).

use rand::Rng;
use vaqem_mathkit::rng::SeedStream;

/// How the angle-tuning phase executes (paper Fig. 11, feasible flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AngleTuningMode {
    /// Noise-free classical simulation (the 5 TFIM workloads).
    IdealSimulation,
    /// Qiskit Runtime co-processing on the quantum cloud (the 2 chemistry
    /// workloads).
    QiskitRuntime,
}

/// Static description of one VQA workload, used to price its execution.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Qubit count.
    pub num_qubits: usize,
    /// Scheduled circuit makespan in nanoseconds.
    pub circuit_ns: f64,
    /// SPSA iterations for angle tuning.
    pub iterations: usize,
    /// Measurement-basis groups per objective evaluation.
    pub measurement_groups: usize,
    /// Idle windows targeted by EM tuning (Table I "# Win").
    pub windows: usize,
    /// Sweep points per window.
    pub sweep_resolution: usize,
    /// Shots per circuit execution.
    pub shots: u64,
}

/// How a batched submission path dispatches independent jobs — the
/// accounting counterpart of the core crate's `Executor::run_batch`.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchDispatch {
    /// Concurrent execution lanes (simulator threads, or parallel machine
    /// sessions on the cloud side).
    pub workers: usize,
    /// Fixed overhead per submitted batch (seconds).
    pub per_batch_overhead_s: f64,
}

impl BatchDispatch {
    /// A dispatch using every local core with Runtime-grade batch overhead.
    pub fn local(workers: usize) -> Self {
        BatchDispatch {
            workers: workers.max(1),
            per_batch_overhead_s: 0.45,
        }
    }
}

/// Minutes per workflow component (the Fig. 15 stack).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecutionTimeBreakdown {
    /// Angle tuning in ideal simulation.
    pub angle_tuning_sim_min: f64,
    /// Angle tuning through Qiskit Runtime.
    pub angle_tuning_runtime_min: f64,
    /// Per-window EM tuning on the machine.
    pub em_tuning_min: f64,
    /// Cloud queuing.
    pub queuing_min: f64,
}

impl ExecutionTimeBreakdown {
    /// Total wall-clock minutes.
    pub fn total_min(&self) -> f64 {
        self.angle_tuning_sim_min
            + self.angle_tuning_runtime_min
            + self.em_tuning_min
            + self.queuing_min
    }
}

/// The calibrated cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Classical statevector throughput: amplitude-gate operations / second.
    pub sim_amp_ops_per_sec: f64,
    /// Fixed per-objective-evaluation overhead in simulation (seconds).
    pub sim_eval_overhead_s: f64,
    /// Per-job fixed overhead on the machine via Runtime (seconds):
    /// compile + load + readout streaming inside a held session.
    pub runtime_job_overhead_s: f64,
    /// Per-job overhead via the classic loop (seconds): ~120x worse \[2\].
    pub classic_job_overhead_s: f64,
    /// Per-SPSA-iteration classical processing inside a Runtime session
    /// (parameter update, binding, transpile, result marshalling), seconds.
    pub runtime_iteration_overhead_s: f64,
    /// Mean queue wait per queue event (minutes).
    pub queue_mean_min: f64,
    /// Log-normal sigma of queue waits.
    pub queue_sigma: f64,
    /// Maximum Runtime session length (minutes); longer tuning splits into
    /// multiple sessions, each paying one queue event (§VI-A: 5 hours).
    pub session_cap_min: f64,
}

impl CostModel {
    /// Paper-era IBM cloud constants.
    pub fn ibm_cloud_2021() -> Self {
        CostModel {
            sim_amp_ops_per_sec: 5.0e8,
            sim_eval_overhead_s: 0.02,
            runtime_job_overhead_s: 0.45,
            classic_job_overhead_s: 54.0,
            runtime_iteration_overhead_s: 30.0,
            queue_mean_min: 95.0,
            queue_sigma: 0.6,
            session_cap_min: 300.0,
        }
    }

    /// Seconds for one objective evaluation in ideal simulation.
    pub fn sim_eval_seconds(&self, p: &WorkloadProfile) -> f64 {
        // Statevector cost ~ 2^n amplitudes x gate count; approximate gate
        // count from circuit duration (1 slot ~ 35.56 ns).
        let gates = (p.circuit_ns / 35.56).max(1.0);
        let amps = (1u64 << p.num_qubits) as f64;
        p.measurement_groups as f64
            * (self.sim_eval_overhead_s + gates * amps / self.sim_amp_ops_per_sec)
    }

    /// Seconds for one machine job (one circuit, `shots` shots).
    pub fn machine_job_seconds(&self, p: &WorkloadProfile, runtime: bool) -> f64 {
        let exec = p.shots as f64 * (p.circuit_ns * 1e-9 + 4.0e-6); // reset+readout per shot
        let overhead = if runtime {
            self.runtime_job_overhead_s
        } else {
            self.classic_job_overhead_s
        };
        exec + overhead
    }

    /// Minutes of angle tuning (3 objective evaluations per SPSA iteration).
    pub fn angle_tuning_minutes(&self, p: &WorkloadProfile, mode: AngleTuningMode) -> f64 {
        let evals = 3.0 * p.iterations as f64;
        match mode {
            AngleTuningMode::IdealSimulation => evals * self.sim_eval_seconds(p) / 60.0,
            AngleTuningMode::QiskitRuntime => {
                (evals * p.measurement_groups as f64 * self.machine_job_seconds(p, true)
                    + p.iterations as f64 * self.runtime_iteration_overhead_s)
                    / 60.0
            }
        }
    }

    /// Minutes of per-window EM tuning on the machine (independent-window
    /// sweep, §VI-C): one job per (window, sweep point, measurement group),
    /// batched through the classic interface but submitted as one batch per
    /// window so the overhead amortizes.
    pub fn em_tuning_minutes(&self, p: &WorkloadProfile) -> f64 {
        let circuits = (p.windows * p.sweep_resolution * p.measurement_groups) as f64;
        let exec = circuits * self.machine_job_seconds(p, true);
        let batch_overhead = p.windows as f64 * self.classic_job_overhead_s / 4.0;
        (exec + batch_overhead) / 60.0
    }

    /// Minutes of per-window EM tuning under batched dispatch: the jobs of
    /// one window's sweep execute concurrently across `dispatch.workers`
    /// lanes (the `Executor::run_batch` accounting path), and each window
    /// pays one amortized batch submission instead of per-job overhead.
    pub fn em_tuning_minutes_batched(&self, p: &WorkloadProfile, dispatch: &BatchDispatch) -> f64 {
        let per_window_jobs = (p.sweep_resolution * p.measurement_groups).max(1);
        let lanes = dispatch.workers.clamp(1, per_window_jobs) as f64;
        // Execution: jobs of a window run `lanes`-wide; shot streaming is
        // the irreducible serial part per lane.
        let window_exec =
            (per_window_jobs as f64 / lanes).ceil() * self.machine_job_seconds(p, true);
        let exec = p.windows as f64 * window_exec;
        let batch_overhead = p.windows as f64 * dispatch.per_batch_overhead_s;
        (exec + batch_overhead) / 60.0
    }

    /// Speedup of the batched EM-tuning path over the sequential one.
    pub fn em_tuning_batch_speedup(&self, p: &WorkloadProfile, dispatch: &BatchDispatch) -> f64 {
        self.em_tuning_minutes(p) / self.em_tuning_minutes_batched(p, dispatch).max(1e-12)
    }

    /// Minutes for an EM-tuning stage that performed a *measured* number of
    /// machine objective `evaluations`, dispatched as `batches` batched
    /// submissions with the jobs pooled across `dispatch.workers` lanes.
    ///
    /// This is the pricing primitive the fleet replay uses: the warm-start
    /// tuner reports exactly how many evaluations it spent (cache hits
    /// skip their window's sweep entirely), and this converts that count
    /// into machine minutes. One evaluation executes one job per
    /// measurement group. Because the caller's jobs are pooled rather than
    /// fenced per window, compare numbers from this function only against
    /// other numbers from this function (the replay prices cold and warm
    /// rounds identically); the per-window-fenced analytic formulas are
    /// [`Self::em_tuning_minutes_batched`] and
    /// [`Self::em_tuning_minutes_warm`].
    pub fn em_minutes_for_evaluations(
        &self,
        p: &WorkloadProfile,
        dispatch: &BatchDispatch,
        evaluations: usize,
        batches: usize,
    ) -> f64 {
        let jobs = evaluations * p.measurement_groups.max(1);
        let lanes = dispatch.workers.max(1) as f64;
        let exec = (jobs as f64 / lanes).ceil() * self.machine_job_seconds(p, true);
        (exec + batches as f64 * dispatch.per_batch_overhead_s) / 60.0
    }

    /// Seconds for one machine job whose circuit is folded to `scale`
    /// times its unfolded length (ZNE noise amplification): shot
    /// streaming scales with the circuit, while per-shot reset/readout
    /// and per-job overhead do not.
    pub fn machine_job_seconds_scaled(
        &self,
        p: &WorkloadProfile,
        runtime: bool,
        scale: f64,
    ) -> f64 {
        let exec = p.shots as f64 * (scale.max(1.0) * p.circuit_ns * 1e-9 + 4.0e-6);
        let overhead = if runtime {
            self.runtime_job_overhead_s
        } else {
            self.classic_job_overhead_s
        };
        exec + overhead
    }

    /// Minutes for a *measured* number of ZNE objective `evaluations`:
    /// each evaluation executes one job per `(noise scale, measurement
    /// group)`, with the job at scale `s` priced by
    /// [`Self::machine_job_seconds_scaled`]. `scale_factors` is the
    /// protocol's scale set (e.g. `[1, 3, 5]`) — the folded-circuit shot
    /// multiplier the ZNE stage leaves on the bill. With
    /// `scale_factors == [1.0]` this degenerates to
    /// [`Self::em_minutes_for_evaluations`].
    pub fn em_minutes_for_zne_evaluations(
        &self,
        p: &WorkloadProfile,
        dispatch: &BatchDispatch,
        evaluations: usize,
        batches: usize,
        scale_factors: &[f64],
    ) -> f64 {
        assert!(!scale_factors.is_empty(), "at least one noise scale");
        let groups = p.measurement_groups.max(1);
        let lanes = dispatch.workers.max(1) as f64;
        // One wave of `groups` jobs per (evaluation, scale); waves at the
        // same scale share a job duration, so the lane-rounded serial time
        // is priced per scale and summed.
        let exec: f64 = scale_factors
            .iter()
            .map(|&s| {
                let jobs = evaluations * groups;
                (jobs as f64 / lanes).ceil() * self.machine_job_seconds_scaled(p, true, s)
            })
            .sum();
        (exec + batches as f64 * dispatch.per_batch_overhead_s) / 60.0
    }

    /// Minutes of warm-started per-window EM tuning: windows whose
    /// fingerprint hits the config cache adopt the cached choice without
    /// sweeping, missing windows pay the full batched sweep, and the
    /// §IX-C acceptance guard (2 x `guard_repeats` fresh evaluations, one
    /// batch) always runs — the cache amortizes the search, never the
    /// safety check.
    ///
    /// Missed windows are priced exactly as in
    /// [`Self::em_tuning_minutes_batched`] (per-window batches, lanes
    /// clamped to the window's job count), so a fully-cold warm run
    /// (`hit_rate == 0`) always costs *more* than the cold formula — by
    /// precisely the guard batch.
    pub fn em_tuning_minutes_warm(
        &self,
        p: &WorkloadProfile,
        dispatch: &BatchDispatch,
        hit_rate: f64,
        guard_repeats: usize,
    ) -> f64 {
        let hit_rate = hit_rate.clamp(0.0, 1.0);
        let misses = (p.windows as f64 * (1.0 - hit_rate)).ceil() as usize;
        let mut missed = p.clone();
        missed.windows = misses;
        let sweep_min = self.em_tuning_minutes_batched(&missed, dispatch);
        // The guard ships as one extra batch of its own.
        let guard_jobs = 2 * guard_repeats.max(1) * p.measurement_groups.max(1);
        let lanes = dispatch.workers.clamp(1, guard_jobs) as f64;
        let guard_min = ((guard_jobs as f64 / lanes).ceil() * self.machine_job_seconds(p, true)
            + dispatch.per_batch_overhead_s)
            / 60.0;
        sweep_min + guard_min
    }

    /// Number of queue events the workflow pays.
    pub fn queue_events(&self, p: &WorkloadProfile, mode: AngleTuningMode) -> usize {
        let mut events = 1; // EM-tuning batch submission
        if mode == AngleTuningMode::QiskitRuntime {
            let runtime_min = self.angle_tuning_minutes(p, mode);
            events += (runtime_min / self.session_cap_min).ceil().max(1.0) as usize;
        }
        events
    }

    /// Sampled queuing minutes (deterministic per `seeds`/workload label).
    pub fn queuing_minutes(
        &self,
        p: &WorkloadProfile,
        mode: AngleTuningMode,
        seeds: &SeedStream,
        label: &str,
    ) -> f64 {
        let mut rng = seeds.rng(&format!("queue-{label}"));
        let events = self.queue_events(p, mode);
        let mut total = 0.0;
        for _ in 0..events {
            let z = vaqem_mathkit::rng::sample_standard_normal(&mut rng);
            // Log-normal with the configured mean.
            let mu = self.queue_mean_min.ln() - self.queue_sigma * self.queue_sigma / 2.0;
            total += (mu + self.queue_sigma * z).exp();
        }
        // Runtime sessions queue for the *whole held block*, which the
        // paper reports as especially long for the single Runtime machine.
        if mode == AngleTuningMode::QiskitRuntime {
            total *= 2.0 + rng.gen::<f64>();
        }
        total
    }

    /// The full Fig. 15 breakdown for one workload.
    pub fn breakdown(
        &self,
        p: &WorkloadProfile,
        mode: AngleTuningMode,
        seeds: &SeedStream,
        label: &str,
    ) -> ExecutionTimeBreakdown {
        let mut b = ExecutionTimeBreakdown::default();
        match mode {
            AngleTuningMode::IdealSimulation => {
                b.angle_tuning_sim_min = self.angle_tuning_minutes(p, mode);
            }
            AngleTuningMode::QiskitRuntime => {
                b.angle_tuning_runtime_min = self.angle_tuning_minutes(p, mode);
            }
        }
        b.em_tuning_min = self.em_tuning_minutes(p);
        b.queuing_min = self.queuing_minutes(p, mode, seeds, label);
        b
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::ibm_cloud_2021()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tfim_profile() -> WorkloadProfile {
        WorkloadProfile {
            num_qubits: 6,
            circuit_ns: 12_000.0,
            iterations: 400,
            measurement_groups: 2,
            windows: 30,
            sweep_resolution: 8,
            shots: 2048,
        }
    }

    fn chem_profile() -> WorkloadProfile {
        WorkloadProfile {
            num_qubits: 4,
            circuit_ns: 25_000.0,
            iterations: 400,
            measurement_groups: 5,
            windows: 26,
            sweep_resolution: 8,
            shots: 2048,
        }
    }

    #[test]
    fn simulation_tuning_is_fast() {
        let m = CostModel::ibm_cloud_2021();
        let t = m.angle_tuning_minutes(&tfim_profile(), AngleTuningMode::IdealSimulation);
        // Paper Fig. 15: tens of minutes at most for 6-qubit problems.
        assert!(t > 0.1 && t < 120.0, "{t}");
    }

    #[test]
    fn runtime_tuning_is_slower_than_simulation_today() {
        let m = CostModel::ibm_cloud_2021();
        let p = chem_profile();
        let sim = m.angle_tuning_minutes(&p, AngleTuningMode::IdealSimulation);
        let qr = m.angle_tuning_minutes(&p, AngleTuningMode::QiskitRuntime);
        assert!(
            qr > sim,
            "paper §VIII-D: sim currently beats Runtime: {qr} vs {sim}"
        );
        // And Runtime sits in the hundreds-of-minutes band of Fig. 15.
        assert!(qr > 60.0 && qr < 600.0, "{qr}");
    }

    #[test]
    fn runtime_is_much_faster_than_classic_loop() {
        let m = CostModel::ibm_cloud_2021();
        let p = chem_profile();
        let runtime_job = m.machine_job_seconds(&p, true);
        let classic_job = m.machine_job_seconds(&p, false);
        let speedup = classic_job / runtime_job;
        // The headline "120x speedup" [2]; our per-job overhead ratio.
        assert!(speedup > 50.0, "{speedup}");
    }

    #[test]
    fn em_tuning_is_under_an_hour() {
        let m = CostModel::ibm_cloud_2021();
        for p in [tfim_profile(), chem_profile()] {
            let t = m.em_tuning_minutes(&p);
            assert!(t < 60.0, "paper §VIII-D: EM tuning under one hour: {t}");
            assert!(t > 1.0, "{t}");
        }
    }

    #[test]
    fn queuing_dominates() {
        let m = CostModel::ibm_cloud_2021();
        let seeds = SeedStream::new(42);
        let p = tfim_profile();
        let b = m.breakdown(&p, AngleTuningMode::IdealSimulation, &seeds, "tfim");
        assert!(
            b.queuing_min > b.angle_tuning_sim_min + b.em_tuning_min,
            "paper Fig. 15: queuing exceeds compute: {b:?}"
        );
    }

    #[test]
    fn runtime_queues_longer_than_classic() {
        let m = CostModel::ibm_cloud_2021();
        let seeds = SeedStream::new(42);
        let p = chem_profile();
        let q_runtime = m.queuing_minutes(&p, AngleTuningMode::QiskitRuntime, &seeds, "x");
        let q_sim = m.queuing_minutes(&p, AngleTuningMode::IdealSimulation, &seeds, "x");
        assert!(q_runtime > q_sim, "{q_runtime} vs {q_sim}");
    }

    #[test]
    fn breakdown_is_deterministic() {
        let m = CostModel::ibm_cloud_2021();
        let seeds = SeedStream::new(7);
        let p = tfim_profile();
        let a = m.breakdown(&p, AngleTuningMode::IdealSimulation, &seeds, "w");
        let b = m.breakdown(&p, AngleTuningMode::IdealSimulation, &seeds, "w");
        assert_eq!(a, b);
        assert!(a.total_min() > 0.0);
    }

    #[test]
    fn batched_em_tuning_is_faster_and_converges() {
        let m = CostModel::ibm_cloud_2021();
        let p = tfim_profile();
        let seq = m.em_tuning_minutes(&p);
        let b4 = m.em_tuning_minutes_batched(&p, &BatchDispatch::local(4));
        let b16 = m.em_tuning_minutes_batched(&p, &BatchDispatch::local(16));
        assert!(b4 < seq, "4 workers must beat sequential: {b4} vs {seq}");
        assert!(b16 <= b4, "more workers never slower: {b16} vs {b4}");
        let speedup = m.em_tuning_batch_speedup(&p, &BatchDispatch::local(4));
        assert!(speedup > 1.5, "{speedup}");
        // Lanes are capped by the per-window job count, so scaling
        // saturates rather than diverging.
        let huge = m.em_tuning_minutes_batched(&p, &BatchDispatch::local(10_000));
        let per_window = p.sweep_resolution * p.measurement_groups;
        let cap = m.em_tuning_minutes_batched(&p, &BatchDispatch::local(per_window));
        assert!((huge - cap).abs() < 1e-9);
    }

    #[test]
    fn single_worker_batch_matches_sequential_execution_shape() {
        // With one lane and the same overhead accounting, the batched path
        // degenerates to ~sequential execution time.
        let m = CostModel::ibm_cloud_2021();
        let p = chem_profile();
        let d = BatchDispatch {
            workers: 1,
            per_batch_overhead_s: m.classic_job_overhead_s / 4.0,
        };
        let seq = m.em_tuning_minutes(&p);
        let one = m.em_tuning_minutes_batched(&p, &d);
        assert!((one - seq).abs() / seq < 1e-9, "{one} vs {seq}");
    }

    #[test]
    fn warm_start_is_strictly_cheaper_and_monotone_in_hit_rate() {
        let m = CostModel::ibm_cloud_2021();
        let p = tfim_profile();
        let d = BatchDispatch::local(8);
        let cold = m.em_tuning_minutes_batched(&p, &d);
        let mut prev = f64::INFINITY;
        for hr in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let warm = m.em_tuning_minutes_warm(&p, &d, hr, 4);
            assert!(warm <= prev + 1e-12, "warm minutes rise with hit rate");
            prev = warm;
        }
        let all_hits = m.em_tuning_minutes_warm(&p, &d, 1.0, 4);
        assert!(
            all_hits < cold,
            "a fully warm run must beat cold: {all_hits} vs {cold}"
        );
        // Even fully warm, the guard batch is still paid.
        assert!(all_hits > 0.0);
        // And a fully *cold* warm run costs more than the cold formula —
        // the sweeps are priced identically and the guard batch is extra.
        let no_hits = m.em_tuning_minutes_warm(&p, &d, 0.0, 4);
        assert!(
            no_hits > cold,
            "hit rate 0 must not undercut cold: {no_hits} vs {cold}"
        );
    }

    #[test]
    fn measured_evaluation_pricing_matches_structure() {
        let m = CostModel::ibm_cloud_2021();
        let p = tfim_profile();
        let d = BatchDispatch::local(4);
        let none = m.em_minutes_for_evaluations(&p, &d, 0, 0);
        assert_eq!(none, 0.0);
        let some = m.em_minutes_for_evaluations(&p, &d, 10, 2);
        let more = m.em_minutes_for_evaluations(&p, &d, 20, 2);
        assert!(some > 0.0 && more > some);
    }

    #[test]
    fn zne_pricing_scales_with_the_fold_set() {
        let m = CostModel::ibm_cloud_2021();
        let p = tfim_profile();
        let d = BatchDispatch::local(4);
        // Unit scale degenerates to the plain measured-evaluation price.
        let plain = m.em_minutes_for_evaluations(&p, &d, 10, 2);
        let unit = m.em_minutes_for_zne_evaluations(&p, &d, 10, 2, &[1.0]);
        assert!((plain - unit).abs() < 1e-9, "{plain} vs {unit}");
        // More / larger scales cost strictly more.
        let z135 = m.em_minutes_for_zne_evaluations(&p, &d, 10, 2, &[1.0, 3.0, 5.0]);
        let z13 = m.em_minutes_for_zne_evaluations(&p, &d, 10, 2, &[1.0, 3.0]);
        assert!(z13 > unit && z135 > z13, "{unit} {z13} {z135}");
        // A folded job's streaming time scales, its overhead doesn't.
        let j1 = m.machine_job_seconds_scaled(&p, true, 1.0);
        let j5 = m.machine_job_seconds_scaled(&p, true, 5.0);
        assert!((j1 - m.machine_job_seconds(&p, true)).abs() < 1e-12);
        assert!(j5 > j1 && j5 < 5.0 * j1);
    }

    #[test]
    fn session_cap_adds_queue_events() {
        let mut m = CostModel::ibm_cloud_2021();
        m.session_cap_min = 10.0; // force splitting
        let p = chem_profile();
        let events = m.queue_events(&p, AngleTuningMode::QiskitRuntime);
        assert!(events > 2, "{events}");
    }
}
