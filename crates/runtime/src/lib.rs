//! # vaqem-runtime
//!
//! The quantum-cloud *runtime* layer of the VAQEM reproduction: everything
//! about executing the feasible flow at fleet scale that is not quantum
//! mechanics.
//!
//! Ten modules:
//!
//! * [`cost`] — the execution-cost model standing in for the paper's
//!   Qiskit Runtime measurements (§VI-A, §VIII-D, Fig. 15): per-job
//!   latency for Runtime vs. the classic client loop, session caps,
//!   log-normal queue waits, the four-way wall-clock breakdown, and the
//!   batched/warm-start re-pricings of the EM-tuning stage.
//! * [`cache`] — the fleet-scale tuned-configuration store: a bounded LRU
//!   map from `(device, calibration epoch, window fingerprint)` to a
//!   tuned per-window choice, with hit/miss metrics and the drift
//!   invalidation contract. The concrete fingerprint lives in the core
//!   crate (`vaqem::window_tuner::WindowFingerprint`); this crate owns
//!   eviction and bookkeeping.
//! * [`store`] — the [`store::StoreBackend`] trait the warm-start tuner
//!   runs against, plus [`store::ShardedStore`]: one `ConfigStore` per
//!   shard behind its own mutex, routed by a stable hash of the device
//!   name, with per-shard hit/miss/contention metrics.
//! * [`persist`] — restart survival: a handwritten byte [`persist::Codec`],
//!   a versioned snapshot + append-only journal, and
//!   [`persist::DurableStore`] tying both to a sharded store.
//! * [`fleet`] — deterministic contention scheduling: N clients' tuning
//!   sessions draining over D serializing devices (optionally behind
//!   per-device queue waits), reported as makespan, machine minutes, and
//!   sessions/hour — plus [`fleet::DrrQueue`], the deficit-round-robin
//!   weighted fair queueing policy the live daemon and the offline
//!   [`fleet::schedule_sessions_fair`] model share.
//! * [`json`] — the handwritten JSON document builder the structured
//!   reports (`metrics_report()` dumps, the scenario-matrix grid) render
//!   through, with the key-path flattening golden-schema tests pin.
//! * [`wire`] — streaming length-prefixed framing for the RPC
//!   front-end: [`wire::FrameReader`] reassembles frames from
//!   arbitrarily-torn nonblocking-socket reads with the same torn-tail
//!   tolerance the journal applies on disk.
//! * [`latency`] — [`latency::LatencyHistogram`], the fixed-footprint
//!   log-bucketed histogram the load generator reads p50/p95/p99
//!   session latencies from.
//! * [`backoff`] — [`backoff::IdleBackoff`], the adaptive idle sleep
//!   shared by the fallback RPC pump and the replication follower's
//!   poll loop (floor-to-ceiling doubling, reset on activity).
//! * [`ring`] — [`ring::HashRing`], consistent-hash device ownership
//!   for the multi-process replicated fleet: the same FNV-1a routing
//!   discipline as [`store::ShardedStore`], lifted from shards within a
//!   process to daemon instances across processes.
//!
//! Together they answer the question the per-circuit crates cannot: what
//! does a *repeated, shared* workload cost, and how much of the paper's
//! dominant EM-tuning bill (Fig. 15) does the transfer result of §IX let
//! a fleet amortize?
//!
//! ```
//! use vaqem_runtime::{
//!     cache::ConfigStore,
//!     fleet::{schedule_sessions, TuningSession},
//!     AngleTuningMode, BatchDispatch, CostModel, WorkloadProfile,
//! };
//!
//! let model = CostModel::ibm_cloud_2021();
//! let profile = WorkloadProfile {
//!     num_qubits: 6,
//!     circuit_ns: 12_000.0,
//!     iterations: 400,
//!     measurement_groups: 2,
//!     windows: 30,
//!     sweep_resolution: 8,
//!     shots: 2048,
//! };
//! let dispatch = BatchDispatch::local(8);
//!
//! // Cold vs. fully warm EM tuning for one client.
//! let cold = model.em_tuning_minutes_batched(&profile, &dispatch);
//! let warm = model.em_tuning_minutes_warm(&profile, &dispatch, 1.0, 4);
//! assert!(warm < cold);
//!
//! // A two-device fleet drains two cold clients and two warm ones.
//! let sessions: Vec<TuningSession> = (0..4)
//!     .map(|i| TuningSession {
//!         client: format!("client-{i}"),
//!         device: i % 2,
//!         minutes: if i < 2 { cold } else { warm },
//!     })
//!     .collect();
//! let timeline = schedule_sessions(2, &sessions);
//! assert_eq!(timeline.sessions, 4);
//! assert!(timeline.makespan_min() < 2.0 * cold);
//!
//! // The store that produces those warm hits.
//! let mut store: ConfigStore<u64, usize> = ConfigStore::new(1024);
//! store.insert("ibmq_casablanca", 3, 0xfeed, 2);
//! assert_eq!(store.get("ibmq_casablanca", 3, &0xfeed), Some(&2));
//! assert!(store.metrics().hit_rate() > 0.99);
//! let _ = model.angle_tuning_minutes(&profile, AngleTuningMode::IdealSimulation);
//! ```

#![deny(missing_docs)]

pub mod backoff;
pub mod cache;
pub mod cost;
pub mod fleet;
pub mod json;
pub mod latency;
pub mod persist;
pub mod ring;
pub mod store;
pub mod wire;

pub use backoff::IdleBackoff;
pub use cache::{CacheMetrics, ConfigStore};
pub use cost::{
    AngleTuningMode, BatchDispatch, CostModel, ExecutionTimeBreakdown, WorkloadProfile,
};
pub use fleet::{
    round_robin_device, schedule_sessions, schedule_sessions_fair, schedule_sessions_queued,
    DrrLaneSnapshot, DrrQueue, FairFleetSchedule, FleetSchedule, TuningSession,
};
pub use json::JsonValue;
pub use latency::LatencyHistogram;
pub use persist::{Codec, CompactionPolicy, DurableStore, RecoveryReport, ShipBatch, ShipCursor};
pub use ring::HashRing;
pub use store::{ShardMetrics, ShardedStore, StoreBackend};
pub use wire::{frame, FrameError, FrameReader};
