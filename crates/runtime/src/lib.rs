//! # vaqem-runtime
//!
//! A quantum-cloud execution-cost model standing in for the paper's Qiskit
//! Runtime measurements (§VI-A, §VIII-D, Fig. 15): per-job latency for
//! Runtime vs. the classic client loop, session caps, log-normal queue
//! waits, and the four-way wall-clock breakdown the paper plots.

pub mod cost;

pub use cost::{
    AngleTuningMode, BatchDispatch, CostModel, ExecutionTimeBreakdown, WorkloadProfile,
};
