//! Streaming length-prefixed framing for the wire protocol.
//!
//! The fleet's RPC front-end (`vaqem-fleet-rpc`) moves frames over
//! nonblocking sockets, so bytes arrive in arbitrary slices: half a
//! length prefix now, the rest of the frame three reads later, two
//! frames fused into one read. [`FrameReader`] is the accumulator that
//! turns that stream back into whole frames:
//!
//! * bytes are [`FrameReader::push`]ed as they arrive;
//! * [`FrameReader::next_frame`] pops one complete frame payload when
//!   the buffer holds one, and `None` while a frame is still torn —
//!   exactly the torn-tail tolerance the journal replay in [`persist`]
//!   applies to its on-disk records, applied to a live stream;
//! * a length prefix larger than the configured bound is a protocol
//!   error ([`FrameError::TooLong`]) — the caller should drop the
//!   connection rather than buffer unboundedly.
//!
//! The matching write side is [`frame`]: one allocation, `u32`
//! little-endian length prefix + payload, the same discipline
//! `persist::JournalWriter` uses for journal records.
//!
//! [`persist`]: crate::persist
//!
//! ```
//! use vaqem_runtime::wire::{frame, FrameReader};
//!
//! let mut reader = FrameReader::new(1024);
//! let bytes = frame(b"hello");
//! // Feed the frame in two torn halves: no frame until it completes.
//! reader.push(&bytes[..3]);
//! assert_eq!(reader.next_frame().unwrap(), None);
//! reader.push(&bytes[3..]);
//! assert_eq!(reader.next_frame().unwrap().as_deref(), Some(&b"hello"[..]));
//! assert_eq!(reader.next_frame().unwrap(), None);
//! ```

use std::fmt;

use crate::persist::Codec;

/// Framing violations a stream can commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// A length prefix promised more bytes than the reader's bound —
    /// either a corrupt/hostile peer or a protocol mismatch. The
    /// connection should be dropped; the reader refuses to buffer it.
    TooLong {
        /// The declared payload length.
        declared: usize,
        /// The reader's configured maximum.
        max: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLong { declared, max } => {
                write!(f, "frame length {declared} exceeds the {max}-byte bound")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Wraps `payload` in the wire framing: `u32` little-endian length
/// prefix, then the payload bytes.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 4);
    (payload.len() as u32).encode(&mut out);
    out.extend_from_slice(payload);
    out
}

/// A streaming accumulator that reassembles length-prefixed frames from
/// arbitrarily-torn byte slices. See the module docs for the contract.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by popped frames. Compacted
    /// lazily so a burst of small frames costs one `drain`, not N.
    consumed: usize,
    max_frame: usize,
}

impl FrameReader {
    /// Creates a reader that refuses frames longer than `max_frame`
    /// payload bytes.
    pub fn new(max_frame: usize) -> Self {
        FrameReader {
            buf: Vec::new(),
            consumed: 0,
            max_frame,
        }
    }

    /// Appends freshly-read bytes to the stream buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet popped as frames (a torn frame's
    /// prefix counts).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.consumed
    }

    fn compact(&mut self) {
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
    }

    /// Pops the next complete frame payload, `Ok(None)` while the
    /// buffer holds only a torn frame (or nothing).
    ///
    /// # Errors
    ///
    /// [`FrameError::TooLong`] when the stream declares a frame past the
    /// reader's bound; the reader is then poisoned-by-construction (the
    /// oversized prefix stays at the front), so the caller must drop the
    /// connection.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let pending = &self.buf[self.consumed..];
        let mut input = pending;
        let Some(len) = u32::decode(&mut input) else {
            return Ok(None); // torn length prefix
        };
        let len = len as usize;
        if len > self.max_frame {
            return Err(FrameError::TooLong {
                declared: len,
                max: self.max_frame,
            });
        }
        if input.len() < len {
            return Ok(None); // torn payload
        }
        let payload = input[..len].to_vec();
        self.consumed += 4 + len;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reassembles_across_arbitrary_tears() {
        let payloads: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![], vec![9; 100]];
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&frame(p));
        }
        // Feed one byte at a time: every frame still comes out whole.
        let mut reader = FrameReader::new(1024);
        let mut got = Vec::new();
        for b in &stream {
            reader.push(std::slice::from_ref(b));
            while let Some(f) = reader.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, payloads);
        assert_eq!(reader.pending_bytes(), 0);
    }

    #[test]
    fn fused_reads_pop_multiple_frames() {
        let mut stream = frame(b"a");
        stream.extend_from_slice(&frame(b"bb"));
        let mut reader = FrameReader::new(16);
        reader.push(&stream);
        assert_eq!(reader.next_frame().unwrap().as_deref(), Some(&b"a"[..]));
        assert_eq!(reader.next_frame().unwrap().as_deref(), Some(&b"bb"[..]));
        assert_eq!(reader.next_frame().unwrap(), None);
    }

    #[test]
    fn oversized_prefix_is_rejected_not_buffered() {
        let mut reader = FrameReader::new(8);
        let mut bytes = Vec::new();
        (1_000_000u32).encode(&mut bytes);
        reader.push(&bytes);
        assert_eq!(
            reader.next_frame(),
            Err(FrameError::TooLong {
                declared: 1_000_000,
                max: 8
            })
        );
    }

    #[test]
    fn torn_prefix_waits() {
        let mut reader = FrameReader::new(8);
        reader.push(&[3, 0]); // half a length prefix
        assert_eq!(reader.next_frame().unwrap(), None);
        reader.push(&[0, 0, 7, 8, 9]);
        assert_eq!(
            reader.next_frame().unwrap().as_deref(),
            Some(&[7, 8, 9][..])
        );
    }
}
