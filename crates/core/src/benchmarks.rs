//! The paper's seven benchmark applications (§VII-A, Table I).
//!
//! Five TFIM instances on EfficientSU2 ansätze, the Li+-like Hamiltonian on
//! a 6-qubit SU2, and H2 on UCCSD. Each benchmark names the IBM-like device
//! the paper ran it on; circuits map onto the device's first `n` qubits
//! (our machine simulator is all-to-all, so no routing is required — the
//! substitution is documented in DESIGN.md).

use crate::error::VaqemError;
use crate::vqe::VqeProblem;
use vaqem_ansatz::su2::{EfficientSu2, Entanglement};
use vaqem_ansatz::uccsd::uccsd_h2;
use vaqem_device::backend::DeviceModel;
use vaqem_device::noise::NoiseParameters;
use vaqem_pauli::models::{h2_sto3g, li_ion_like_truncated, tfim_paper};

/// Identifier for each of the paper's benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkId {
    /// HW_TFIM_6q_f_2r.
    Tfim6qF2r,
    /// HW_TFIM_6q_c_2r.
    Tfim6qC2r,
    /// HW_TFIM_4q_c_6r.
    Tfim4qC6r,
    /// HW_TFIM_4q_f_6r.
    Tfim4qF6r,
    /// HW_TFIM_6q_c_4r (the deepest; forced onto noisy qubits, §VIII-A).
    Tfim6qC4r,
    /// HW_Li+.
    LiIon,
    /// UCCSD_H2.
    UccsdH2,
}

impl BenchmarkId {
    /// All seven, in the paper's Fig. 12 order.
    pub const ALL: [BenchmarkId; 7] = [
        BenchmarkId::Tfim6qF2r,
        BenchmarkId::Tfim6qC2r,
        BenchmarkId::Tfim4qC6r,
        BenchmarkId::Tfim4qF6r,
        BenchmarkId::Tfim6qC4r,
        BenchmarkId::LiIon,
        BenchmarkId::UccsdH2,
    ];

    /// The paper's benchmark label.
    pub fn label(self) -> &'static str {
        match self {
            BenchmarkId::Tfim6qF2r => "HW_TFIM_6q_f_2r",
            BenchmarkId::Tfim6qC2r => "HW_TFIM_6q_c_2r",
            BenchmarkId::Tfim4qC6r => "HW_TFIM_4q_c_6r",
            BenchmarkId::Tfim4qF6r => "HW_TFIM_4q_f_6r",
            BenchmarkId::Tfim6qC4r => "HW_TFIM_6q_c_4r",
            BenchmarkId::LiIon => "HW_Li+",
            BenchmarkId::UccsdH2 => "UCCSD_H2",
        }
    }

    /// The device the paper ran this benchmark on (§VII-A).
    pub fn device(self) -> DeviceModel {
        match self {
            BenchmarkId::Tfim6qF2r => DeviceModel::ibmq_guadalupe(),
            BenchmarkId::Tfim6qC2r => DeviceModel::ibmq_jakarta(),
            BenchmarkId::Tfim4qC6r => DeviceModel::ibmq_casablanca(),
            BenchmarkId::Tfim4qF6r => DeviceModel::ibmq_jakarta(),
            BenchmarkId::Tfim6qC4r => DeviceModel::ibmq_casablanca(),
            BenchmarkId::LiIon | BenchmarkId::UccsdH2 => DeviceModel::ibmq_montreal(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(self) -> usize {
        match self {
            BenchmarkId::Tfim4qC6r | BenchmarkId::Tfim4qF6r | BenchmarkId::UccsdH2 => 4,
            _ => 6,
        }
    }

    /// Noise parameters for the circuit: the device subset on the first
    /// `n` physical qubits.
    pub fn circuit_noise(self) -> NoiseParameters {
        let device = self.device();
        let layout: Vec<usize> = (0..self.num_qubits()).collect();
        device.noise().subset(&layout)
    }

    /// Builds the VQE problem.
    ///
    /// # Errors
    ///
    /// Propagates circuit-construction errors.
    pub fn problem(self) -> Result<VqeProblem, VaqemError> {
        let problem = match self {
            BenchmarkId::Tfim6qF2r => VqeProblem::new(
                self.label(),
                tfim_paper(6),
                EfficientSu2::new(6, 2, Entanglement::Full).circuit()?,
            )?,
            BenchmarkId::Tfim6qC2r => VqeProblem::new(
                self.label(),
                tfim_paper(6),
                EfficientSu2::new(6, 2, Entanglement::Circular).circuit()?,
            )?,
            BenchmarkId::Tfim4qC6r => VqeProblem::new(
                self.label(),
                tfim_paper(4),
                EfficientSu2::new(4, 6, Entanglement::Circular).circuit()?,
            )?,
            BenchmarkId::Tfim4qF6r => VqeProblem::new(
                self.label(),
                tfim_paper(4),
                EfficientSu2::new(4, 6, Entanglement::Full).circuit()?,
            )?,
            BenchmarkId::Tfim6qC4r => VqeProblem::new(
                self.label(),
                tfim_paper(6),
                EfficientSu2::new(6, 4, Entanglement::Circular).circuit()?,
            )?,
            BenchmarkId::LiIon => VqeProblem::new(
                self.label(),
                li_ion_like_truncated(),
                EfficientSu2::new(6, 3, Entanglement::Full).circuit()?,
            )?,
            // The full 15-term operator: our coefficient set has no
            // near-zero terms to drop (the paper's "4 truncated" terms are
            // negligible in its own mapping), and dropping the exchange
            // terms would blind the objective to correlation.
            BenchmarkId::UccsdH2 => VqeProblem::new(self.label(), h2_sto3g(), uccsd_h2()?)?,
        };
        Ok(problem)
    }
}

/// Table I row: measured characteristics of one benchmark under this
/// reproduction's scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkCharacteristics {
    /// Benchmark label.
    pub label: &'static str,
    /// CX depth of the (unbound) ansatz.
    pub cx_depth: usize,
    /// Total CX count.
    pub cx_count: usize,
    /// Idle windows targeted by mitigation (Table I "# Win").
    pub windows: usize,
    /// Measurement groups per objective evaluation.
    pub measurement_groups: usize,
    /// Scheduled makespan in nanoseconds (at zero angles).
    pub makespan_ns: f64,
}

/// Computes the Table I characteristics for a benchmark.
///
/// # Errors
///
/// Propagates circuit errors.
pub fn characteristics(id: BenchmarkId) -> Result<BenchmarkCharacteristics, VaqemError> {
    use vaqem_circuit::schedule::{schedule, DurationModel, ScheduleKind};
    let problem = id.problem()?;
    let ansatz = problem.ansatz();
    let bound = ansatz.bind(&vec![0.1; ansatz.num_params()])?;
    let mut measured = bound.clone();
    measured.measure_all();
    let durations = DurationModel::ibm_default();
    let scheduled = schedule(&measured, &durations, ScheduleKind::Alap)?;
    let windows = scheduled.idle_windows(durations.single_qubit_ns()).len();
    Ok(BenchmarkCharacteristics {
        label: id.label(),
        cx_depth: ansatz.cx_depth(),
        cx_count: ansatz.cx_count(),
        windows,
        measurement_groups: problem.groups().len(),
        makespan_ns: scheduled.total_ns(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build() {
        for id in BenchmarkId::ALL {
            let p = id
                .problem()
                .unwrap_or_else(|e| panic!("{}: {e}", id.label()));
            assert_eq!(p.hamiltonian().num_qubits(), id.num_qubits());
            assert_eq!(p.ansatz().num_qubits(), id.num_qubits());
            assert!(p.exact_ground_energy() < 0.0, "{}", id.label());
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(BenchmarkId::Tfim6qC4r.label(), "HW_TFIM_6q_c_4r");
        assert_eq!(BenchmarkId::LiIon.label(), "HW_Li+");
        assert_eq!(BenchmarkId::UccsdH2.label(), "UCCSD_H2");
    }

    #[test]
    fn devices_match_paper_assignment() {
        // Chemistry apps ran through Qiskit Runtime on montreal (§VII-A).
        assert_eq!(BenchmarkId::LiIon.device().name(), "ibmq_montreal");
        assert_eq!(BenchmarkId::UccsdH2.device().name(), "ibmq_montreal");
        assert_eq!(BenchmarkId::Tfim4qC6r.device().name(), "ibmq_casablanca");
    }

    #[test]
    fn circuit_noise_covers_circuit() {
        for id in BenchmarkId::ALL {
            let noise = id.circuit_noise();
            assert_eq!(noise.num_qubits(), id.num_qubits());
        }
    }

    #[test]
    fn characteristics_have_windows_and_depth() {
        // Spot-check two benchmarks; deeper circuits have more windows, as
        // the paper observes (§VIII-A).
        let shallow = characteristics(BenchmarkId::Tfim6qC2r).unwrap();
        let deep = characteristics(BenchmarkId::Tfim6qC4r).unwrap();
        assert!(shallow.cx_depth > 0);
        assert!(deep.cx_depth > shallow.cx_depth);
        assert!(deep.windows > 0);
        assert!(
            deep.windows >= shallow.windows,
            "deeper circuits give more windows: {deep:?} vs {shallow:?}"
        );
    }

    #[test]
    fn uccsd_h2_characteristics() {
        let c = characteristics(BenchmarkId::UccsdH2).unwrap();
        // Paper Table I: depth 61, windows 26. Shape check: tens of CX
        // layers, nonzero windows.
        assert!((30..=90).contains(&c.cx_depth), "{c:?}");
        assert!(c.windows > 0, "{c:?}");
    }
}
