//! # vaqem
//!
//! The core of the VAQEM (HPCA 2022) reproduction: a variational approach
//! to quantum error mitigation. VAQEM treats error-mitigation knobs — the
//! number of dynamical-decoupling repetitions and the position of
//! single-qubit gates inside idle windows — as variational parameters,
//! tuned against the VQA objective on the (noisy) machine, per idle window
//! (paper §VI).
//!
//! The crate provides the paper's feasible flow end to end:
//!
//! * [`vqe`] — the VQE problem and its ideal/machine objective evaluators,
//! * [`executor`] — the execution trait: one API over the trajectory
//!   machine, the ideal sampler, and the density simulator, with batched
//!   parallel dispatch,
//! * [`backend`] — scheduling + mitigation + execution + MEM in one
//!   endpoint, generic over the executor,
//! * [`pipeline::tune_angles`] — SPSA angle tuning on the ideal simulator,
//! * [`window_tuner`] — the independent per-window EM tuner (§VI-C), plus
//!   the fleet-scale warm-start path: canonical window fingerprints and
//!   the shared `(device, epoch, fingerprint)` config store, and the §IX
//!   ZNE stage: tuned zero-noise-extrapolation protocols, composed
//!   `(gs, dd, zne)` configurations cached as one unit,
//! * [`pipeline`] — all §VII-B comparison strategies (+ the ZNE
//!   extension strategies),
//! * [`benchmarks`] — the seven Table I applications,
//! * [`workloads`] — the scenario-matrix workload catalog (TFIM/SU2 at
//!   configurable depth, H2/UCCSD chemistry, QAOA-style ring ansätze)
//!   the verification grid crosses against device classes and tenants,
//! * [`soundness`] — the §V variational-bound checks,
//! * [`metrics`] — the Fig. 12/13 reporting metrics.

pub mod backend;
pub mod benchmarks;
pub mod error;
pub mod executor;
pub mod metrics;
pub mod pipeline;
pub mod soundness;
pub mod vqe;
pub mod window_tuner;
pub mod workloads;

pub use backend::QuantumBackend;
pub use benchmarks::BenchmarkId;
pub use error::VaqemError;
pub use executor::{Executor, Job};
pub use pipeline::{
    run_pipeline, run_pipeline_with_cache, BenchmarkRun, CacheUsage, PipelineConfig, Strategy,
    StrategyResult,
};
pub use vqe::{GroupSchedules, VqeProblem};
pub use window_tuner::{
    circuit_fingerprint, window_fingerprint, CachedChoice, ComposedChoice, FleetCacheSession,
    MitigationConfigStore, NoiseClass, StoredChoice, TunedMitigation, TuningMode, WarmStats,
    WarmTuneReport, WindowFingerprint, WindowTuner, WindowTunerConfig,
};
pub use workloads::ScenarioWorkload;
