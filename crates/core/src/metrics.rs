//! Evaluation metrics matching the paper's Figs. 12 and 13.
//!
//! * **Improvement relative to baseline** (Fig. 12): the ratio of measured
//!   energies for a minimization problem with negative optimum — "VQE
//!   Energy Rel. Baseline (Neg), higher is better". The paper notes small
//!   absolute energies can magnify ratios; we guard the denominator by
//!   clamping each energy's *fraction of optimal* below at a small floor.
//! * **Fraction of simulated optimal** (Fig. 13): `E / E0` with `E0 < 0`,
//!   clamped to `[0, 1]`.

/// Floor on the fraction-of-optimal used in ratio denominators, preventing
/// division blow-ups when a baseline lands near zero (paper §VIII-A's
/// "relative improvements can seem magnified" — improvements are capped at
/// `1/FRACTION_FLOOR` = 50x, comfortably above the paper's largest 13.8x).
pub const FRACTION_FLOOR: f64 = 0.02;

/// Fraction of optimal computed on the traceless part of the objective:
/// identity terms contribute a constant that no mitigation can affect, so
/// both energies are shifted by `identity_offset` before normalizing.
/// With a zero offset this equals [`fraction_of_optimal`].
///
/// # Panics
///
/// Panics when the adjusted optimum is non-negative.
pub fn fraction_of_optimal_adjusted(energy: f64, e0: f64, identity_offset: f64) -> f64 {
    fraction_of_optimal(energy - identity_offset, e0 - identity_offset)
}

/// [`improvement_rel_baseline`] on the traceless part of the objective.
///
/// # Panics
///
/// Panics when the adjusted optimum is non-negative.
pub fn improvement_rel_baseline_adjusted(
    energy: f64,
    baseline_energy: f64,
    e0: f64,
    identity_offset: f64,
) -> f64 {
    improvement_rel_baseline(
        energy - identity_offset,
        baseline_energy - identity_offset,
        e0 - identity_offset,
    )
}

/// Fraction of the simulated optimal achieved: `E / E0` for ground energy
/// `E0 < 0`, clamped to `[0, 1]` (energies above zero score 0).
///
/// # Panics
///
/// Panics when `e0 >= 0` — the paper's benchmarks all have negative optima.
pub fn fraction_of_optimal(energy: f64, e0: f64) -> f64 {
    assert!(e0 < 0.0, "ground energy must be negative, got {e0}");
    (energy / e0).clamp(0.0, 1.0)
}

/// Fig. 12 metric: improvement of `energy` over `baseline_energy`, both
/// normalized by the optimal `e0`. Values above 1 mean the method found a
/// lower (better) energy than the baseline.
///
/// # Panics
///
/// Panics when `e0 >= 0`.
pub fn improvement_rel_baseline(energy: f64, baseline_energy: f64, e0: f64) -> f64 {
    let f_m = fraction_of_optimal(energy, e0).max(FRACTION_FLOOR);
    let f_b = fraction_of_optimal(baseline_energy, e0).max(FRACTION_FLOOR);
    f_m / f_b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_of_optimal_basics() {
        assert!((fraction_of_optimal(-5.0, -10.0) - 0.5).abs() < 1e-12);
        assert!((fraction_of_optimal(-10.0, -10.0) - 1.0).abs() < 1e-12);
        // Better than optimal is impossible physically; clamp at 1.
        assert_eq!(fraction_of_optimal(-11.0, -10.0), 1.0);
        // Positive measured energy scores zero.
        assert_eq!(fraction_of_optimal(2.0, -10.0), 0.0);
    }

    #[test]
    fn improvement_ratios() {
        // Method reaches 50% of optimal, baseline 25%: 2x improvement.
        assert!((improvement_rel_baseline(-5.0, -2.5, -10.0) - 2.0).abs() < 1e-12);
        // Identical energies: 1x.
        assert!((improvement_rel_baseline(-4.0, -4.0, -10.0) - 1.0).abs() < 1e-12);
        // Method worse than baseline: below 1.
        assert!(improvement_rel_baseline(-2.0, -4.0, -10.0) < 1.0);
    }

    #[test]
    fn floor_guards_tiny_baselines() {
        // Baseline at ~0 of optimal: ratio is bounded by 1/FRACTION_FLOOR.
        let imp = improvement_rel_baseline(-10.0, 1e-9, -10.0);
        assert!(imp <= 1.0 / FRACTION_FLOOR + 1e-9);
        assert!(imp >= 1.0);
    }

    #[test]
    fn offset_adjustment_removes_constant_shift() {
        // H = -4 I + (traceless part with optimum -1): optimum -5.
        // Method reaches -4.5, baseline -4.25: on raw energies both look
        // like ~85-90% of optimal; on the traceless part they are 50% and
        // 25% — a 2x improvement.
        let imp = improvement_rel_baseline_adjusted(-4.5, -4.25, -5.0, -4.0);
        assert!((imp - 2.0).abs() < 1e-9, "{imp}");
        let f = fraction_of_optimal_adjusted(-4.5, -5.0, -4.0);
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn positive_optimum_rejected() {
        let _ = fraction_of_optimal(-1.0, 1.0);
    }
}
