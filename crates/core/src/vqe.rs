//! The VQE problem definition and its objective evaluators.
//!
//! A [`VqeProblem`] pairs a Pauli-sum Hamiltonian with a parameterized
//! ansatz. Two objective evaluators mirror the paper's feasible flow
//! (Fig. 11): an **ideal** evaluator (exact `<psi|H|psi>` on the noise-free
//! simulator, used for angle tuning) and a **machine** evaluator (counts
//! from the noisy backend folded into `<H>`, used for error-mitigation
//! tuning and final reporting).

use crate::backend::QuantumBackend;
use crate::error::VaqemError;
use crate::executor::{Executor, Job};
use vaqem_circuit::circuit::QuantumCircuit;
use vaqem_circuit::schedule::ScheduledCircuit;
use vaqem_mathkit::matrix::CMatrix;
use vaqem_mitigation::combined::MitigationConfig;
use vaqem_pauli::expectation::{energy_from_counts, measurement_circuit};
use vaqem_pauli::hamiltonian::{MeasurementGroup, PauliSum};
use vaqem_sim::counts::Counts;
use vaqem_sim::statevector::StateVector;

/// ALAP-scheduled measurement-group circuits for one parameter vector —
/// the schedule cache of the batched execution path.
///
/// Scheduling the bound ansatz is pure overhead when repeated per sweep
/// point: the base schedule depends only on the parameters, not on the
/// mitigation configuration (configs are applied per [`Job`] on top).
/// Callers build this once per window/stage and stamp out jobs from it.
#[derive(Debug, Clone)]
pub struct GroupSchedules {
    schedules: Vec<ScheduledCircuit>,
}

impl GroupSchedules {
    /// The cached per-group base schedules, in measurement-group order.
    pub fn schedules(&self) -> &[ScheduledCircuit] {
        &self.schedules
    }

    /// Number of measurement groups.
    pub fn len(&self) -> usize {
        self.schedules.len()
    }

    /// Returns `true` when the Hamiltonian has no measurement groups.
    pub fn is_empty(&self) -> bool {
        self.schedules.is_empty()
    }
}

/// A VQE instance: Hamiltonian + ansatz + label.
#[derive(Debug, Clone)]
pub struct VqeProblem {
    label: String,
    hamiltonian: PauliSum,
    ansatz: QuantumCircuit,
    dense: CMatrix,
    groups: Vec<MeasurementGroup>,
    exact_ground: f64,
}

impl VqeProblem {
    /// Creates a problem, precomputing the dense operator, measurement
    /// groups, and exact ground energy.
    ///
    /// # Errors
    ///
    /// Returns a configuration error when ansatz and Hamiltonian widths
    /// disagree.
    pub fn new(
        label: impl Into<String>,
        hamiltonian: PauliSum,
        ansatz: QuantumCircuit,
    ) -> Result<Self, VaqemError> {
        if hamiltonian.num_qubits() != ansatz.num_qubits() {
            return Err(VaqemError::Config {
                message: format!(
                    "hamiltonian is {}-qubit but ansatz is {}-qubit",
                    hamiltonian.num_qubits(),
                    ansatz.num_qubits()
                ),
            });
        }
        let dense = hamiltonian.to_matrix();
        let groups = hamiltonian.measurement_groups();
        let exact_ground = vaqem_mathkit::eigen::ground_state_energy(&dense);
        Ok(VqeProblem {
            label: label.into(),
            hamiltonian,
            ansatz,
            dense,
            groups,
            exact_ground,
        })
    }

    /// Benchmark label (e.g. `"HW_TFIM_6q_c_4r"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The Hamiltonian.
    pub fn hamiltonian(&self) -> &PauliSum {
        &self.hamiltonian
    }

    /// The parameterized ansatz.
    pub fn ansatz(&self) -> &QuantumCircuit {
        &self.ansatz
    }

    /// Number of variational parameters.
    pub fn num_params(&self) -> usize {
        self.ansatz.num_params()
    }

    /// Measurement groups of the Hamiltonian.
    pub fn groups(&self) -> &[MeasurementGroup] {
        &self.groups
    }

    /// Exact ground-state energy (the Fig. 13 "simulated optimal").
    pub fn exact_ground_energy(&self) -> f64 {
        self.exact_ground
    }

    /// Ideal objective: exact `<psi(params)|H|psi(params)>`.
    ///
    /// # Errors
    ///
    /// Returns an error when `params` has the wrong length.
    pub fn ideal_energy(&self, params: &[f64]) -> Result<f64, VaqemError> {
        let bound = self.ansatz.bind(params)?;
        let sv = StateVector::run(&bound)?;
        Ok(sv.expectation(&self.dense))
    }

    /// Derives the per-group job index from an evaluation's `job_index` —
    /// the same derivation the sequential path has always used, so batched
    /// and sequential evaluations consume identical noise streams.
    fn group_job_index(job_index: u64, group: usize) -> u64 {
        job_index.wrapping_mul(131).wrapping_add(group as u64)
    }

    /// Derives the sub-evaluation job index for one ZNE noise scale: a
    /// distinct deterministic stream per `(evaluation, scale slot)` so the
    /// amplified executions of one evaluation never share a noise stream
    /// with each other or with any plain evaluation.
    fn zne_scale_job_index(job_index: u64, scale_slot: usize) -> u64 {
        job_index
            .wrapping_mul(7919)
            .wrapping_add(1 + scale_slot as u64)
    }

    /// Schedules every measurement-group circuit for `params` once (ALAP,
    /// under the backend's duration table) — the base the batched paths
    /// stamp mitigation configs onto.
    ///
    /// # Errors
    ///
    /// Returns an error when `params` has the wrong length.
    pub fn schedule_groups<E: Executor>(
        &self,
        backend: &QuantumBackend<E>,
        params: &[f64],
    ) -> Result<GroupSchedules, VaqemError> {
        let bound = self.ansatz.bind(params)?;
        let schedules = self
            .groups
            .iter()
            .map(|g| {
                let qc = measurement_circuit(&bound, g)?;
                backend.schedule(&qc)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(GroupSchedules { schedules })
    }

    /// Stamps out one [`Job`] per measurement group for a single objective
    /// evaluation of `config` at `job_index`.
    pub fn energy_jobs<E: Executor>(
        &self,
        backend: &QuantumBackend<E>,
        cache: &GroupSchedules,
        config: &MitigationConfig,
        job_index: u64,
    ) -> Vec<Job> {
        cache
            .schedules
            .iter()
            .enumerate()
            .map(|(gi, base)| {
                backend.prepare_job(base, config, Self::group_job_index(job_index, gi))
            })
            .collect()
    }

    /// Folds one evaluation's per-group counts into `<H>`.
    pub fn energy_from_group_counts(&self, counts: &[Counts]) -> f64 {
        energy_from_counts(&self.hamiltonian, &self.groups, counts)
    }

    /// Batched machine objective: evaluates every `(config, job_index)`
    /// pair in `evals` through a **single** [`QuantumBackend::run_jobs`]
    /// batch, returning one energy per pair, in order.
    ///
    /// Seed-deterministic and bit-identical to calling
    /// [`Self::machine_energy`] per pair: each job's seed derivation is
    /// shared with the sequential path.
    ///
    /// # Zero-noise extrapolation
    ///
    /// An evaluation whose config carries a
    /// [`vaqem_mitigation::zne::ZneConfig`] expands into one job per
    /// (noise scale, measurement group): the GS/DD-mitigated group
    /// schedules are folded to each configured scale
    /// ([`QuantumBackend::prepare_zne_job`]), all folded jobs ride the
    /// same batch, and the per-scale energies are extrapolated back to
    /// the zero-noise limit — the returned value is the extrapolated
    /// estimate. Plain evaluations are byte-identical to the historical
    /// path; mixing plain and ZNE evaluations in one batch is fine.
    pub fn machine_energy_batch<E: Executor>(
        &self,
        backend: &QuantumBackend<E>,
        cache: &GroupSchedules,
        evals: &[(MitigationConfig, u64)],
    ) -> Vec<f64> {
        if self.groups.is_empty() {
            // Nothing to execute: `<H>` is the identity offset (matches the
            // sequential path, which folded zero counts the same way).
            return evals
                .iter()
                .map(|_| self.energy_from_group_counts(&[]))
                .collect();
        }
        let mut jobs: Vec<Job> = Vec::new();
        for (config, job_index) in evals {
            match &config.zne {
                None => jobs.extend(self.energy_jobs(backend, cache, config, *job_index)),
                Some(zne) => {
                    for (slot, folds) in zne.fold_counts().into_iter().enumerate() {
                        let sub = Self::zne_scale_job_index(*job_index, slot);
                        jobs.extend(cache.schedules.iter().enumerate().map(|(gi, base)| {
                            backend.prepare_zne_job(
                                base,
                                config,
                                folds,
                                Self::group_job_index(sub, gi),
                            )
                        }));
                    }
                }
            }
        }
        let counts = backend.run_jobs(&jobs);
        let g = self.groups.len();
        let mut cursor = 0usize;
        evals
            .iter()
            .map(|(config, _)| match &config.zne {
                None => {
                    let e = self.energy_from_group_counts(&counts[cursor..cursor + g]);
                    cursor += g;
                    e
                }
                Some(zne) => {
                    let samples: Vec<(f64, f64)> = zne
                        .fold_counts()
                        .into_iter()
                        .map(|folds| {
                            let e = self.energy_from_group_counts(&counts[cursor..cursor + g]);
                            cursor += g;
                            (vaqem_mitigation::zne::scale_factor(folds), e)
                        })
                        .collect();
                    zne.extrapolate(&samples)
                }
            })
            .collect()
    }

    /// Machine objective: `<H>` estimated from noisy counts, one execution
    /// per measurement group, with `config` applied to each group circuit.
    ///
    /// `job_index` decorrelates noise across evaluations (SPSA iterations,
    /// sweep points, drift epochs).
    ///
    /// # Errors
    ///
    /// Returns an error when `params` has the wrong length.
    pub fn machine_energy<E: Executor>(
        &self,
        backend: &QuantumBackend<E>,
        params: &[f64],
        config: &MitigationConfig,
        job_index: u64,
    ) -> Result<f64, VaqemError> {
        let cache = self.schedule_groups(backend, params)?;
        let energies = self.machine_energy_batch(backend, &cache, &[(config.clone(), job_index)]);
        Ok(energies[0])
    }

    /// The bound ansatz with each group's measurement suffix — used by the
    /// window tuner to enumerate idle windows consistently.
    ///
    /// # Errors
    ///
    /// Returns an error when `params` has the wrong length.
    pub fn bound_measurement_circuits(
        &self,
        params: &[f64],
    ) -> Result<Vec<QuantumCircuit>, VaqemError> {
        let bound = self.ansatz.bind(params)?;
        self.groups
            .iter()
            .map(|g| Ok(measurement_circuit(&bound, g)?))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaqem_ansatz::su2::{EfficientSu2, Entanglement};
    use vaqem_device::noise::NoiseParameters;
    use vaqem_mathkit::rng::SeedStream;
    use vaqem_pauli::models::tfim_paper;

    fn tfim_problem(n: usize) -> VqeProblem {
        let ansatz = EfficientSu2::new(n, 1, Entanglement::Circular)
            .circuit()
            .unwrap();
        VqeProblem::new("test", tfim_paper(n), ansatz).unwrap()
    }

    #[test]
    fn width_mismatch_rejected() {
        let ansatz = EfficientSu2::new(3, 1, Entanglement::Linear)
            .circuit()
            .unwrap();
        let err = VqeProblem::new("bad", tfim_paper(4), ansatz).unwrap_err();
        assert!(matches!(err, VaqemError::Config { .. }));
    }

    #[test]
    fn ideal_energy_respects_variational_bound() {
        let p = tfim_problem(3);
        let e0 = p.exact_ground_energy();
        for k in 0..10 {
            let params: Vec<f64> = (0..p.num_params()).map(|i| 0.3 * (i + k) as f64).collect();
            let e = p.ideal_energy(&params).unwrap();
            assert!(e >= e0 - 1e-9, "{e} < {e0}");
        }
    }

    #[test]
    fn zero_params_give_all_zero_state_energy() {
        let p = tfim_problem(3);
        // |000>: <X_i> = 0, <Z_i Z_j> = 1 -> E = 3 (ring of 3 ZZ terms).
        let e = p.ideal_energy(&vec![0.0; p.num_params()]).unwrap();
        assert!((e - 3.0).abs() < 1e-9, "{e}");
    }

    #[test]
    fn machine_energy_close_to_ideal_when_noiseless() {
        let p = tfim_problem(2);
        let backend =
            QuantumBackend::new(NoiseParameters::noiseless(2), SeedStream::new(5)).with_shots(8192);
        let params: Vec<f64> = (0..p.num_params()).map(|i| 0.2 * i as f64).collect();
        let ideal = p.ideal_energy(&params).unwrap();
        let machine = p
            .machine_energy(&backend, &params, &MitigationConfig::baseline(), 0)
            .unwrap();
        assert!(
            (ideal - machine).abs() < 0.1,
            "ideal {ideal} machine {machine}"
        );
    }

    #[test]
    fn noise_degrades_machine_energy() {
        let p = tfim_problem(3);
        // Tune briefly to a low-energy point first so noise has something
        // to degrade.
        let params: Vec<f64> = vec![0.4; p.num_params()];
        let ideal = p.ideal_energy(&params).unwrap();
        let noisy_backend =
            QuantumBackend::new(NoiseParameters::uniform(3), SeedStream::new(6)).with_shots(2048);
        let machine = p
            .machine_energy(&noisy_backend, &params, &MitigationConfig::baseline(), 0)
            .unwrap();
        // Noise pushes the estimate toward the maximally mixed value (zero
        // for traceless H), i.e. above the ideal when ideal < 0, and in any
        // case must respect the ground bound within shot noise.
        assert!(machine >= p.exact_ground_energy() - 0.3, "{machine}");
        let _ = ideal;
    }

    #[test]
    fn identity_only_hamiltonian_needs_no_execution() {
        // A Hamiltonian with no measurable terms has zero measurement
        // groups; the objective is the constant identity offset and the
        // batched path must not panic (regression: it used to index an
        // empty energy vector).
        use vaqem_pauli::hamiltonian::PauliSum;
        let mut h = PauliSum::new(2);
        h.add_label(1.5, "II");
        let ansatz = EfficientSu2::new(2, 1, Entanglement::Linear)
            .circuit()
            .unwrap();
        let p = VqeProblem::new("identity", h, ansatz).unwrap();
        assert!(p.groups().is_empty());
        let backend =
            QuantumBackend::new(NoiseParameters::uniform(2), SeedStream::new(8)).with_shots(64);
        let params = vec![0.0; p.num_params()];
        let e = p
            .machine_energy(&backend, &params, &MitigationConfig::baseline(), 0)
            .unwrap();
        assert!((e - 1.5).abs() < 1e-12, "{e}");
        let cache = p.schedule_groups(&backend, &params).unwrap();
        let batch = p.machine_energy_batch(
            &backend,
            &cache,
            &[
                (MitigationConfig::baseline(), 0),
                (MitigationConfig::baseline(), 1),
            ],
        );
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|e| (e - 1.5).abs() < 1e-12));
    }

    #[test]
    fn zne_energy_matches_ideal_when_noiseless() {
        // Folding a noiseless circuit changes nothing, so every scale
        // measures the same distribution and the extrapolation returns a
        // value statistically equal to the plain estimate.
        use vaqem_mitigation::zne::ZneConfig;
        let p = tfim_problem(2);
        let backend = QuantumBackend::new(NoiseParameters::noiseless(2), SeedStream::new(11))
            .with_shots(4096);
        let params: Vec<f64> = (0..p.num_params()).map(|i| 0.2 * i as f64).collect();
        let ideal = p.ideal_energy(&params).unwrap();
        let cfg = MitigationConfig::zero_noise_extrapolation(ZneConfig::standard());
        let zne = p.machine_energy(&backend, &params, &cfg, 3).unwrap();
        assert!((zne - ideal).abs() < 0.15, "zne {zne} vs ideal {ideal}");
    }

    #[test]
    fn zne_evaluations_are_deterministic_and_mix_with_plain() {
        use vaqem_mitigation::zne::ZneConfig;
        let p = tfim_problem(2);
        let backend =
            QuantumBackend::new(NoiseParameters::uniform(2), SeedStream::new(12)).with_shots(256);
        let params = vec![0.3; p.num_params()];
        let cache = p.schedule_groups(&backend, &params).unwrap();
        let zne_cfg = MitigationConfig::zero_noise_extrapolation(ZneConfig::standard());
        let evals = [
            (MitigationConfig::baseline(), 7u64),
            (zne_cfg.clone(), 8),
            (MitigationConfig::baseline(), 9),
        ];
        let a = p.machine_energy_batch(&backend, &cache, &evals);
        let b = p.machine_energy_batch(&backend, &cache, &evals);
        assert_eq!(a, b, "ZNE batches replay bit-identically");
        // Plain members are unaffected by the ZNE neighbor: they match a
        // batch without it.
        let plain = p.machine_energy_batch(
            &backend,
            &cache,
            &[
                (MitigationConfig::baseline(), 7),
                (MitigationConfig::baseline(), 9),
            ],
        );
        assert_eq!(a[0], plain[0]);
        assert_eq!(a[2], plain[1]);
        assert!(a[1].is_finite());
    }

    #[test]
    fn group_count_matches_hamiltonian() {
        let p = tfim_problem(4);
        assert_eq!(p.groups().len(), p.hamiltonian().measurement_groups().len());
        let circuits = p
            .bound_measurement_circuits(&vec![0.1; p.num_params()])
            .unwrap();
        assert_eq!(circuits.len(), p.groups().len());
        for c in circuits {
            assert_eq!(c.count_gate("measure"), 4);
        }
    }
}
