//! The quantum backend abstraction the tuning loop talks to.
//!
//! [`QuantumBackend`] bundles the pieces a real submission path involves:
//! ALAP scheduling under the device duration table, application of an
//! idle-time [`MitigationConfig`], execution on the trajectory "machine",
//! and optional measurement-error mitigation of the returned counts — i.e.
//! everything between "here is a bound circuit" and "here are your counts".

use crate::error::VaqemError;
use vaqem_circuit::circuit::QuantumCircuit;
use vaqem_circuit::schedule::{schedule, DurationModel, ScheduleKind, ScheduledCircuit};
use vaqem_device::noise::NoiseParameters;
use vaqem_mathkit::rng::SeedStream;
use vaqem_mitigation::combined::MitigationConfig;
use vaqem_mitigation::mem::MeasurementMitigator;
use vaqem_sim::counts::Counts;
use vaqem_sim::machine::MachineExecutor;

/// A noisy machine endpoint with a fixed duration table and seed stream.
#[derive(Debug, Clone)]
pub struct QuantumBackend {
    executor: MachineExecutor,
    durations: DurationModel,
    mem: Option<MeasurementMitigator>,
}

impl QuantumBackend {
    /// Creates a backend over `noise` with IBM-default durations.
    pub fn new(noise: NoiseParameters, seeds: SeedStream) -> Self {
        QuantumBackend {
            executor: MachineExecutor::new(noise, seeds),
            durations: DurationModel::ibm_default(),
            mem: None,
        }
    }

    /// Overrides the shot count per execution.
    pub fn with_shots(mut self, shots: u64) -> Self {
        self.executor = self.executor.with_shots(shots);
        self
    }

    /// Shots per execution.
    pub fn shots(&self) -> u64 {
        self.executor.shots()
    }

    /// Gate duration table.
    pub fn durations(&self) -> &DurationModel {
        &self.durations
    }

    /// The raw trajectory executor.
    pub fn executor(&self) -> &MachineExecutor {
        &self.executor
    }

    /// Replaces the noise parameters (drift experiments).
    pub fn set_noise(&mut self, noise: NoiseParameters) {
        self.executor.set_noise(noise);
    }

    /// Calibrates and enables measurement-error mitigation (the paper's
    /// baseline applies MEM orthogonally to everything).
    pub fn calibrate_mem(&mut self) {
        let n = self.executor.noise().num_qubits();
        let executor = self.executor.clone();
        let durations = self.durations.clone();
        let mitigator = MeasurementMitigator::calibrate(n, |qc| {
            let s = schedule(qc, &durations, ScheduleKind::Asap).expect("calibration circuit");
            executor.run_job(&s, u64::MAX) // dedicated stream for calibration
        });
        self.mem = Some(mitigator);
    }

    /// Disables measurement-error mitigation (the "No-EM" comparison).
    pub fn clear_mem(&mut self) {
        self.mem = None;
    }

    /// Returns `true` when MEM is active.
    pub fn mem_enabled(&self) -> bool {
        self.mem.is_some()
    }

    /// Schedules a bound circuit ALAP (the compilation baseline).
    ///
    /// # Errors
    ///
    /// Returns an error for parameterized circuits.
    pub fn schedule(&self, circuit: &QuantumCircuit) -> Result<ScheduledCircuit, VaqemError> {
        Ok(schedule(circuit, &self.durations, ScheduleKind::Alap)?)
    }

    /// Runs a bound circuit with a mitigation configuration applied, MEM
    /// post-processing included when calibrated.
    ///
    /// `job_index` decorrelates the noise streams of repeated runs.
    ///
    /// # Errors
    ///
    /// Returns an error for parameterized circuits.
    pub fn run_with_mitigation(
        &self,
        circuit: &QuantumCircuit,
        config: &MitigationConfig,
        job_index: u64,
    ) -> Result<Counts, VaqemError> {
        let scheduled = self.schedule(circuit)?;
        let pulse = self.durations.single_qubit_ns();
        let mitigated = config.apply(&scheduled, pulse, pulse);
        let raw = self.executor.run_job(&mitigated, job_index);
        Ok(match &self.mem {
            Some(m) if m.num_qubits() == raw.num_qubits() => m.mitigate_counts(&raw),
            _ => raw,
        })
    }

    /// Runs without idle-time mitigation (the scheduling baseline).
    ///
    /// # Errors
    ///
    /// Returns an error for parameterized circuits.
    pub fn run(&self, circuit: &QuantumCircuit, job_index: u64) -> Result<Counts, VaqemError> {
        self.run_with_mitigation(circuit, &MitigationConfig::baseline(), job_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaqem_mitigation::dd::DdSequence;

    fn bell() -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        qc.measure_all();
        qc
    }

    #[test]
    fn run_returns_full_shot_count() {
        let backend =
            QuantumBackend::new(NoiseParameters::uniform(2), SeedStream::new(1)).with_shots(512);
        let counts = backend.run(&bell(), 0).unwrap();
        assert_eq!(counts.total(), 512);
        assert_eq!(counts.num_qubits(), 2);
    }

    #[test]
    fn mem_calibration_changes_counts() {
        let mut noise = NoiseParameters::noiseless(2);
        noise.qubit_mut(0).readout_p01 = 0.1;
        noise.qubit_mut(1).readout_p01 = 0.1;
        let mut backend = QuantumBackend::new(noise, SeedStream::new(2)).with_shots(4096);
        let raw = backend.run(&bell(), 0).unwrap();
        backend.calibrate_mem();
        assert!(backend.mem_enabled());
        let mitigated = backend.run(&bell(), 0).unwrap();
        // MEM pushes weight back onto 00/11.
        let raw_good = raw.probability("00") + raw.probability("11");
        let mit_good = mitigated.probability("00") + mitigated.probability("11");
        assert!(mit_good > raw_good, "{mit_good} vs {raw_good}");
        backend.clear_mem();
        assert!(!backend.mem_enabled());
    }

    #[test]
    fn mitigation_config_is_applied() {
        // A circuit with an idle window: DD insertion must not break
        // execution and must keep total shots.
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        for _ in 0..12 {
            qc.sx(1).unwrap();
        }
        qc.cx(0, 1).unwrap();
        qc.measure_all();
        let backend =
            QuantumBackend::new(NoiseParameters::uniform(2), SeedStream::new(3)).with_shots(256);
        let cfg = MitigationConfig::dynamical_decoupling(DdSequence::Xy4, vec![1, 1, 1, 1]);
        let counts = backend.run_with_mitigation(&qc, &cfg, 0).unwrap();
        assert_eq!(counts.total(), 256);
    }

    #[test]
    fn parameterized_circuit_rejected() {
        let mut qc = QuantumCircuit::new(1);
        qc.ry_param(0, 0).unwrap();
        let backend = QuantumBackend::new(NoiseParameters::uniform(1), SeedStream::new(4));
        assert!(backend.run(&qc, 0).is_err());
    }
}
