//! The quantum backend abstraction the tuning loop talks to.
//!
//! [`QuantumBackend`] bundles the pieces a real submission path involves:
//! ALAP scheduling under the device duration table, application of an
//! idle-time [`MitigationConfig`], execution on an [`Executor`] substrate,
//! and optional measurement-error mitigation of the returned counts — i.e.
//! everything between "here is a bound circuit" and "here are your counts".
//!
//! The backend is generic over its [`Executor`]: the default is the
//! trajectory [`MachineExecutor`] (the "real machine"), but the ideal
//! [`vaqem_sim::exec::StateVectorSampler`] and the Markovian
//! [`vaqem_sim::exec::DensityExecutor`] plug in behind the same API, so
//! heterogeneous backends coexist in one pipeline. All multi-circuit work
//! flows through [`QuantumBackend::run_jobs`], which dispatches the batch
//! in parallel and post-processes MEM per job.

use crate::error::VaqemError;
use crate::executor::{Executor, Job};
use vaqem_circuit::circuit::QuantumCircuit;
use vaqem_circuit::schedule::{schedule, DurationModel, ScheduleKind, ScheduledCircuit};
use vaqem_device::noise::NoiseParameters;
use vaqem_mathkit::rng::SeedStream;
use vaqem_mitigation::combined::MitigationConfig;
use vaqem_mitigation::mem::MeasurementMitigator;
use vaqem_sim::counts::Counts;
use vaqem_sim::machine::{MachineExecutor, DEFAULT_SHOTS};

/// A noisy machine endpoint with a fixed duration table and seed stream.
#[derive(Debug, Clone)]
pub struct QuantumBackend<E: Executor = MachineExecutor> {
    executor: E,
    durations: DurationModel,
    mem: Option<MeasurementMitigator>,
    shots: u64,
}

impl QuantumBackend<MachineExecutor> {
    /// Creates a trajectory-machine backend over `noise` with IBM-default
    /// durations.
    pub fn new(noise: NoiseParameters, seeds: SeedStream) -> Self {
        QuantumBackend::from_executor(MachineExecutor::new(noise, seeds))
    }

    /// Replaces the noise parameters (drift experiments).
    pub fn set_noise(&mut self, noise: NoiseParameters) {
        self.executor.set_noise(noise);
    }
}

impl<E: Executor> QuantumBackend<E> {
    /// Creates a backend over an arbitrary execution substrate with
    /// IBM-default durations and [`DEFAULT_SHOTS`].
    pub fn from_executor(executor: E) -> Self {
        QuantumBackend {
            executor,
            durations: DurationModel::ibm_default(),
            mem: None,
            shots: DEFAULT_SHOTS,
        }
    }

    /// Overrides the shot count per execution.
    pub fn with_shots(mut self, shots: u64) -> Self {
        assert!(shots > 0, "shot count must be positive");
        self.shots = shots;
        self
    }

    /// Shots per execution.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Gate duration table.
    pub fn durations(&self) -> &DurationModel {
        &self.durations
    }

    /// The raw execution substrate.
    pub fn executor(&self) -> &E {
        &self.executor
    }

    /// Calibrates and enables measurement-error mitigation (the paper's
    /// baseline applies MEM orthogonally to everything).
    pub fn calibrate_mem(&mut self) {
        let n = self.executor.num_qubits();
        let executor = &self.executor;
        let durations = self.durations.clone();
        let shots = self.shots;
        let mitigator = MeasurementMitigator::calibrate(n, |qc| {
            let s = schedule(qc, &durations, ScheduleKind::Asap).expect("calibration circuit");
            executor.run(&s, shots, u64::MAX) // dedicated stream for calibration
        });
        self.mem = Some(mitigator);
    }

    /// Disables measurement-error mitigation (the "No-EM" comparison).
    pub fn clear_mem(&mut self) {
        self.mem = None;
    }

    /// Returns `true` when MEM is active.
    pub fn mem_enabled(&self) -> bool {
        self.mem.is_some()
    }

    /// Schedules a bound circuit ALAP (the compilation baseline).
    ///
    /// # Errors
    ///
    /// Returns an error for parameterized circuits.
    pub fn schedule(&self, circuit: &QuantumCircuit) -> Result<ScheduledCircuit, VaqemError> {
        Ok(schedule(circuit, &self.durations, ScheduleKind::Alap)?)
    }

    /// Builds one executable [`Job`] from an already-scheduled base
    /// circuit: applies `config` and stamps the backend's shot budget.
    ///
    /// This is the batching primitive: callers schedule the base circuit
    /// once (see `VqeProblem::schedule_groups`) and stamp out one cheap job
    /// per sweep point instead of re-scheduling per evaluation.
    pub fn prepare_job(
        &self,
        base: &ScheduledCircuit,
        config: &MitigationConfig,
        job_index: u64,
    ) -> Job {
        Job {
            scheduled: config.apply_under(base, &self.durations),
            shots: self.shots,
            seed: job_index,
        }
    }

    /// Builds the job for one ZNE noise scale: applies the schedule-level
    /// part of `config` (GS/DD — [`MitigationConfig::apply`] ignores the
    /// ZNE field), then folds the mitigated schedule `folds` times on its
    /// own timeline ([`vaqem_mitigation::zne::fold_schedule`]), so the
    /// amplified circuit carries the tuned mitigation structure in every
    /// segment. With `folds == 0` this is exactly [`Self::prepare_job`].
    pub fn prepare_zne_job(
        &self,
        base: &ScheduledCircuit,
        config: &MitigationConfig,
        folds: usize,
        job_index: u64,
    ) -> Job {
        let mitigated = config.apply_under(base, &self.durations);
        Job {
            scheduled: vaqem_mitigation::zne::fold_schedule(&mitigated, folds),
            shots: self.shots,
            seed: job_index,
        }
    }

    /// Runs a batch of jobs in parallel through the executor, applying MEM
    /// post-processing per job when calibrated. Results are in job order
    /// and bit-identical to running the jobs one at a time.
    pub fn run_jobs(&self, jobs: &[Job]) -> Vec<Counts> {
        self.executor
            .run_batch(jobs)
            .into_iter()
            .map(|raw| self.postprocess(raw))
            .collect()
    }

    fn postprocess(&self, raw: Counts) -> Counts {
        match &self.mem {
            Some(m) if m.num_qubits() == raw.num_qubits() => m.mitigate_counts(&raw),
            _ => raw,
        }
    }

    /// Runs a bound circuit with a mitigation configuration applied, MEM
    /// post-processing included when calibrated.
    ///
    /// `job_index` decorrelates the noise streams of repeated runs.
    ///
    /// # Errors
    ///
    /// Returns an error for parameterized circuits.
    pub fn run_with_mitigation(
        &self,
        circuit: &QuantumCircuit,
        config: &MitigationConfig,
        job_index: u64,
    ) -> Result<Counts, VaqemError> {
        let scheduled = self.schedule(circuit)?;
        let job = self.prepare_job(&scheduled, config, job_index);
        let raw = self.executor.run(&job.scheduled, job.shots, job.seed);
        Ok(self.postprocess(raw))
    }

    /// Runs without idle-time mitigation (the scheduling baseline).
    ///
    /// # Errors
    ///
    /// Returns an error for parameterized circuits.
    pub fn run(&self, circuit: &QuantumCircuit, job_index: u64) -> Result<Counts, VaqemError> {
        self.run_with_mitigation(circuit, &MitigationConfig::baseline(), job_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaqem_mitigation::dd::DdSequence;
    use vaqem_sim::exec::{DensityExecutor, StateVectorSampler};

    fn bell() -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        qc.measure_all();
        qc
    }

    #[test]
    fn run_returns_full_shot_count() {
        let backend =
            QuantumBackend::new(NoiseParameters::uniform(2), SeedStream::new(1)).with_shots(512);
        let counts = backend.run(&bell(), 0).unwrap();
        assert_eq!(counts.total(), 512);
        assert_eq!(counts.num_qubits(), 2);
    }

    #[test]
    fn mem_calibration_changes_counts() {
        let mut noise = NoiseParameters::noiseless(2);
        noise.qubit_mut(0).readout_p01 = 0.1;
        noise.qubit_mut(1).readout_p01 = 0.1;
        let mut backend = QuantumBackend::new(noise, SeedStream::new(2)).with_shots(4096);
        let raw = backend.run(&bell(), 0).unwrap();
        backend.calibrate_mem();
        assert!(backend.mem_enabled());
        let mitigated = backend.run(&bell(), 0).unwrap();
        // MEM pushes weight back onto 00/11.
        let raw_good = raw.probability("00") + raw.probability("11");
        let mit_good = mitigated.probability("00") + mitigated.probability("11");
        assert!(mit_good > raw_good, "{mit_good} vs {raw_good}");
        backend.clear_mem();
        assert!(!backend.mem_enabled());
    }

    #[test]
    fn mitigation_config_is_applied() {
        // A circuit with an idle window: DD insertion must not break
        // execution and must keep total shots.
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        for _ in 0..12 {
            qc.sx(1).unwrap();
        }
        qc.cx(0, 1).unwrap();
        qc.measure_all();
        let backend =
            QuantumBackend::new(NoiseParameters::uniform(2), SeedStream::new(3)).with_shots(256);
        let cfg = MitigationConfig::dynamical_decoupling(DdSequence::Xy4, vec![1, 1, 1, 1]);
        let counts = backend.run_with_mitigation(&qc, &cfg, 0).unwrap();
        assert_eq!(counts.total(), 256);
    }

    #[test]
    fn parameterized_circuit_rejected() {
        let mut qc = QuantumCircuit::new(1);
        qc.ry_param(0, 0).unwrap();
        let backend = QuantumBackend::new(NoiseParameters::uniform(1), SeedStream::new(4));
        assert!(backend.run(&qc, 0).is_err());
    }

    #[test]
    fn generic_backends_share_the_api() {
        // The same bound circuit runs on all three substrates behind the
        // same backend type.
        let qc = bell();
        let ideal = QuantumBackend::from_executor(StateVectorSampler::new(2, SeedStream::new(5)))
            .with_shots(1024);
        let density = QuantumBackend::from_executor(DensityExecutor::new(
            NoiseParameters::uniform(2),
            SeedStream::new(5),
        ))
        .with_shots(1024);
        let machine =
            QuantumBackend::new(NoiseParameters::uniform(2), SeedStream::new(5)).with_shots(1024);
        for counts in [
            ideal.run(&qc, 0).unwrap(),
            density.run(&qc, 0).unwrap(),
            machine.run(&qc, 0).unwrap(),
        ] {
            assert_eq!(counts.total(), 1024);
        }
        // The ideal substrate produces no odd-parity Bell outcomes.
        let i = ideal.run(&qc, 1).unwrap();
        assert_eq!(i.get("01") + i.get("10"), 0);
    }

    #[test]
    fn run_jobs_applies_mem_per_job() {
        let mut noise = NoiseParameters::noiseless(2);
        noise.qubit_mut(0).readout_p01 = 0.08;
        noise.qubit_mut(1).readout_p01 = 0.08;
        let mut backend = QuantumBackend::new(noise, SeedStream::new(6)).with_shots(2048);
        backend.calibrate_mem();
        let scheduled = backend.schedule(&bell()).unwrap();
        let jobs: Vec<Job> = (0..4)
            .map(|seed| backend.prepare_job(&scheduled, &MitigationConfig::baseline(), seed))
            .collect();
        let batched = backend.run_jobs(&jobs);
        assert_eq!(batched.len(), 4);
        for (job, counts) in jobs.iter().zip(&batched) {
            let single = backend
                .run_with_mitigation(&bell(), &MitigationConfig::baseline(), job.seed)
                .unwrap();
            assert_eq!(counts, &single, "batch vs single for seed {}", job.seed);
        }
    }
}
