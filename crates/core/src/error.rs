//! Error type for the VAQEM pipeline.

use std::error::Error;
use std::fmt;
use vaqem_circuit::error::CircuitError;

/// Errors raised by the VAQEM tuning pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VaqemError {
    /// An underlying circuit operation failed.
    Circuit(CircuitError),
    /// A benchmark or configuration was inconsistent.
    Config {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for VaqemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VaqemError::Circuit(e) => write!(f, "circuit error: {e}"),
            VaqemError::Config { message } => write!(f, "configuration error: {message}"),
        }
    }
}

impl Error for VaqemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VaqemError::Circuit(e) => Some(e),
            VaqemError::Config { .. } => None,
        }
    }
}

impl From<CircuitError> for VaqemError {
    fn from(e: CircuitError) -> Self {
        VaqemError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = VaqemError::from(CircuitError::UnboundParameter { param: 2 });
        assert!(e.to_string().contains("unbound parameter 2"));
        assert!(std::error::Error::source(&e).is_some());
        let c = VaqemError::Config {
            message: "bad".into(),
        };
        assert!(c.to_string().contains("bad"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VaqemError>();
    }
}
