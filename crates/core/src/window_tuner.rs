//! The independent per-window error-mitigation tuner (paper §VI-C).
//!
//! The paper's feasible flow tunes each idle window *independently*: sweep
//! the window's mitigation parameter (DD repetition count, or gate
//! position) while all other windows stay at baseline, measure the VQA
//! objective on the machine for every sweep point, keep the best value, and
//! finally combine the per-window optima. Independence is justified because
//! the techniques only add/move single-qubit gates, whose crosstalk is
//! minimal (§VI-C). The tuner also implements the coordinated "GS+DD" mode
//! of §VIII-A: gate positions are tuned first, then DD fills the re-derived
//! windows.
//!
//! Execution is batched: every machine interaction goes through the
//! [`crate::executor::Executor::run_batch`] path. The measurement-group
//! base circuits are ALAP-scheduled **once per tuning stage** (the
//! [`GroupSchedules`] cache) instead of once per sweep point, each window's
//! whole candidate sweep is dispatched as one parallel batch, and the
//! acceptance guard's four evaluations go out as a single batch too. Job
//! indices are allocated exactly as the sequential tuner always did, so
//! the batched tuner is seed-deterministic and chooses identical
//! configurations.

use crate::backend::QuantumBackend;
use crate::error::VaqemError;
use crate::executor::Executor;
use crate::vqe::{GroupSchedules, VqeProblem};
use vaqem_mitigation::combined::MitigationConfig;
use vaqem_mitigation::dd::{DdPass, DdSequence};
use vaqem_mitigation::scheduling::GsPass;
use vaqem_optim::sweep::{integer_candidates, position_candidates, sweep_minimize};
use vaqem_sim::machine::MachineExecutor;

/// Configuration of the per-window tuner.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowTunerConfig {
    /// Sweep points per window (paper §VI-C: resolution is resource-bound).
    pub sweep_resolution: usize,
    /// DD sequence to insert.
    pub dd_sequence: DdSequence,
    /// Cap on repetitions per window, bounding tuning cost.
    pub max_repetitions: usize,
    /// Fresh evaluations averaged per side of the acceptance guard. The
    /// guard's whole comparison ships as one `run_batch`, so raising this
    /// costs almost no wall-clock while sharply reducing the chance that
    /// shot noise lets a worse-than-baseline configuration through
    /// (paper §IX-C).
    pub guard_repeats: usize,
}

impl Default for WindowTunerConfig {
    fn default() -> Self {
        WindowTunerConfig {
            sweep_resolution: 6,
            dd_sequence: DdSequence::Xy4,
            max_repetitions: 24,
            guard_repeats: 4,
        }
    }
}

/// One window's tuning outcome — the data behind the paper's Fig. 14.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowChoice {
    /// Window index in canonical order.
    pub window: usize,
    /// Qubit the window sits on.
    pub qubit: usize,
    /// Chosen value as a fraction of the window's maximum (DD: reps/max,
    /// GS: the position fraction itself).
    pub fraction_of_max: f64,
    /// The chosen raw value (repetition count or position).
    pub value: f64,
    /// Objective at the chosen value.
    pub objective: f64,
}

/// Result of a tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedMitigation {
    /// The combined best configuration.
    pub config: MitigationConfig,
    /// Gate-position choices (empty unless GS was tuned).
    pub gs_choices: Vec<WindowChoice>,
    /// DD repetition choices (empty unless DD was tuned).
    pub dd_choices: Vec<WindowChoice>,
    /// Machine objective evaluations spent.
    pub evaluations: usize,
}

/// The VAQEM per-window tuner.
#[derive(Debug)]
pub struct WindowTuner<'a, E: Executor = MachineExecutor> {
    problem: &'a VqeProblem,
    backend: &'a QuantumBackend<E>,
    config: WindowTunerConfig,
}

impl<'a, E: Executor> WindowTuner<'a, E> {
    /// Creates a tuner for a problem on a backend.
    pub fn new(
        problem: &'a VqeProblem,
        backend: &'a QuantumBackend<E>,
        config: WindowTunerConfig,
    ) -> Self {
        WindowTuner {
            problem,
            backend,
            config,
        }
    }

    /// Canonical scheduled circuit used for window enumeration: the first
    /// measurement group's cached base schedule with `base` applied.
    fn canonical_schedule(
        &self,
        cache: &GroupSchedules,
        base: &MitigationConfig,
    ) -> Result<vaqem_circuit::schedule::ScheduledCircuit, VaqemError> {
        let first = cache
            .schedules()
            .first()
            .ok_or_else(|| VaqemError::Config {
                message: "hamiltonian has no measurement groups".into(),
            })?;
        Ok(base.apply_under(first, self.backend.durations()))
    }

    /// Averaged machine evaluation used by the acceptance guard; all
    /// repeats go out as one batch.
    fn guard_eval(&self, cache: &GroupSchedules, cfg: &MitigationConfig, job_base: u64) -> f64 {
        let r = self.config.guard_repeats.max(1) as u64;
        let evals: Vec<(MitigationConfig, u64)> =
            (0..r).map(|k| (cfg.clone(), job_base + k)).collect();
        let energies = self
            .problem
            .machine_energy_batch(self.backend, cache, &evals);
        energies.iter().sum::<f64>() / r as f64
    }

    /// Acceptance guard (paper §IX-C: destructive interference is "weeded
    /// out by the tuning logic"): keeps `tuned` only if it measures at
    /// least as well as `base` on fresh evaluations. Both sides'
    /// `guard_repeats` evaluations are dispatched as a single batch.
    fn accept_or_revert(
        &self,
        cache: &GroupSchedules,
        base: &MitigationConfig,
        tuned: MitigationConfig,
        job_base: u64,
        evaluations: &mut usize,
    ) -> MitigationConfig {
        let r = self.config.guard_repeats.max(1) as u64;
        let evals: Vec<(MitigationConfig, u64)> = (0..r)
            .map(|k| (tuned.clone(), job_base + k))
            .chain((0..r).map(|k| (base.clone(), job_base + r + k)))
            .collect();
        let energies = self
            .problem
            .machine_energy_batch(self.backend, cache, &evals);
        *evaluations += 2 * r as usize;
        let e_tuned = energies[..r as usize].iter().sum::<f64>() / r as f64;
        let e_base = energies[r as usize..].iter().sum::<f64>() / r as f64;
        if e_tuned <= e_base {
            tuned
        } else {
            base.clone()
        }
    }

    /// Tunes DD repetition counts per window (the paper's "VAQEM: XY/XX").
    ///
    /// # Errors
    ///
    /// Propagates objective-evaluation errors.
    pub fn tune_dd(&self, params: &[f64]) -> Result<TunedMitigation, VaqemError> {
        let cache = self.problem.schedule_groups(self.backend, params)?;
        self.tune_dd_on_top(&cache, &MitigationConfig::baseline())
    }

    /// Tunes gate positions per movable window (the paper's "VAQEM: GS").
    ///
    /// # Errors
    ///
    /// Propagates objective-evaluation errors.
    pub fn tune_gs(&self, params: &[f64]) -> Result<TunedMitigation, VaqemError> {
        let cache = self.problem.schedule_groups(self.backend, params)?;
        self.tune_gs_cached(&cache)
    }

    fn tune_gs_cached(&self, cache: &GroupSchedules) -> Result<TunedMitigation, VaqemError> {
        let pulse = self.backend.durations().single_qubit_ns();
        let scheduled = self.canonical_schedule(cache, &MitigationConfig::baseline())?;
        let gs = GsPass::new(pulse);
        let windows = gs.movable_windows(&scheduled);
        let n = windows.len();
        let mut positions = vec![1.0f64; n]; // ALAP baseline
        let mut choices = Vec::with_capacity(n);
        let mut evaluations = 0usize;
        let candidates = position_candidates(self.config.sweep_resolution);
        let mut job = 1u64;
        for (i, w) in windows.iter().enumerate() {
            // The window's whole sweep goes out as one parallel batch.
            let evals: Vec<(MitigationConfig, u64)> = candidates
                .iter()
                .map(|&pos| {
                    let mut trial = positions.clone();
                    trial[i] = pos;
                    evaluations += 1;
                    job += 1;
                    (MitigationConfig::gate_scheduling(trial), job)
                })
                .collect();
            let energies = self
                .problem
                .machine_energy_batch(self.backend, cache, &evals);
            let mut next_energy = energies.iter();
            let result = sweep_minimize(&candidates, |_| {
                *next_energy.next().expect("one energy per candidate")
            });
            positions[i] = result.best_candidate;
            choices.push(WindowChoice {
                window: i,
                qubit: w.qubit,
                fraction_of_max: result.best_candidate,
                value: result.best_candidate,
                objective: result.best_value,
            });
        }
        let tuned = MitigationConfig::gate_scheduling(positions);
        let config = self.accept_or_revert(
            cache,
            &MitigationConfig::baseline(),
            tuned,
            2_000_000,
            &mut evaluations,
        );
        Ok(TunedMitigation {
            config,
            gs_choices: choices,
            dd_choices: Vec::new(),
            evaluations,
        })
    }

    /// Tunes GS first, then DD on the GS-adjusted schedule — the paper's
    /// coordinated "VAQEM: GS+XY" mode.
    ///
    /// # Errors
    ///
    /// Propagates objective-evaluation errors.
    pub fn tune_combined(&self, params: &[f64]) -> Result<TunedMitigation, VaqemError> {
        let cache = self.problem.schedule_groups(self.backend, params)?;
        let gs = self.tune_gs_cached(&cache)?;
        // DD is tuned on top of the (guarded) GS configuration, and the DD
        // stage's own guard compares against that same configuration — so
        // the composed result can only improve, stage by stage.
        let dd = self.tune_dd_on_top(&cache, &gs.config)?;
        Ok(TunedMitigation {
            config: dd.config.clone(),
            gs_choices: gs.gs_choices,
            dd_choices: dd.dd_choices,
            evaluations: gs.evaluations + dd.evaluations,
        })
    }

    /// Extension (paper §IX-B): selects the best DD sequence *type* within
    /// the variational framework. Each candidate sequence is fully
    /// per-window tuned, then the guard-evaluated best is kept — "different
    /// DD sequence types can be employed in conjunction" with tuning.
    ///
    /// # Errors
    ///
    /// Propagates objective-evaluation errors.
    pub fn tune_dd_best_sequence(
        &self,
        params: &[f64],
        candidates: &[DdSequence],
    ) -> Result<(DdSequence, TunedMitigation), VaqemError> {
        assert!(!candidates.is_empty(), "at least one sequence candidate");
        let cache = self.problem.schedule_groups(self.backend, params)?;
        let mut best: Option<(DdSequence, TunedMitigation, f64)> = None;
        for (i, &seq) in candidates.iter().enumerate() {
            let tuner = WindowTuner::new(
                self.problem,
                self.backend,
                WindowTunerConfig {
                    dd_sequence: seq,
                    ..self.config.clone()
                },
            );
            let mut tuned = tuner.tune_dd_on_top(&cache, &MitigationConfig::baseline())?;
            // Candidate score streams must never overlap: stride by at
            // least the guard width (and never less than the historical
            // spacing of 10).
            let stride = (self.config.guard_repeats.max(1) as u64).max(10);
            let score = self.guard_eval(&cache, &tuned.config, 4_000_000 + stride * i as u64);
            tuned.evaluations += self.config.guard_repeats.max(1);
            match &best {
                Some((_, _, s)) if *s <= score => {}
                _ => best = Some((seq, tuned, score)),
            }
        }
        let (seq, tuned, _) = best.expect("non-empty candidates");
        Ok((seq, tuned))
    }

    fn tune_dd_on_top(
        &self,
        cache: &GroupSchedules,
        base: &MitigationConfig,
    ) -> Result<TunedMitigation, VaqemError> {
        let pulse = self.backend.durations().single_qubit_ns();
        let scheduled = self.canonical_schedule(cache, base)?;
        let dd_pass = DdPass::new(self.config.dd_sequence, pulse, pulse);
        let windows = dd_pass.windows(&scheduled);
        let n = windows.len();
        let mut reps = vec![0usize; n];
        let mut choices = Vec::with_capacity(n);
        let mut evaluations = 0usize;
        let mut job = 1_000_000u64;
        for (i, w) in windows.iter().enumerate() {
            let max = self
                .config
                .dd_sequence
                .max_repetitions(w, pulse)
                .min(self.config.max_repetitions);
            if max == 0 {
                choices.push(WindowChoice {
                    window: i,
                    qubit: w.qubit,
                    fraction_of_max: 0.0,
                    value: 0.0,
                    objective: f64::NAN,
                });
                continue;
            }
            let candidates = integer_candidates(max, self.config.sweep_resolution);
            // The window's whole sweep goes out as one parallel batch.
            let evals: Vec<(MitigationConfig, u64)> = candidates
                .iter()
                .map(|&r| {
                    let mut trial = reps.clone();
                    trial[i] = r;
                    let mut cfg = base.clone();
                    cfg.dd_repetitions = trial;
                    cfg.dd_sequence = Some(self.config.dd_sequence);
                    evaluations += 1;
                    job += 1;
                    (cfg, job)
                })
                .collect();
            let energies = self
                .problem
                .machine_energy_batch(self.backend, cache, &evals);
            let mut next_energy = energies.iter();
            let result = sweep_minimize(&candidates, |_| {
                *next_energy.next().expect("one energy per candidate")
            });
            reps[i] = result.best_candidate;
            choices.push(WindowChoice {
                window: i,
                qubit: w.qubit,
                fraction_of_max: result.best_candidate as f64 / max as f64,
                value: result.best_candidate as f64,
                objective: result.best_value,
            });
        }
        let mut tuned = base.clone();
        tuned.dd_repetitions = reps;
        tuned.dd_sequence = Some(self.config.dd_sequence);
        let config = self.accept_or_revert(cache, base, tuned, 3_000_000, &mut evaluations);
        Ok(TunedMitigation {
            config,
            gs_choices: Vec::new(),
            dd_choices: choices,
            evaluations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaqem_ansatz::su2::{EfficientSu2, Entanglement};
    use vaqem_device::noise::NoiseParameters;
    use vaqem_mathkit::rng::SeedStream;
    use vaqem_pauli::models::tfim_paper;

    fn small_problem() -> VqeProblem {
        // Linear entanglement staggers the CX chain, so the outer qubits
        // idle while the chain progresses — guaranteeing idle windows.
        let ansatz = EfficientSu2::new(3, 1, Entanglement::Linear)
            .circuit()
            .unwrap();
        VqeProblem::new("tiny", tfim_paper(3), ansatz).unwrap()
    }

    fn small_backend() -> QuantumBackend {
        QuantumBackend::new(NoiseParameters::uniform(3), SeedStream::new(21)).with_shots(128)
    }

    fn tiny_config() -> WindowTunerConfig {
        WindowTunerConfig {
            sweep_resolution: 3,
            dd_sequence: DdSequence::Xx,
            max_repetitions: 4,
            guard_repeats: 2,
        }
    }

    #[test]
    fn dd_tuning_produces_valid_config() {
        let p = small_problem();
        let b = small_backend();
        let tuner = WindowTuner::new(&p, &b, tiny_config());
        let params = vec![0.3; p.num_params()];
        let tuned = tuner.tune_dd(&params).unwrap();
        // Either the tuned DD config was accepted, or the guard reverted to
        // the baseline (both are valid outcomes under shot noise).
        if !tuned.config.is_baseline() {
            assert_eq!(tuned.config.dd_sequence, Some(DdSequence::Xx));
            assert_eq!(tuned.dd_choices.len(), tuned.config.dd_repetitions.len());
        }
        assert!(!tuned.dd_choices.is_empty(), "windows must have been swept");
        // Tuned config evaluates without error.
        let e = p.machine_energy(&b, &params, &tuned.config, 9_999).unwrap();
        assert!(e.is_finite());
    }

    #[test]
    fn tuned_objective_not_worse_than_baseline_in_sweep() {
        // Within the tuner's own evaluations, the chosen value is minimal by
        // construction; verify the invariant on the recorded choices.
        let p = small_problem();
        let b = small_backend();
        let tuner = WindowTuner::new(&p, &b, tiny_config());
        let params = vec![0.3; p.num_params()];
        let tuned = tuner.tune_dd(&params).unwrap();
        for c in &tuned.dd_choices {
            if c.objective.is_nan() {
                continue;
            }
            assert!(c.fraction_of_max >= 0.0 && c.fraction_of_max <= 1.0);
        }
        assert!(tuned.evaluations > 0);
    }

    #[test]
    fn gs_tuning_only_touches_movable_windows() {
        let p = small_problem();
        let b = small_backend();
        let tuner = WindowTuner::new(&p, &b, tiny_config());
        let params = vec![0.5; p.num_params()];
        let tuned = tuner.tune_gs(&params).unwrap();
        if !tuned.config.is_baseline() {
            assert_eq!(tuned.gs_choices.len(), tuned.config.gate_positions.len());
        }
        for c in &tuned.gs_choices {
            assert!((0.0..=1.0).contains(&c.value));
        }
    }

    #[test]
    fn sequence_selection_extension_picks_a_candidate() {
        let p = small_problem();
        let b = small_backend();
        let tuner = WindowTuner::new(&p, &b, tiny_config());
        let params = vec![0.3; p.num_params()];
        let (seq, tuned) = tuner
            .tune_dd_best_sequence(&params, &[DdSequence::Xx, DdSequence::Xy4])
            .unwrap();
        assert!(matches!(seq, DdSequence::Xx | DdSequence::Xy4));
        assert!(tuned.evaluations > 0);
        let e = p.machine_energy(&b, &params, &tuned.config, 8_888).unwrap();
        assert!(e.is_finite());
    }

    #[test]
    fn combined_tuning_composes_both() {
        let p = small_problem();
        let b = small_backend();
        let tuner = WindowTuner::new(&p, &b, tiny_config());
        let params = vec![0.4; p.num_params()];
        let tuned = tuner.tune_combined(&params).unwrap();
        assert!(tuned.evaluations > 0);
        let e = p.machine_energy(&b, &params, &tuned.config, 7_777).unwrap();
        assert!(e.is_finite());
    }

    #[test]
    fn tuner_works_on_a_non_machine_substrate() {
        // The tuner is generic over the executor: tuning against the ideal
        // sampler runs end to end (and, with no idle-time noise to
        // mitigate, the guard accepts or reverts without error).
        let p = small_problem();
        let ideal = QuantumBackend::from_executor(vaqem_sim::exec::StateVectorSampler::new(
            3,
            SeedStream::new(23),
        ))
        .with_shots(128);
        let tuner = WindowTuner::new(&p, &ideal, tiny_config());
        let params = vec![0.3; p.num_params()];
        let tuned = tuner.tune_dd(&params).unwrap();
        assert!(tuned.evaluations > 0);
    }
}
