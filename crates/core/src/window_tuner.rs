//! The independent per-window error-mitigation tuner (paper §VI-C).
//!
//! The paper's feasible flow tunes each idle window *independently*: sweep
//! the window's mitigation parameter (DD repetition count, or gate
//! position) while all other windows stay at baseline, measure the VQA
//! objective on the machine for every sweep point, keep the best value, and
//! finally combine the per-window optima. Independence is justified because
//! the techniques only add/move single-qubit gates, whose crosstalk is
//! minimal (§VI-C). The tuner also implements the coordinated "GS+DD" mode
//! of §VIII-A: gate positions are tuned first, then DD fills the re-derived
//! windows.
//!
//! Execution is batched: every machine interaction goes through the
//! [`crate::executor::Executor::run_batch`] path. The measurement-group
//! base circuits are ALAP-scheduled **once per tuning stage** (the
//! [`GroupSchedules`] cache) instead of once per sweep point, each window's
//! whole candidate sweep is dispatched as one parallel batch, and the
//! acceptance guard's four evaluations go out as a single batch too. Job
//! indices are allocated exactly as the sequential tuner always did, so
//! the batched tuner is seed-deterministic and chooses identical
//! configurations.
//!
//! # Fleet-scale warm starts
//!
//! The paper's transfer result (Fig. 8, §IX) shows tuned choices carry
//! across runs, so re-sweeping every window of every client from scratch
//! wastes the dominant machine-time cost of the flow (Fig. 15). The
//! warm-start path amortizes it: each window is summarized by a canonical
//! [`WindowFingerprint`] (idle-duration bucket, qubit noise class,
//! neighbor-activity signature), and a shared
//! [`MitigationConfigStore`] — keyed by `(device, calibration epoch,
//! fingerprint)` — carries tuned per-window choices between clients.
//! [`WindowTuner::tune_dd_warm`] / [`WindowTuner::tune_gs_warm`] adopt the
//! cached choice for every fingerprint hit (skipping that window's sweep
//! entirely) and sweep only the misses. The §IX-C acceptance guard stays
//! the correctness gate: it always runs on the assembled configuration,
//! choices enter the store only when the guard accepts, and a guard
//! rejection of a cache-seeded configuration evicts the offending entries
//! (stale-within-epoch drift). Fingerprints are pure functions of the
//! schedule and the calibration snapshot — never of job indices, sweep
//! labels, or execution order — so warm replays are seed-deterministic.

use crate::backend::QuantumBackend;
use crate::error::VaqemError;
use crate::executor::Executor;
use crate::vqe::{GroupSchedules, VqeProblem};
use vaqem_circuit::gate::Gate;
use vaqem_circuit::schedule::{IdleWindow, ScheduledCircuit};
use vaqem_device::noise::{NoiseParameters, QubitNoise};
use vaqem_mitigation::combined::MitigationConfig;
use vaqem_mitigation::dd::{DdPass, DdSequence};
use vaqem_mitigation::scheduling::GsPass;
use vaqem_mitigation::zne::{Extrapolation, ZneConfig};
use vaqem_optim::sweep::{integer_candidates, position_candidates, sweep_minimize};
use vaqem_runtime::cache::ConfigStore;
use vaqem_runtime::persist::Codec;
use vaqem_runtime::store::StoreBackend;
use vaqem_sim::machine::MachineExecutor;

/// Configuration of the per-window tuner.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowTunerConfig {
    /// Sweep points per window (paper §VI-C: resolution is resource-bound).
    pub sweep_resolution: usize,
    /// DD sequence to insert.
    pub dd_sequence: DdSequence,
    /// Cap on repetitions per window, bounding tuning cost.
    pub max_repetitions: usize,
    /// Fresh evaluations averaged per side of the acceptance guard. The
    /// guard's whole comparison ships as one `run_batch`, so raising this
    /// costs almost no wall-clock while sharply reducing the chance that
    /// shot noise lets a worse-than-baseline configuration through
    /// (paper §IX-C).
    pub guard_repeats: usize,
    /// Candidate ZNE protocols [`WindowTuner::tune_zne`] sweeps (paper
    /// §IX: scale-factor set and extrapolation model as variational
    /// knobs). The default is [`ZneConfig::tuned_candidates`], which
    /// always contains [`ZneConfig::standard`] — so a tuned sweep can
    /// never measure worse than the fixed protocol within its own batch.
    pub zne_candidates: Vec<ZneConfig>,
}

impl Default for WindowTunerConfig {
    fn default() -> Self {
        WindowTunerConfig {
            sweep_resolution: 6,
            dd_sequence: DdSequence::Xy4,
            max_repetitions: 24,
            guard_repeats: 4,
            zne_candidates: ZneConfig::tuned_candidates(),
        }
    }
}

/// One window's tuning outcome — the data behind the paper's Fig. 14.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowChoice {
    /// Window index in canonical order.
    pub window: usize,
    /// Qubit the window sits on.
    pub qubit: usize,
    /// Chosen value as a fraction of the window's maximum (DD: reps/max,
    /// GS: the position fraction itself).
    pub fraction_of_max: f64,
    /// The chosen raw value (repetition count or position).
    pub value: f64,
    /// Objective at the chosen value.
    pub objective: f64,
}

/// Result of a tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedMitigation {
    /// The combined best configuration.
    pub config: MitigationConfig,
    /// Gate-position choices (empty unless GS was tuned).
    pub gs_choices: Vec<WindowChoice>,
    /// DD repetition choices (empty unless DD was tuned).
    pub dd_choices: Vec<WindowChoice>,
    /// Machine objective evaluations spent.
    pub evaluations: usize,
    /// Of [`Self::evaluations`], how many executed **folded** (ZNE)
    /// circuits — the candidate sweep plus the guard's tuned side of a
    /// ZNE stage. Cost accounting prices these with the folded-circuit
    /// shot multiplier and the rest at plain rates (0 for DD/GS-only
    /// tuning).
    pub zne_evaluations: usize,
}

/// Which tuning family a cached choice belongs to. Part of the
/// fingerprint: a DD repetition count must never warm-start a gate
/// position (and XX counts must not seed XY4 windows). The per-window
/// families ([`TuningMode::Dd`], [`TuningMode::Gs`]) key per-window
/// choices; the circuit-level families ([`TuningMode::Zne`],
/// [`TuningMode::Composed`]) key whole-circuit
/// [`StoredChoice::Composed`] entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TuningMode {
    /// DD repetition tuning with a specific sequence type.
    Dd(DdSequence),
    /// Gate-position tuning.
    Gs,
    /// Circuit-level ZNE protocol tuning (scale-factor set +
    /// extrapolation model).
    Zne,
    /// The fully composed `(gs, dd, zne)` configuration of one circuit,
    /// tuned with the given DD sequence type.
    Composed(DdSequence),
}

/// Half-octave equivalence class of one qubit's calibration data.
///
/// Two qubits in the same class are "the same qubit" as far as tuned
/// mitigation transfer is concerned: their coherence, quasi-static
/// detuning, telegraph rate, and readout asymmetry agree to within half a
/// factor of two. Classes are quantized log2 buckets, so they are stable
/// under the small intra-epoch wander of `vaqem_device::drift` but split
/// at genuine recalibration jumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NoiseClass {
    /// T1 bucket (half-octaves of nanoseconds).
    pub t1: i16,
    /// T2 bucket.
    pub t2: i16,
    /// Quasi-static detuning sigma bucket.
    pub detuning: i16,
    /// Telegraph switching-rate bucket.
    pub telegraph: i16,
    /// Readout asymmetry bucket (`p01 + p10`).
    pub readout: i16,
}

/// Half-octave log2 bucket; non-positive values collapse to a sentinel
/// (noiseless channels all land in one class).
fn log2_class(x: f64) -> i16 {
    if x <= 0.0 {
        i16::MIN
    } else {
        (x.log2() * 2.0).round() as i16
    }
}

/// Classifies one qubit's calibration data into its [`NoiseClass`].
pub fn classify_qubit_noise(q: &QubitNoise) -> NoiseClass {
    NoiseClass {
        t1: log2_class(q.t1_ns),
        t2: log2_class(q.t2_ns),
        detuning: log2_class(q.quasi_static_sigma_rad_ns),
        telegraph: log2_class(q.telegraph_rate_per_ns),
        readout: log2_class(q.readout_p01 + q.readout_p10),
    }
}

/// Canonical fingerprint of one idle window — the fleet cache key
/// component computed from the schedule and the calibration snapshot.
///
/// Everything in here is a pure function of `(scheduled circuit,
/// calibration noise, tuner configuration)`: job indices, sweep-point
/// labels, and batched-vs-sequential execution cannot influence it, which
/// is what makes cached choices replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowFingerprint {
    /// Tuning family (and DD sequence type) the cached choice applies to.
    pub mode: TuningMode,
    /// Idle duration bucket: window length in single-qubit slots.
    pub duration_slots: u32,
    /// The window's physical qubit. Tuned optima are qubit-dependent
    /// (paper Fig. 14), and anchoring the fingerprint to the qubit makes
    /// `(qubit, ordinal)` unique within a circuit — so a warm replay can
    /// never mix up two same-shaped windows. Transfer therefore happens
    /// across circuits, clients, and time, not across qubits.
    pub qubit: u16,
    /// Ordinal of this window on its qubit's timeline (0 = earliest).
    /// Early and late windows see different crosstalk environments even
    /// when equally long.
    pub ordinal: u32,
    /// Calibration class of the window's qubit.
    pub noise_class: NoiseClass,
    /// Number of *other* qubits with gates overlapping the window.
    pub neighbors_active: u8,
    /// Of those, the number ZZ-coupled to the window's qubit.
    pub coupled_active: u8,
    /// Sweep resolution the choice was tuned at.
    pub sweep_resolution: u8,
    /// Repetition cap the choice was tuned under.
    pub max_repetitions: u8,
}

/// Active-neighbor signature of `window`: `(qubits with overlapping ops,
/// of which ZZ-coupled to the window's qubit)`.
fn neighbor_activity(
    window: &IdleWindow,
    scheduled: &ScheduledCircuit,
    noise: &NoiseParameters,
) -> (u8, u8) {
    let mut active: Vec<usize> = Vec::new();
    for op in scheduled.ops() {
        if matches!(op.gate, Gate::Barrier) {
            continue;
        }
        if op.start_ns < window.end_ns && op.end_ns() > window.start_ns {
            for &q in &op.qubits {
                if q != window.qubit && !active.contains(&q) {
                    active.push(q);
                }
            }
        }
    }
    let coupled = active
        .iter()
        .filter(|&&q| {
            noise
                .zz_couplings()
                .any(|((a, b), _)| (a == window.qubit && b == q) || (b == window.qubit && a == q))
        })
        .count();
    (active.len().min(255) as u8, coupled.min(255) as u8)
}

/// Computes the canonical fingerprint of one idle window.
///
/// `ordinal` is the window's index among its qubit's windows (callers
/// enumerate windows in the tuner's canonical `(qubit, start)` order);
/// `calibration` is the epoch's calibration snapshot — *not* the
/// instantaneous drifted noise — so fingerprints stay stable within a
/// calibration epoch.
pub fn window_fingerprint(
    mode: TuningMode,
    window: &IdleWindow,
    ordinal: usize,
    scheduled: &ScheduledCircuit,
    calibration: &NoiseParameters,
    pulse_ns: f64,
    config: &WindowTunerConfig,
) -> WindowFingerprint {
    let (neighbors_active, coupled_active) = neighbor_activity(window, scheduled, calibration);
    WindowFingerprint {
        mode,
        duration_slots: (window.duration_ns() / pulse_ns).round().max(0.0) as u32,
        qubit: window.qubit.min(u16::MAX as usize) as u16,
        ordinal: ordinal.min(u32::MAX as usize) as u32,
        noise_class: classify_qubit_noise(calibration.qubit(window.qubit)),
        neighbors_active,
        coupled_active,
        sweep_resolution: config.sweep_resolution.min(255) as u8,
        max_repetitions: config.max_repetitions.min(255) as u8,
    }
}

/// Computes the canonical **circuit-level** fingerprint of a scheduled
/// circuit — the cache key for whole-circuit choices ([`TuningMode::Zne`]
/// protocols and [`TuningMode::Composed`] configurations).
///
/// The per-window fields are reinterpreted at circuit granularity:
/// `duration_slots` is the schedule makespan, `qubit` the circuit width,
/// `ordinal` the idle-window count, `noise_class` the element-wise
/// worst-case class over every qubit (so a recalibration jump on *any*
/// qubit splits the class), and the activity pair is `(width, ZZ-coupled
/// pair count)`. Like window fingerprints it is a pure function of
/// `(baseline schedule, calibration snapshot, tuner configuration)` —
/// callers always fingerprint the *unmitigated* canonical schedule, so
/// the key never depends on which composition is being tuned on top.
pub fn circuit_fingerprint(
    mode: TuningMode,
    scheduled: &ScheduledCircuit,
    calibration: &NoiseParameters,
    pulse_ns: f64,
    config: &WindowTunerConfig,
) -> WindowFingerprint {
    let mut worst = classify_qubit_noise(calibration.qubit(0));
    for q in 1..scheduled.num_qubits() {
        let c = classify_qubit_noise(calibration.qubit(q));
        worst.t1 = worst.t1.min(c.t1);
        worst.t2 = worst.t2.min(c.t2);
        worst.detuning = worst.detuning.min(c.detuning);
        worst.telegraph = worst.telegraph.min(c.telegraph);
        worst.readout = worst.readout.min(c.readout);
    }
    let coupled = calibration.zz_couplings().count();
    WindowFingerprint {
        mode,
        duration_slots: (scheduled.total_ns() / pulse_ns).round().max(0.0) as u32,
        qubit: scheduled.num_qubits().min(u16::MAX as usize) as u16,
        ordinal: scheduled
            .idle_windows(pulse_ns)
            .len()
            .min(u32::MAX as usize) as u32,
        noise_class: worst,
        neighbors_active: scheduled.num_qubits().min(255) as u8,
        coupled_active: coupled.min(255) as u8,
        sweep_resolution: config.sweep_resolution.min(255) as u8,
        max_repetitions: config.max_repetitions.min(255) as u8,
    }
}

/// One guard-validated per-window choice, as stored in the fleet cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedChoice {
    /// Chosen value as a fraction of the window's maximum (DD) or the
    /// position fraction itself (GS).
    pub fraction_of_max: f64,
    /// The chosen raw value (repetition count or position).
    pub value: f64,
    /// Objective measured at the choice when it was tuned.
    pub objective: f64,
}

/// A guard-validated **whole-circuit** configuration, as stored in the
/// fleet cache under a circuit-level fingerprint ([`TuningMode::Zne`],
/// [`TuningMode::Composed`]) — the ROADMAP's "cache composed configs, not
/// just per-stage picks" follow-on. It is the persistable mirror of a
/// [`MitigationConfig`] plus the objective it was tuned at.
#[derive(Debug, Clone, PartialEq)]
pub struct ComposedChoice {
    /// Per-movable-window gate positions (empty = ALAP baseline).
    pub gate_positions: Vec<f64>,
    /// DD sequence type, when DD is part of the composition.
    pub dd_sequence: Option<DdSequence>,
    /// Per-window DD repetition counts (empty = no DD).
    pub dd_repetitions: Vec<u32>,
    /// ZNE protocol, when ZNE is part of the composition.
    pub zne: Option<ZneConfig>,
    /// Objective measured when the composition was tuned (`NaN` when the
    /// final stage adopted a guard-reverted partial composition).
    pub objective: f64,
}

impl ComposedChoice {
    /// Captures a tuned configuration for the cache.
    pub fn from_config(config: &MitigationConfig, objective: f64) -> Self {
        ComposedChoice {
            gate_positions: config.gate_positions.clone(),
            dd_sequence: config.dd_sequence,
            dd_repetitions: config
                .dd_repetitions
                .iter()
                .map(|&r| r.min(u32::MAX as usize) as u32)
                .collect(),
            zne: config.zne.clone(),
            objective,
        }
    }

    /// Reassembles the executable configuration.
    pub fn to_config(&self) -> MitigationConfig {
        MitigationConfig {
            gate_positions: self.gate_positions.clone(),
            dd_repetitions: self.dd_repetitions.iter().map(|&r| r as usize).collect(),
            dd_sequence: self.dd_sequence,
            zne: self.zne.clone(),
        }
    }
}

/// What the fleet store maps a fingerprint to: per-window fingerprints
/// carry [`StoredChoice::Window`] entries, circuit-level fingerprints
/// carry [`StoredChoice::Composed`] entries. The fingerprint's
/// [`TuningMode`] decides which variant a publisher writes; readers treat
/// a variant mismatch as a miss.
#[derive(Debug, Clone, PartialEq)]
pub enum StoredChoice {
    /// A per-window DD/GS choice.
    Window(CachedChoice),
    /// A whole-circuit composed `(gs, dd, zne)` configuration.
    Composed(ComposedChoice),
}

// --- persistence codec -------------------------------------------------
//
// The byte encodings that let `vaqem_runtime::persist::DurableStore`
// carry fingerprints and choices across process restarts. They live here
// (not in the runtime crate) because of the orphan rule: core owns the
// types. `DdSequence` belongs to vaqem-mitigation, so its tag is encoded
// inline rather than via a foreign `Codec` impl.

fn dd_sequence_tag(seq: DdSequence) -> u8 {
    match seq {
        DdSequence::Xx => 0,
        DdSequence::Yy => 1,
        DdSequence::Xy4 => 2,
        DdSequence::Xy8 => 3,
    }
}

fn dd_sequence_from_tag(tag: u8) -> Option<DdSequence> {
    Some(match tag {
        0 => DdSequence::Xx,
        1 => DdSequence::Yy,
        2 => DdSequence::Xy4,
        3 => DdSequence::Xy8,
        _ => return None,
    })
}

impl Codec for TuningMode {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TuningMode::Gs => out.push(0),
            TuningMode::Dd(seq) => {
                out.push(1);
                out.push(dd_sequence_tag(*seq));
            }
            TuningMode::Zne => out.push(2),
            TuningMode::Composed(seq) => {
                out.push(3);
                out.push(dd_sequence_tag(*seq));
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(TuningMode::Gs),
            1 => Some(TuningMode::Dd(dd_sequence_from_tag(u8::decode(input)?)?)),
            2 => Some(TuningMode::Zne),
            3 => Some(TuningMode::Composed(dd_sequence_from_tag(u8::decode(
                input,
            )?)?)),
            _ => None,
        }
    }
}

// `ZneConfig` belongs to vaqem-mitigation and `Codec` to vaqem-runtime,
// so (like `DdSequence` above) its encoding lives inline here rather
// than as a foreign trait impl.

fn extrapolation_tag(e: Extrapolation) -> (u8, u8) {
    match e {
        Extrapolation::Richardson { order } => (0, order),
        Extrapolation::Exponential => (1, 0),
    }
}

fn encode_zne(zne: &ZneConfig, out: &mut Vec<u8>) {
    (zne.folds.len() as u32).encode(out);
    out.extend_from_slice(&zne.folds);
    let (tag, order) = extrapolation_tag(zne.extrapolation);
    out.push(tag);
    out.push(order);
}

fn decode_zne(input: &mut &[u8]) -> Option<ZneConfig> {
    let len = u32::decode(input)? as usize;
    let folds = vaqem_runtime::persist::take(input, len)?.to_vec();
    let extrapolation = match u8::decode(input)? {
        0 => Extrapolation::Richardson {
            order: u8::decode(input)?,
        },
        1 => {
            let _ = u8::decode(input)?;
            Extrapolation::Exponential
        }
        _ => return None,
    };
    // Enforce the full ZneConfig invariant here so malformed persisted
    // bytes fail the decode cleanly (Codec contract) instead of producing
    // a protocol that panics at extrapolation time: ≥ 2 scales, all
    // distinct.
    if folds.len() < 2 {
        return None;
    }
    for (i, a) in folds.iter().enumerate() {
        if folds[..i].contains(a) {
            return None;
        }
    }
    Some(ZneConfig {
        folds,
        extrapolation,
    })
}

impl Codec for ComposedChoice {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.gate_positions.len() as u32).encode(out);
        for p in &self.gate_positions {
            p.encode(out);
        }
        match self.dd_sequence {
            None => out.push(0),
            Some(seq) => {
                out.push(1);
                out.push(dd_sequence_tag(seq));
            }
        }
        (self.dd_repetitions.len() as u32).encode(out);
        for r in &self.dd_repetitions {
            r.encode(out);
        }
        match &self.zne {
            None => out.push(0),
            Some(z) => {
                out.push(1);
                encode_zne(z, out);
            }
        }
        self.objective.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let n = u32::decode(input)? as usize;
        let mut gate_positions = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            gate_positions.push(f64::decode(input)?);
        }
        let dd_sequence = match u8::decode(input)? {
            0 => None,
            1 => Some(dd_sequence_from_tag(u8::decode(input)?)?),
            _ => return None,
        };
        let n = u32::decode(input)? as usize;
        let mut dd_repetitions = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            dd_repetitions.push(u32::decode(input)?);
        }
        let zne = match u8::decode(input)? {
            0 => None,
            1 => Some(decode_zne(input)?),
            _ => return None,
        };
        Some(ComposedChoice {
            gate_positions,
            dd_sequence,
            dd_repetitions,
            zne,
            objective: f64::decode(input)?,
        })
    }
}

const STORED_WINDOW_TAG: u8 = 0;
const STORED_COMPOSED_TAG: u8 = 1;

impl Codec for StoredChoice {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            StoredChoice::Window(c) => {
                out.push(STORED_WINDOW_TAG);
                c.encode(out);
            }
            StoredChoice::Composed(c) => {
                out.push(STORED_COMPOSED_TAG);
                c.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            STORED_WINDOW_TAG => Some(StoredChoice::Window(CachedChoice::decode(input)?)),
            STORED_COMPOSED_TAG => Some(StoredChoice::Composed(ComposedChoice::decode(input)?)),
            _ => None,
        }
    }

    /// Format-version-1 snapshots and journals (pre-ZNE) stored bare,
    /// untagged [`CachedChoice`] bytes: decode those as
    /// [`StoredChoice::Window`] so a fleet's persisted tuning capital
    /// survives the upgrade.
    fn decode_versioned(input: &mut &[u8], version: u32) -> Option<Self> {
        if version <= 1 {
            CachedChoice::decode(input).map(StoredChoice::Window)
        } else {
            Self::decode(input)
        }
    }
}

impl Codec for NoiseClass {
    fn encode(&self, out: &mut Vec<u8>) {
        self.t1.encode(out);
        self.t2.encode(out);
        self.detuning.encode(out);
        self.telegraph.encode(out);
        self.readout.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(NoiseClass {
            t1: i16::decode(input)?,
            t2: i16::decode(input)?,
            detuning: i16::decode(input)?,
            telegraph: i16::decode(input)?,
            readout: i16::decode(input)?,
        })
    }
}

impl Codec for WindowFingerprint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.mode.encode(out);
        self.duration_slots.encode(out);
        self.qubit.encode(out);
        self.ordinal.encode(out);
        self.noise_class.encode(out);
        self.neighbors_active.encode(out);
        self.coupled_active.encode(out);
        self.sweep_resolution.encode(out);
        self.max_repetitions.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(WindowFingerprint {
            mode: TuningMode::decode(input)?,
            duration_slots: u32::decode(input)?,
            qubit: u16::decode(input)?,
            ordinal: u32::decode(input)?,
            noise_class: NoiseClass::decode(input)?,
            neighbors_active: u8::decode(input)?,
            coupled_active: u8::decode(input)?,
            sweep_resolution: u8::decode(input)?,
            max_repetitions: u8::decode(input)?,
        })
    }
}

impl Codec for CachedChoice {
    fn encode(&self, out: &mut Vec<u8>) {
        self.fraction_of_max.encode(out);
        self.value.encode(out);
        self.objective.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(CachedChoice {
            fraction_of_max: f64::decode(input)?,
            value: f64::decode(input)?,
            objective: f64::decode(input)?,
        })
    }
}

/// The concrete fleet store: fingerprints to guard-validated
/// [`StoredChoice`]s — per-window picks and whole-circuit composed
/// configs side by side — keyed by `(device, calibration epoch,
/// fingerprint)` with LRU eviction and hit/miss metrics (see
/// `vaqem_runtime::cache`).
pub type MitigationConfigStore = ConfigStore<WindowFingerprint, StoredChoice>;

/// The store interface a warm-started tuning session requires — any
/// `vaqem_runtime::store::StoreBackend` over window fingerprints and
/// stored choices: the single-owner [`MitigationConfigStore`], a
/// `ShardedStore` (or an `Arc` of one) shared by concurrent clients, or
/// an `Arc<DurableStore>` that survives restarts.
pub trait MitigationStoreBackend: StoreBackend<WindowFingerprint, StoredChoice> {}
impl<S: StoreBackend<WindowFingerprint, StoredChoice>> MitigationStoreBackend for S {}

/// One client's view of the shared fleet cache during a tuning run: the
/// store, the device identity, the calibration epoch, and the epoch's
/// calibration snapshot used to classify qubits.
///
/// Generic over the store backend `S` (default: the single-owner
/// [`MitigationConfigStore`], so deterministic replays read as before).
/// Fleet daemons hand each worker an `Arc` of a shared sharded or
/// durable store instead.
#[derive(Debug)]
pub struct FleetCacheSession<'a, S: MitigationStoreBackend = MitigationConfigStore> {
    /// The shared config store.
    pub store: &'a mut S,
    /// Device the client is tuning on (cache key component).
    pub device: &'a str,
    /// Calibration epoch (cache key component; see
    /// `vaqem_device::drift::DriftModel::epoch_at`).
    pub epoch: u64,
    /// The epoch's calibration snapshot, used for noise classification.
    pub calibration: &'a NoiseParameters,
}

/// Applies a stage's guard verdict to the store: accepted runs publish
/// their freshly swept choices; rejected runs evict the cached entries
/// that seeded them (stale within their epoch).
fn reconcile_store<S: MitigationStoreBackend>(
    s: &mut FleetCacheSession<'_, S>,
    accepted: bool,
    pending: Vec<(WindowFingerprint, CachedChoice)>,
    seeded: &[WindowFingerprint],
) {
    if accepted {
        for (fp, choice) in pending {
            s.store
                .publish(s.device, s.epoch, fp, StoredChoice::Window(choice));
        }
    } else {
        for fp in seeded {
            s.store.discard(s.device, s.epoch, fp);
        }
    }
}

/// Cache interaction counters of one warm-started tuning stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmStats {
    /// Windows whose sweep was skipped in favour of a cached choice.
    pub hits: usize,
    /// Windows swept in full (and offered to the store on acceptance).
    pub misses: usize,
    /// Whether the acceptance guard rejected the assembled configuration
    /// (the tuner then reverts to the base config and evicts the cache
    /// entries that seeded it). For multi-stage runs
    /// ([`WindowTuner::tune_combined_warm`]) this is `true` when *any*
    /// stage's guard rejected.
    pub guard_rejected: bool,
}

impl WarmStats {
    fn absorb(&mut self, other: WarmStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.guard_rejected |= other.guard_rejected;
    }
}

/// Result of a warm-started tuning run: the tuned mitigation plus the
/// cache interaction counters.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmTuneReport {
    /// The tuning outcome (guard-validated, like the cold path's).
    pub tuned: TunedMitigation,
    /// Hit/miss/guard counters for this run.
    pub stats: WarmStats,
}

/// The VAQEM per-window tuner.
#[derive(Debug)]
pub struct WindowTuner<'a, E: Executor = MachineExecutor> {
    problem: &'a VqeProblem,
    backend: &'a QuantumBackend<E>,
    config: WindowTunerConfig,
}

impl<'a, E: Executor> WindowTuner<'a, E> {
    /// Creates a tuner for a problem on a backend.
    pub fn new(
        problem: &'a VqeProblem,
        backend: &'a QuantumBackend<E>,
        config: WindowTunerConfig,
    ) -> Self {
        WindowTuner {
            problem,
            backend,
            config,
        }
    }

    /// Canonical scheduled circuit used for window enumeration: the first
    /// measurement group's cached base schedule with `base` applied.
    fn canonical_schedule(
        &self,
        cache: &GroupSchedules,
        base: &MitigationConfig,
    ) -> Result<vaqem_circuit::schedule::ScheduledCircuit, VaqemError> {
        let first = cache
            .schedules()
            .first()
            .ok_or_else(|| VaqemError::Config {
                message: "hamiltonian has no measurement groups".into(),
            })?;
        Ok(base.apply_under(first, self.backend.durations()))
    }

    /// Averaged machine evaluation used by the acceptance guard; all
    /// repeats go out as one batch.
    fn guard_eval(&self, cache: &GroupSchedules, cfg: &MitigationConfig, job_base: u64) -> f64 {
        let r = self.config.guard_repeats.max(1) as u64;
        let evals: Vec<(MitigationConfig, u64)> =
            (0..r).map(|k| (cfg.clone(), job_base + k)).collect();
        let energies = self
            .problem
            .machine_energy_batch(self.backend, cache, &evals);
        energies.iter().sum::<f64>() / r as f64
    }

    /// Acceptance guard (paper §IX-C: destructive interference is "weeded
    /// out by the tuning logic"): keeps `tuned` only if it measures at
    /// least as well as `base` on fresh evaluations. Both sides'
    /// `guard_repeats` evaluations are dispatched as a single batch.
    /// Returns the surviving config and whether `tuned` was accepted.
    fn accept_or_revert(
        &self,
        cache: &GroupSchedules,
        base: &MitigationConfig,
        tuned: MitigationConfig,
        job_base: u64,
        evaluations: &mut usize,
    ) -> (MitigationConfig, bool) {
        let r = self.config.guard_repeats.max(1) as u64;
        let evals: Vec<(MitigationConfig, u64)> = (0..r)
            .map(|k| (tuned.clone(), job_base + k))
            .chain((0..r).map(|k| (base.clone(), job_base + r + k)))
            .collect();
        let energies = self
            .problem
            .machine_energy_batch(self.backend, cache, &evals);
        *evaluations += 2 * r as usize;
        let e_tuned = energies[..r as usize].iter().sum::<f64>() / r as f64;
        let e_base = energies[r as usize..].iter().sum::<f64>() / r as f64;
        if e_tuned <= e_base {
            (tuned, true)
        } else {
            (base.clone(), false)
        }
    }

    /// Tunes DD repetition counts per window (the paper's "VAQEM: XY/XX").
    ///
    /// # Errors
    ///
    /// Propagates objective-evaluation errors.
    pub fn tune_dd(&self, params: &[f64]) -> Result<TunedMitigation, VaqemError> {
        let cache = self.problem.schedule_groups(self.backend, params)?;
        self.tune_dd_on_top(&cache, &MitigationConfig::baseline())
    }

    /// Tunes gate positions per movable window (the paper's "VAQEM: GS").
    ///
    /// # Errors
    ///
    /// Propagates objective-evaluation errors.
    pub fn tune_gs(&self, params: &[f64]) -> Result<TunedMitigation, VaqemError> {
        let cache = self.problem.schedule_groups(self.backend, params)?;
        self.tune_gs_cached(&cache)
    }

    fn tune_gs_cached(&self, cache: &GroupSchedules) -> Result<TunedMitigation, VaqemError> {
        Ok(self.tune_gs_impl::<MitigationConfigStore>(cache, None)?.0)
    }

    /// GS tuning with an optional fleet-cache session. With a session,
    /// windows whose fingerprint hits adopt the cached position without
    /// sweeping; misses sweep in full. The acceptance guard always runs;
    /// swept choices enter the store only on acceptance, and a rejection
    /// evicts the entries that seeded the run.
    fn tune_gs_impl<S: MitigationStoreBackend>(
        &self,
        cache: &GroupSchedules,
        mut session: Option<&mut FleetCacheSession<'_, S>>,
    ) -> Result<(TunedMitigation, WarmStats), VaqemError> {
        let pulse = self.backend.durations().single_qubit_ns();
        let scheduled = self.canonical_schedule(cache, &MitigationConfig::baseline())?;
        let gs = GsPass::new(pulse);
        let windows = gs.movable_windows(&scheduled);
        let n = windows.len();
        let mut positions = vec![1.0f64; n]; // ALAP baseline
        let mut choices = Vec::with_capacity(n);
        let mut evaluations = 0usize;
        let mut stats = WarmStats::default();
        let mut pending: Vec<(WindowFingerprint, CachedChoice)> = Vec::new();
        let mut seeded: Vec<WindowFingerprint> = Vec::new();
        let candidates = position_candidates(self.config.sweep_resolution);
        let mut job = 1u64;
        for (i, w) in windows.iter().enumerate() {
            let fingerprint = session.as_deref_mut().map(|s| {
                let ordinal = windows[..i].iter().filter(|v| v.qubit == w.qubit).count();
                window_fingerprint(
                    TuningMode::Gs,
                    w,
                    ordinal,
                    &scheduled,
                    s.calibration,
                    pulse,
                    &self.config,
                )
            });
            if let (Some(fp), Some(s)) = (fingerprint, session.as_deref_mut()) {
                if let Some(StoredChoice::Window(cached)) = s.store.lookup(s.device, s.epoch, &fp) {
                    positions[i] = cached.value.clamp(0.0, 1.0);
                    choices.push(WindowChoice {
                        window: i,
                        qubit: w.qubit,
                        fraction_of_max: positions[i],
                        value: positions[i],
                        objective: cached.objective,
                    });
                    stats.hits += 1;
                    seeded.push(fp);
                    continue;
                }
                stats.misses += 1;
            }
            // The window's whole sweep goes out as one parallel batch.
            let evals: Vec<(MitigationConfig, u64)> = candidates
                .iter()
                .map(|&pos| {
                    let mut trial = positions.clone();
                    trial[i] = pos;
                    evaluations += 1;
                    job += 1;
                    (MitigationConfig::gate_scheduling(trial), job)
                })
                .collect();
            let energies = self
                .problem
                .machine_energy_batch(self.backend, cache, &evals);
            let mut next_energy = energies.iter();
            let result = sweep_minimize(&candidates, |_| {
                *next_energy.next().expect("one energy per candidate")
            });
            positions[i] = result.best_candidate;
            if let Some(fp) = fingerprint {
                pending.push((
                    fp,
                    CachedChoice {
                        fraction_of_max: result.best_candidate,
                        value: result.best_candidate,
                        objective: result.best_value,
                    },
                ));
            }
            choices.push(WindowChoice {
                window: i,
                qubit: w.qubit,
                fraction_of_max: result.best_candidate,
                value: result.best_candidate,
                objective: result.best_value,
            });
        }
        let tuned = MitigationConfig::gate_scheduling(positions);
        let (config, accepted) = self.accept_or_revert(
            cache,
            &MitigationConfig::baseline(),
            tuned,
            2_000_000,
            &mut evaluations,
        );
        stats.guard_rejected = !accepted;
        if let Some(s) = session {
            reconcile_store(s, accepted, pending, &seeded);
        }
        Ok((
            TunedMitigation {
                config,
                gs_choices: choices,
                dd_choices: Vec::new(),
                evaluations,
                zne_evaluations: 0,
            },
            stats,
        ))
    }

    /// Tunes GS first, then DD on the GS-adjusted schedule — the paper's
    /// coordinated "VAQEM: GS+XY" mode.
    ///
    /// # Errors
    ///
    /// Propagates objective-evaluation errors.
    pub fn tune_combined(&self, params: &[f64]) -> Result<TunedMitigation, VaqemError> {
        let cache = self.problem.schedule_groups(self.backend, params)?;
        let gs = self.tune_gs_cached(&cache)?;
        // DD is tuned on top of the (guarded) GS configuration, and the DD
        // stage's own guard compares against that same configuration — so
        // the composed result can only improve, stage by stage.
        let dd = self.tune_dd_on_top(&cache, &gs.config)?;
        Ok(TunedMitigation {
            config: dd.config.clone(),
            gs_choices: gs.gs_choices,
            dd_choices: dd.dd_choices,
            evaluations: gs.evaluations + dd.evaluations,
            zne_evaluations: 0,
        })
    }

    /// Extension (paper §IX-B): selects the best DD sequence *type* within
    /// the variational framework. Each candidate sequence is fully
    /// per-window tuned, then the guard-evaluated best is kept — "different
    /// DD sequence types can be employed in conjunction" with tuning.
    ///
    /// # Errors
    ///
    /// Propagates objective-evaluation errors.
    pub fn tune_dd_best_sequence(
        &self,
        params: &[f64],
        candidates: &[DdSequence],
    ) -> Result<(DdSequence, TunedMitigation), VaqemError> {
        assert!(!candidates.is_empty(), "at least one sequence candidate");
        let cache = self.problem.schedule_groups(self.backend, params)?;
        let mut best: Option<(DdSequence, TunedMitigation, f64)> = None;
        for (i, &seq) in candidates.iter().enumerate() {
            let tuner = WindowTuner::new(
                self.problem,
                self.backend,
                WindowTunerConfig {
                    dd_sequence: seq,
                    ..self.config.clone()
                },
            );
            let mut tuned = tuner.tune_dd_on_top(&cache, &MitigationConfig::baseline())?;
            // Candidate score streams must never overlap: stride by at
            // least the guard width (and never less than the historical
            // spacing of 10).
            let stride = (self.config.guard_repeats.max(1) as u64).max(10);
            let score = self.guard_eval(&cache, &tuned.config, 4_000_000 + stride * i as u64);
            tuned.evaluations += self.config.guard_repeats.max(1);
            match &best {
                Some((_, _, s)) if *s <= score => {}
                _ => best = Some((seq, tuned, score)),
            }
        }
        let (seq, tuned, _) = best.expect("non-empty candidates");
        Ok((seq, tuned))
    }

    fn tune_dd_on_top(
        &self,
        cache: &GroupSchedules,
        base: &MitigationConfig,
    ) -> Result<TunedMitigation, VaqemError> {
        Ok(self
            .tune_dd_on_top_impl::<MitigationConfigStore>(cache, base, None)?
            .0)
    }

    /// DD tuning with an optional fleet-cache session — see
    /// [`Self::tune_gs_impl`] for the warm-start contract.
    fn tune_dd_on_top_impl<S: MitigationStoreBackend>(
        &self,
        cache: &GroupSchedules,
        base: &MitigationConfig,
        mut session: Option<&mut FleetCacheSession<'_, S>>,
    ) -> Result<(TunedMitigation, WarmStats), VaqemError> {
        let pulse = self.backend.durations().single_qubit_ns();
        let scheduled = self.canonical_schedule(cache, base)?;
        let dd_pass = DdPass::new(self.config.dd_sequence, pulse, pulse);
        let windows = dd_pass.windows(&scheduled);
        let n = windows.len();
        let mut reps = vec![0usize; n];
        let mut choices = Vec::with_capacity(n);
        let mut evaluations = 0usize;
        let mut stats = WarmStats::default();
        let mut pending: Vec<(WindowFingerprint, CachedChoice)> = Vec::new();
        let mut seeded: Vec<WindowFingerprint> = Vec::new();
        let mut job = 1_000_000u64;
        for (i, w) in windows.iter().enumerate() {
            let max = self
                .config
                .dd_sequence
                .max_repetitions(w, pulse)
                .min(self.config.max_repetitions);
            if max == 0 {
                choices.push(WindowChoice {
                    window: i,
                    qubit: w.qubit,
                    fraction_of_max: 0.0,
                    value: 0.0,
                    objective: f64::NAN,
                });
                continue;
            }
            let fingerprint = session.as_deref_mut().map(|s| {
                let ordinal = windows[..i].iter().filter(|v| v.qubit == w.qubit).count();
                window_fingerprint(
                    TuningMode::Dd(self.config.dd_sequence),
                    w,
                    ordinal,
                    &scheduled,
                    s.calibration,
                    pulse,
                    &self.config,
                )
            });
            if let (Some(fp), Some(s)) = (fingerprint, session.as_deref_mut()) {
                if let Some(StoredChoice::Window(cached)) = s.store.lookup(s.device, s.epoch, &fp) {
                    // An identical window replays the exact repetition
                    // count; a same-class window with a different cap
                    // rescales by the cached fraction.
                    let replay = cached.value.round().max(0.0) as usize;
                    reps[i] = if replay <= max {
                        replay
                    } else {
                        ((cached.fraction_of_max * max as f64).round() as usize).min(max)
                    };
                    choices.push(WindowChoice {
                        window: i,
                        qubit: w.qubit,
                        fraction_of_max: reps[i] as f64 / max as f64,
                        value: reps[i] as f64,
                        objective: cached.objective,
                    });
                    stats.hits += 1;
                    seeded.push(fp);
                    continue;
                }
                stats.misses += 1;
            }
            let candidates = integer_candidates(max, self.config.sweep_resolution);
            // The window's whole sweep goes out as one parallel batch.
            let evals: Vec<(MitigationConfig, u64)> = candidates
                .iter()
                .map(|&r| {
                    let mut trial = reps.clone();
                    trial[i] = r;
                    let mut cfg = base.clone();
                    cfg.dd_repetitions = trial;
                    cfg.dd_sequence = Some(self.config.dd_sequence);
                    evaluations += 1;
                    job += 1;
                    (cfg, job)
                })
                .collect();
            let energies = self
                .problem
                .machine_energy_batch(self.backend, cache, &evals);
            let mut next_energy = energies.iter();
            let result = sweep_minimize(&candidates, |_| {
                *next_energy.next().expect("one energy per candidate")
            });
            reps[i] = result.best_candidate;
            if let Some(fp) = fingerprint {
                pending.push((
                    fp,
                    CachedChoice {
                        fraction_of_max: result.best_candidate as f64 / max as f64,
                        value: result.best_candidate as f64,
                        objective: result.best_value,
                    },
                ));
            }
            choices.push(WindowChoice {
                window: i,
                qubit: w.qubit,
                fraction_of_max: result.best_candidate as f64 / max as f64,
                value: result.best_candidate as f64,
                objective: result.best_value,
            });
        }
        let mut tuned = base.clone();
        tuned.dd_repetitions = reps;
        tuned.dd_sequence = Some(self.config.dd_sequence);
        let (config, accepted) =
            self.accept_or_revert(cache, base, tuned, 3_000_000, &mut evaluations);
        stats.guard_rejected = !accepted;
        if let Some(s) = session {
            reconcile_store(s, accepted, pending, &seeded);
        }
        Ok((
            TunedMitigation {
                config,
                gs_choices: Vec::new(),
                dd_choices: choices,
                evaluations,
                zne_evaluations: 0,
            },
            stats,
        ))
    }

    /// Warm-started DD tuning against the fleet cache: fingerprint hits
    /// adopt the cached repetition count without sweeping, misses sweep in
    /// full, and the §IX-C acceptance guard gates the assembled
    /// configuration exactly as in [`Self::tune_dd`]. Guard-accepted swept
    /// choices are published to the store; a rejection evicts the entries
    /// that seeded the run.
    ///
    /// With every window hitting entries recorded by a cold run under the
    /// same root seed, the warm result is identical to the cold result —
    /// the guard evaluations consume the same job indices — while spending
    /// only the guard's evaluations.
    ///
    /// # Errors
    ///
    /// Propagates objective-evaluation errors.
    pub fn tune_dd_warm<S: MitigationStoreBackend>(
        &self,
        params: &[f64],
        session: &mut FleetCacheSession<'_, S>,
    ) -> Result<WarmTuneReport, VaqemError> {
        let cache = self.problem.schedule_groups(self.backend, params)?;
        let (tuned, stats) =
            self.tune_dd_on_top_impl(&cache, &MitigationConfig::baseline(), Some(session))?;
        Ok(WarmTuneReport { tuned, stats })
    }

    /// Warm-started GS tuning — the gate-position counterpart of
    /// [`Self::tune_dd_warm`].
    ///
    /// # Errors
    ///
    /// Propagates objective-evaluation errors.
    pub fn tune_gs_warm<S: MitigationStoreBackend>(
        &self,
        params: &[f64],
        session: &mut FleetCacheSession<'_, S>,
    ) -> Result<WarmTuneReport, VaqemError> {
        let cache = self.problem.schedule_groups(self.backend, params)?;
        let (tuned, stats) = self.tune_gs_impl(&cache, Some(session))?;
        Ok(WarmTuneReport { tuned, stats })
    }

    /// Warm-started GS-then-DD tuning — the coordinated "VAQEM: GS+XY"
    /// mode of [`Self::tune_combined`] against the fleet cache. Both
    /// stages share the session; stats are summed.
    ///
    /// # Errors
    ///
    /// Propagates objective-evaluation errors.
    pub fn tune_combined_warm<S: MitigationStoreBackend>(
        &self,
        params: &[f64],
        session: &mut FleetCacheSession<'_, S>,
    ) -> Result<WarmTuneReport, VaqemError> {
        let cache = self.problem.schedule_groups(self.backend, params)?;
        let (gs, mut stats) = self.tune_gs_impl(&cache, Some(session))?;
        let (dd, dd_stats) = self.tune_dd_on_top_impl(&cache, &gs.config, Some(session))?;
        stats.absorb(dd_stats);
        Ok(WarmTuneReport {
            tuned: TunedMitigation {
                config: dd.config.clone(),
                gs_choices: gs.gs_choices,
                dd_choices: dd.dd_choices,
                evaluations: gs.evaluations + dd.evaluations,
                zne_evaluations: 0,
            },
            stats,
        })
    }

    /// Tunes the ZNE protocol on the untuned baseline (paper §IX): every
    /// candidate in [`WindowTunerConfig::zne_candidates`] is evaluated in
    /// one batch, the best extrapolated objective wins, and the §IX-C
    /// acceptance guard keeps the winner only if it measures at least as
    /// well as the un-extrapolated baseline on fresh evaluations.
    ///
    /// # Errors
    ///
    /// Propagates objective-evaluation errors.
    pub fn tune_zne(&self, params: &[f64]) -> Result<TunedMitigation, VaqemError> {
        let cache = self.problem.schedule_groups(self.backend, params)?;
        Ok(self
            .tune_zne_on_top_impl::<MitigationConfigStore>(
                &cache,
                &MitigationConfig::baseline(),
                None,
            )?
            .0)
    }

    /// Warm-started ZNE tuning against the fleet cache: the circuit-level
    /// [`TuningMode::Zne`] fingerprint hitting a cached protocol skips the
    /// candidate sweep entirely; the guard always re-validates, swept
    /// winners publish on acceptance, and a rejected seed is evicted —
    /// the same contract as the per-window warm paths.
    ///
    /// # Errors
    ///
    /// Propagates objective-evaluation errors.
    pub fn tune_zne_warm<S: MitigationStoreBackend>(
        &self,
        params: &[f64],
        session: &mut FleetCacheSession<'_, S>,
    ) -> Result<WarmTuneReport, VaqemError> {
        let cache = self.problem.schedule_groups(self.backend, params)?;
        let (tuned, stats, _) =
            self.tune_zne_on_top_impl(&cache, &MitigationConfig::baseline(), Some(session))?;
        Ok(WarmTuneReport { tuned, stats })
    }

    /// The full composed pipeline: GS, then DD on the GS-adjusted
    /// schedule, then the ZNE protocol over the mitigated circuit — the
    /// "VAQEM: GS+XY+ZNE" configuration. Each stage's guard compares
    /// against the previous stage's surviving config, so the composition
    /// can only improve stage by stage.
    ///
    /// # Errors
    ///
    /// Propagates objective-evaluation errors.
    pub fn tune_combined_zne(&self, params: &[f64]) -> Result<TunedMitigation, VaqemError> {
        let cache = self.problem.schedule_groups(self.backend, params)?;
        let gs = self.tune_gs_cached(&cache)?;
        let dd = self.tune_dd_on_top(&cache, &gs.config)?;
        let zne = self
            .tune_zne_on_top_impl::<MitigationConfigStore>(&cache, &dd.config, None)?
            .0;
        Ok(TunedMitigation {
            config: zne.config.clone(),
            gs_choices: gs.gs_choices,
            dd_choices: dd.dd_choices,
            evaluations: gs.evaluations + dd.evaluations + zne.evaluations,
            zne_evaluations: zne.zne_evaluations,
        })
    }

    /// Warm-started GS+DD+ZNE tuning that caches the **composed** choice:
    /// the circuit-level [`TuningMode::Composed`] fingerprint maps to the
    /// whole `(gs, dd, zne)` configuration as one unit (the ROADMAP's
    /// composed-config cache follow-on).
    ///
    /// * **Hit:** the cached composition is re-validated by a single
    ///   guard batch against the baseline; acceptance adopts it outright
    ///   — no per-stage sweeps, no per-window lookups — and rejection
    ///   evicts the entry and falls through to a full re-tune.
    /// * **Miss:** the three stages tune as in [`Self::tune_combined_zne`]
    ///   (sharing the session's per-window cache), and the final
    ///   composition is published under the composed fingerprint.
    ///
    /// # Errors
    ///
    /// Propagates objective-evaluation errors.
    pub fn tune_combined_zne_warm<S: MitigationStoreBackend>(
        &self,
        params: &[f64],
        session: &mut FleetCacheSession<'_, S>,
    ) -> Result<WarmTuneReport, VaqemError> {
        let cache = self.problem.schedule_groups(self.backend, params)?;
        let pulse = self.backend.durations().single_qubit_ns();
        let scheduled = self.canonical_schedule(&cache, &MitigationConfig::baseline())?;
        let fp = circuit_fingerprint(
            TuningMode::Composed(self.config.dd_sequence),
            &scheduled,
            session.calibration,
            pulse,
            &self.config,
        );
        let mut seed_rejected = false;
        if let Some(StoredChoice::Composed(c)) =
            session.store.lookup(session.device, session.epoch, &fp)
        {
            let mut evaluations = 0usize;
            let (config, accepted) = self.accept_or_revert(
                &cache,
                &MitigationConfig::baseline(),
                c.to_config(),
                6_000_000,
                &mut evaluations,
            );
            if accepted {
                let zne_evaluations = if config.zne.is_some() {
                    self.config.guard_repeats.max(1)
                } else {
                    0
                };
                return Ok(WarmTuneReport {
                    tuned: TunedMitigation {
                        config,
                        gs_choices: Vec::new(),
                        dd_choices: Vec::new(),
                        evaluations,
                        zne_evaluations,
                    },
                    stats: WarmStats {
                        hits: 1,
                        misses: 0,
                        guard_rejected: false,
                    },
                });
            }
            session.store.discard(session.device, session.epoch, &fp);
            seed_rejected = true;
        }
        let (gs, mut stats) = self.tune_gs_impl(&cache, Some(session))?;
        let (dd, dd_stats) = self.tune_dd_on_top_impl(&cache, &gs.config, Some(session))?;
        let (zne, zne_stats, zne_objective) =
            self.tune_zne_on_top_impl(&cache, &dd.config, Some(session))?;
        stats.absorb(dd_stats);
        stats.absorb(zne_stats);
        stats.misses += 1; // the composed lookup itself re-tuned
        stats.guard_rejected |= seed_rejected;
        let config = zne.config.clone();
        session.store.publish(
            session.device,
            session.epoch,
            fp,
            StoredChoice::Composed(ComposedChoice::from_config(&config, zne_objective)),
        );
        Ok(WarmTuneReport {
            tuned: TunedMitigation {
                config,
                gs_choices: gs.gs_choices,
                dd_choices: dd.dd_choices,
                evaluations: gs.evaluations + dd.evaluations + zne.evaluations,
                zne_evaluations: zne.zne_evaluations,
            },
            stats,
        })
    }

    /// ZNE-protocol tuning on top of `base`, with an optional fleet-cache
    /// session — the circuit-level counterpart of
    /// [`Self::tune_dd_on_top_impl`]. The fingerprint is always computed
    /// from the unmitigated canonical schedule, so warm lookups are
    /// independent of the composition being amplified.
    ///
    /// The third return value is the chosen protocol's measured objective
    /// (`NaN` when the guard reverted to `base`) — recorded in composed
    /// cache entries.
    fn tune_zne_on_top_impl<S: MitigationStoreBackend>(
        &self,
        cache: &GroupSchedules,
        base: &MitigationConfig,
        mut session: Option<&mut FleetCacheSession<'_, S>>,
    ) -> Result<(TunedMitigation, WarmStats, f64), VaqemError> {
        let candidates = &self.config.zne_candidates;
        assert!(!candidates.is_empty(), "at least one ZNE candidate");
        let mut stats = WarmStats::default();
        let mut evaluations = 0usize;
        // The fingerprint (and the canonical-schedule pass it needs) is
        // only computed when a cache session is present.
        let fingerprint = match session.as_deref_mut() {
            Some(s) => {
                let pulse = self.backend.durations().single_qubit_ns();
                let scheduled = self.canonical_schedule(cache, &MitigationConfig::baseline())?;
                Some(circuit_fingerprint(
                    TuningMode::Zne,
                    &scheduled,
                    s.calibration,
                    pulse,
                    &self.config,
                ))
            }
            None => None,
        };
        let mut chosen: Option<(ZneConfig, f64)> = None;
        let mut seeded = false;
        if let (Some(fp), Some(s)) = (fingerprint, session.as_deref_mut()) {
            match s.store.lookup(s.device, s.epoch, &fp) {
                Some(StoredChoice::Composed(c)) if c.zne.is_some() => {
                    chosen = Some((c.zne.clone().expect("checked above"), c.objective));
                    stats.hits += 1;
                    seeded = true;
                }
                _ => stats.misses += 1,
            }
        }
        let mut swept = false;
        if chosen.is_none() {
            // The whole candidate sweep ships as one batch; each ZNE
            // evaluation internally executes one job per (scale factor,
            // measurement group).
            let evals: Vec<(MitigationConfig, u64)> = candidates
                .iter()
                .enumerate()
                .map(|(i, z)| {
                    evaluations += 1;
                    (base.clone().with_zne(z.clone()), 5_000_000 + i as u64)
                })
                .collect();
            let energies = self
                .problem
                .machine_energy_batch(self.backend, cache, &evals);
            let mut best = 0usize;
            for (i, e) in energies.iter().enumerate() {
                if *e < energies[best] {
                    best = i;
                }
            }
            chosen = Some((candidates[best].clone(), energies[best]));
            swept = true;
        }
        let (zne, objective) = chosen.expect("hit or swept");
        let tuned = base.clone().with_zne(zne);
        let (config, accepted) =
            self.accept_or_revert(cache, base, tuned, 5_500_000, &mut evaluations);
        stats.guard_rejected = !accepted;
        // Folded-circuit accounting: the sweep (all candidates) plus the
        // guard's tuned side executed ZNE evaluations; the guard's base
        // side ran unfolded.
        let zne_evaluations =
            if swept { candidates.len() } else { 0 } + self.config.guard_repeats.max(1);
        if let (Some(fp), Some(s)) = (fingerprint, session) {
            if accepted && swept {
                s.store.publish(
                    s.device,
                    s.epoch,
                    fp,
                    StoredChoice::Composed(ComposedChoice::from_config(&config, objective)),
                );
            } else if !accepted && seeded {
                s.store.discard(s.device, s.epoch, &fp);
            }
        }
        Ok((
            TunedMitigation {
                config,
                gs_choices: Vec::new(),
                dd_choices: Vec::new(),
                evaluations,
                zne_evaluations,
            },
            stats,
            if accepted { objective } else { f64::NAN },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaqem_ansatz::su2::{EfficientSu2, Entanglement};
    use vaqem_device::noise::NoiseParameters;
    use vaqem_mathkit::rng::SeedStream;
    use vaqem_pauli::models::tfim_paper;

    fn small_problem() -> VqeProblem {
        // Linear entanglement staggers the CX chain, so the outer qubits
        // idle while the chain progresses — guaranteeing idle windows.
        let ansatz = EfficientSu2::new(3, 1, Entanglement::Linear)
            .circuit()
            .unwrap();
        VqeProblem::new("tiny", tfim_paper(3), ansatz).unwrap()
    }

    fn small_backend() -> QuantumBackend {
        QuantumBackend::new(NoiseParameters::uniform(3), SeedStream::new(21)).with_shots(128)
    }

    fn tiny_config() -> WindowTunerConfig {
        WindowTunerConfig {
            sweep_resolution: 3,
            dd_sequence: DdSequence::Xx,
            max_repetitions: 4,
            guard_repeats: 2,
            zne_candidates: vec![
                ZneConfig::new(vec![0, 1], Extrapolation::Richardson { order: 1 }),
                ZneConfig::standard(),
            ],
        }
    }

    #[test]
    fn dd_tuning_produces_valid_config() {
        let p = small_problem();
        let b = small_backend();
        let tuner = WindowTuner::new(&p, &b, tiny_config());
        let params = vec![0.3; p.num_params()];
        let tuned = tuner.tune_dd(&params).unwrap();
        // Either the tuned DD config was accepted, or the guard reverted to
        // the baseline (both are valid outcomes under shot noise).
        if !tuned.config.is_baseline() {
            assert_eq!(tuned.config.dd_sequence, Some(DdSequence::Xx));
            assert_eq!(tuned.dd_choices.len(), tuned.config.dd_repetitions.len());
        }
        assert!(!tuned.dd_choices.is_empty(), "windows must have been swept");
        // Tuned config evaluates without error.
        let e = p.machine_energy(&b, &params, &tuned.config, 9_999).unwrap();
        assert!(e.is_finite());
    }

    #[test]
    fn tuned_objective_not_worse_than_baseline_in_sweep() {
        // Within the tuner's own evaluations, the chosen value is minimal by
        // construction; verify the invariant on the recorded choices.
        let p = small_problem();
        let b = small_backend();
        let tuner = WindowTuner::new(&p, &b, tiny_config());
        let params = vec![0.3; p.num_params()];
        let tuned = tuner.tune_dd(&params).unwrap();
        for c in &tuned.dd_choices {
            if c.objective.is_nan() {
                continue;
            }
            assert!(c.fraction_of_max >= 0.0 && c.fraction_of_max <= 1.0);
        }
        assert!(tuned.evaluations > 0);
    }

    #[test]
    fn gs_tuning_only_touches_movable_windows() {
        let p = small_problem();
        let b = small_backend();
        let tuner = WindowTuner::new(&p, &b, tiny_config());
        let params = vec![0.5; p.num_params()];
        let tuned = tuner.tune_gs(&params).unwrap();
        if !tuned.config.is_baseline() {
            assert_eq!(tuned.gs_choices.len(), tuned.config.gate_positions.len());
        }
        for c in &tuned.gs_choices {
            assert!((0.0..=1.0).contains(&c.value));
        }
    }

    #[test]
    fn sequence_selection_extension_picks_a_candidate() {
        let p = small_problem();
        let b = small_backend();
        let tuner = WindowTuner::new(&p, &b, tiny_config());
        let params = vec![0.3; p.num_params()];
        let (seq, tuned) = tuner
            .tune_dd_best_sequence(&params, &[DdSequence::Xx, DdSequence::Xy4])
            .unwrap();
        assert!(matches!(seq, DdSequence::Xx | DdSequence::Xy4));
        assert!(tuned.evaluations > 0);
        let e = p.machine_energy(&b, &params, &tuned.config, 8_888).unwrap();
        assert!(e.is_finite());
    }

    #[test]
    fn combined_tuning_composes_both() {
        let p = small_problem();
        let b = small_backend();
        let tuner = WindowTuner::new(&p, &b, tiny_config());
        let params = vec![0.4; p.num_params()];
        let tuned = tuner.tune_combined(&params).unwrap();
        assert!(tuned.evaluations > 0);
        let e = p.machine_energy(&b, &params, &tuned.config, 7_777).unwrap();
        assert!(e.is_finite());
    }

    #[test]
    fn noise_classes_are_stable_buckets() {
        let q = vaqem_device::noise::QubitNoise::default();
        let a = classify_qubit_noise(&q);
        let b = classify_qubit_noise(&q);
        assert_eq!(a, b);
        // Small wander stays in class; a 4x coherence jump must not.
        let mut wobble = q;
        wobble.t1_ns *= 1.05;
        assert_eq!(classify_qubit_noise(&wobble).t1, a.t1);
        let mut jumped = q;
        jumped.t1_ns *= 4.0;
        assert_ne!(classify_qubit_noise(&jumped).t1, a.t1);
        // Noiseless channels collapse to the sentinel class.
        let mut silent = q;
        silent.telegraph_rate_per_ns = 0.0;
        assert_eq!(classify_qubit_noise(&silent).telegraph, i16::MIN);
    }

    #[test]
    fn warm_start_replays_cold_choices_and_skips_sweeps() {
        let p = small_problem();
        let params = vec![0.3; p.num_params()];
        let calibration = NoiseParameters::uniform(3);

        // Deterministically scan backend seeds for one where the cold
        // run's guard *accepts* (so choices get published); on every
        // attempt the cold warm-path run must equal the plain path.
        let mut pinned = None;
        for seed in 21..36 {
            let b = QuantumBackend::new(NoiseParameters::uniform(3), SeedStream::new(seed))
                .with_shots(128);
            let tuner = WindowTuner::new(&p, &b, tiny_config());
            let mut store = MitigationConfigStore::new(256);
            let plain = tuner.tune_dd(&params).unwrap();
            let cold = {
                let mut session = FleetCacheSession {
                    store: &mut store,
                    device: "dev-test",
                    epoch: 0,
                    calibration: &calibration,
                };
                tuner.tune_dd_warm(&params, &mut session).unwrap()
            };
            assert_eq!(cold.tuned, plain, "cold warm-path run == plain run");
            assert_eq!(cold.stats.hits, 0);
            assert!(cold.stats.misses > 0);
            if !cold.stats.guard_rejected {
                pinned = Some((seed, store, cold));
                break;
            }
        }
        let (seed, mut store, cold) = pinned.expect("some seed's cold guard accepts");

        // Round 2: warm. Every window hits, the assembled config is
        // identical, and only the guard's evaluations are spent.
        let b =
            QuantumBackend::new(NoiseParameters::uniform(3), SeedStream::new(seed)).with_shots(128);
        let tuner = WindowTuner::new(&p, &b, tiny_config());
        let warm = {
            let mut session = FleetCacheSession {
                store: &mut store,
                device: "dev-test",
                epoch: 0,
                calibration: &calibration,
            };
            tuner.tune_dd_warm(&params, &mut session).unwrap()
        };
        assert_eq!(warm.stats.hits, cold.stats.misses, "all windows hit");
        assert_eq!(warm.stats.misses, 0);
        assert!(!warm.stats.guard_rejected, "replayed config re-accepts");
        assert_eq!(
            warm.tuned.config, cold.tuned.config,
            "guard-accepted warm result equals the cold-tuned result"
        );
        assert!(
            warm.tuned.evaluations < cold.tuned.evaluations,
            "warm {} must be cheaper than cold {}",
            warm.tuned.evaluations,
            cold.tuned.evaluations
        );

        // A different device or epoch misses naturally.
        let mut session = FleetCacheSession {
            store: &mut store,
            device: "dev-test",
            epoch: 1,
            calibration: &calibration,
        };
        let next_epoch = tuner.tune_dd_warm(&params, &mut session).unwrap();
        assert_eq!(next_epoch.stats.hits, 0, "new epoch must re-tune");
    }

    #[test]
    fn gs_warm_start_replays_positions() {
        let p = small_problem();
        let b = small_backend();
        let tuner = WindowTuner::new(&p, &b, tiny_config());
        let params = vec![0.5; p.num_params()];
        let calibration = NoiseParameters::uniform(3);
        let mut store = MitigationConfigStore::new(256);
        let run = |store: &mut MitigationConfigStore| {
            let mut session = FleetCacheSession {
                store,
                device: "dev-test",
                epoch: 0,
                calibration: &calibration,
            };
            tuner.tune_gs_warm(&params, &mut session).unwrap()
        };
        let cold = run(&mut store);
        let warm = run(&mut store);
        assert_eq!(cold.tuned, tuner.tune_gs(&params).unwrap());
        if !cold.stats.guard_rejected {
            assert_eq!(warm.stats.misses, 0);
            assert_eq!(warm.tuned.config, cold.tuned.config);
        }
        assert!(warm.tuned.evaluations <= cold.tuned.evaluations);
    }

    #[test]
    fn fingerprints_distinguish_modes_and_durations() {
        let p = small_problem();
        let b = small_backend();
        let cfg = tiny_config();
        let params = vec![0.3; p.num_params()];
        let cache = p.schedule_groups(&b, &params).unwrap();
        let scheduled = MitigationConfig::baseline()
            .apply_under(cache.schedules().first().unwrap(), b.durations());
        let pulse = b.durations().single_qubit_ns();
        let windows = scheduled.idle_windows(pulse);
        assert!(!windows.is_empty());
        let noise = NoiseParameters::uniform(3);
        let w = &windows[0];
        let dd = window_fingerprint(
            TuningMode::Dd(DdSequence::Xx),
            w,
            0,
            &scheduled,
            &noise,
            pulse,
            &cfg,
        );
        let gs = window_fingerprint(TuningMode::Gs, w, 0, &scheduled, &noise, pulse, &cfg);
        assert_ne!(dd, gs, "mode is part of the fingerprint");
        let again = window_fingerprint(
            TuningMode::Dd(DdSequence::Xx),
            w,
            0,
            &scheduled,
            &noise,
            pulse,
            &cfg,
        );
        assert_eq!(dd, again, "fingerprints are pure");
        let other_ordinal = window_fingerprint(
            TuningMode::Dd(DdSequence::Xx),
            w,
            1,
            &scheduled,
            &noise,
            pulse,
            &cfg,
        );
        assert_ne!(dd, other_ordinal);
    }

    #[test]
    fn fingerprint_and_choice_codecs_round_trip() {
        let fp = WindowFingerprint {
            mode: TuningMode::Dd(DdSequence::Xy8),
            duration_slots: 37,
            qubit: 5,
            ordinal: 2,
            noise_class: NoiseClass {
                t1: 33,
                t2: -4,
                detuning: i16::MIN,
                telegraph: 0,
                readout: -7,
            },
            neighbors_active: 3,
            coupled_active: 1,
            sweep_resolution: 4,
            max_repetitions: 8,
        };
        let mut buf = Vec::new();
        fp.encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(WindowFingerprint::decode(&mut input), Some(fp));
        assert!(input.is_empty());

        let choice = CachedChoice {
            fraction_of_max: 0.75,
            value: 6.0,
            objective: -1.25,
        };
        buf.clear();
        choice.encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(CachedChoice::decode(&mut input), Some(choice));

        // Every tuning-mode tag survives the round trip.
        for mode in [
            TuningMode::Gs,
            TuningMode::Dd(DdSequence::Xx),
            TuningMode::Dd(DdSequence::Yy),
            TuningMode::Dd(DdSequence::Xy4),
            TuningMode::Dd(DdSequence::Xy8),
            TuningMode::Zne,
            TuningMode::Composed(DdSequence::Xy4),
        ] {
            buf.clear();
            mode.encode(&mut buf);
            assert_eq!(TuningMode::decode(&mut buf.as_slice()), Some(mode));
        }
        // Unknown tags fail cleanly instead of misparsing.
        assert_eq!(TuningMode::decode(&mut [9u8].as_slice()), None);
    }

    #[test]
    fn stored_choice_codec_round_trips_both_variants() {
        let window = StoredChoice::Window(CachedChoice {
            fraction_of_max: 0.5,
            value: 3.0,
            objective: -2.0,
        });
        let composed = StoredChoice::Composed(ComposedChoice {
            gate_positions: vec![0.25, 1.0, 0.0],
            dd_sequence: Some(DdSequence::Xy4),
            dd_repetitions: vec![2, 0, 7],
            zne: Some(ZneConfig::new(vec![0, 1, 3], Extrapolation::Exponential)),
            objective: -1.75,
        });
        for choice in [window, composed] {
            let mut buf = Vec::new();
            choice.encode(&mut buf);
            let mut input = buf.as_slice();
            assert_eq!(StoredChoice::decode(&mut input), Some(choice));
            assert!(input.is_empty());
        }
        // Unknown variant tags fail cleanly.
        assert_eq!(StoredChoice::decode(&mut [7u8].as_slice()), None);
        // A corrupted ZNE payload with duplicate folds must fail the
        // decode (Codec contract) rather than yield a ZneConfig that
        // panics at extrapolation time.
        let mut corrupt = vec![1u8]; // Composed tag
        0u32.encode(&mut corrupt); // no gate positions
        corrupt.push(0); // no dd sequence
        0u32.encode(&mut corrupt); // no dd repetitions
        corrupt.push(1); // zne present
        2u32.encode(&mut corrupt); // two folds...
        corrupt.extend_from_slice(&[1, 1]); // ...but duplicated
        corrupt.push(1); // exponential
        corrupt.push(0); // padding order byte
        0.0f64.encode(&mut corrupt); // objective
        assert_eq!(StoredChoice::decode(&mut corrupt.as_slice()), None);
        // A composed choice without DD or ZNE (GS-only composition).
        let bare = StoredChoice::Composed(ComposedChoice {
            gate_positions: vec![],
            dd_sequence: None,
            dd_repetitions: vec![],
            zne: None,
            objective: 0.0,
        });
        let mut buf = Vec::new();
        bare.encode(&mut buf);
        assert_eq!(StoredChoice::decode(&mut buf.as_slice()), Some(bare));
    }

    #[test]
    fn stored_choice_versioned_decode_reads_legacy_bytes() {
        // Format version 1 stored bare CachedChoice bytes; the versioned
        // decoder must lift them into StoredChoice::Window.
        let legacy = CachedChoice {
            fraction_of_max: 0.75,
            value: 6.0,
            objective: -1.25,
        };
        let mut buf = Vec::new();
        legacy.encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(
            StoredChoice::decode_versioned(&mut input, 1),
            Some(StoredChoice::Window(legacy))
        );
        assert!(input.is_empty());
        // Current-version bytes go through the tagged decoder.
        let tagged = StoredChoice::Window(legacy);
        buf.clear();
        tagged.encode(&mut buf);
        assert_eq!(
            StoredChoice::decode_versioned(&mut buf.as_slice(), 2),
            Some(tagged)
        );
    }

    #[test]
    fn composed_choice_config_round_trip() {
        let cfg = MitigationConfig {
            gate_positions: vec![0.5, 0.0],
            dd_repetitions: vec![1, 2, 3],
            dd_sequence: Some(DdSequence::Xx),
            zne: Some(ZneConfig::standard()),
        };
        let choice = ComposedChoice::from_config(&cfg, -3.0);
        assert_eq!(choice.to_config(), cfg);
    }

    #[test]
    fn warm_tuning_runs_against_a_shared_sharded_store() {
        use std::sync::Arc;
        use vaqem_runtime::store::ShardedStore;
        let p = small_problem();
        let b = small_backend();
        let tuner = WindowTuner::new(&p, &b, tiny_config());
        let params = vec![0.3; p.num_params()];
        let calibration = NoiseParameters::uniform(3);
        let store: Arc<ShardedStore<WindowFingerprint, StoredChoice>> =
            Arc::new(ShardedStore::new(4, 256));
        let run = |handle: &mut Arc<ShardedStore<WindowFingerprint, StoredChoice>>| {
            let mut session = FleetCacheSession {
                store: handle,
                device: "dev-test",
                epoch: 0,
                calibration: &calibration,
            };
            tuner.tune_dd_warm(&params, &mut session).unwrap()
        };
        let mut handle = Arc::clone(&store);
        let cold = run(&mut handle);
        assert_eq!(cold.stats.hits, 0);
        // The plain single-owner path and the sharded path agree.
        assert_eq!(cold.tuned, tuner.tune_dd(&params).unwrap());
        if !cold.stats.guard_rejected {
            let warm = run(&mut handle);
            assert_eq!(warm.stats.misses, 0);
            assert_eq!(warm.tuned.config, cold.tuned.config);
        }
    }

    #[test]
    fn zne_tuning_selects_a_candidate_and_respects_the_guard() {
        let p = small_problem();
        let b = small_backend();
        let tuner = WindowTuner::new(&p, &b, tiny_config());
        let params = vec![0.3; p.num_params()];
        let tuned = tuner.tune_zne(&params).unwrap();
        assert!(tuned.evaluations > 0);
        // Either a candidate was accepted (config carries its protocol)
        // or the guard reverted to the baseline — both valid under shot
        // noise.
        if let Some(z) = &tuned.config.zne {
            assert!(tiny_config().zne_candidates.contains(z));
        } else {
            assert!(tuned.config.is_baseline());
        }
        // The tuned config evaluates end to end.
        let e = p.machine_energy(&b, &params, &tuned.config, 6_666).unwrap();
        assert!(e.is_finite());
    }

    #[test]
    fn zne_warm_start_adopts_the_cached_protocol() {
        let p = small_problem();
        let params = vec![0.3; p.num_params()];
        let calibration = NoiseParameters::uniform(3);
        // Scan seeds for a cold run whose guard accepts (so the protocol
        // publishes); each attempt must match the plain path exactly.
        let mut pinned = None;
        for seed in 21..40 {
            let b = QuantumBackend::new(NoiseParameters::uniform(3), SeedStream::new(seed))
                .with_shots(128);
            let tuner = WindowTuner::new(&p, &b, tiny_config());
            let mut store = MitigationConfigStore::new(256);
            let plain = tuner.tune_zne(&params).unwrap();
            let cold = {
                let mut session = FleetCacheSession {
                    store: &mut store,
                    device: "dev-test",
                    epoch: 0,
                    calibration: &calibration,
                };
                tuner.tune_zne_warm(&params, &mut session).unwrap()
            };
            assert_eq!(cold.tuned, plain, "cold warm-path run == plain run");
            assert_eq!(cold.stats.hits, 0);
            assert_eq!(cold.stats.misses, 1, "one circuit-level lookup");
            if !cold.stats.guard_rejected {
                pinned = Some((seed, store, cold));
                break;
            }
        }
        let (seed, mut store, cold) = pinned.expect("some seed's cold guard accepts");
        let b =
            QuantumBackend::new(NoiseParameters::uniform(3), SeedStream::new(seed)).with_shots(128);
        let tuner = WindowTuner::new(&p, &b, tiny_config());
        let warm = {
            let mut session = FleetCacheSession {
                store: &mut store,
                device: "dev-test",
                epoch: 0,
                calibration: &calibration,
            };
            tuner.tune_zne_warm(&params, &mut session).unwrap()
        };
        assert_eq!(warm.stats.hits, 1, "cached protocol adopted");
        assert_eq!(warm.stats.misses, 0);
        assert!(!warm.stats.guard_rejected, "replayed protocol re-accepts");
        assert_eq!(warm.tuned.config, cold.tuned.config);
        assert!(
            warm.tuned.evaluations < cold.tuned.evaluations,
            "warm skips the candidate sweep"
        );
        // A different epoch misses naturally.
        let mut session = FleetCacheSession {
            store: &mut store,
            device: "dev-test",
            epoch: 1,
            calibration: &calibration,
        };
        let next = tuner.tune_zne_warm(&params, &mut session).unwrap();
        assert_eq!(next.stats.hits, 0, "new epoch must re-tune");
    }

    #[test]
    fn composed_cache_round_trips_the_whole_configuration() {
        let p = small_problem();
        let params = vec![0.4; p.num_params()];
        let calibration = NoiseParameters::uniform(3);
        for seed in 21..40 {
            let b = QuantumBackend::new(NoiseParameters::uniform(3), SeedStream::new(seed))
                .with_shots(128);
            let tuner = WindowTuner::new(&p, &b, tiny_config());
            let mut store = MitigationConfigStore::new(256);
            let run = |store: &mut MitigationConfigStore| {
                let mut session = FleetCacheSession {
                    store,
                    device: "dev-test",
                    epoch: 0,
                    calibration: &calibration,
                };
                tuner.tune_combined_zne_warm(&params, &mut session).unwrap()
            };
            let cold = run(&mut store);
            assert_eq!(cold.stats.hits, 0, "cold run sweeps everything");
            assert!(cold.stats.misses > 0);
            // The composed entry is always published after a full tune.
            let warm = run(&mut store);
            if warm.stats.guard_rejected {
                continue; // shot noise rejected the replay; try another seed
            }
            assert_eq!(
                warm.stats.hits, 1,
                "the composed fingerprint answers the whole session"
            );
            assert_eq!(warm.stats.misses, 0, "no per-window traffic on a hit");
            assert_eq!(warm.tuned.config, cold.tuned.config);
            assert!(
                warm.tuned.evaluations < cold.tuned.evaluations.max(1),
                "one guard batch replaces three tuning stages"
            );
            return;
        }
        panic!("no seed produced an accepted composed replay");
    }

    #[test]
    fn circuit_fingerprints_are_pure_and_mode_distinct() {
        let p = small_problem();
        let b = small_backend();
        let cfg = tiny_config();
        let params = vec![0.3; p.num_params()];
        let cache = p.schedule_groups(&b, &params).unwrap();
        let scheduled = MitigationConfig::baseline()
            .apply_under(cache.schedules().first().unwrap(), b.durations());
        let pulse = b.durations().single_qubit_ns();
        let noise = NoiseParameters::uniform(3);
        let zne = circuit_fingerprint(TuningMode::Zne, &scheduled, &noise, pulse, &cfg);
        let again = circuit_fingerprint(TuningMode::Zne, &scheduled, &noise, pulse, &cfg);
        assert_eq!(zne, again, "fingerprints are pure");
        let composed = circuit_fingerprint(
            TuningMode::Composed(cfg.dd_sequence),
            &scheduled,
            &noise,
            pulse,
            &cfg,
        );
        assert_ne!(zne, composed, "mode is part of the key");
        assert_eq!(zne.qubit, 3, "circuit width");
        assert!(zne.duration_slots > 0);
        // A coherence jump on any qubit splits the worst-case class.
        let mut jumped = NoiseParameters::uniform(3);
        jumped.qubit_mut(2).t1_ns /= 4.0;
        let moved = circuit_fingerprint(TuningMode::Zne, &scheduled, &jumped, pulse, &cfg);
        assert_ne!(zne.noise_class, moved.noise_class);
    }

    #[test]
    fn tuner_works_on_a_non_machine_substrate() {
        // The tuner is generic over the executor: tuning against the ideal
        // sampler runs end to end (and, with no idle-time noise to
        // mitigate, the guard accepts or reverts without error).
        let p = small_problem();
        let ideal = QuantumBackend::from_executor(vaqem_sim::exec::StateVectorSampler::new(
            3,
            SeedStream::new(23),
        ))
        .with_shots(128);
        let tuner = WindowTuner::new(&p, &ideal, tiny_config());
        let params = vec![0.3; p.num_params()];
        let tuned = tuner.tune_dd(&params).unwrap();
        assert!(tuned.evaluations > 0);
    }
}
