//! The execution abstraction: one trait, three substrates, batched dispatch.
//!
//! Every machine interaction in the feasible flow — tuner sweep points,
//! guard evaluations, final strategy comparisons — reduces to "run this
//! scheduled circuit for `shots` shots under seed `seed`". [`Executor`]
//! names exactly that operation, and [`Executor::run_batch`] dispatches a
//! slice of independent [`Job`]s across all cores (rayon-style parallel
//! map), which is where the wall-clock of the tuning loop goes from
//! per-circuit serial to hardware-saturating.
//!
//! Determinism is load-bearing: each job's randomness is derived from a
//! [`vaqem_mathkit::rng::SeedStream`] and the job's own seed, never from
//! execution order or thread identity. `run_batch` therefore returns
//! bit-identical counts to running the same jobs sequentially — the
//! executor-parity integration tests pin this for all three
//! implementations.
//!
//! Three substrates implement the trait:
//!
//! * [`MachineExecutor`] — the quantum-trajectory "real machine",
//! * [`StateVectorSampler`] — ideal noise-free sampling,
//! * [`DensityExecutor`] — the Markovian calibration-style simulator
//!   (Fig. 9's "noisy simulation").
//!
//! ```
//! use vaqem::executor::{Executor, Job};
//! use vaqem_circuit::circuit::QuantumCircuit;
//! use vaqem_circuit::schedule::{schedule, DurationModel, ScheduleKind};
//! use vaqem_mathkit::rng::SeedStream;
//! use vaqem_sim::exec::StateVectorSampler;
//!
//! let mut qc = QuantumCircuit::new(1);
//! qc.h(0).unwrap();
//! qc.measure_all();
//! let s = schedule(&qc, &DurationModel::ibm_default(), ScheduleKind::Alap).unwrap();
//!
//! let exec = StateVectorSampler::new(1, SeedStream::new(7));
//! let jobs: Vec<Job> = (0..4)
//!     .map(|seed| Job { scheduled: s.clone(), shots: 64, seed })
//!     .collect();
//! let batched = exec.run_batch(&jobs);
//!
//! // Batched dispatch is bit-identical to running each job alone.
//! assert_eq!(batched[2], exec.run(&s, 64, 2));
//! assert_eq!(batched.len(), 4);
//! ```

use rayon::prelude::*;
use vaqem_circuit::schedule::ScheduledCircuit;
use vaqem_sim::counts::Counts;
use vaqem_sim::exec::{DensityExecutor, StateVectorSampler};
use vaqem_sim::machine::MachineExecutor;

/// One unit of executable work: a concrete, fully scheduled circuit (all
/// mitigation passes already applied), a shot budget, and the seed that
/// decorrelates this job's noise streams from every other job's.
#[derive(Debug, Clone)]
pub struct Job {
    /// The circuit to execute, with mitigation applied.
    pub scheduled: ScheduledCircuit,
    /// Shots for this job.
    pub shots: u64,
    /// Per-job seed (the `job_index` of the sequential API).
    pub seed: u64,
}

/// An execution substrate: scheduled circuits in, histograms out.
///
/// Implementations must be `Send + Sync`: [`Self::run_batch`] fans jobs
/// out across threads, sharing the executor immutably.
pub trait Executor: Send + Sync {
    /// Short human-readable substrate name (for reports and benches).
    fn substrate(&self) -> &'static str;

    /// Width of the register this executor models.
    fn num_qubits(&self) -> usize;

    /// Runs one job.
    ///
    /// Must be a pure function of `(self, scheduled, shots, seed)` — in
    /// particular independent of any other job executed before or after —
    /// so that batching cannot change results.
    fn run(&self, scheduled: &ScheduledCircuit, shots: u64, seed: u64) -> Counts;

    /// Runs a slice of independent jobs, in parallel, returning counts in
    /// job order. Bit-identical to calling [`Self::run`] per job.
    fn run_batch(&self, jobs: &[Job]) -> Vec<Counts> {
        jobs.par_iter()
            .map(|job| self.run(&job.scheduled, job.shots, job.seed))
            .collect()
    }
}

/// Below this many shots a slice is not worth a fork: trajectory setup
/// (schedule compilation, scratch allocation) would dominate.
const MIN_SHOTS_PER_SLICE: u64 = 64;

impl Executor for MachineExecutor {
    fn substrate(&self) -> &'static str {
        "trajectory-machine"
    }

    fn num_qubits(&self) -> usize {
        self.noise().num_qubits()
    }

    fn run(&self, scheduled: &ScheduledCircuit, shots: u64, seed: u64) -> Counts {
        self.run_job_with_shots(scheduled, shots, seed)
    }

    /// Job-level parallelism saturates the machine only when the batch is
    /// wide. Tuning loops often submit a *few* expensive jobs (sometimes
    /// one), so when there are fewer jobs than threads this splits each
    /// job's shot range into slices and fans the slices out instead. Every
    /// trajectory's RNG is derived solely from `(job seed, shot index)`
    /// ([`MachineExecutor::run_job_shot_range`]), so merged slice counts
    /// are bit-identical to the sequential run.
    fn run_batch(&self, jobs: &[Job]) -> Vec<Counts> {
        machine_run_batch(self, jobs, rayon::current_num_threads())
    }
}

/// Shot-splitting batch dispatch for the machine, parameterized on the
/// thread count so tests can force the split path regardless of the host.
fn machine_run_batch(exec: &MachineExecutor, jobs: &[Job], threads: usize) -> Vec<Counts> {
    if jobs.is_empty() || jobs.len() >= threads {
        return jobs
            .par_iter()
            .map(|job| exec.run_job_with_shots(&job.scheduled, job.shots, job.seed))
            .collect();
    }
    let mut slices: Vec<(usize, std::ops::Range<u64>)> = Vec::new();
    for (j, job) in jobs.iter().enumerate() {
        let share = (threads / jobs.len()).max(1) as u64;
        let pieces = share.min(job.shots / MIN_SHOTS_PER_SLICE).max(1);
        let chunk = job.shots.div_ceil(pieces);
        let mut start = 0;
        while start < job.shots {
            let end = (start + chunk).min(job.shots);
            slices.push((j, start..end));
            start = end;
        }
    }
    let partials: Vec<(usize, Counts)> = slices
        .par_iter()
        .map(|(j, range)| {
            let job = &jobs[*j];
            (
                *j,
                exec.run_job_shot_range(&job.scheduled, job.seed, range.clone()),
            )
        })
        .collect();
    let mut out: Vec<Counts> = jobs
        .iter()
        .map(|job| Counts::new(job.scheduled.num_qubits()))
        .collect();
    for (j, partial) in &partials {
        out[*j].merge(partial);
    }
    out
}

impl Executor for StateVectorSampler {
    fn substrate(&self) -> &'static str {
        "statevector-ideal"
    }

    fn num_qubits(&self) -> usize {
        self.num_qubits()
    }

    fn run(&self, scheduled: &ScheduledCircuit, shots: u64, seed: u64) -> Counts {
        self.run_job_with_shots(scheduled, shots, seed)
    }
}

impl Executor for DensityExecutor {
    fn substrate(&self) -> &'static str {
        "density-markovian"
    }

    fn num_qubits(&self) -> usize {
        self.num_qubits()
    }

    fn run(&self, scheduled: &ScheduledCircuit, shots: u64, seed: u64) -> Counts {
        self.run_job_with_shots(scheduled, shots, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaqem_circuit::circuit::QuantumCircuit;
    use vaqem_circuit::schedule::{schedule, DurationModel, ScheduleKind};
    use vaqem_device::noise::NoiseParameters;
    use vaqem_mathkit::rng::SeedStream;

    fn scheduled(n: usize, depth: usize) -> ScheduledCircuit {
        let mut qc = QuantumCircuit::new(n);
        for layer in 0..depth {
            for q in 0..n {
                qc.ry(0.17 * (layer + q + 1) as f64, q).unwrap();
            }
            for q in 0..n.saturating_sub(1) {
                qc.cx(q, q + 1).unwrap();
            }
        }
        qc.measure_all();
        schedule(&qc, &DurationModel::ibm_default(), ScheduleKind::Alap).unwrap()
    }

    fn jobs(n: usize) -> Vec<Job> {
        (0..n as u64)
            .map(|seed| Job {
                scheduled: scheduled(2, 2),
                shots: 128,
                seed,
            })
            .collect()
    }

    fn parity<E: Executor>(executor: &E) {
        let jobs = jobs(9);
        let batched = executor.run_batch(&jobs);
        for (job, counts) in jobs.iter().zip(&batched) {
            let sequential = executor.run(&job.scheduled, job.shots, job.seed);
            assert_eq!(counts, &sequential, "{} diverged", executor.substrate());
            assert_eq!(counts.total(), job.shots);
        }
    }

    #[test]
    fn machine_batch_matches_sequential() {
        parity(&MachineExecutor::new(
            NoiseParameters::uniform(2),
            SeedStream::new(11),
        ));
    }

    #[test]
    fn statevector_batch_matches_sequential() {
        parity(&StateVectorSampler::new(2, SeedStream::new(12)));
    }

    #[test]
    fn density_batch_matches_sequential() {
        parity(&DensityExecutor::new(
            NoiseParameters::uniform(2),
            SeedStream::new(13),
        ));
    }

    /// A narrow batch of wide jobs takes the shot-splitting path; the
    /// merged slices must be bit-identical to unsplit sequential runs.
    #[test]
    fn machine_shot_splitting_matches_sequential() {
        let exec = MachineExecutor::new(NoiseParameters::uniform(2), SeedStream::new(21));
        let jobs: Vec<Job> = (0..2u64)
            .map(|seed| Job {
                scheduled: scheduled(2, 2),
                shots: 700 + seed * 13, // odd sizes exercise chunk remainders
                seed,
            })
            .collect();
        // Force the split path with a synthetic thread count, so the test
        // exercises it even on a narrow host.
        let batched = machine_run_batch(&exec, &jobs, 8);
        for (job, counts) in jobs.iter().zip(&batched) {
            assert_eq!(
                counts,
                &Executor::run(&exec, &job.scheduled, job.shots, job.seed)
            );
            assert_eq!(counts.total(), job.shots);
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let exec = StateVectorSampler::new(1, SeedStream::new(1));
        assert!(exec.run_batch(&[]).is_empty());
    }

    #[test]
    fn substrate_names_are_distinct() {
        let m = MachineExecutor::new(NoiseParameters::uniform(1), SeedStream::new(1));
        let s = StateVectorSampler::new(1, SeedStream::new(1));
        let d = DensityExecutor::new(NoiseParameters::uniform(1), SeedStream::new(1));
        let names = [
            Executor::substrate(&m),
            Executor::substrate(&s),
            Executor::substrate(&d),
        ];
        assert_eq!(names.len(), 3);
        assert!(names.windows(2).all(|w| w[0] != w[1]));
    }
}
