//! Soundness of variational error-mitigation tuning (paper §V).
//!
//! The paper proves the tuned objective can never beat the true optimum:
//!
//! * **Property 1 (pure states)** — `<phi|H|phi> >= E0` for every state,
//!   with equality only at the ground state (the variational principle).
//! * **Property 2 (mixed states)** — `Tr[H rho] >= E0`: by the spectral
//!   theorem a mixed state is a convex mixture of pure states, so tuning
//!   non-unitary knobs cannot "cheat" below the bound either.
//!
//! These checks are used as assertions in the pipeline and exercised by
//! property tests over random Hamiltonians, states, and noise channels.

use vaqem_mathkit::complex::Complex64;
use vaqem_mathkit::eigen;
use vaqem_mathkit::matrix::CMatrix;

/// Numerical slack for soundness comparisons.
pub const SOUNDNESS_TOL: f64 = 1e-8;

/// Property 1: checks `<phi|H|phi> >= E0 - tol` for a normalized state.
///
/// Returns the expectation value.
///
/// # Panics
///
/// Panics if dimensions mismatch or the bound is violated beyond
/// [`SOUNDNESS_TOL`] — a violation indicates a broken Hamiltonian or
/// simulator, never a legitimate tuning outcome.
pub fn assert_pure_state_bound(h: &CMatrix, phi: &[Complex64], e0: f64) -> f64 {
    assert_eq!(h.rows(), phi.len(), "dimension mismatch");
    let norm = CMatrix::vec_norm(phi);
    assert!((norm - 1.0).abs() < 1e-6, "state must be normalized");
    let hv = h.mul_vec(phi);
    let e = CMatrix::vec_inner(phi, &hv).re;
    assert!(
        e >= e0 - SOUNDNESS_TOL,
        "pure-state variational bound violated: {e} < {e0}"
    );
    e
}

/// Property 2: checks `Tr[H rho] >= E0 - tol` for a density matrix.
///
/// Returns the mixed-state energy.
///
/// # Panics
///
/// Panics if `rho` is not trace-one/Hermitian, or on a bound violation.
pub fn assert_mixed_state_bound(h: &CMatrix, rho: &CMatrix, e0: f64) -> f64 {
    assert!(rho.is_hermitian(1e-7), "density matrix must be Hermitian");
    assert!(
        rho.is_trace_one(1e-6),
        "density matrix must have unit trace"
    );
    let e = (rho * h).trace().re;
    assert!(
        e >= e0 - SOUNDNESS_TOL,
        "mixed-state variational bound violated: {e} < {e0}"
    );
    e
}

/// Convenience: the exact ground energy of `h` (delegates to the
/// eigensolver).
pub fn ground_energy(h: &CMatrix) -> f64 {
    eigen::ground_state_energy(h)
}

/// Checks that an energy *measured on the machine* respects the bound
/// within statistical tolerance. Shot noise and readout error can push a
/// count-estimated `<H>` slightly below `E0`; `statistical_tol` should be a
/// few standard errors of the estimator.
pub fn measured_energy_is_sound(measured: f64, e0: f64, statistical_tol: f64) -> bool {
    measured >= e0 - statistical_tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaqem_mathkit::c64;
    use vaqem_mathkit::matrix::gates2x2;

    fn pauli_z_h() -> CMatrix {
        gates2x2::pauli_z()
    }

    #[test]
    fn pure_bound_holds_for_basis_states() {
        let h = pauli_z_h();
        let e0 = ground_energy(&h);
        assert!((e0 + 1.0).abs() < 1e-10);
        let zero = vec![Complex64::ONE, Complex64::ZERO];
        let one = vec![Complex64::ZERO, Complex64::ONE];
        assert!((assert_pure_state_bound(&h, &zero, e0) - 1.0).abs() < 1e-10);
        assert!((assert_pure_state_bound(&h, &one, e0) + 1.0).abs() < 1e-10);
    }

    #[test]
    fn pure_bound_equality_only_at_ground_state() {
        let h = pauli_z_h();
        let e0 = ground_energy(&h);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let plus = vec![c64(s, 0.0), c64(s, 0.0)];
        let e = assert_pure_state_bound(&h, &plus, e0);
        assert!(e > e0 + 0.5, "superposition strictly above ground: {e}");
    }

    #[test]
    fn mixed_bound_for_maximally_mixed_state() {
        let h = pauli_z_h();
        let e0 = ground_energy(&h);
        let rho = CMatrix::identity(2).scale(c64(0.5, 0.0));
        let e = assert_mixed_state_bound(&h, &rho, e0);
        assert!(e.abs() < 1e-12, "maximally mixed <Z> = 0: {e}");
    }

    #[test]
    fn mixed_bound_equality_at_pure_ground_state() {
        let h = pauli_z_h();
        let e0 = ground_energy(&h);
        let ground = vec![Complex64::ZERO, Complex64::ONE];
        let rho = CMatrix::vec_outer(&ground, &ground);
        let e = assert_mixed_state_bound(&h, &rho, e0);
        assert!((e - e0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "variational bound violated")]
    fn violation_is_caught() {
        // Claim a fake (too-high) ground energy; a legitimate state then
        // "violates" it, and the check must fire.
        let h = pauli_z_h();
        let one = vec![Complex64::ZERO, Complex64::ONE];
        let _ = assert_pure_state_bound(&h, &one, 0.5);
    }

    #[test]
    fn measured_energy_tolerance() {
        assert!(measured_energy_is_sound(-0.99, -1.0, 0.05));
        assert!(measured_energy_is_sound(-1.02, -1.0, 0.05));
        assert!(!measured_energy_is_sound(-1.2, -1.0, 0.05));
    }
}
