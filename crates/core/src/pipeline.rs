//! The end-to-end VAQEM pipeline (paper Fig. 11, feasible flow).
//!
//! Phase (a): tune ansatz angles with SPSA against the noise-free objective
//! (the paper shows simulation-found minima transfer to the machine,
//! Fig. 8). Phase (b): tune error mitigation per idle window on the
//! machine, then evaluate every comparison strategy of §VII-B:
//!
//! * `No-EM` — ALAP scheduling, no DD, no MEM (worst case),
//! * `Baseline/MEM` — ALAP + measurement error mitigation,
//! * `DD (XX | XY4)` — one uniform DD round per window, MEM on,
//! * `VAQEM: GS | XX | XY | GS+XY` — variationally tuned mitigation, MEM on,
//!
//! plus the §IX ZNE extension strategies (`ZNE (fixed)`, `VAQEM: ZNE`,
//! `VAQEM: GS+XY+ZNE` — see [`Strategy::WITH_ZNE`]): zero-noise
//! extrapolation as a fixed protocol, as a tuned protocol, and composed
//! on top of the tuned GS+DD configuration.

use crate::backend::QuantumBackend;
use crate::error::VaqemError;
use crate::executor::Executor;
use crate::metrics;
use crate::vqe::{GroupSchedules, VqeProblem};
use crate::window_tuner::{
    FleetCacheSession, MitigationConfigStore, MitigationStoreBackend, TunedMitigation, WarmStats,
    WindowTuner, WindowTunerConfig,
};
use vaqem_device::noise::NoiseParameters;
use vaqem_mathkit::rng::SeedStream;
use vaqem_mitigation::combined::MitigationConfig;
use vaqem_mitigation::dd::{DdPass, DdSequence};
use vaqem_mitigation::zne::ZneConfig;
use vaqem_optim::spsa::{self, SpsaConfig};

/// The evaluation strategies of §VII-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// No mitigation at all.
    NoEm,
    /// Measurement error mitigation only (the baseline of Fig. 12).
    MemBaseline,
    /// One uniform round of XX DD per window (+ MEM).
    DdXx,
    /// One uniform round of XY4 DD per window (+ MEM).
    DdXy,
    /// VAQEM-tuned gate scheduling (+ MEM).
    VaqemGs,
    /// VAQEM-tuned XX repetition counts (+ MEM).
    VaqemXx,
    /// VAQEM-tuned XY4 repetition counts (+ MEM).
    VaqemXy,
    /// VAQEM-tuned GS then XY4 (+ MEM) — the headline configuration.
    VaqemGsXy,
    /// One fixed round of ZNE (`ZneConfig::standard`, + MEM) — the naive
    /// comparison for the §IX extension, analogous to the uniform-DD
    /// baselines.
    ZneFixed,
    /// VAQEM-tuned ZNE protocol (+ MEM): scale-factor set and
    /// extrapolation model swept under the acceptance guard.
    VaqemZne,
    /// The full composition: VAQEM-tuned GS, then XY4, then ZNE (+ MEM)
    /// — "VAQEM: GS+XY+ZNE".
    VaqemGsXyZne,
}

impl Strategy {
    /// All strategies in Fig. 12 presentation order.
    pub const ALL: [Strategy; 8] = [
        Strategy::NoEm,
        Strategy::MemBaseline,
        Strategy::VaqemGs,
        Strategy::DdXy,
        Strategy::VaqemXy,
        Strategy::DdXx,
        Strategy::VaqemXx,
        Strategy::VaqemGsXy,
    ];

    /// [`Self::ALL`] extended with the §IX ZNE strategies, in
    /// fixed-before-tuned order.
    pub const WITH_ZNE: [Strategy; 11] = [
        Strategy::NoEm,
        Strategy::MemBaseline,
        Strategy::VaqemGs,
        Strategy::DdXy,
        Strategy::VaqemXy,
        Strategy::DdXx,
        Strategy::VaqemXx,
        Strategy::VaqemGsXy,
        Strategy::ZneFixed,
        Strategy::VaqemZne,
        Strategy::VaqemGsXyZne,
    ];

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::NoEm => "No-EM",
            Strategy::MemBaseline => "MEM (Base)",
            Strategy::DdXx => "XX",
            Strategy::DdXy => "XY",
            Strategy::VaqemGs => "VAQEM: GS",
            Strategy::VaqemXx => "VAQEM: XX",
            Strategy::VaqemXy => "VAQEM: XY",
            Strategy::VaqemGsXy => "VAQEM: GS+XY",
            Strategy::ZneFixed => "ZNE (fixed)",
            Strategy::VaqemZne => "VAQEM: ZNE",
            Strategy::VaqemGsXyZne => "VAQEM: GS+XY+ZNE",
        }
    }

    /// Returns `true` for strategies that require the variational tuner.
    pub fn is_vaqem(self) -> bool {
        matches!(
            self,
            Strategy::VaqemGs
                | Strategy::VaqemXx
                | Strategy::VaqemXy
                | Strategy::VaqemGsXy
                | Strategy::VaqemZne
                | Strategy::VaqemGsXyZne
        )
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// SPSA settings for angle tuning.
    pub spsa: SpsaConfig,
    /// Shots per machine execution.
    pub shots: u64,
    /// Per-window sweep resolution.
    pub sweep_resolution: usize,
    /// Cap on DD repetitions per window.
    pub max_repetitions: usize,
    /// Root seed stream.
    pub seeds: SeedStream,
    /// Number of repeated final evaluations averaged per strategy.
    pub eval_repeats: usize,
}

impl PipelineConfig {
    /// Paper-scale settings (expensive; the bench binaries use this).
    pub fn paper_scale() -> Self {
        PipelineConfig {
            spsa: SpsaConfig::paper_default(),
            shots: 2048,
            sweep_resolution: 6,
            max_repetitions: 24,
            seeds: SeedStream::default(),
            eval_repeats: 3,
        }
    }

    /// Reduced settings for tests and quick runs.
    pub fn quick() -> Self {
        PipelineConfig {
            spsa: SpsaConfig::paper_default().with_iterations(60),
            shots: 256,
            sweep_resolution: 3,
            max_repetitions: 6,
            seeds: SeedStream::new(2024),
            eval_repeats: 1,
        }
    }
}

/// Result of evaluating one strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyResult {
    /// The strategy.
    pub strategy: Strategy,
    /// Mean measured energy over `eval_repeats` evaluations.
    pub energy: f64,
    /// Fraction of the simulated optimal (Fig. 13).
    pub fraction_of_optimal: f64,
    /// Improvement relative to the MEM baseline (Fig. 12).
    pub rel_baseline: f64,
    /// The mitigation configuration used.
    pub config: MitigationConfig,
    /// Machine evaluations spent tuning this strategy (0 for non-VAQEM).
    pub tuning_evaluations: usize,
}

/// Complete result of one benchmark run through the pipeline.
#[derive(Debug, Clone)]
pub struct BenchmarkRun {
    /// Benchmark label.
    pub label: String,
    /// Exact ground energy (simulated optimal).
    pub exact_ground: f64,
    /// Ideal (noise-free) energy at the tuned angles.
    pub ideal_tuned_energy: f64,
    /// Tuned angle parameters.
    pub tuned_params: Vec<f64>,
    /// SPSA convergence trace (Fig. 8 upper panel).
    pub angle_trace: Vec<f64>,
    /// Per-strategy outcomes.
    pub results: Vec<StrategyResult>,
    /// The GS+DD tuning detail for Fig. 14, when run.
    pub combined_tuning: Option<TunedMitigation>,
    /// Aggregate fleet-cache counters over every tuner run of this
    /// pipeline invocation (`None` when no cache session was supplied).
    pub cache_usage: Option<CacheUsage>,
}

/// Aggregate fleet-cache interaction counters of one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheUsage {
    /// Windows warm-started from the store across all tuner stages.
    pub hits: usize,
    /// Windows swept in full across all tuner stages.
    pub misses: usize,
    /// Tuner *invocations* in which at least one stage's acceptance guard
    /// rejected the assembled config (a GS+DD run whose stages both
    /// reject still counts once — per-stage verdicts are merged in
    /// [`WarmStats::guard_rejected`]).
    pub guard_rejections: usize,
}

impl CacheUsage {
    fn absorb(&mut self, stats: WarmStats) {
        self.hits += stats.hits;
        self.misses += stats.misses;
        if stats.guard_rejected {
            self.guard_rejections += 1;
        }
    }
}

impl BenchmarkRun {
    /// The result for one strategy, if evaluated.
    pub fn result(&self, strategy: Strategy) -> Option<&StrategyResult> {
        self.results.iter().find(|r| r.strategy == strategy)
    }
}

/// Phase (a): SPSA angle tuning against the ideal objective.
///
/// Returns `(best_params, trace)`.
///
/// # Errors
///
/// Propagates objective errors.
pub fn tune_angles(
    problem: &VqeProblem,
    spsa_config: &SpsaConfig,
    seeds: &SeedStream,
) -> Result<(Vec<f64>, Vec<f64>), VaqemError> {
    let mut rng = seeds.rng("angle-init");
    use rand::Rng;
    let initial: Vec<f64> = (0..problem.num_params())
        .map(|_| rng.gen_range(-0.5..0.5))
        .collect();
    let result = spsa::minimize(
        |params| {
            problem
                .ideal_energy(params)
                .expect("valid parameter vector")
        },
        &initial,
        spsa_config,
        &seeds.substream("angle-spsa"),
    );
    Ok((result.best_params, result.trace))
}

/// Runs the full pipeline for one problem on one noise environment,
/// evaluating `strategies`.
///
/// # Errors
///
/// Propagates tuning and evaluation errors.
pub fn run_pipeline(
    problem: &VqeProblem,
    noise: &NoiseParameters,
    config: &PipelineConfig,
    strategies: &[Strategy],
) -> Result<BenchmarkRun, VaqemError> {
    run_pipeline_with_cache::<MitigationConfigStore>(problem, noise, config, strategies, None)
}

/// [`run_pipeline`] with an optional fleet-cache session: when `session`
/// is supplied, every VAQEM tuner stage warm-starts from the shared
/// config store (fingerprint hits skip their window's sweep; the §IX-C
/// acceptance guard still gates every assembled configuration) and the
/// run's [`CacheUsage`] is reported on the returned [`BenchmarkRun`].
///
/// Generic over the session's store backend: a deterministic replay
/// passes the single-owner [`MitigationConfigStore`], while a fleet
/// daemon passes an `Arc` of a shared sharded/durable store so many
/// pipelines can tune against one config pool concurrently.
///
/// # Errors
///
/// Propagates tuning and evaluation errors.
pub fn run_pipeline_with_cache<S: MitigationStoreBackend>(
    problem: &VqeProblem,
    noise: &NoiseParameters,
    config: &PipelineConfig,
    strategies: &[Strategy],
    mut session: Option<&mut FleetCacheSession<'_, S>>,
) -> Result<BenchmarkRun, VaqemError> {
    // Phase (a): angle tuning on the ideal simulator.
    let (params, angle_trace) = tune_angles(problem, &config.spsa, &config.seeds)?;
    let ideal_tuned_energy = problem.ideal_energy(&params)?;
    let exact_ground = problem.exact_ground_energy();
    // Metrics are computed on the traceless part: identity terms are a
    // constant no mitigation can touch (see metrics module docs).
    let identity_offset = problem.hamiltonian().identity_offset();

    // Machine backends: MEM-calibrated and raw.
    let mut backend = QuantumBackend::new(noise.clone(), config.seeds.substream("machine"))
        .with_shots(config.shots);
    backend.calibrate_mem();
    let mut backend_no_mem = backend.clone();
    backend_no_mem.clear_mem();

    // Shared tuned configurations (computed lazily, reused across
    // strategies that need them).
    let mut tuned_gs: Option<TunedMitigation> = None;
    let mut tuned_xx: Option<TunedMitigation> = None;
    let mut tuned_xy: Option<TunedMitigation> = None;
    let mut tuned_combined: Option<TunedMitigation> = None;
    let mut tuned_zne: Option<TunedMitigation> = None;
    let mut tuned_combined_zne: Option<TunedMitigation> = None;

    let tuner_config = |seq: DdSequence| WindowTunerConfig {
        sweep_resolution: config.sweep_resolution,
        dd_sequence: seq,
        max_repetitions: config.max_repetitions,
        ..WindowTunerConfig::default()
    };

    // The strategy comparison shares one parameter vector, so the base
    // measurement-group schedules are computed once and reused by every
    // final evaluation (the per-strategy tuners hold their own caches).
    let cache = problem.schedule_groups(&backend, &params)?;

    // Phase (b) part 1: resolve each strategy to a mitigation config
    // (running the per-window tuner where required, warm-started against
    // the fleet cache when a session was supplied).
    let mut usage = session.as_ref().map(|_| CacheUsage::default());
    let mut resolved: Vec<(Strategy, MitigationConfig, usize)> =
        Vec::with_capacity(strategies.len());
    for &strategy in strategies {
        let (cfg, tuning_evals): (MitigationConfig, usize) = match strategy {
            Strategy::NoEm | Strategy::MemBaseline => (MitigationConfig::baseline(), 0),
            Strategy::DdXx => (uniform_dd_config(&backend, &cache, DdSequence::Xx)?, 0),
            Strategy::DdXy => (uniform_dd_config(&backend, &cache, DdSequence::Xy4)?, 0),
            Strategy::VaqemGs => {
                if tuned_gs.is_none() {
                    let tuner = WindowTuner::new(problem, &backend, tuner_config(DdSequence::Xy4));
                    tuned_gs = Some(match session.as_deref_mut() {
                        Some(s) => {
                            let report = tuner.tune_gs_warm(&params, s)?;
                            usage
                                .as_mut()
                                .expect("usage set with session")
                                .absorb(report.stats);
                            report.tuned
                        }
                        None => tuner.tune_gs(&params)?,
                    });
                }
                let t = tuned_gs.as_ref().expect("just set");
                (t.config.clone(), t.evaluations)
            }
            Strategy::VaqemXx => {
                if tuned_xx.is_none() {
                    let tuner = WindowTuner::new(problem, &backend, tuner_config(DdSequence::Xx));
                    tuned_xx = Some(match session.as_deref_mut() {
                        Some(s) => {
                            let report = tuner.tune_dd_warm(&params, s)?;
                            usage
                                .as_mut()
                                .expect("usage set with session")
                                .absorb(report.stats);
                            report.tuned
                        }
                        None => tuner.tune_dd(&params)?,
                    });
                }
                let t = tuned_xx.as_ref().expect("just set");
                (t.config.clone(), t.evaluations)
            }
            Strategy::VaqemXy => {
                if tuned_xy.is_none() {
                    let tuner = WindowTuner::new(problem, &backend, tuner_config(DdSequence::Xy4));
                    tuned_xy = Some(match session.as_deref_mut() {
                        Some(s) => {
                            let report = tuner.tune_dd_warm(&params, s)?;
                            usage
                                .as_mut()
                                .expect("usage set with session")
                                .absorb(report.stats);
                            report.tuned
                        }
                        None => tuner.tune_dd(&params)?,
                    });
                }
                let t = tuned_xy.as_ref().expect("just set");
                (t.config.clone(), t.evaluations)
            }
            Strategy::VaqemGsXy => {
                if tuned_combined.is_none() {
                    let tuner = WindowTuner::new(problem, &backend, tuner_config(DdSequence::Xy4));
                    tuned_combined = Some(match session.as_deref_mut() {
                        Some(s) => {
                            let report = tuner.tune_combined_warm(&params, s)?;
                            usage
                                .as_mut()
                                .expect("usage set with session")
                                .absorb(report.stats);
                            report.tuned
                        }
                        None => tuner.tune_combined(&params)?,
                    });
                }
                let t = tuned_combined.as_ref().expect("just set");
                (t.config.clone(), t.evaluations)
            }
            Strategy::ZneFixed => (
                MitigationConfig::zero_noise_extrapolation(ZneConfig::standard()),
                0,
            ),
            Strategy::VaqemZne => {
                if tuned_zne.is_none() {
                    let tuner = WindowTuner::new(problem, &backend, tuner_config(DdSequence::Xy4));
                    tuned_zne = Some(match session.as_deref_mut() {
                        Some(s) => {
                            let report = tuner.tune_zne_warm(&params, s)?;
                            usage
                                .as_mut()
                                .expect("usage set with session")
                                .absorb(report.stats);
                            report.tuned
                        }
                        None => tuner.tune_zne(&params)?,
                    });
                }
                let t = tuned_zne.as_ref().expect("just set");
                (t.config.clone(), t.evaluations)
            }
            Strategy::VaqemGsXyZne => {
                if tuned_combined_zne.is_none() {
                    let tuner = WindowTuner::new(problem, &backend, tuner_config(DdSequence::Xy4));
                    tuned_combined_zne = Some(match session.as_deref_mut() {
                        Some(s) => {
                            // The composed (dd, gs, zne) choice is cached
                            // as one unit — see tune_combined_zne_warm.
                            let report = tuner.tune_combined_zne_warm(&params, s)?;
                            usage
                                .as_mut()
                                .expect("usage set with session")
                                .absorb(report.stats);
                            report.tuned
                        }
                        None => tuner.tune_combined_zne(&params)?,
                    });
                }
                let t = tuned_combined_zne.as_ref().expect("just set");
                (t.config.clone(), t.evaluations)
            }
        };
        resolved.push((strategy, cfg, tuning_evals));
    }

    // Phase (b) part 2: all final evaluations — every strategy times every
    // repeat — go out as one batch per backend (MEM on vs. off), through
    // Executor::run_batch. Job indices match the historical sequential
    // path: repeat r of any strategy evaluates at job 500_000 + r.
    let repeats = config.eval_repeats.max(1);
    let energies = evaluate_resolved(
        problem,
        &backend,
        &backend_no_mem,
        &cache,
        &resolved,
        repeats,
    );

    let mut results = Vec::with_capacity(strategies.len());
    let mut baseline_energy: Option<f64> = None;
    for ((strategy, cfg, tuning_evals), energy) in resolved.into_iter().zip(energies) {
        if strategy == Strategy::MemBaseline {
            baseline_energy = Some(energy);
        }
        results.push(StrategyResult {
            strategy,
            energy,
            fraction_of_optimal: metrics::fraction_of_optimal_adjusted(
                energy,
                exact_ground,
                identity_offset,
            ),
            rel_baseline: 1.0, // filled below once the baseline is known
            config: cfg,
            tuning_evaluations: tuning_evals,
        });
    }

    // Fill Fig. 12 ratios.
    if let Some(base) = baseline_energy {
        for r in results.iter_mut() {
            r.rel_baseline = metrics::improvement_rel_baseline_adjusted(
                r.energy,
                base,
                exact_ground,
                identity_offset,
            );
        }
    }

    Ok(BenchmarkRun {
        label: problem.label().to_string(),
        exact_ground,
        ideal_tuned_energy,
        tuned_params: params,
        angle_trace,
        results,
        combined_tuning: tuned_combined,
        cache_usage: usage,
    })
}

/// Evaluates every resolved `(strategy, config)` with `repeats` averaged
/// repetitions, batching all jobs for each backend into a single
/// `run_batch` dispatch. Returns one mean energy per strategy, in order.
fn evaluate_resolved<E: Executor>(
    problem: &VqeProblem,
    backend: &QuantumBackend<E>,
    backend_no_mem: &QuantumBackend<E>,
    cache: &GroupSchedules,
    resolved: &[(Strategy, MitigationConfig, usize)],
    repeats: usize,
) -> Vec<f64> {
    // Partition evaluations by backend while remembering their slot.
    let mut with_mem: Vec<(usize, (MitigationConfig, u64))> = Vec::new();
    let mut without_mem: Vec<(usize, (MitigationConfig, u64))> = Vec::new();
    for (slot, (strategy, cfg, _)) in resolved.iter().enumerate() {
        let bucket = if *strategy == Strategy::NoEm {
            &mut without_mem
        } else {
            &mut with_mem
        };
        for r in 0..repeats {
            bucket.push((slot, (cfg.clone(), 500_000 + r as u64)));
        }
    }
    let mut sums = vec![0.0f64; resolved.len()];
    for (be, bucket) in [(backend, with_mem), (backend_no_mem, without_mem)] {
        let evals: Vec<(MitigationConfig, u64)> = bucket.iter().map(|(_, e)| e.clone()).collect();
        for ((slot, _), energy) in bucket
            .iter()
            .zip(problem.machine_energy_batch(be, cache, &evals))
        {
            sums[*slot] += energy;
        }
    }
    sums.into_iter().map(|s| s / repeats as f64).collect()
}

/// The naive DD comparison: one repetition in every window (§VII-B: "a
/// single round / sequence of DD within the idle windows").
fn uniform_dd_config<E: Executor>(
    backend: &QuantumBackend<E>,
    cache: &GroupSchedules,
    sequence: DdSequence,
) -> Result<MitigationConfig, VaqemError> {
    let scheduled = cache
        .schedules()
        .first()
        .ok_or_else(|| VaqemError::Config {
            message: "no measurement groups".into(),
        })?;
    let pulse = backend.durations().single_qubit_ns();
    let n = DdPass::new(sequence, pulse, pulse).windows(scheduled).len();
    Ok(MitigationConfig::dynamical_decoupling(sequence, vec![1; n]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaqem_ansatz::su2::{EfficientSu2, Entanglement};
    use vaqem_pauli::models::tfim_paper;

    fn tiny_problem() -> VqeProblem {
        let ansatz = EfficientSu2::new(2, 1, Entanglement::Linear)
            .circuit()
            .unwrap();
        VqeProblem::new("tiny", tfim_paper(2), ansatz).unwrap()
    }

    #[test]
    fn angle_tuning_converges_toward_ground() {
        let p = tiny_problem();
        let cfg = SpsaConfig::paper_default().with_iterations(150);
        let (params, trace) = tune_angles(&p, &cfg, &SeedStream::new(31)).unwrap();
        let e = p.ideal_energy(&params).unwrap();
        let e0 = p.exact_ground_energy();
        assert!(e >= e0 - 1e-9, "variational bound");
        // Within 15% of ground for a 2-qubit TFIM.
        assert!((e - e0).abs() < 0.15 * e0.abs(), "tuned {e} vs ground {e0}");
        assert_eq!(trace.len(), 150);
    }

    #[test]
    fn pipeline_produces_all_requested_strategies() {
        let p = tiny_problem();
        let noise = vaqem_device::noise::NoiseParameters::uniform(2);
        let cfg = PipelineConfig::quick();
        let strategies = [Strategy::NoEm, Strategy::MemBaseline, Strategy::DdXx];
        let run = run_pipeline(&p, &noise, &cfg, &strategies).unwrap();
        assert_eq!(run.results.len(), 3);
        assert!(run.result(Strategy::MemBaseline).is_some());
        assert!(run.result(Strategy::VaqemGsXy).is_none());
        for r in &run.results {
            assert!(r.energy.is_finite());
            assert!((0.0..=1.0).contains(&r.fraction_of_optimal));
        }
    }

    #[test]
    fn vaqem_strategy_runs_and_is_sound() {
        let p = tiny_problem();
        let noise = vaqem_device::noise::NoiseParameters::uniform(2);
        let cfg = PipelineConfig::quick();
        let run = run_pipeline(
            &p,
            &noise,
            &cfg,
            &[Strategy::MemBaseline, Strategy::VaqemXx],
        )
        .unwrap();
        let vaqem = run.result(Strategy::VaqemXx).unwrap();
        // Soundness: measured energy never meaningfully below the optimum.
        assert!(crate::soundness::measured_energy_is_sound(
            vaqem.energy,
            run.exact_ground,
            0.5
        ));
        assert!(vaqem.rel_baseline > 0.0);
    }

    #[test]
    fn strategy_labels_match_paper() {
        assert_eq!(Strategy::VaqemGsXy.label(), "VAQEM: GS+XY");
        assert_eq!(Strategy::MemBaseline.label(), "MEM (Base)");
        assert!(Strategy::VaqemXy.is_vaqem());
        assert!(!Strategy::DdXy.is_vaqem());
        assert_eq!(Strategy::VaqemGsXyZne.label(), "VAQEM: GS+XY+ZNE");
        assert!(Strategy::VaqemZne.is_vaqem());
        assert!(!Strategy::ZneFixed.is_vaqem());
        assert_eq!(&Strategy::WITH_ZNE[..Strategy::ALL.len()], &Strategy::ALL);
    }

    #[test]
    fn zne_strategies_run_end_to_end() {
        let p = tiny_problem();
        let noise = vaqem_device::noise::NoiseParameters::uniform(2);
        let cfg = PipelineConfig::quick();
        let run = run_pipeline(
            &p,
            &noise,
            &cfg,
            &[
                Strategy::MemBaseline,
                Strategy::ZneFixed,
                Strategy::VaqemZne,
            ],
        )
        .unwrap();
        assert_eq!(run.results.len(), 3);
        let fixed = run.result(Strategy::ZneFixed).unwrap();
        assert_eq!(fixed.config.zne, Some(ZneConfig::standard()));
        assert_eq!(fixed.tuning_evaluations, 0, "fixed ZNE is not tuned");
        let tuned = run.result(Strategy::VaqemZne).unwrap();
        assert!(tuned.tuning_evaluations > 0);
        for r in &run.results {
            assert!(r.energy.is_finite());
            assert!(crate::soundness::measured_energy_is_sound(
                r.energy,
                run.exact_ground,
                0.5
            ));
        }
    }
}
