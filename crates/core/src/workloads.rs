//! The scenario-matrix workload catalog: the circuit families the
//! verification grid crosses against device classes and tenant mixes.
//!
//! [`crate::benchmarks`] reproduces the paper's Table I applications
//! verbatim; this module is the *harness-facing* complement. Each
//! [`ScenarioWorkload`] is a named VQA instance spanning a distinct
//! structural regime the fleet daemon must handle identically:
//!
//! * [`ScenarioWorkload::TfimSu2`] — the paper's hardware-efficient
//!   staple: a transverse-field Ising Hamiltonian on an EfficientSU2
//!   ansatz. `reps` controls depth, so the same constructor yields both
//!   the shallow default and the "deeper ansatz" grid row (more idle
//!   windows, more knobs per session).
//! * [`ScenarioWorkload::H2Ucc`] — chemistry end-to-end: the 4-qubit
//!   STO-3G H2 Hamiltonian on the compact UCC-doubles ansatz
//!   (Hartree-Fock reference plus one shared-angle double-excitation
//!   Pauli rotation — exact for H2). The full Trotterized UCCSD stays
//!   with the paper-reproduction benchmarks
//!   (`crate::benchmarks::BenchmarkId::UccsdH2`); at scenario-grid noise
//!   levels its 26 µs circuit body drowns idle-window mitigation in
//!   gate-time decoherence, which the acceptance guard rightly refuses
//!   to cache.
//! * [`ScenarioWorkload::QaoaRing`] — a QAOA-style ansatz on the same
//!   TFIM-ring cost Hamiltonian: `H` layer, then alternating cost
//!   (`CX·RZ·CX` per ring edge) and mixer (`RX` per qubit) layers with
//!   **shared** parameter indices per layer — the regime where one bound
//!   parameter fans out across many gates and idle windows repeat.
//!
//! Everything needed to run a workload through the daemon comes from
//! [`ScenarioWorkload::problem`] plus the sizing hints
//! ([`ScenarioWorkload::num_qubits`], [`ScenarioWorkload::windows_hint`]),
//! so a harness can build its `WorkloadProfile` without peeking inside
//! the circuit.

use crate::error::VaqemError;
use crate::vqe::VqeProblem;
use vaqem_ansatz::su2::{EfficientSu2, Entanglement};
use vaqem_ansatz::uccsd::uccsd_h2_compact;
use vaqem_circuit::circuit::QuantumCircuit;
use vaqem_pauli::models::{h2_sto3g, tfim_paper, tfim_ring};

/// One workload row of the scenario matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioWorkload {
    /// TFIM on an EfficientSU2 ansatz: `qubits` wide, `reps` repetition
    /// layers deep (`reps >= 3` is the grid's "deeper ansatz" row).
    TfimSu2 {
        /// Hamiltonian and ansatz width.
        qubits: usize,
        /// SU2 repetition layers.
        reps: usize,
    },
    /// H2/STO-3G on the compact UCC-doubles ansatz (fixed 4-qubit
    /// chemistry; one Givens-rotation parameter, exact for H2).
    H2Ucc,
    /// QAOA-style alternating cost/mixer ansatz on a TFIM ring, with
    /// one shared cost parameter and one shared mixer parameter per
    /// layer.
    QaoaRing {
        /// Ring width (cost edges close the loop for `qubits >= 3`).
        qubits: usize,
        /// Alternating cost+mixer layer pairs.
        layers: usize,
    },
}

impl ScenarioWorkload {
    /// Stable grid label, e.g. `tfim-su2-6q-2r`, `h2-ucc-4q`,
    /// `qaoa-ring-4q-2p`.
    pub fn label(&self) -> String {
        match self {
            ScenarioWorkload::TfimSu2 { qubits, reps } => format!("tfim-su2-{qubits}q-{reps}r"),
            ScenarioWorkload::H2Ucc => "h2-ucc-4q".to_string(),
            ScenarioWorkload::QaoaRing { qubits, layers } => {
                format!("qaoa-ring-{qubits}q-{layers}p")
            }
        }
    }

    /// Width of the workload's Hamiltonian and ansatz.
    pub fn num_qubits(&self) -> usize {
        match self {
            ScenarioWorkload::TfimSu2 { qubits, .. } => *qubits,
            ScenarioWorkload::H2Ucc => 4,
            ScenarioWorkload::QaoaRing { qubits, .. } => *qubits,
        }
    }

    /// Rough idle-window count for `WorkloadProfile` sizing (the cost
    /// model only needs the right order of magnitude).
    pub fn windows_hint(&self) -> usize {
        match self {
            ScenarioWorkload::TfimSu2 { qubits, reps } => (qubits * reps).max(4),
            ScenarioWorkload::H2Ucc => 4,
            ScenarioWorkload::QaoaRing { qubits, layers } => (qubits * layers).max(4),
        }
    }

    /// Builds the full VQE problem (Hamiltonian, ansatz, measurement
    /// groups, exact ground energy).
    ///
    /// # Errors
    ///
    /// Returns a configuration error when the ansatz cannot be built —
    /// degenerate sizes such as a 0-qubit ring.
    pub fn problem(&self) -> Result<VqeProblem, VaqemError> {
        match self {
            ScenarioWorkload::TfimSu2 { qubits, reps } => {
                let ansatz = EfficientSu2::new(*qubits, *reps, Entanglement::Linear).circuit()?;
                VqeProblem::new(self.label(), tfim_paper(*qubits), ansatz)
            }
            ScenarioWorkload::H2Ucc => {
                VqeProblem::new(self.label(), h2_sto3g(), uccsd_h2_compact()?)
            }
            ScenarioWorkload::QaoaRing { qubits, layers } => {
                let ansatz = qaoa_ring_ansatz(*qubits, *layers)?;
                VqeProblem::new(self.label(), tfim_ring(*qubits, 1.0, 1.0), ansatz)
            }
        }
    }
}

/// The QAOA-style ansatz: `H` on every qubit, then `layers` pairs of a
/// cost layer (for each ring edge `(a, b)`: `CX(a,b)`, `RZ(gamma_k)` on
/// `b`, `CX(a,b)`) and a mixer layer (`RX(beta_k)` on every qubit).
///
/// Parameter indices are shared within a layer — index `2k` is the cost
/// angle, `2k + 1` the mixer angle — so binding one value rotates every
/// gate of the layer, exactly the QAOA parameterization.
///
/// # Errors
///
/// Returns a circuit error for degenerate widths (`qubits < 2`).
pub fn qaoa_ring_ansatz(qubits: usize, layers: usize) -> Result<QuantumCircuit, VaqemError> {
    let mut circuit = QuantumCircuit::new(qubits);
    let mut edges: Vec<(usize, usize)> =
        (0..qubits.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    if qubits >= 3 {
        edges.push((qubits - 1, 0)); // close the ring
    }
    for q in 0..qubits {
        circuit.h(q)?;
    }
    for k in 0..layers {
        let (gamma, beta) = (2 * k, 2 * k + 1);
        for &(a, b) in &edges {
            circuit.cx(a, b)?;
            circuit.rz_param(gamma, b)?;
            circuit.cx(a, b)?;
        }
        for q in 0..qubits {
            circuit.rx_param(beta, q)?;
        }
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qaoa_ansatz_has_two_params_per_layer() {
        let c = qaoa_ring_ansatz(4, 3).expect("builds");
        assert_eq!(c.num_params(), 6, "one gamma + one beta per layer");
        assert_eq!(c.num_qubits(), 4);
    }

    #[test]
    fn every_workload_builds_a_consistent_problem() {
        let all = [
            ScenarioWorkload::TfimSu2 { qubits: 4, reps: 2 },
            ScenarioWorkload::TfimSu2 { qubits: 4, reps: 4 },
            ScenarioWorkload::H2Ucc,
            ScenarioWorkload::QaoaRing {
                qubits: 4,
                layers: 2,
            },
        ];
        for w in all {
            let p = w.problem().unwrap_or_else(|e| panic!("{}: {e}", w.label()));
            assert_eq!(p.ansatz().num_qubits(), w.num_qubits(), "{}", w.label());
            assert!(p.num_params() > 0, "{}", w.label());
            assert!(p.exact_ground_energy().is_finite(), "{}", w.label());
        }
    }

    #[test]
    fn deeper_ansatz_really_is_deeper() {
        let shallow = ScenarioWorkload::TfimSu2 { qubits: 4, reps: 2 }
            .problem()
            .expect("builds");
        let deep = ScenarioWorkload::TfimSu2 { qubits: 4, reps: 4 }
            .problem()
            .expect("builds");
        assert!(deep.num_params() > shallow.num_params());
        assert!(deep.ansatz().cx_depth() > shallow.ansatz().cx_depth());
    }

    #[test]
    fn labels_are_stable_grid_keys() {
        assert_eq!(
            ScenarioWorkload::TfimSu2 { qubits: 6, reps: 2 }.label(),
            "tfim-su2-6q-2r"
        );
        assert_eq!(ScenarioWorkload::H2Ucc.label(), "h2-ucc-4q");
        assert_eq!(
            ScenarioWorkload::QaoaRing {
                qubits: 4,
                layers: 2
            }
            .label(),
            "qaoa-ring-4q-2p"
        );
    }
}
