//! Property-based parity suite for the optimized simulation hot paths.
//!
//! Every optimized engine in `vaqem-sim` keeps its pre-optimization
//! implementation alive in [`vaqem_sim::naive`] as an executable oracle.
//! These properties drive both sides with randomized circuits (widths
//! 1–10, mixed gate sets, random angles and delays) and pin the contracts
//! the kernel rewrites promise:
//!
//! * raw gate kernels are **bit-identical** to the original index-filtered
//!   loops (same arithmetic, same order);
//! * the fused circuit runner matches the gate-at-a-time reference to
//!   1e-12 (fusion reassociates products, so exact equality is not owed);
//! * CDF shot sampling consumes the RNG stream exactly like the original
//!   linear scan (bit-identical histograms);
//! * exact-counts apportionment always totals the requested shots;
//! * the trajectory machine is deterministic and shot-range splitting
//!   merges back to the sequential run bit for bit;
//! * the density engine's sub-block sweeps match the embed-and-multiply
//!   originals to 1e-12.
//!
//! Cases derive from a fixed root seed (override with `PROPTEST_RNG_SEED`)
//! so failures replay deterministically.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vaqem_circuit::circuit::QuantumCircuit;
use vaqem_circuit::schedule::{schedule, DurationModel, ScheduleKind, ScheduledCircuit};
use vaqem_device::noise::NoiseParameters;
use vaqem_mathkit::c64;
use vaqem_mathkit::complex::Complex64;
use vaqem_mathkit::rng::SeedStream;
use vaqem_sim::machine::MachineExecutor;
use vaqem_sim::statevector::StateVector;
use vaqem_sim::{density, naive};

/// One randomized gate-mix element: `(kind, angle, qubit pick, qubit pick)`.
/// Qubit picks are reduced modulo the circuit width at build time so one
/// strategy serves every width.
type OpSpec = (u8, f64, usize, usize);

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    (0u8..14, -3.0f64..3.0, 0usize..10, 0usize..10)
}

/// Materializes a random op list into a concrete circuit of width `n`.
fn build_circuit(n: usize, ops: &[OpSpec]) -> QuantumCircuit {
    let mut qc = QuantumCircuit::new(n);
    for &(kind, theta, a, b) in ops {
        let q = a % n;
        let q2 = b % n;
        match kind {
            0 => qc.h(q).unwrap(),
            1 => qc.x(q).unwrap(),
            2 => qc.y(q).unwrap(),
            3 => qc.z(q).unwrap(),
            4 => qc.sx(q).unwrap(),
            5 => qc.rx(theta, q).unwrap(),
            6 => qc.ry(theta, q).unwrap(),
            7 => qc.rz(theta, q).unwrap(),
            8 => qc.s(q).unwrap(),
            9..=11 => {
                if n < 2 {
                    continue;
                }
                let q2 = if q2 == q { (q + 1) % n } else { q2 };
                match kind {
                    9 => qc.cx(q, q2).unwrap(),
                    10 => qc.cz(q, q2).unwrap(),
                    _ => qc.swap(q, q2).unwrap(),
                }
            }
            12 => qc.id(q).unwrap(),
            _ => qc.delay(theta.abs() * 1_000.0, q).unwrap(),
        };
    }
    qc
}

fn sched(qc: &QuantumCircuit) -> ScheduledCircuit {
    schedule(qc, &DurationModel::ibm_default(), ScheduleKind::Asap).unwrap()
}

fn random_state(n: usize, parts: &[(f64, f64)]) -> Vec<Complex64> {
    (0..1usize << n)
        .map(|i| {
            let (re, im) = parts[i % parts.len()];
            c64(re + i as f64 * 1e-3, im - i as f64 * 1e-3)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fused_kernel_run_matches_naive_reference(
        n in 1usize..11,
        ops in collection::vec(op_strategy(), 0..24),
    ) {
        let qc = build_circuit(n, &ops);
        let fast = StateVector::run(&qc).unwrap();
        let slow = naive::run(&qc).unwrap();
        for (i, (a, b)) in fast.amplitudes().iter().zip(slow.amplitudes()).enumerate() {
            prop_assert!(
                a.approx_eq(*b, 1e-12),
                "amplitude {i} diverged: {a:?} vs {b:?} (width {n}, {} ops)",
                ops.len()
            );
        }
    }

    #[test]
    fn gate_kernels_are_bit_identical_to_naive_loops(
        n in 1usize..9,
        parts in collection::vec((-1.0f64..1.0, -1.0f64..1.0), 4..16),
        kind in 0u8..12,
        theta in -3.0f64..3.0,
        picks in (0usize..10, 0usize..10),
    ) {
        let amps = random_state(n, &parts);
        let qc = build_circuit(n, &[(kind, theta, picks.0, picks.1)]);
        let mut fast = StateVector::from_amplitudes(amps.clone());
        let mut slow = StateVector::from_amplitudes(amps);
        for ins in qc.instructions() {
            let u = ins.gate.unitary().unwrap();
            match ins.qubits.len() {
                1 => {
                    fast.apply_single(&u, ins.qubits[0]);
                    naive::apply_single(&mut slow, &u, ins.qubits[0]);
                }
                _ => {
                    fast.apply_two(&u, ins.qubits[0], ins.qubits[1]);
                    naive::apply_two(&mut slow, &u, ins.qubits[0], ins.qubits[1]);
                }
            }
        }
        prop_assert_eq!(fast.amplitudes(), slow.amplitudes());
    }

    #[test]
    fn cdf_sampling_is_bit_identical_to_linear_scan(
        n in 1usize..9,
        ops in collection::vec(op_strategy(), 1..16),
        seed in 0u64..1_000_000,
        shots in 1u64..600,
    ) {
        let sv = StateVector::run(&build_circuit(n, &ops)).unwrap();
        let fast = sv.sample_counts(&mut StdRng::seed_from_u64(seed), shots);
        let slow = naive::sample_counts(&sv, &mut StdRng::seed_from_u64(seed), shots);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn exact_counts_always_total_shots(
        n in 1usize..11,
        ops in collection::vec(op_strategy(), 1..16),
        shots in 1u64..5_000,
    ) {
        let sv = StateVector::run(&build_circuit(n, &ops)).unwrap();
        prop_assert_eq!(sv.exact_counts(shots).total(), shots);
    }

    #[test]
    fn density_sweeps_match_embedded_reference(
        n in 1usize..4,
        ops in collection::vec(op_strategy(), 1..10),
    ) {
        let s = sched(&build_circuit(n, &ops));
        let noise = NoiseParameters::uniform(n);
        let fast = density::run_markovian(&s, &noise);
        let slow = naive::density_run_markovian(&s, &noise);
        let diff = fast.matrix().max_abs_diff(slow.matrix());
        prop_assert!(diff < 1e-12, "density engines diverged by {diff}");
    }
}

proptest! {
    // Trajectory properties run whole shot loops per case, so fewer cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn trajectory_machine_is_deterministic_and_split_invariant(
        n in 1usize..4,
        ops in collection::vec(op_strategy(), 1..10),
        shots in 1u64..180,
        split in 0u64..180,
        job in 0u64..32,
    ) {
        let mut qc = build_circuit(n, &ops);
        qc.measure_all();
        let s = sched(&qc);
        let exec = MachineExecutor::new(NoiseParameters::uniform(n), SeedStream::new(1234));
        let full = exec.run_job_with_shots(&s, shots, job);
        prop_assert_eq!(full.total(), shots);
        // Re-running is bit-identical (no hidden global state).
        prop_assert_eq!(&full, &exec.run_job_with_shots(&s, shots, job));
        // Any split point merges back to the sequential histogram.
        let k = split % (shots + 1);
        let mut merged = exec.run_job_shot_range(&s, job, 0..k);
        merged.merge(&exec.run_job_shot_range(&s, job, k..shots));
        prop_assert_eq!(&full, &merged);
    }
}
