//! The noisy "machine": a quantum-trajectory executor.
//!
//! This engine plays the role of the real IBM backend in the paper. Each
//! shot is a Monte-Carlo wave-function trajectory evolved along the
//! scheduled timeline:
//!
//! * **Quasi-static detuning** — every trajectory samples a per-qubit
//!   angular detuning from `N(0, sigma)`. The qubit accumulates phase
//!   `delta * t` during idle time. Because the detuning is constant within a
//!   trajectory, an X (or Y) pulse placed mid-window *refocuses* the phase —
//!   this is exactly the physics that makes Hahn echo (Fig. 4), gate
//!   scheduling (Fig. 6) and DD (Fig. 5) work on hardware, and that a
//!   Markovian calibration model misses (Fig. 9).
//! * **Telegraph noise** — the detuning sign flips at a Poisson rate within
//!   the trajectory, so refocusing degrades over long free-evolution
//!   stretches. Shorter DD periods track the noise better, while each pulse
//!   adds gate error: the resulting trade-off produces the interior optima
//!   of Fig. 5.
//! * **Markovian decoherence** — amplitude damping (T1) and pure dephasing
//!   (from T2) as stochastic jumps (MCWF); depolarizing gate errors as
//!   sampled Pauli insertions; classical readout flips.
//! * **ZZ crosstalk** — always-on `exp(-i zeta t ZZ/2)` between coupled
//!   pairs, which DD also decouples.
//!
//! # Hot-path structure
//!
//! A job replays one schedule for every shot, so the executor compiles the
//! schedule once per job (`CompiledSchedule`): gate unitaries are fetched
//! and unpacked once, the timeline's free-evolution segments (which qubits
//! have started, per-segment damping/dephasing probabilities, ZZ phases —
//! all RNG-independent) are resolved up front, and the per-shot loop reuses
//! one statevector plus scratch buffers (`TrajectoryScratch`) instead of
//! allocating per trajectory. Runs of same-qubit single-qubit gates with no
//! free evolution between them (e.g. virtual-RZ clusters) fuse
//! optimistically into one 2x2 product: per-gate error *draws* still happen
//! at their original positions in the RNG stream, and a firing error
//! flushes the accumulated product before the Pauli lands, so the stream is
//! consumed draw-for-draw exactly as the original per-gate path consumed
//! it. The original path survives in [`crate::naive`] as the parity oracle.

use crate::counts::Counts;
use crate::fusion;
use crate::kernels;
use crate::statevector::StateVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vaqem_circuit::gate::Gate;
use vaqem_circuit::schedule::ScheduledCircuit;
use vaqem_device::noise::NoiseParameters;
use vaqem_mathkit::rng::{indexed_seed, sample_standard_normal, SeedStream};
use vaqem_mathkit::smallmat::{M2, M4};
use vaqem_mathkit::Complex64;

/// Default number of shots per execution, matching common IBM submissions.
pub const DEFAULT_SHOTS: u64 = 2048;

/// A noisy trajectory-based executor standing in for a quantum backend.
#[derive(Debug, Clone)]
pub struct MachineExecutor {
    noise: NoiseParameters,
    seeds: SeedStream,
    shots: u64,
}

/// Per-qubit free-evolution parameters for one timeline segment, resolved
/// at compile time (everything here is schedule- and noise-determined).
#[derive(Debug, Clone)]
struct FreeQubit {
    q: usize,
    telegraph_rate: f64,
    /// Amplitude-damping probability scale `1 - exp(-dt/T1)`; `0.0` skips
    /// the damping step (and its RNG draw), matching the original early
    /// return for non-positive gamma.
    gamma: f64,
    /// Precomputed no-jump damping factor `sqrt(1 - gamma)`.
    damp: f64,
    /// Pure-dephasing flip probability; `None` when the dephasing rate is
    /// zero (no RNG draw), `Some(p)` when the rate is positive (one draw,
    /// even if `p` underflows to zero — as the original path drew).
    dephase_p: Option<f64>,
}

/// One resolved free-evolution stretch of the timeline.
#[derive(Debug, Clone)]
struct FreeSegment {
    dt: f64,
    /// Started qubits in ascending order (the original iteration order).
    qubits: Vec<FreeQubit>,
    /// Started coupled pairs with the accumulated angle `zeta * dt`.
    zz: Vec<(usize, usize, f64)>,
}

/// One step of the compiled per-job program.
#[derive(Debug, Clone)]
enum Step {
    Free(FreeSegment),
    Gate1 {
        q: usize,
        u: M2,
        err_p: f64,
    },
    Gate2 {
        q_hi: usize,
        q_lo: usize,
        u: M4,
        err_p: f64,
    },
}

/// A schedule compiled against a noise description: unpacked gate matrices
/// and fully resolved free-evolution segments, shared by every shot of a
/// job.
#[derive(Debug, Clone)]
struct CompiledSchedule {
    num_qubits: usize,
    steps: Vec<Step>,
    /// Per-qubit quasi-static detuning sigma.
    sigma: Vec<f64>,
    /// Per-qubit readout flip probabilities `(p01, p10)`.
    readout: Vec<(f64, f64)>,
}

impl CompiledSchedule {
    /// Resolves `scheduled` against `noise`, replicating the original
    /// timeline walk: `now` tracks the previous op's start time and only
    /// advances when a gap above 1 ps opens, gaps therefore accumulate
    /// across sub-picosecond spacings exactly as before, and `started`
    /// flips after every non-barrier op (including measure/delay/id).
    fn compile(scheduled: &ScheduledCircuit, noise: &NoiseParameters) -> Self {
        let n = scheduled.num_qubits();
        let zz: Vec<((usize, usize), f64)> = noise
            .zz_couplings()
            .filter(|((a, b), _)| *a < n && *b < n)
            .collect();
        let mut steps = Vec::new();
        let mut now = 0.0f64;
        let mut started = vec![false; n];
        let segment = |dt: f64, started: &[bool]| -> FreeSegment {
            let qubits = (0..n)
                .filter(|&q| started[q])
                .map(|q| {
                    let qn = noise.qubit(q);
                    let gamma = if qn.t1_ns.is_finite() {
                        1.0 - (-dt / qn.t1_ns).exp()
                    } else {
                        0.0
                    };
                    let rate = qn.pure_dephasing_rate();
                    let dephase_p = if rate > 0.0 {
                        Some(0.5 * (1.0 - (-dt * rate).exp()))
                    } else {
                        None
                    };
                    let gamma = gamma.max(0.0);
                    FreeQubit {
                        q,
                        telegraph_rate: qn.telegraph_rate_per_ns,
                        gamma,
                        damp: (1.0 - gamma).sqrt(),
                        dephase_p,
                    }
                })
                .collect();
            let zz = zz
                .iter()
                .filter(|((a, b), _)| started[*a] && started[*b])
                .map(|&((a, b), zeta)| (a, b, zeta * dt))
                .collect();
            FreeSegment { dt, qubits, zz }
        };
        for op in scheduled.ops() {
            if matches!(op.gate, Gate::Barrier) {
                continue;
            }
            let dt = op.start_ns - now;
            if dt > 1e-9 {
                steps.push(Step::Free(segment(dt, &started)));
                now = op.start_ns;
            }
            match op.gate {
                Gate::Measure | Gate::Delay { .. } | Gate::I => {}
                ref g => match op.qubits.len() {
                    1 => steps.push(Step::Gate1 {
                        q: op.qubits[0],
                        u: fusion::gate_m2(g).expect("scheduled circuits are concrete"),
                        err_p: noise.qubit(op.qubits[0]).gate_error_1q,
                    }),
                    2 => steps.push(Step::Gate2 {
                        q_hi: op.qubits[0],
                        q_lo: op.qubits[1],
                        u: fusion::gate_m4(g).expect("scheduled circuits are concrete"),
                        err_p: noise.cx_error(op.qubits[0], op.qubits[1]),
                    }),
                    k => panic!("unsupported arity {k}"),
                },
            }
            for &q in &op.qubits {
                started[q] = true;
            }
        }
        let tail = scheduled.total_ns() - now;
        if tail > 1e-9 {
            steps.push(Step::Free(segment(tail, &started)));
        }
        CompiledSchedule {
            num_qubits: n,
            steps,
            sigma: (0..n)
                .map(|q| noise.qubit(q).quasi_static_sigma_rad_ns)
                .collect(),
            readout: (0..n)
                .map(|q| {
                    let qn = noise.qubit(q);
                    (qn.readout_p01, qn.readout_p10)
                })
                .collect(),
        }
    }
}

/// Buffers reused across every shot of a job: the statevector, the
/// quasi-static environment, and the per-qubit pending fused products.
#[derive(Debug)]
struct TrajectoryScratch {
    sv: StateVector,
    detuning: Vec<f64>,
    telegraph_sign: Vec<f64>,
    pending: Vec<Option<M2>>,
}

impl TrajectoryScratch {
    fn new(num_qubits: usize) -> Self {
        TrajectoryScratch {
            sv: StateVector::zero_state(num_qubits),
            detuning: vec![0.0; num_qubits],
            telegraph_sign: vec![1.0; num_qubits],
            pending: vec![None; num_qubits],
        }
    }

    /// Applies and clears the pending fused product on `q`, if any.
    fn flush(&mut self, q: usize) {
        if let Some(u) = self.pending[q].take() {
            self.sv.apply_m2(&u, q);
        }
    }

    fn flush_all(&mut self) {
        for q in 0..self.pending.len() {
            self.flush(q);
        }
    }
}

impl MachineExecutor {
    /// Creates an executor with [`DEFAULT_SHOTS`] shots.
    pub fn new(noise: NoiseParameters, seeds: SeedStream) -> Self {
        MachineExecutor {
            noise,
            seeds,
            shots: DEFAULT_SHOTS,
        }
    }

    /// Overrides the shot count.
    pub fn with_shots(mut self, shots: u64) -> Self {
        assert!(shots > 0, "shot count must be positive");
        self.shots = shots;
        self
    }

    /// Shots per [`Self::run`].
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Noise parameters in use.
    pub fn noise(&self) -> &NoiseParameters {
        &self.noise
    }

    /// Replaces the noise parameters (e.g. after drift).
    pub fn set_noise(&mut self, noise: NoiseParameters) {
        self.noise = noise;
    }

    /// Executes a scheduled circuit, returning a histogram over all qubits.
    ///
    /// Deterministic: the same executor (seed stream) and circuit produce
    /// identical counts. Different `job_index` values decorrelate repeated
    /// runs of the same circuit (used by the drift experiment).
    pub fn run(&self, scheduled: &ScheduledCircuit) -> Counts {
        self.run_job(scheduled, 0)
    }

    /// Executes with an explicit job index for stream decorrelation.
    ///
    /// # Panics
    ///
    /// Panics if `scheduled` references qubits beyond the noise description.
    pub fn run_job(&self, scheduled: &ScheduledCircuit, job_index: u64) -> Counts {
        self.run_job_with_shots(scheduled, self.shots, job_index)
    }

    /// Executes with explicit shot count and job index.
    ///
    /// The per-shot noise streams depend only on the seed stream, the job
    /// index, and the shot index — never on the configured default shot
    /// count — so a batched caller supplying shots explicitly reproduces
    /// the sequential path bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `scheduled` references qubits beyond the noise description.
    pub fn run_job_with_shots(
        &self,
        scheduled: &ScheduledCircuit,
        shots: u64,
        job_index: u64,
    ) -> Counts {
        self.run_job_shot_range(scheduled, job_index, 0..shots)
    }

    /// Executes a contiguous range of a job's shots.
    ///
    /// Shot `s` draws from an RNG seeded only by `(seeds, job_index, s)`,
    /// so splitting `0..shots` into disjoint ranges — across calls, threads
    /// or processes — and merging the histograms reproduces
    /// [`Self::run_job_with_shots`] bit for bit. The core executor's batch
    /// dispatch uses this to spread a single large job over the pool.
    ///
    /// # Panics
    ///
    /// Panics if `scheduled` references qubits beyond the noise description.
    pub fn run_job_shot_range(
        &self,
        scheduled: &ScheduledCircuit,
        job_index: u64,
        shot_range: std::ops::Range<u64>,
    ) -> Counts {
        let n = scheduled.num_qubits();
        assert!(
            self.noise.num_qubits() >= n,
            "noise parameters must cover the register"
        );
        let compiled = CompiledSchedule::compile(scheduled, &self.noise);
        let seed_base = self.seeds.child_seed("machine-trajectory");
        let mut scratch = TrajectoryScratch::new(n);
        let mut hist = vec![0u64; 1usize << n];
        for shot in shot_range {
            let mut rng = StdRng::seed_from_u64(indexed_seed(
                seed_base,
                job_index.wrapping_mul(1_000_003) ^ shot,
            ));
            let outcome = run_trajectory(&compiled, &mut scratch, &mut rng);
            hist[outcome] += 1;
        }
        Counts::from_index_histogram(n, &hist)
    }
}

/// Runs one trajectory through a compiled schedule and returns the measured
/// basis index (with readout error applied). Consumes the RNG stream in
/// exactly the order of the original per-op path.
fn run_trajectory(
    compiled: &CompiledSchedule,
    scratch: &mut TrajectoryScratch,
    rng: &mut StdRng,
) -> usize {
    let n = compiled.num_qubits;
    scratch.sv.reset_zero();

    // Per-trajectory quasi-static environment.
    for q in 0..n {
        scratch.detuning[q] = compiled.sigma[q] * sample_standard_normal(rng);
        scratch.telegraph_sign[q] = if rng.gen::<bool>() { -1.0 } else { 1.0 };
        scratch.pending[q] = None;
    }

    for step in &compiled.steps {
        match step {
            Step::Free(seg) => {
                // Free evolution does not commute with pending products.
                scratch.flush_all();
                free_evolution(seg, scratch, rng);
            }
            Step::Gate1 { q, u, err_p } => {
                let q = *q;
                scratch.pending[q] = Some(match scratch.pending[q].take() {
                    Some(prev) => u.mul(&prev),
                    None => *u,
                });
                if *err_p > 0.0 && rng.gen::<f64>() < *err_p {
                    // The Pauli lands after this gate: flush the fused run
                    // up to and including it, then apply the error.
                    scratch.flush(q);
                    apply_pauli_index(&mut scratch.sv, q, rng.gen_range(1..4u8));
                }
            }
            Step::Gate2 {
                q_hi,
                q_lo,
                u,
                err_p,
            } => {
                scratch.flush(*q_hi);
                scratch.flush(*q_lo);
                scratch.sv.apply_m4(u, *q_hi, *q_lo);
                if *err_p > 0.0 && rng.gen::<f64>() < *err_p {
                    // Uniform non-identity two-qubit Pauli.
                    loop {
                        let (a, b) = (rng.gen_range(0..4u8), rng.gen_range(0..4u8));
                        if a == 0 && b == 0 {
                            continue;
                        }
                        if a != 0 {
                            apply_pauli_index(&mut scratch.sv, *q_hi, a);
                        }
                        if b != 0 {
                            apply_pauli_index(&mut scratch.sv, *q_lo, b);
                        }
                        break;
                    }
                }
            }
        }
    }
    scratch.flush_all();

    // Sample the outcome and apply readout flips.
    let mut index = scratch.sv.sample_index(rng);
    for (q, &(p01, p10)) in compiled.readout.iter().enumerate() {
        let bit = 1usize << q;
        let flip_p = if index & bit != 0 { p10 } else { p01 };
        if rng.gen::<f64>() < flip_p {
            index ^= bit;
        }
    }
    index
}

/// Applies one precompiled free-evolution segment: quasi-static phase with
/// telegraph switching, T1/T2 stochastic jumps, and ZZ coupling.
///
/// The detuning phase and the excited-population measurement the damping
/// draw needs fuse into one half sweep, and both MCWF branches fold their
/// renormalization into the update itself using the analytic norm of the
/// post-operator state (`1 - gamma*p1` for no-jump, `p1` for jump, both
/// exact for a unit-norm input). Relative to the original
/// phase/measure/damp/normalize sequence this halves the memory traffic
/// per qubit-segment; amplitudes agree with the reference to ~1e-15 per
/// segment (the analytic norm differs from a re-measured one only by the
/// accumulated unit-norm float drift), and every RNG draw happens at the
/// same stream position with a probability computed from the same sweep
/// arithmetic.
fn free_evolution(seg: &FreeSegment, scratch: &mut TrajectoryScratch, rng: &mut StdRng) {
    for fq in &seg.qubits {
        let q = fq.q;
        let bit = 1usize << q;

        // Quasi-static phase with telegraph switching: integrate the
        // signed detuning over dt, flipping the sign at Poisson times.
        let mut phase = None;
        if scratch.detuning[q] != 0.0 {
            let mut remaining = seg.dt;
            let mut signed_time = 0.0;
            if fq.telegraph_rate > 0.0 {
                loop {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let next_flip = -u.ln() / fq.telegraph_rate;
                    if next_flip >= remaining {
                        signed_time += scratch.telegraph_sign[q] * remaining;
                        break;
                    }
                    signed_time += scratch.telegraph_sign[q] * next_flip;
                    scratch.telegraph_sign[q] = -scratch.telegraph_sign[q];
                    remaining -= next_flip;
                }
            } else {
                signed_time = scratch.telegraph_sign[q] * seg.dt;
            }
            phase = Some(Complex64::cis(scratch.detuning[q] * signed_time));
        }

        // Amplitude damping as an MCWF jump/no-jump step, with the phase
        // (when present) applied by the same sweep that measures P(|1>).
        if fq.gamma > 0.0 {
            let amps = scratch.sv.amps_mut();
            let p1 = match phase {
                Some(ph) => kernels::phase_and_excited_population(amps, bit, ph),
                None => kernels::excited_population(amps, bit),
            };
            let p_jump = fq.gamma * p1;
            if rng.gen::<f64>() < p_jump {
                // Jump: |...1...> -> |...0...>; post-jump norm^2 is p1.
                let inv = if p1 > 1e-300 { 1.0 / p1.sqrt() } else { 1.0 };
                kernels::mcwf_jump(amps, bit, inv);
            } else {
                // No jump: damp the |1> branch; post norm^2 is 1 - p_jump.
                let inv = 1.0 / (1.0 - p_jump).sqrt();
                kernels::mcwf_no_jump(amps, bit, inv, fq.damp * inv);
            }
        } else if let Some(ph) = phase {
            kernels::phase_if_one(scratch.sv.amps_mut(), bit, ph);
        }

        // Pure dephasing as a stochastic Z flip.
        if let Some(p) = fq.dephase_p {
            if rng.gen::<f64>() < p {
                scratch.sv.apply_phase_if_one(std::f64::consts::PI, q);
            }
        }
    }
    // Always-on ZZ between started pairs.
    for &(a, b, theta) in &seg.zz {
        scratch.sv.apply_zz(theta, a, b);
    }
}

fn apply_pauli_index(sv: &mut StateVector, q: usize, which: u8) {
    let g = match which {
        1 => Gate::X,
        2 => Gate::Y,
        _ => Gate::Z,
    };
    sv.apply_gate(&g, &[q]).expect("paulis are concrete");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use vaqem_circuit::circuit::QuantumCircuit;
    use vaqem_circuit::schedule::{schedule, DurationModel, ScheduleKind};
    use vaqem_device::noise::QubitNoise;

    fn sched(qc: &QuantumCircuit) -> ScheduledCircuit {
        schedule(qc, &DurationModel::ibm_default(), ScheduleKind::Asap).unwrap()
    }

    fn dephasing_only(sigma: f64, telegraph: f64) -> NoiseParameters {
        NoiseParameters::from_qubits(vec![QubitNoise {
            t1_ns: f64::INFINITY,
            t2_ns: f64::INFINITY,
            quasi_static_sigma_rad_ns: sigma,
            telegraph_rate_per_ns: telegraph,
            readout_p01: 0.0,
            readout_p10: 0.0,
            gate_error_1q: 0.0,
        }])
    }

    #[test]
    fn noiseless_machine_matches_ideal() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        qc.measure_all();
        let exec = MachineExecutor::new(NoiseParameters::noiseless(2), SeedStream::new(1))
            .with_shots(4000);
        let counts = exec.run(&sched(&qc));
        assert_eq!(counts.total(), 4000);
        let p00 = counts.probability("00");
        let p11 = counts.probability("11");
        assert!((p00 - 0.5).abs() < 0.05, "p00 {p00}");
        assert!((p11 - 0.5).abs() < 0.05, "p11 {p11}");
        assert_eq!(counts.get("01") + counts.get("10"), 0);
    }

    #[test]
    fn runs_are_deterministic() {
        // Two qubits / four outcomes: enough histogram resolution that two
        // decorrelated jobs colliding on every bin is vanishingly unlikely.
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.h(1).unwrap();
        qc.measure_all();
        let exec =
            MachineExecutor::new(NoiseParameters::uniform(2), SeedStream::new(5)).with_shots(256);
        let a = exec.run(&sched(&qc));
        let b = exec.run(&sched(&qc));
        assert_eq!(a, b);
        let c = exec.run_job(&sched(&qc), 1);
        assert_ne!(a, c, "different job indices should decorrelate");
    }

    #[test]
    fn compiled_trajectories_match_naive_reference() {
        // Full noise model on a multi-qubit circuit: the compiled executor
        // must consume the RNG stream exactly as the original per-op path
        // did, so counts agree shot for shot.
        let mut noise = NoiseParameters::uniform(3);
        noise.set_zz(0, 1, 1.0e-4);
        noise.set_zz(1, 2, 8.0e-5);
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).unwrap();
        qc.rz(0.4, 0).unwrap();
        qc.sx(0).unwrap();
        qc.cx(0, 1).unwrap();
        qc.ry(0.8, 2).unwrap();
        qc.delay(5_000.0, 1).unwrap();
        qc.cx(1, 2).unwrap();
        qc.x(2).unwrap();
        qc.measure_all();
        let s = sched(&qc);
        let seeds = SeedStream::new(77);
        let exec = MachineExecutor::new(noise.clone(), seeds).with_shots(2048);
        let fast = exec.run_job(&s, 3);
        let slow = naive::machine_run_job_with_shots(&noise, &seeds, &s, 2048, 3);
        assert_eq!(fast, slow);
    }

    #[test]
    fn shot_ranges_merge_to_full_run() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        qc.measure_all();
        let s = sched(&qc);
        let exec = MachineExecutor::new(NoiseParameters::uniform(2), SeedStream::new(12));
        let full = exec.run_job_with_shots(&s, 1000, 4);
        let mut merged = exec.run_job_shot_range(&s, 4, 0..300);
        merged.merge(&exec.run_job_shot_range(&s, 4, 300..900));
        merged.merge(&exec.run_job_shot_range(&s, 4, 900..1000));
        assert_eq!(full, merged);
    }

    #[test]
    fn quasi_static_dephasing_randomizes_plus_state() {
        // |+> idling long against sigma: X-basis measurement decays to 50/50.
        let sigma = 9.0e-5;
        let idle = 30_000.0; // sigma * t ~ 2.7 rad
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).unwrap();
        qc.delay(idle, 0).unwrap();
        qc.h(0).unwrap();
        qc.measure(0).unwrap();
        let exec =
            MachineExecutor::new(dephasing_only(sigma, 0.0), SeedStream::new(2)).with_shots(2000);
        let counts = exec.run(&sched(&qc));
        let p1 = counts.probability("1");
        assert!(p1 > 0.3, "long idle should dephase: p1 = {p1}");
    }

    #[test]
    fn hahn_echo_refocuses_quasi_static_noise() {
        // The paper's Fig. 4/6 physics: a centered X pulse recovers the
        // state; the same X at the window edge does not.
        let sigma = 9.0e-5;
        let idle = 28_440.0; // the paper's 28.44 us window
        let exec =
            MachineExecutor::new(dephasing_only(sigma, 0.0), SeedStream::new(3)).with_shots(1500);

        // Centered echo: H, delay T/2, X, delay T/2, H -> expect |1>.
        let mut echo = QuantumCircuit::new(1);
        echo.h(0).unwrap();
        echo.delay(idle / 2.0, 0).unwrap();
        echo.x(0).unwrap();
        echo.delay(idle / 2.0, 0).unwrap();
        echo.h(0).unwrap();
        echo.measure(0).unwrap();

        // Edge echo (ALAP-style): H, delay T, X, H.
        let mut edge = QuantumCircuit::new(1);
        edge.h(0).unwrap();
        edge.delay(idle, 0).unwrap();
        edge.x(0).unwrap();
        edge.h(0).unwrap();
        edge.measure(0).unwrap();

        // X|+> = |+>, so the ideal outcome of both circuits is |0>.
        let p_echo = exec.run(&sched(&echo)).probability("0");
        let p_edge = exec.run(&sched(&edge)).probability("0");
        assert!(
            p_echo > 0.93,
            "centered echo should refocus almost perfectly: {p_echo}"
        );
        assert!(
            p_edge < p_echo - 0.2,
            "edge-positioned X should not refocus: edge {p_edge} vs echo {p_echo}"
        );
    }

    #[test]
    fn telegraph_noise_limits_single_echo() {
        let sigma = 9.0e-5;
        let idle = 28_440.0;
        let seeds = SeedStream::new(4);
        let mut echo = QuantumCircuit::new(1);
        echo.h(0).unwrap();
        echo.delay(idle / 2.0, 0).unwrap();
        echo.x(0).unwrap();
        echo.delay(idle / 2.0, 0).unwrap();
        echo.h(0).unwrap();
        echo.measure(0).unwrap();
        let s = sched(&echo);
        let quiet = MachineExecutor::new(dephasing_only(sigma, 0.0), seeds).with_shots(1500);
        let noisy = MachineExecutor::new(dephasing_only(sigma, 5.0e-5), seeds).with_shots(1500);
        let p_quiet = quiet.run(&s).probability("0");
        let p_noisy = noisy.run(&s).probability("0");
        assert!(
            p_noisy < p_quiet - 0.05,
            "telegraph switching should degrade a single echo: {p_noisy} vs {p_quiet}"
        );
    }

    #[test]
    fn t1_decay_on_machine() {
        let t1 = 50_000.0;
        let noise = NoiseParameters::from_qubits(vec![QubitNoise {
            t1_ns: t1,
            t2_ns: 2.0 * t1,
            quasi_static_sigma_rad_ns: 0.0,
            telegraph_rate_per_ns: 0.0,
            readout_p01: 0.0,
            readout_p10: 0.0,
            gate_error_1q: 0.0,
        }]);
        let mut qc = QuantumCircuit::new(1);
        qc.x(0).unwrap();
        qc.delay(t1, 0).unwrap(); // one T1
        qc.id(0).unwrap();
        qc.measure(0).unwrap();
        let exec = MachineExecutor::new(noise, SeedStream::new(6)).with_shots(3000);
        let p1 = exec.run(&sched(&qc)).probability("1");
        let expect = (-1.0f64).exp();
        assert!((p1 - expect).abs() < 0.05, "p1 {p1} vs {expect}");
    }

    #[test]
    fn readout_error_applies() {
        let mut noise = NoiseParameters::noiseless(1);
        noise.qubit_mut(0).readout_p01 = 0.15;
        let mut qc = QuantumCircuit::new(1);
        qc.id(0).unwrap();
        qc.measure(0).unwrap();
        let exec = MachineExecutor::new(noise, SeedStream::new(7)).with_shots(4000);
        let p1 = exec.run(&sched(&qc)).probability("1");
        assert!((p1 - 0.15).abs() < 0.03, "p1 {p1}");
    }

    #[test]
    fn gate_error_scales_with_gate_count() {
        let mut noise = NoiseParameters::noiseless(1);
        noise.qubit_mut(0).gate_error_1q = 0.02;
        let seeds = SeedStream::new(8);
        let run_len = |k: usize| {
            let mut qc = QuantumCircuit::new(1);
            for _ in 0..k {
                qc.x(0).unwrap();
                qc.x(0).unwrap();
            }
            qc.measure(0).unwrap();
            let exec = MachineExecutor::new(noise.clone(), seeds).with_shots(3000);
            exec.run(&sched(&qc)).probability("0")
        };
        let p_short = run_len(2);
        let p_long = run_len(40);
        assert!(
            p_long < p_short - 0.1,
            "more gates, more error: {p_long} vs {p_short}"
        );
    }

    #[test]
    fn zz_coupling_entangles_idle_neighbors() {
        // |+>|1| idling under ZZ picks up conditional phase; measuring the
        // first qubit in X basis drifts from deterministic.
        let mut noise = NoiseParameters::noiseless(2);
        noise.set_zz(0, 1, 2.5e-4);
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.x(1).unwrap();
        qc.delay(10_000.0, 0).unwrap();
        qc.delay(10_000.0, 1).unwrap();
        qc.id(0).unwrap();
        qc.id(1).unwrap();
        qc.h(0).unwrap();
        qc.measure_all();
        let exec = MachineExecutor::new(noise, SeedStream::new(9)).with_shots(2000);
        let counts = exec.run(&sched(&qc));
        // Without ZZ, qubit 0 would read 0 with certainty. zeta*t = 2.5 rad
        // rotates it far away.
        let p_q0_one: f64 = counts
            .iter()
            .filter(|(bits, _)| bits.ends_with('1'))
            .map(|(_, n)| n as f64)
            .sum::<f64>()
            / counts.total() as f64;
        assert!(
            p_q0_one > 0.2,
            "ZZ should rotate the idle qubit: {p_q0_one}"
        );
    }
}
