//! The noisy "machine": a quantum-trajectory executor.
//!
//! This engine plays the role of the real IBM backend in the paper. Each
//! shot is a Monte-Carlo wave-function trajectory evolved along the
//! scheduled timeline:
//!
//! * **Quasi-static detuning** — every trajectory samples a per-qubit
//!   angular detuning from `N(0, sigma)`. The qubit accumulates phase
//!   `delta * t` during idle time. Because the detuning is constant within a
//!   trajectory, an X (or Y) pulse placed mid-window *refocuses* the phase —
//!   this is exactly the physics that makes Hahn echo (Fig. 4), gate
//!   scheduling (Fig. 6) and DD (Fig. 5) work on hardware, and that a
//!   Markovian calibration model misses (Fig. 9).
//! * **Telegraph noise** — the detuning sign flips at a Poisson rate within
//!   the trajectory, so refocusing degrades over long free-evolution
//!   stretches. Shorter DD periods track the noise better, while each pulse
//!   adds gate error: the resulting trade-off produces the interior optima
//!   of Fig. 5.
//! * **Markovian decoherence** — amplitude damping (T1) and pure dephasing
//!   (from T2) as stochastic jumps (MCWF); depolarizing gate errors as
//!   sampled Pauli insertions; classical readout flips.
//! * **ZZ crosstalk** — always-on `exp(-i zeta t ZZ/2)` between coupled
//!   pairs, which DD also decouples.

use crate::counts::Counts;
use crate::statevector::StateVector;
use rand::rngs::StdRng;
use rand::Rng;
use vaqem_circuit::gate::Gate;
use vaqem_circuit::schedule::ScheduledCircuit;
use vaqem_device::noise::NoiseParameters;
use vaqem_mathkit::rng::{sample_standard_normal, SeedStream};

/// Default number of shots per execution, matching common IBM submissions.
pub const DEFAULT_SHOTS: u64 = 2048;

/// A noisy trajectory-based executor standing in for a quantum backend.
#[derive(Debug, Clone)]
pub struct MachineExecutor {
    noise: NoiseParameters,
    seeds: SeedStream,
    shots: u64,
}

impl MachineExecutor {
    /// Creates an executor with [`DEFAULT_SHOTS`] shots.
    pub fn new(noise: NoiseParameters, seeds: SeedStream) -> Self {
        MachineExecutor {
            noise,
            seeds,
            shots: DEFAULT_SHOTS,
        }
    }

    /// Overrides the shot count.
    pub fn with_shots(mut self, shots: u64) -> Self {
        assert!(shots > 0, "shot count must be positive");
        self.shots = shots;
        self
    }

    /// Shots per [`Self::run`].
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Noise parameters in use.
    pub fn noise(&self) -> &NoiseParameters {
        &self.noise
    }

    /// Replaces the noise parameters (e.g. after drift).
    pub fn set_noise(&mut self, noise: NoiseParameters) {
        self.noise = noise;
    }

    /// Executes a scheduled circuit, returning a histogram over all qubits.
    ///
    /// Deterministic: the same executor (seed stream) and circuit produce
    /// identical counts. Different `job_index` values decorrelate repeated
    /// runs of the same circuit (used by the drift experiment).
    pub fn run(&self, scheduled: &ScheduledCircuit) -> Counts {
        self.run_job(scheduled, 0)
    }

    /// Executes with an explicit job index for stream decorrelation.
    ///
    /// # Panics
    ///
    /// Panics if `scheduled` references qubits beyond the noise description.
    pub fn run_job(&self, scheduled: &ScheduledCircuit, job_index: u64) -> Counts {
        self.run_job_with_shots(scheduled, self.shots, job_index)
    }

    /// Executes with explicit shot count and job index.
    ///
    /// The per-shot noise streams depend only on the seed stream, the job
    /// index, and the shot index — never on the configured default shot
    /// count — so a batched caller supplying shots explicitly reproduces
    /// the sequential path bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `scheduled` references qubits beyond the noise description.
    pub fn run_job_with_shots(
        &self,
        scheduled: &ScheduledCircuit,
        shots: u64,
        job_index: u64,
    ) -> Counts {
        let n = scheduled.num_qubits();
        assert!(
            self.noise.num_qubits() >= n,
            "noise parameters must cover the register"
        );
        let mut counts = Counts::new(n);
        for shot in 0..shots {
            let mut rng = self.seeds.rng_indexed(
                "machine-trajectory",
                job_index.wrapping_mul(1_000_003) ^ shot,
            );
            let outcome = self.run_trajectory(scheduled, &mut rng);
            counts.record_index(outcome);
        }
        counts
    }

    /// Runs one trajectory and returns the measured basis index (with
    /// readout error applied).
    fn run_trajectory(&self, scheduled: &ScheduledCircuit, rng: &mut StdRng) -> usize {
        let n = scheduled.num_qubits();
        let mut sv = StateVector::zero_state(n);

        // Per-trajectory quasi-static environment.
        let mut detuning = vec![0.0f64; n];
        let mut telegraph_sign = vec![1.0f64; n];
        for q in 0..n {
            let qn = self.noise.qubit(q);
            detuning[q] = qn.quasi_static_sigma_rad_ns * sample_standard_normal(rng);
            if rng.gen::<bool>() {
                telegraph_sign[q] = -1.0;
            }
        }
        let zz: Vec<((usize, usize), f64)> = self
            .noise
            .zz_couplings()
            .filter(|((a, b), _)| *a < n && *b < n)
            .collect();

        let mut now = 0.0f64;
        let mut started = vec![false; n]; // decoherence begins at first op
        for op in scheduled.ops() {
            if matches!(op.gate, Gate::Barrier) {
                continue;
            }
            let dt = op.start_ns - now;
            if dt > 1e-9 {
                self.free_evolution(
                    &mut sv,
                    dt,
                    &detuning,
                    &mut telegraph_sign,
                    &started,
                    &zz,
                    rng,
                );
                now = op.start_ns;
            }
            match op.gate {
                Gate::Measure | Gate::Delay { .. } | Gate::I => {}
                ref g => {
                    sv.apply_gate(g, &op.qubits)
                        .expect("scheduled circuits are concrete");
                    self.apply_gate_error(&mut sv, &op.qubits, rng);
                }
            }
            for &q in &op.qubits {
                started[q] = true;
            }
        }
        // Trailing free evolution up to the makespan (e.g. during final
        // delays before measurement).
        let tail = scheduled.total_ns() - now;
        if tail > 1e-9 {
            self.free_evolution(
                &mut sv,
                tail,
                &detuning,
                &mut telegraph_sign,
                &started,
                &zz,
                rng,
            );
        }

        // Sample the outcome and apply readout flips.
        let mut index = sv.sample_index(rng);
        for q in 0..n {
            let qn = self.noise.qubit(q);
            let bit = 1usize << q;
            let is_one = index & bit != 0;
            let flip_p = if is_one {
                qn.readout_p10
            } else {
                qn.readout_p01
            };
            if rng.gen::<f64>() < flip_p {
                index ^= bit;
            }
        }
        index
    }

    /// Applies `dt` nanoseconds of free evolution: quasi-static phase with
    /// telegraph switching, T1/T2 stochastic jumps, and ZZ coupling.
    #[allow(clippy::too_many_arguments)]
    fn free_evolution(
        &self,
        sv: &mut StateVector,
        dt: f64,
        detuning: &[f64],
        telegraph_sign: &mut [f64],
        started: &[bool],
        zz: &[((usize, usize), f64)],
        rng: &mut StdRng,
    ) {
        let n = sv.num_qubits();
        for q in 0..n {
            if !started[q] {
                continue;
            }
            let qn = self.noise.qubit(q);

            // Quasi-static phase with telegraph switching: integrate the
            // signed detuning over dt, flipping the sign at Poisson times.
            if detuning[q] != 0.0 {
                let mut remaining = dt;
                let mut signed_time = 0.0;
                if qn.telegraph_rate_per_ns > 0.0 {
                    loop {
                        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                        let next_flip = -u.ln() / qn.telegraph_rate_per_ns;
                        if next_flip >= remaining {
                            signed_time += telegraph_sign[q] * remaining;
                            break;
                        }
                        signed_time += telegraph_sign[q] * next_flip;
                        telegraph_sign[q] = -telegraph_sign[q];
                        remaining -= next_flip;
                    }
                } else {
                    signed_time = telegraph_sign[q] * dt;
                }
                sv.apply_phase_if_one(detuning[q] * signed_time, q);
            }

            // Amplitude damping as an MCWF jump/no-jump step.
            if qn.t1_ns.is_finite() {
                let gamma = 1.0 - (-dt / qn.t1_ns).exp();
                apply_amplitude_damping_mcwf(sv, q, gamma, rng);
            }

            // Pure dephasing as a stochastic Z flip.
            let rate = qn.pure_dephasing_rate();
            if rate > 0.0 {
                let p = 0.5 * (1.0 - (-dt * rate).exp());
                if rng.gen::<f64>() < p {
                    sv.apply_phase_if_one(std::f64::consts::PI, q);
                }
            }
        }
        // Always-on ZZ between started pairs.
        for &((a, b), zeta) in zz {
            if started[a] && started[b] {
                sv.apply_zz(zeta * dt, a, b);
            }
        }
    }

    /// Depolarizing gate error: sampled Pauli insertion after the gate.
    fn apply_gate_error(&self, sv: &mut StateVector, qubits: &[usize], rng: &mut StdRng) {
        match qubits.len() {
            1 => {
                let p = self.noise.qubit(qubits[0]).gate_error_1q;
                if p > 0.0 && rng.gen::<f64>() < p {
                    apply_random_pauli(sv, qubits[0], rng);
                }
            }
            2 => {
                let p = self.noise.cx_error(qubits[0], qubits[1]);
                if p > 0.0 && rng.gen::<f64>() < p {
                    // Uniform non-identity two-qubit Pauli.
                    loop {
                        let (a, b) = (rng.gen_range(0..4u8), rng.gen_range(0..4u8));
                        if a == 0 && b == 0 {
                            continue;
                        }
                        if a != 0 {
                            apply_pauli_index(sv, qubits[0], a);
                        }
                        if b != 0 {
                            apply_pauli_index(sv, qubits[1], b);
                        }
                        break;
                    }
                }
            }
            _ => {}
        }
    }
}

fn apply_random_pauli(sv: &mut StateVector, q: usize, rng: &mut StdRng) {
    apply_pauli_index(sv, q, rng.gen_range(1..4u8));
}

fn apply_pauli_index(sv: &mut StateVector, q: usize, which: u8) {
    let g = match which {
        1 => Gate::X,
        2 => Gate::Y,
        _ => Gate::Z,
    };
    sv.apply_gate(&g, &[q]).expect("paulis are concrete");
}

/// MCWF amplitude damping: with probability `gamma * P(|1>)` apply the jump
/// operator (decay to |0>); otherwise apply the no-jump operator
/// `diag(1, sqrt(1-gamma))` and renormalize.
fn apply_amplitude_damping_mcwf(sv: &mut StateVector, q: usize, gamma: f64, rng: &mut StdRng) {
    if gamma <= 0.0 {
        return;
    }
    let bit = 1usize << q;
    let p1: f64 = sv
        .amplitudes()
        .iter()
        .enumerate()
        .filter(|(i, _)| i & bit != 0)
        .map(|(_, a)| a.norm_sqr())
        .sum();
    let p_jump = gamma * p1;
    // Copy amplitudes out, transform, and write back through a fresh vector
    // (the statevector API has no raw mutable amplitude access by design).
    let mut amps = sv.amplitudes().to_vec();
    if rng.gen::<f64>() < p_jump {
        // Jump: |...1...> -> |...0...>.
        let mut next = vec![vaqem_mathkit::Complex64::ZERO; amps.len()];
        for (i, a) in amps.iter().enumerate() {
            if i & bit != 0 {
                next[i & !bit] = *a;
            }
        }
        amps = next;
    } else {
        // No jump: damp the |1> branch.
        let damp = (1.0 - gamma).sqrt();
        for (i, a) in amps.iter_mut().enumerate() {
            if i & bit != 0 {
                *a *= damp;
            }
        }
    }
    let mut next = StateVector::from_amplitudes(amps);
    next.normalize();
    *sv = next;
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaqem_circuit::circuit::QuantumCircuit;
    use vaqem_circuit::schedule::{schedule, DurationModel, ScheduleKind};
    use vaqem_device::noise::QubitNoise;

    fn sched(qc: &QuantumCircuit) -> ScheduledCircuit {
        schedule(qc, &DurationModel::ibm_default(), ScheduleKind::Asap).unwrap()
    }

    fn dephasing_only(sigma: f64, telegraph: f64) -> NoiseParameters {
        NoiseParameters::from_qubits(vec![QubitNoise {
            t1_ns: f64::INFINITY,
            t2_ns: f64::INFINITY,
            quasi_static_sigma_rad_ns: sigma,
            telegraph_rate_per_ns: telegraph,
            readout_p01: 0.0,
            readout_p10: 0.0,
            gate_error_1q: 0.0,
        }])
    }

    #[test]
    fn noiseless_machine_matches_ideal() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        qc.measure_all();
        let exec = MachineExecutor::new(NoiseParameters::noiseless(2), SeedStream::new(1))
            .with_shots(4000);
        let counts = exec.run(&sched(&qc));
        assert_eq!(counts.total(), 4000);
        let p00 = counts.probability("00");
        let p11 = counts.probability("11");
        assert!((p00 - 0.5).abs() < 0.05, "p00 {p00}");
        assert!((p11 - 0.5).abs() < 0.05, "p11 {p11}");
        assert_eq!(counts.get("01") + counts.get("10"), 0);
    }

    #[test]
    fn runs_are_deterministic() {
        // Two qubits / four outcomes: enough histogram resolution that two
        // decorrelated jobs colliding on every bin is vanishingly unlikely.
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.h(1).unwrap();
        qc.measure_all();
        let exec =
            MachineExecutor::new(NoiseParameters::uniform(2), SeedStream::new(5)).with_shots(256);
        let a = exec.run(&sched(&qc));
        let b = exec.run(&sched(&qc));
        assert_eq!(a, b);
        let c = exec.run_job(&sched(&qc), 1);
        assert_ne!(a, c, "different job indices should decorrelate");
    }

    #[test]
    fn quasi_static_dephasing_randomizes_plus_state() {
        // |+> idling long against sigma: X-basis measurement decays to 50/50.
        let sigma = 9.0e-5;
        let idle = 30_000.0; // sigma * t ~ 2.7 rad
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).unwrap();
        qc.delay(idle, 0).unwrap();
        qc.h(0).unwrap();
        qc.measure(0).unwrap();
        let exec =
            MachineExecutor::new(dephasing_only(sigma, 0.0), SeedStream::new(2)).with_shots(2000);
        let counts = exec.run(&sched(&qc));
        let p1 = counts.probability("1");
        assert!(p1 > 0.3, "long idle should dephase: p1 = {p1}");
    }

    #[test]
    fn hahn_echo_refocuses_quasi_static_noise() {
        // The paper's Fig. 4/6 physics: a centered X pulse recovers the
        // state; the same X at the window edge does not.
        let sigma = 9.0e-5;
        let idle = 28_440.0; // the paper's 28.44 us window
        let exec =
            MachineExecutor::new(dephasing_only(sigma, 0.0), SeedStream::new(3)).with_shots(1500);

        // Centered echo: H, delay T/2, X, delay T/2, H -> expect |1>.
        let mut echo = QuantumCircuit::new(1);
        echo.h(0).unwrap();
        echo.delay(idle / 2.0, 0).unwrap();
        echo.x(0).unwrap();
        echo.delay(idle / 2.0, 0).unwrap();
        echo.h(0).unwrap();
        echo.measure(0).unwrap();

        // Edge echo (ALAP-style): H, delay T, X, H.
        let mut edge = QuantumCircuit::new(1);
        edge.h(0).unwrap();
        edge.delay(idle, 0).unwrap();
        edge.x(0).unwrap();
        edge.h(0).unwrap();
        edge.measure(0).unwrap();

        // X|+> = |+>, so the ideal outcome of both circuits is |0>.
        let p_echo = exec.run(&sched(&echo)).probability("0");
        let p_edge = exec.run(&sched(&edge)).probability("0");
        assert!(
            p_echo > 0.93,
            "centered echo should refocus almost perfectly: {p_echo}"
        );
        assert!(
            p_edge < p_echo - 0.2,
            "edge-positioned X should not refocus: edge {p_edge} vs echo {p_echo}"
        );
    }

    #[test]
    fn telegraph_noise_limits_single_echo() {
        let sigma = 9.0e-5;
        let idle = 28_440.0;
        let seeds = SeedStream::new(4);
        let mut echo = QuantumCircuit::new(1);
        echo.h(0).unwrap();
        echo.delay(idle / 2.0, 0).unwrap();
        echo.x(0).unwrap();
        echo.delay(idle / 2.0, 0).unwrap();
        echo.h(0).unwrap();
        echo.measure(0).unwrap();
        let s = sched(&echo);
        let quiet = MachineExecutor::new(dephasing_only(sigma, 0.0), seeds).with_shots(1500);
        let noisy = MachineExecutor::new(dephasing_only(sigma, 5.0e-5), seeds).with_shots(1500);
        let p_quiet = quiet.run(&s).probability("0");
        let p_noisy = noisy.run(&s).probability("0");
        assert!(
            p_noisy < p_quiet - 0.05,
            "telegraph switching should degrade a single echo: {p_noisy} vs {p_quiet}"
        );
    }

    #[test]
    fn t1_decay_on_machine() {
        let t1 = 50_000.0;
        let noise = NoiseParameters::from_qubits(vec![QubitNoise {
            t1_ns: t1,
            t2_ns: 2.0 * t1,
            quasi_static_sigma_rad_ns: 0.0,
            telegraph_rate_per_ns: 0.0,
            readout_p01: 0.0,
            readout_p10: 0.0,
            gate_error_1q: 0.0,
        }]);
        let mut qc = QuantumCircuit::new(1);
        qc.x(0).unwrap();
        qc.delay(t1, 0).unwrap(); // one T1
        qc.id(0).unwrap();
        qc.measure(0).unwrap();
        let exec = MachineExecutor::new(noise, SeedStream::new(6)).with_shots(3000);
        let p1 = exec.run(&sched(&qc)).probability("1");
        let expect = (-1.0f64).exp();
        assert!((p1 - expect).abs() < 0.05, "p1 {p1} vs {expect}");
    }

    #[test]
    fn readout_error_applies() {
        let mut noise = NoiseParameters::noiseless(1);
        noise.qubit_mut(0).readout_p01 = 0.15;
        let mut qc = QuantumCircuit::new(1);
        qc.id(0).unwrap();
        qc.measure(0).unwrap();
        let exec = MachineExecutor::new(noise, SeedStream::new(7)).with_shots(4000);
        let p1 = exec.run(&sched(&qc)).probability("1");
        assert!((p1 - 0.15).abs() < 0.03, "p1 {p1}");
    }

    #[test]
    fn gate_error_scales_with_gate_count() {
        let mut noise = NoiseParameters::noiseless(1);
        noise.qubit_mut(0).gate_error_1q = 0.02;
        let seeds = SeedStream::new(8);
        let run_len = |k: usize| {
            let mut qc = QuantumCircuit::new(1);
            for _ in 0..k {
                qc.x(0).unwrap();
                qc.x(0).unwrap();
            }
            qc.measure(0).unwrap();
            let exec = MachineExecutor::new(noise.clone(), seeds).with_shots(3000);
            exec.run(&sched(&qc)).probability("0")
        };
        let p_short = run_len(2);
        let p_long = run_len(40);
        assert!(
            p_long < p_short - 0.1,
            "more gates, more error: {p_long} vs {p_short}"
        );
    }

    #[test]
    fn zz_coupling_entangles_idle_neighbors() {
        // |+>|1| idling under ZZ picks up conditional phase; measuring the
        // first qubit in X basis drifts from deterministic.
        let mut noise = NoiseParameters::noiseless(2);
        noise.set_zz(0, 1, 2.5e-4);
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.x(1).unwrap();
        qc.delay(10_000.0, 0).unwrap();
        qc.delay(10_000.0, 1).unwrap();
        qc.id(0).unwrap();
        qc.id(1).unwrap();
        qc.h(0).unwrap();
        qc.measure_all();
        let exec = MachineExecutor::new(noise, SeedStream::new(9)).with_shots(2000);
        let counts = exec.run(&sched(&qc));
        // Without ZZ, qubit 0 would read 0 with certainty. zeta*t = 2.5 rad
        // rotates it far away.
        let p_q0_one: f64 = counts
            .iter()
            .filter(|(bits, _)| bits.ends_with('1'))
            .map(|(_, n)| n as f64)
            .sum::<f64>()
            / counts.total() as f64;
        assert!(
            p_q0_one > 0.2,
            "ZZ should rotate the idle qubit: {p_q0_one}"
        );
    }
}
