//! Density-matrix simulation with Markovian noise channels.
//!
//! This engine plays the role of a **calibration-derived noisy simulator**
//! (Qiskit's `NoiseModel.from_backend`) in the paper's Fig. 9 comparison. It
//! applies exact Kraus channels — amplitude damping, phase damping,
//! depolarizing — between and after scheduled operations, but deliberately
//! models **only the Markovian part** of [`NoiseParameters`]: quasi-static
//! detuning and ZZ crosstalk are ignored, exactly as a calibration noise
//! model misses them on real hardware. The trajectory engine in
//! [`crate::machine`] models the full set and plays the "real machine".

use crate::channels::KrausChannel;
use crate::counts::Counts;
use crate::kernels;
use crate::sampling::CdfSampler;
use vaqem_circuit::gate::Gate;
use vaqem_circuit::schedule::ScheduledCircuit;
use vaqem_device::noise::NoiseParameters;
use vaqem_mathkit::complex::Complex64;
use vaqem_mathkit::matrix::CMatrix;
use vaqem_mathkit::smallmat::{M2, M4};
use vaqem_mathkit::stats;

/// A mixed quantum state over `n` qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    num_qubits: usize,
    rho: CMatrix,
}

impl DensityMatrix {
    /// Creates `|0...0><0...0|`.
    pub fn zero_state(num_qubits: usize) -> Self {
        let dim = 1 << num_qubits;
        let mut rho = CMatrix::zeros(dim, dim);
        rho[(0, 0)] = Complex64::ONE;
        DensityMatrix { num_qubits, rho }
    }

    /// Wraps an existing density matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not square with power-of-two dimension.
    pub fn from_matrix(rho: CMatrix) -> Self {
        assert!(rho.is_square(), "density matrix must be square");
        assert!(rho.rows().is_power_of_two(), "dimension must be 2^n");
        DensityMatrix {
            num_qubits: rho.rows().trailing_zeros() as usize,
            rho,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &CMatrix {
        &self.rho
    }

    /// Trace (should stay 1).
    pub fn trace(&self) -> f64 {
        self.rho.trace().re
    }

    /// Purity `Tr[rho^2]`, 1 for pure states.
    pub fn purity(&self) -> f64 {
        (&self.rho * &self.rho).trace().re
    }

    /// Applies a unitary on one qubit.
    ///
    /// A direct O(4^n) sub-block sweep ([`kernels::dm_apply_kraus_single`]
    /// with a single operator) — the embed-and-multiply original, preserved
    /// as [`crate::naive::density_apply_unitary_single`], was O(8^n).
    pub fn apply_unitary_single(&mut self, u: &CMatrix, q: usize) {
        assert!(q < self.num_qubits, "qubit out of range");
        let dim = 1 << self.num_qubits;
        kernels::dm_apply_kraus_single(
            self.rho.as_mut_slice(),
            dim,
            1 << q,
            &[M2::from_cmatrix(u)],
        );
    }

    /// Applies a unitary on two qubits (first operand = high bit).
    pub fn apply_unitary_two(&mut self, u: &CMatrix, q_hi: usize, q_lo: usize) {
        assert!(
            q_hi < self.num_qubits && q_lo < self.num_qubits,
            "qubit out of range"
        );
        assert_ne!(q_hi, q_lo, "operands must differ");
        let dim = 1 << self.num_qubits;
        kernels::dm_apply_m4(
            self.rho.as_mut_slice(),
            dim,
            1 << q_hi,
            1 << q_lo,
            &M4::from_cmatrix(u),
        );
    }

    /// Applies a single-qubit Kraus channel to qubit `q`.
    pub fn apply_channel(&mut self, channel: &KrausChannel, q: usize) {
        assert!(q < self.num_qubits, "qubit out of range");
        let dim = 1 << self.num_qubits;
        let ops: Vec<M2> = channel.ops().iter().map(M2::from_cmatrix).collect();
        kernels::dm_apply_kraus_single(self.rho.as_mut_slice(), dim, 1 << q, &ops);
    }

    /// Applies a two-qubit depolarizing channel with probability `p`:
    /// `rho -> (1-p) rho + p/15 sum_{P != II} P rho P`.
    ///
    /// Evaluated in closed form per sub-block via the Pauli-twirl identity
    /// (see [`kernels::dm_depolarize_two_qubit`]) instead of enumerating the
    /// 15 embedded Pauli pairs.
    pub fn apply_two_qubit_depolarizing(&mut self, p: f64, a: usize, b: usize) {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        assert!(
            a < self.num_qubits && b < self.num_qubits,
            "qubit out of range"
        );
        assert_ne!(a, b, "operands must differ");
        if p == 0.0 {
            return;
        }
        let dim = 1 << self.num_qubits;
        kernels::dm_depolarize_two_qubit(self.rho.as_mut_slice(), dim, 1 << a, 1 << b, p);
    }

    /// Diagonal of `rho`: basis-state probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        self.rho.diagonal().iter().map(|z| z.re.max(0.0)).collect()
    }

    /// Expectation `Tr[rho M]` of a dense Hermitian observable.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn expectation(&self, observable: &CMatrix) -> f64 {
        assert_eq!(observable.rows(), self.rho.rows(), "dimension mismatch");
        (&self.rho * observable).trace().re
    }

    /// Basis-state probabilities after pushing the true distribution
    /// through each qubit's readout assignment matrix.
    pub fn readout_probabilities(&self, noise: &NoiseParameters) -> Vec<f64> {
        let dim = 1 << self.num_qubits;
        let mut p = self.probabilities();
        // Apply each qubit's assignment matrix as a stochastic map over the
        // index space.
        for q in 0..self.num_qubits {
            let qn = noise.qubit(q);
            let bit = 1usize << q;
            let mut next = vec![0.0; dim];
            for (i, &pi) in p.iter().enumerate() {
                if pi == 0.0 {
                    continue;
                }
                if i & bit == 0 {
                    next[i] += pi * (1.0 - qn.readout_p01);
                    next[i | bit] += pi * qn.readout_p01;
                } else {
                    next[i] += pi * (1.0 - qn.readout_p10);
                    next[i & !bit] += pi * qn.readout_p10;
                }
            }
            p = next;
        }
        p
    }

    /// Exact counts under per-qubit readout error: the true distribution is
    /// pushed through each qubit's assignment matrix, then apportioned to
    /// `shots` by the largest-remainder method so the histogram always
    /// totals exactly `shots` (independent rounding, preserved as
    /// [`crate::naive::density_counts_with_readout`], could drift by
    /// several shots).
    pub fn counts_with_readout(&self, noise: &NoiseParameters, shots: u64) -> Counts {
        let p = self.readout_probabilities(noise);
        let alloc = stats::largest_remainder(&p, shots);
        let mut counts = Counts::new(self.num_qubits);
        for (i, &c) in alloc.iter().enumerate() {
            if c > 0 {
                counts.record_index_n(i, c);
            }
        }
        counts
    }

    /// Shot-sampled counts under per-qubit readout error, for callers that
    /// want the finite-shot statistics of a real submission rather than the
    /// rounded exact distribution. Uses the same build-once
    /// [`CdfSampler`] as the statevector engine (bit-identical draws to the
    /// original per-shot linear scan).
    pub fn sample_counts_with_readout<R: rand::Rng + ?Sized>(
        &self,
        noise: &NoiseParameters,
        shots: u64,
        rng: &mut R,
    ) -> Counts {
        let p = self.readout_probabilities(noise);
        let cdf = CdfSampler::from_probabilities(p.iter().copied());
        let mut hist = Vec::new();
        cdf.sample_histogram(rng, shots, &mut hist);
        Counts::from_index_histogram(self.num_qubits, &hist)
    }
}

/// Runs a scheduled circuit under the **Markovian part** of `noise`,
/// returning the final mixed state (before readout error).
///
/// Idle decoherence is applied per qubit for the wall-clock gaps between its
/// consecutive operations; gate error is applied as a depolarizing channel
/// after each gate. Correlated noise terms in `noise` are intentionally
/// ignored (see module docs).
///
/// # Panics
///
/// Panics if the circuit references qubits beyond `noise`.
pub fn run_markovian(scheduled: &ScheduledCircuit, noise: &NoiseParameters) -> DensityMatrix {
    let n = scheduled.num_qubits();
    assert!(
        noise.num_qubits() >= n,
        "noise parameters must cover the register"
    );
    let mut dm = DensityMatrix::zero_state(n);
    // Track per-qubit last-activity end time; decoherence accrues on the gap.
    let mut last_end = vec![0.0f64; n];
    for op in scheduled.ops() {
        if op.gate == Gate::Barrier {
            continue;
        }
        // Idle decoherence on each operand qubit since its last activity.
        for &q in &op.qubits {
            let gap = op.start_ns - last_end[q];
            if gap > 1e-9 {
                apply_idle(&mut dm, noise, q, gap);
            }
        }
        let is_idle_like = matches!(op.gate, Gate::Measure | Gate::Delay { .. } | Gate::I);
        match op.gate {
            Gate::Measure | Gate::Delay { .. } | Gate::I => {
                // Delay/identity occupy time as pure idling; leave last_end
                // untouched so the gap to the next real op covers their
                // duration and decoherence is applied exactly once.
            }
            ref g => {
                let u = g.unitary().expect("scheduled circuits are concrete");
                match op.qubits.len() {
                    1 => {
                        dm.apply_unitary_single(&u, op.qubits[0]);
                        let p = noise.qubit(op.qubits[0]).gate_error_1q;
                        if p > 0.0 {
                            dm.apply_channel(&KrausChannel::depolarizing(p), op.qubits[0]);
                        }
                    }
                    2 => {
                        dm.apply_unitary_two(&u, op.qubits[0], op.qubits[1]);
                        let p = noise.cx_error(op.qubits[0], op.qubits[1]);
                        if p > 0.0 {
                            dm.apply_two_qubit_depolarizing(p, op.qubits[0], op.qubits[1]);
                        }
                    }
                    k => panic!("unsupported arity {k}"),
                }
                // Decoherence during the gate itself.
                for &q in &op.qubits {
                    if op.duration_ns > 0.0 {
                        apply_idle(&mut dm, noise, q, op.duration_ns);
                    }
                }
            }
        }
        if !is_idle_like {
            for &q in &op.qubits {
                last_end[q] = last_end[q].max(op.end_ns());
            }
        }
    }
    dm
}

fn apply_idle(dm: &mut DensityMatrix, noise: &NoiseParameters, q: usize, dt_ns: f64) {
    let qn = noise.qubit(q);
    if qn.t1_ns.is_finite() {
        let gamma = 1.0 - (-dt_ns / qn.t1_ns).exp();
        dm.apply_channel(&KrausChannel::amplitude_damping(gamma), q);
    }
    let rate = qn.pure_dephasing_rate();
    if rate > 0.0 {
        let lambda = 1.0 - (-dt_ns * rate).exp();
        dm.apply_channel(&KrausChannel::phase_damping(lambda), q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaqem_circuit::circuit::QuantumCircuit;
    use vaqem_circuit::schedule::{schedule, DurationModel, ScheduleKind};
    use vaqem_device::noise::QubitNoise;

    fn scheduled(qc: &QuantumCircuit) -> ScheduledCircuit {
        schedule(qc, &DurationModel::ibm_default(), ScheduleKind::Asap).unwrap()
    }

    #[test]
    fn zero_state_properties() {
        let dm = DensityMatrix::zero_state(2);
        assert!((dm.trace() - 1.0).abs() < 1e-12);
        assert!((dm.purity() - 1.0).abs() < 1e-12);
        assert_eq!(dm.probabilities()[0], 1.0);
    }

    #[test]
    fn noiseless_run_matches_statevector() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        let dm = run_markovian(&scheduled(&qc), &NoiseParameters::noiseless(2));
        let p = dm.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-10);
        assert!((p[3] - 0.5).abs() < 1e-10);
        assert!((dm.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn noise_reduces_purity_and_preserves_trace() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        qc.delay(20_000.0, 0).unwrap();
        qc.delay(20_000.0, 1).unwrap();
        qc.x(0).unwrap();
        let dm = run_markovian(&scheduled(&qc), &NoiseParameters::uniform(2));
        assert!((dm.trace() - 1.0).abs() < 1e-9, "trace {}", dm.trace());
        assert!(dm.purity() < 0.999, "purity {}", dm.purity());
    }

    #[test]
    fn t1_decay_matches_exponential() {
        // Prepare |1>, idle for t, check excited population = e^{-t/T1}.
        let t1 = 50_000.0;
        let idle = 25_000.0;
        let noise = NoiseParameters::from_qubits(vec![QubitNoise {
            t1_ns: t1,
            t2_ns: 2.0 * t1, // no pure dephasing
            quasi_static_sigma_rad_ns: 0.0,
            telegraph_rate_per_ns: 0.0,
            readout_p01: 0.0,
            readout_p10: 0.0,
            gate_error_1q: 0.0,
        }]);
        let mut qc = QuantumCircuit::new(1);
        qc.x(0).unwrap();
        qc.delay(idle, 0).unwrap();
        qc.id(0).unwrap(); // anchor so the delay's decoherence is applied
        let dm = run_markovian(&scheduled(&qc), &noise);
        let p1 = dm.probabilities()[1];
        let expect = (-(idle + 2.0 * 35.56) / t1).exp(); // delay + x + id slots
        assert!((p1 - expect).abs() < 0.01, "p1 {p1} vs {expect}");
    }

    #[test]
    fn dephasing_kills_plus_state_coherence() {
        let noise = NoiseParameters::from_qubits(vec![QubitNoise {
            t1_ns: f64::INFINITY,
            t2_ns: 10_000.0,
            quasi_static_sigma_rad_ns: 0.0,
            telegraph_rate_per_ns: 0.0,
            readout_p01: 0.0,
            readout_p10: 0.0,
            gate_error_1q: 0.0,
        }]);
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).unwrap();
        qc.delay(60_000.0, 0).unwrap();
        qc.h(0).unwrap();
        let dm = run_markovian(&scheduled(&qc), &noise);
        // Fully dephased |+> returns to maximal mixture after the final H:
        // P(1) approaches 0.5 from below.
        let p1 = dm.probabilities()[1];
        assert!(
            p1 > 0.4,
            "dephasing should randomize the X-basis: p1 = {p1}"
        );
        assert!((dm.trace() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn markovian_engine_is_echo_blind() {
        // The defining limitation (paper Fig. 9): a mid-window X does NOT
        // help against pure Markovian dephasing, so the engine must show no
        // echo benefit.
        let noise = NoiseParameters::from_qubits(vec![QubitNoise {
            t1_ns: f64::INFINITY,
            t2_ns: 20_000.0,
            quasi_static_sigma_rad_ns: 0.0, // ignored by this engine anyway
            telegraph_rate_per_ns: 0.0,
            readout_p01: 0.0,
            readout_p10: 0.0,
            gate_error_1q: 0.0,
        }]);
        let idle = 10_000.0;
        // Without echo: H, delay 2T, X late, H.
        let mut plain = QuantumCircuit::new(1);
        plain.h(0).unwrap();
        plain.delay(2.0 * idle, 0).unwrap();
        plain.x(0).unwrap();
        plain.h(0).unwrap();
        // With echo: H, delay T, X centered, delay T, H.
        let mut echo = QuantumCircuit::new(1);
        echo.h(0).unwrap();
        echo.delay(idle, 0).unwrap();
        echo.x(0).unwrap();
        echo.delay(idle, 0).unwrap();
        echo.h(0).unwrap();
        let p_plain = run_markovian(&scheduled(&plain), &noise).probabilities()[1];
        let p_echo = run_markovian(&scheduled(&echo), &noise).probabilities()[1];
        assert!(
            (p_plain - p_echo).abs() < 1e-6,
            "Markovian dephasing is echo-blind: {p_plain} vs {p_echo}"
        );
    }

    #[test]
    fn gate_error_accumulates() {
        let mut noise = NoiseParameters::noiseless(1);
        noise.qubit_mut(0).gate_error_1q = 0.05;
        let mut qc = QuantumCircuit::new(1);
        for _ in 0..10 {
            qc.x(0).unwrap();
            qc.x(0).unwrap();
        }
        let dm = run_markovian(&scheduled(&qc), &noise);
        // Logically identity, but 20 noisy gates leave the state mixed.
        assert!(dm.purity() < 0.9, "purity {}", dm.purity());
        assert!(dm.probabilities()[0] < 1.0);
    }

    #[test]
    fn readout_error_mixes_counts() {
        let mut noise = NoiseParameters::noiseless(1);
        noise.qubit_mut(0).readout_p01 = 0.1;
        let dm = DensityMatrix::zero_state(1);
        let counts = dm.counts_with_readout(&noise, 1000);
        assert_eq!(counts.get("1"), 100);
        assert_eq!(counts.get("0"), 900);
    }

    /// A state with three equal probabilities: independent rounding loses a
    /// shot (333 * 3 = 999), largest-remainder apportionment does not.
    #[test]
    fn readout_counts_total_exactly_shots() {
        let third = Complex64::new(1.0 / 3.0, 0.0);
        let dm = DensityMatrix::from_matrix(CMatrix::from_diagonal(&[
            third,
            third,
            third,
            Complex64::ZERO,
        ]));
        let noise = NoiseParameters::noiseless(2);
        assert_eq!(dm.counts_with_readout(&noise, 1000).total(), 1000);
        assert_eq!(
            crate::naive::density_counts_with_readout(&dm, &noise, 1000).total(),
            999,
            "the drift the apportionment fixes"
        );
    }

    /// The block-sweep applies must match the embed-and-conjugate originals
    /// preserved in `naive` on every operation the engine uses.
    #[test]
    fn kernel_applies_match_embedded_reference() {
        use crate::naive;
        // A state with broad support and off-diagonal structure.
        let mut dm = DensityMatrix::zero_state(3);
        dm.apply_unitary_single(&Gate::H.unitary().unwrap(), 0);
        dm.apply_unitary_single(&Gate::Sx.unitary().unwrap(), 1);
        dm.apply_unitary_two(&Gate::Cx.unitary().unwrap(), 0, 2);
        dm.apply_channel(&KrausChannel::amplitude_damping(0.2), 1);

        for (fast_op, naive_op) in [
            (
                Box::new(|d: &mut DensityMatrix| {
                    d.apply_unitary_single(&Gate::Rz(0.7.into()).unitary().unwrap(), 2)
                }) as Box<dyn Fn(&mut DensityMatrix)>,
                Box::new(|d: &mut DensityMatrix| {
                    naive::density_apply_unitary_single(
                        d,
                        &Gate::Rz(0.7.into()).unitary().unwrap(),
                        2,
                    )
                }) as Box<dyn Fn(&mut DensityMatrix)>,
            ),
            (
                Box::new(|d: &mut DensityMatrix| {
                    d.apply_unitary_two(&Gate::Cx.unitary().unwrap(), 2, 1)
                }),
                Box::new(|d: &mut DensityMatrix| {
                    naive::density_apply_unitary_two(d, &Gate::Cx.unitary().unwrap(), 2, 1)
                }),
            ),
            (
                Box::new(|d: &mut DensityMatrix| {
                    d.apply_channel(&KrausChannel::depolarizing(0.05), 0)
                }),
                Box::new(|d: &mut DensityMatrix| {
                    naive::density_apply_channel(d, &KrausChannel::depolarizing(0.05), 0)
                }),
            ),
            (
                Box::new(|d: &mut DensityMatrix| d.apply_two_qubit_depolarizing(0.3, 1, 2)),
                Box::new(|d: &mut DensityMatrix| {
                    naive::density_apply_two_qubit_depolarizing(d, 0.3, 1, 2)
                }),
            ),
        ] {
            let mut fast = dm.clone();
            let mut slow = dm.clone();
            fast_op(&mut fast);
            naive_op(&mut slow);
            assert!(fast.matrix().max_abs_diff(slow.matrix()) < 1e-12);
        }
    }

    /// Full-engine parity: the optimized Markovian run agrees with the
    /// preserved embed-based engine on a noisy multi-qubit circuit.
    #[test]
    fn fast_markovian_matches_naive_engine() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        qc.rz(0.4, 1).unwrap();
        qc.delay(5_000.0, 2).unwrap();
        qc.cx(1, 2).unwrap();
        qc.sx(2).unwrap();
        let sched = scheduled(&qc);
        let noise = NoiseParameters::uniform(3);
        let fast = run_markovian(&sched, &noise);
        let slow = crate::naive::density_run_markovian(&sched, &noise);
        assert!(
            fast.matrix().max_abs_diff(slow.matrix()) < 1e-12,
            "diff {}",
            fast.matrix().max_abs_diff(slow.matrix())
        );
        assert!((fast.trace() - 1.0).abs() < 1e-9);
    }

    /// The shared CDF sampler consumes the RNG stream exactly like the
    /// original per-shot linear scan, so same-seed counts are identical.
    #[test]
    fn sampled_readout_counts_are_bit_identical_to_naive_scan() {
        use rand::SeedableRng;
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        let mut noise = NoiseParameters::uniform(2);
        noise.qubit_mut(0).readout_p01 = 0.03;
        noise.qubit_mut(1).readout_p10 = 0.08;
        let dm = run_markovian(&scheduled(&qc), &noise);
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(99);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(99);
        let fast = dm.sample_counts_with_readout(&noise, 2000, &mut rng_a);
        let slow = crate::naive::density_sample_counts_with_readout(&dm, &noise, 2000, &mut rng_b);
        assert_eq!(fast, slow);
        assert_eq!(fast.total(), 2000);
    }

    #[test]
    fn two_qubit_depolarizing_is_trace_preserving() {
        let mut dm = DensityMatrix::zero_state(2);
        dm.apply_unitary_single(&Gate::H.unitary().unwrap(), 0);
        dm.apply_two_qubit_depolarizing(0.3, 0, 1);
        assert!((dm.trace() - 1.0).abs() < 1e-10);
        assert!(dm.purity() < 1.0);
    }

    #[test]
    fn expectation_of_zz_on_bell() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        let dm = run_markovian(&scheduled(&qc), &NoiseParameters::noiseless(2));
        let z = Gate::Z.unitary().unwrap();
        let zz = z.kron(&z);
        assert!((dm.expectation(&zz) - 1.0).abs() < 1e-10);
    }
}
