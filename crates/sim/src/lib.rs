//! # vaqem-sim
//!
//! Quantum simulators for the VAQEM (HPCA 2022) reproduction, covering all
//! three execution substrates the paper uses:
//!
//! * [`statevector`] — ideal simulation (the angle-tuning substrate of the
//!   feasible flow, Fig. 11),
//! * [`density`] — a Markovian density-matrix engine standing in for a
//!   calibration-derived noisy simulator (the "Noisy Simulation" of Fig. 9),
//! * [`machine`] — a quantum-trajectory executor with quasi-static
//!   dephasing, telegraph noise, ZZ crosstalk, T1/T2 jumps, gate error and
//!   readout error, standing in for the real IBM backend.
//!
//! The deliberate asymmetry between [`density`] and [`machine`] (the former
//! misses correlated noise) reproduces the paper's core observation that
//! error-mitigation tuning must happen on the machine.

pub mod channels;
pub mod counts;
pub mod density;
pub mod machine;
pub mod statevector;

pub use counts::Counts;
pub use density::DensityMatrix;
pub use machine::MachineExecutor;
pub use statevector::StateVector;
