//! # vaqem-sim
//!
//! Quantum simulators for the VAQEM (HPCA 2022) reproduction, covering all
//! three execution substrates the paper uses:
//!
//! * [`statevector`] — ideal simulation (the angle-tuning substrate of the
//!   feasible flow, Fig. 11),
//! * [`density`] — a Markovian density-matrix engine standing in for a
//!   calibration-derived noisy simulator (the "Noisy Simulation" of Fig. 9),
//! * [`machine`] — a quantum-trajectory executor with quasi-static
//!   dephasing, telegraph noise, ZZ crosstalk, T1/T2 jumps, gate error and
//!   readout error, standing in for the real IBM backend.
//!
//! The deliberate asymmetry between [`density`] and [`machine`] (the former
//! misses correlated noise) reproduces the paper's core observation that
//! error-mitigation tuning must happen on the machine.
//!
//! [`exec`] wraps the statevector and density engines as execution
//! endpoints (scheduled circuit + shots + seed → counts) with the same
//! shape as [`machine`], so the core crate's `Executor` trait can drive
//! all three substrates interchangeably.
//!
//! The hot paths of all three engines run through shared infrastructure:
//! [`kernels`] (half/quarter-index-space amplitude sweeps, parallel for
//! large states), [`fusion`] (single-qubit gate fusion and unpacked gate
//! matrices), and [`sampling`] (build-once CDF shot sampling). [`naive`]
//! preserves the original implementations as the parity oracle and the
//! benchmark baseline.

pub mod channels;
pub mod counts;
pub mod density;
pub mod exec;
pub mod fusion;
pub mod kernels;
pub mod machine;
pub mod naive;
pub mod sampling;
pub mod statevector;

pub use counts::Counts;
pub use density::DensityMatrix;
pub use exec::{DensityExecutor, StateVectorSampler};
pub use machine::MachineExecutor;
pub use sampling::CdfSampler;
pub use statevector::StateVector;
