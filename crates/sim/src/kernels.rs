//! Cache-friendly amplitude kernels for the statevector engine.
//!
//! The original gate-application loops visited all `2^n` indices and
//! branch-skipped the half (or three quarters) that are not the canonical
//! member of their amplitude group. The kernels here iterate the half /
//! quarter index space *directly*: for a single-qubit gate on qubit `q`
//! the state decomposes into contiguous blocks of `2^(q+1)` amplitudes
//! whose lower and upper halves form the `(|0>, |1>)` pairs, so the sweep
//! is two forward streams with unit stride — no wasted index tests, no
//! bounds-checked random access, and the unpacked gate coefficients
//! ([`M2`]/[`M4`]) stay in registers for the whole sweep.
//!
//! Every kernel performs the *same arithmetic on the same amplitudes in
//! the same order* as the original loops, so results are bit-identical —
//! the property `tests/sim_kernel_props.rs` pins against the preserved
//! naive implementations in [`crate::naive`].
//!
//! For large states the pair space is split recursively with
//! [`rayon::join`] into contiguous disjoint sub-slices (amplitude
//! parallelism *inside* one job, complementing the across-job parallelism
//! of the core executor). Since each amplitude group is written by exactly
//! one task and the per-group arithmetic is unchanged, the parallel path
//! is bit-identical to the sequential one. Parallelism engages only above
//! [`PAR_MIN_AMPS`] amplitudes so small trajectory states never pay the
//! fork overhead.

use vaqem_mathkit::complex::Complex64;
use vaqem_mathkit::smallmat::{M2, M4};

/// Minimum state length (amplitudes) before kernels fork across threads.
pub const PAR_MIN_AMPS: usize = 1 << 16;

/// Smallest contiguous sub-slice a parallel split will hand one task.
pub const PAR_GRAIN: usize = 1 << 14;

/// Whether the parallel path can pay off at all: forking on a single-thread
/// pool only adds scheduling overhead, so such hosts always run sequential.
#[inline]
fn pool_is_parallel() -> bool {
    rayon::current_num_threads() > 1
}

/// Applies a 2x2 matrix to the pairs selected by `bit`, choosing the
/// parallel path for large states.
pub fn apply_m2(amps: &mut [Complex64], bit: usize, u: &M2) {
    if amps.len() >= PAR_MIN_AMPS && pool_is_parallel() {
        apply_m2_par(amps, bit, u, PAR_GRAIN);
    } else {
        apply_m2_seq(amps, bit, u);
    }
}

/// Sequential single-qubit sweep over the half index space.
pub(crate) fn apply_m2_seq(amps: &mut [Complex64], bit: usize, u: &M2) {
    let [u00, u01, u10, u11] = u.m;
    let stride = bit << 1;
    let mut base = 0;
    while base < amps.len() {
        let (lo, hi) = amps[base..base + stride].split_at_mut(bit);
        for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
            let x0 = *a0;
            let x1 = *a1;
            *a0 = u00 * x0 + u01 * x1;
            *a1 = u10 * x0 + u11 * x1;
        }
        base += stride;
    }
}

/// Recursive parallel split along contiguous block boundaries.
pub(crate) fn apply_m2_par(amps: &mut [Complex64], bit: usize, u: &M2, grain: usize) {
    let stride = bit << 1;
    if amps.len() > stride && amps.len() > grain {
        let mid = amps.len() / 2;
        let (a, b) = amps.split_at_mut(mid);
        rayon::join(
            || apply_m2_par(a, bit, u, grain),
            || apply_m2_par(b, bit, u, grain),
        );
    } else if amps.len() == stride && amps.len() > grain {
        // A single block: pairs span the two halves, so zip-split them.
        let (lo, hi) = amps.split_at_mut(bit);
        apply_m2_zip_par(lo, hi, u, grain);
    } else {
        apply_m2_seq(amps, bit, u);
    }
}

fn apply_m2_zip_par(lo: &mut [Complex64], hi: &mut [Complex64], u: &M2, grain: usize) {
    if lo.len() > grain {
        let mid = lo.len() / 2;
        let (l0, l1) = lo.split_at_mut(mid);
        let (h0, h1) = hi.split_at_mut(mid);
        rayon::join(
            || apply_m2_zip_par(l0, h0, u, grain),
            || apply_m2_zip_par(l1, h1, u, grain),
        );
        return;
    }
    let [u00, u01, u10, u11] = u.m;
    for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
        let x0 = *a0;
        let x1 = *a1;
        *a0 = u00 * x0 + u01 * x1;
        *a1 = u10 * x0 + u11 * x1;
    }
}

/// Applies a 4x4 matrix to the quadruples selected by `(bit_hi, bit_lo)`
/// (gate-space meaning: `bit_hi` is the more significant gate operand),
/// choosing the parallel path for large states.
pub fn apply_m4(amps: &mut [Complex64], bit_hi: usize, bit_lo: usize, u: &M4) {
    let big = bit_hi.max(bit_lo);
    if amps.len() >= PAR_MIN_AMPS && amps.len() > big << 1 && pool_is_parallel() {
        apply_m4_par(amps, bit_hi, bit_lo, u, PAR_GRAIN);
    } else {
        apply_m4_seq(amps, bit_hi, bit_lo, u);
    }
}

/// Sequential two-qubit sweep over the quarter index space. `amps` must be
/// an aligned window whose length is a multiple of `2 * max(bit)` (the full
/// state always qualifies), so every quadruple lies inside it and indices
/// can be window-relative.
fn apply_m4_seq(amps: &mut [Complex64], bit_hi: usize, bit_lo: usize, u: &M4) {
    let small = bit_hi.min(bit_lo);
    let big = bit_hi.max(bit_lo);
    let groups = amps.len() >> 2;
    for g in 0..groups {
        // Deposit a zero at the small bit position, then at the big one:
        // enumerates bases with both bits clear in ascending order.
        let x = g & (small - 1) | ((g & !(small - 1)) << 1);
        let base = x & (big - 1) | ((x & !(big - 1)) << 1);
        let i0 = base;
        let i1 = base | bit_lo;
        let i2 = base | bit_hi;
        let i3 = base | bit_hi | bit_lo;
        let a = [amps[i0], amps[i1], amps[i2], amps[i3]];
        let idx = [i0, i1, i2, i3];
        for (r, &i) in idx.iter().enumerate() {
            let mut acc = Complex64::ZERO;
            for (c, &ac) in a.iter().enumerate() {
                acc += u.m[r * 4 + c] * ac;
            }
            amps[i] = acc;
        }
    }
}

/// Recursive parallel split along `2 * max(bit)` block boundaries. Halving
/// a power-of-two window keeps sub-windows aligned, so the sequential
/// kernel's window-relative enumeration stays valid at every leaf.
fn apply_m4_par(amps: &mut [Complex64], bit_hi: usize, bit_lo: usize, u: &M4, grain: usize) {
    let big_stride = bit_hi.max(bit_lo) << 1;
    if amps.len() > big_stride && amps.len() > grain {
        let mid = amps.len() / 2;
        let (a, b) = amps.split_at_mut(mid);
        rayon::join(
            || apply_m4_par(a, bit_hi, bit_lo, u, grain),
            || apply_m4_par(b, bit_hi, bit_lo, u, grain),
        );
        return;
    }
    apply_m4_seq(amps, bit_hi, bit_lo, u);
}

/// Multiplies every amplitude whose `bit` is set by `phase`, iterating the
/// upper halves of each block directly.
pub fn phase_if_one(amps: &mut [Complex64], bit: usize, phase: Complex64) {
    let stride = bit << 1;
    let mut base = bit;
    while base < amps.len() {
        for a in amps[base..base + bit].iter_mut() {
            *a *= phase;
        }
        base += stride;
    }
}

/// Sum of `|a|^2` over amplitudes whose `bit` is set, in ascending index
/// order (bit-identical to a filtered full-index sweep).
pub fn excited_population(amps: &[Complex64], bit: usize) -> f64 {
    let stride = bit << 1;
    let mut acc = 0.0;
    let mut base = bit;
    while base < amps.len() {
        for a in amps[base..base + bit].iter() {
            acc += a.norm_sqr();
        }
        base += stride;
    }
    acc
}

/// Fused detuning-phase + excited-population sweep: multiplies every
/// amplitude whose `bit` is set by `phase` and returns the sum of their
/// `|a|^2` taken *after* the multiply — the same values, in the same
/// accumulation order, as a [`phase_if_one`] sweep followed by an
/// [`excited_population`] sweep, for half the memory traffic.
pub fn phase_and_excited_population(amps: &mut [Complex64], bit: usize, phase: Complex64) -> f64 {
    let stride = bit << 1;
    let mut acc = 0.0;
    let mut base = bit;
    while base < amps.len() {
        for a in amps[base..base + bit].iter_mut() {
            *a *= phase;
            acc += a.norm_sqr();
        }
        base += stride;
    }
    acc
}

/// MCWF no-jump update with the renormalization folded in: one sweep
/// scaling `bit`-clear amplitudes by `scale0` and `bit`-set amplitudes by
/// `scale1`. The trajectory engine passes `scale0 = 1/sqrt(1 - gamma*p1)`
/// and `scale1 = sqrt(1-gamma) * scale0`, using the analytic post-damping
/// norm of a normalized input state instead of re-measuring it.
pub fn mcwf_no_jump(amps: &mut [Complex64], bit: usize, scale0: f64, scale1: f64) {
    let stride = bit << 1;
    let mut base = 0;
    while base < amps.len() {
        let (lo, hi) = amps[base..base + stride].split_at_mut(bit);
        for a in lo.iter_mut() {
            *a *= scale0;
        }
        for a in hi.iter_mut() {
            *a *= scale1;
        }
        base += stride;
    }
}

/// MCWF jump update with the renormalization folded in: the `bit`-set
/// branch collapses onto the `bit`-clear one scaled by `inv_norm`
/// (`1/sqrt(p1)` — the post-jump norm of a normalized input state), and the
/// `bit`-set half zeroes.
pub fn mcwf_jump(amps: &mut [Complex64], bit: usize, inv_norm: f64) {
    let stride = bit << 1;
    let mut base = 0;
    while base < amps.len() {
        let (lo, hi) = amps[base..base + stride].split_at_mut(bit);
        for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
            *a0 = *a1 * inv_norm;
            *a1 = Complex64::ZERO;
        }
        base += stride;
    }
}

/// Deposits a zero at `bit`: maps `g` (an index over the space with `bit`
/// removed) to the corresponding full-space index with `bit` clear,
/// ascending in `g`.
#[inline]
fn deposit_zero(g: usize, bit: usize) -> usize {
    (g & (bit - 1)) | ((g & !(bit - 1)) << 1)
}

// ---------------------------------------------------------------------------
// Density-matrix sweeps.
//
// The density engine's original applies embedded every operator to the full
// `2^n`-dimensional space and multiplied dense matrices: O(8^n) per gate.
// A k-qubit operator only couples rows (and, independently, columns) that
// differ in its operand bits, so `U rho U†` decomposes into independent
// 2x2 (or 4x4) sub-block transforms over the (row-group, col-group) grid —
// O(4^n) with the operator coefficients in registers.
// ---------------------------------------------------------------------------

/// Density-matrix sweep `rho -> sum_k K rho K†` for 2x2 Kraus operators on
/// the qubit selected by `bit`. `rho` is row-major `dim x dim`. A unitary is
/// the single-operator case.
pub fn dm_apply_kraus_single(rho: &mut [Complex64], dim: usize, bit: usize, kraus: &[M2]) {
    debug_assert_eq!(rho.len(), dim * dim);
    let ops: Vec<(M2, M2)> = kraus.iter().map(|k| (*k, k.adjoint())).collect();
    let stride = bit << 1;
    let mut row_base = 0;
    while row_base < dim {
        for r0 in row_base..row_base + bit {
            let rr0 = r0 * dim;
            let rr1 = (r0 | bit) * dim;
            let mut col_base = 0;
            while col_base < dim {
                for c0 in col_base..col_base + bit {
                    let c1 = c0 | bit;
                    let m00 = rho[rr0 + c0];
                    let m01 = rho[rr0 + c1];
                    let m10 = rho[rr1 + c0];
                    let m11 = rho[rr1 + c1];
                    let mut o00 = Complex64::ZERO;
                    let mut o01 = Complex64::ZERO;
                    let mut o10 = Complex64::ZERO;
                    let mut o11 = Complex64::ZERO;
                    for (k, kd) in &ops {
                        // T = K M, then O += T K†.
                        let t00 = k.m[0] * m00 + k.m[1] * m10;
                        let t01 = k.m[0] * m01 + k.m[1] * m11;
                        let t10 = k.m[2] * m00 + k.m[3] * m10;
                        let t11 = k.m[2] * m01 + k.m[3] * m11;
                        o00 += t00 * kd.m[0] + t01 * kd.m[2];
                        o01 += t00 * kd.m[1] + t01 * kd.m[3];
                        o10 += t10 * kd.m[0] + t11 * kd.m[2];
                        o11 += t10 * kd.m[1] + t11 * kd.m[3];
                    }
                    rho[rr0 + c0] = o00;
                    rho[rr0 + c1] = o01;
                    rho[rr1 + c0] = o10;
                    rho[rr1 + c1] = o11;
                }
                col_base += stride;
            }
        }
        row_base += stride;
    }
}

/// Density-matrix sweep `rho -> U rho U†` for a 4x4 unitary on the qubits
/// selected by `(bit_hi, bit_lo)` (gate-space meaning: `bit_hi` is the more
/// significant operand). `rho` is row-major `dim x dim`.
pub fn dm_apply_m4(rho: &mut [Complex64], dim: usize, bit_hi: usize, bit_lo: usize, u: &M4) {
    debug_assert_eq!(rho.len(), dim * dim);
    let ud = u.adjoint();
    let small = bit_hi.min(bit_lo);
    let big = bit_hi.max(bit_lo);
    let offs = [0, bit_lo, bit_hi, bit_hi | bit_lo];
    let quads = dim >> 2;
    for gr in 0..quads {
        let rb = deposit_zero(deposit_zero(gr, small), big);
        for gc in 0..quads {
            let cb = deposit_zero(deposit_zero(gc, small), big);
            let mut b = [Complex64::ZERO; 16];
            for (i, &ro) in offs.iter().enumerate() {
                let row = (rb | ro) * dim;
                for (j, &co) in offs.iter().enumerate() {
                    b[i * 4 + j] = rho[row + (cb | co)];
                }
            }
            let out = u.mul(&M4 { m: b }).mul(&ud);
            for (i, &ro) in offs.iter().enumerate() {
                let row = (rb | ro) * dim;
                for (j, &co) in offs.iter().enumerate() {
                    rho[row + (cb | co)] = out.m[i * 4 + j];
                }
            }
        }
    }
}

/// Density-matrix two-qubit depolarizing channel on the qubits selected by
/// `(bit_a, bit_b)`: `rho -> (1-p) rho + p/15 sum_{P != II} P rho P†`.
///
/// Uses the Pauli-twirl identity `sum_{all 16} P B P† = 4 tr(B) I` (valid
/// for *any* 4x4 block `B`), so each (row-group, col-group) sub-block maps
/// to `(1 - 16p/15) B + (4p/15) tr(B) I` — no Pauli enumeration at all.
pub fn dm_depolarize_two_qubit(
    rho: &mut [Complex64],
    dim: usize,
    bit_a: usize,
    bit_b: usize,
    p: f64,
) {
    debug_assert_eq!(rho.len(), dim * dim);
    let keep = 1.0 - p - p / 15.0;
    let mix = 4.0 * p / 15.0;
    let small = bit_a.min(bit_b);
    let big = bit_a.max(bit_b);
    let offs = [0, small, big, big | small];
    let quads = dim >> 2;
    for gr in 0..quads {
        let rb = deposit_zero(deposit_zero(gr, small), big);
        for gc in 0..quads {
            let cb = deposit_zero(deposit_zero(gc, small), big);
            let mut tr = Complex64::ZERO;
            for &o in &offs {
                tr += rho[(rb | o) * dim + (cb | o)];
            }
            for &ro in &offs {
                let row = (rb | ro) * dim;
                for &co in &offs {
                    rho[row + (cb | co)] *= keep;
                }
            }
            let add = tr * mix;
            for &o in &offs {
                rho[(rb | o) * dim + (cb | o)] += add;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use vaqem_mathkit::c64;
    use vaqem_mathkit::matrix::gates2x2;

    fn random_state(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..1usize << n)
            .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect()
    }

    #[test]
    fn parallel_m2_is_bit_identical_to_sequential() {
        let u = M2::from_cmatrix(&gates2x2::ry(0.83));
        for n in [6usize, 9] {
            for q in 0..n {
                let mut a = random_state(n, 42 + q as u64);
                let mut b = a.clone();
                apply_m2_seq(&mut a, 1 << q, &u);
                // Tiny grain forces deep splits including the zip path.
                apply_m2_par(&mut b, 1 << q, &u, 8);
                assert_eq!(a, b, "qubit {q} of {n}");
            }
        }
    }

    #[test]
    fn parallel_m4_is_bit_identical_to_sequential() {
        let u = M4::from_cmatrix(&gates2x2::rx(0.4).kron(&gates2x2::hadamard()));
        let n = 8usize;
        for qh in 0..n {
            for ql in 0..n {
                if qh == ql {
                    continue;
                }
                let mut a = random_state(n, 7);
                let mut b = a.clone();
                apply_m4_seq(&mut a, 1 << qh, 1 << ql, &u);
                apply_m4_par(&mut b, 1 << qh, 1 << ql, &u, 16);
                assert_eq!(a, b, "pair ({qh},{ql})");
            }
        }
    }

    fn random_matrix(n: usize, seed: u64) -> vaqem_mathkit::matrix::CMatrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dim = 1usize << n;
        vaqem_mathkit::matrix::CMatrix::from_vec(
            dim,
            dim,
            (0..dim * dim)
                .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
                .collect(),
        )
    }

    #[test]
    fn dm_sweeps_match_embedded_conjugation() {
        use vaqem_circuit::unitary::{embed_single, embed_two};
        let n = 3usize;
        let dim = 1usize << n;
        let u1 = gates2x2::ry(0.37);
        let u2 = gates2x2::rz(1.2).kron(&gates2x2::sx());
        for q in 0..n {
            let reference = random_matrix(n, 11 + q as u64);
            let expect = reference.conjugate_by(&embed_single(&u1, q, n));
            let mut fast = reference.clone();
            dm_apply_kraus_single(fast.as_mut_slice(), dim, 1 << q, &[M2::from_cmatrix(&u1)]);
            assert!(fast.max_abs_diff(&expect) < 1e-12, "single on {q}");
        }
        for (qh, ql) in [(0usize, 1usize), (1, 0), (0, 2), (2, 1)] {
            let reference = random_matrix(n, 29);
            let expect = reference.conjugate_by(&embed_two(&u2, qh, ql, n));
            let mut fast = reference.clone();
            dm_apply_m4(
                fast.as_mut_slice(),
                dim,
                1 << qh,
                1 << ql,
                &M4::from_cmatrix(&u2),
            );
            assert!(fast.max_abs_diff(&expect) < 1e-12, "pair ({qh},{ql})");
        }
    }

    #[test]
    fn dm_twirl_matches_explicit_pauli_sum() {
        use vaqem_circuit::unitary::embed_single;
        use vaqem_mathkit::matrix::CMatrix;
        let n = 3usize;
        let dim = 1usize << n;
        let (a, b) = (0usize, 2usize);
        let p = 0.23;
        let reference = random_matrix(n, 5);
        let paulis = [
            CMatrix::identity(2),
            gates2x2::pauli_x(),
            gates2x2::pauli_y(),
            gates2x2::pauli_z(),
        ];
        let mut sum = CMatrix::zeros(dim, dim);
        for (i, pa) in paulis.iter().enumerate() {
            for (j, pb) in paulis.iter().enumerate() {
                if i == 0 && j == 0 {
                    continue;
                }
                let full = &embed_single(pa, a, n) * &embed_single(pb, b, n);
                sum = &sum + &reference.conjugate_by(&full);
            }
        }
        let expect = &reference.scale(c64(1.0 - p, 0.0)) + &sum.scale(c64(p / 15.0, 0.0));
        let mut fast = reference.clone();
        dm_depolarize_two_qubit(fast.as_mut_slice(), dim, 1 << a, 1 << b, p);
        assert!(fast.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn fused_phase_population_matches_separate_sweeps() {
        let phase = Complex64::cis(0.73);
        for q in 0..6 {
            let bit = 1usize << q;
            let mut fused = random_state(6, 17);
            let mut separate = fused.clone();
            let p_fused = phase_and_excited_population(&mut fused, bit, phase);
            phase_if_one(&mut separate, bit, phase);
            let p_sep = excited_population(&separate, bit);
            assert_eq!(fused, separate, "qubit {q}");
            assert_eq!(p_fused, p_sep, "qubit {q}");
        }
    }

    #[test]
    fn mcwf_sweeps_match_index_filtered_loops() {
        let (s0, s1) = (1.07, 0.85);
        for q in 0..5 {
            let bit = 1usize << q;
            let mut fast = random_state(5, 23);
            let mut slow = fast.clone();
            mcwf_no_jump(&mut fast, bit, s0, s1);
            for (i, a) in slow.iter_mut().enumerate() {
                *a *= if i & bit != 0 { s1 } else { s0 };
            }
            assert_eq!(fast, slow, "no-jump on {q}");

            let mut fast = random_state(5, 29);
            let mut slow = fast.clone();
            mcwf_jump(&mut fast, bit, s0);
            let prev = slow.clone();
            for (i, a) in slow.iter_mut().enumerate() {
                *a = if i & bit != 0 {
                    Complex64::ZERO
                } else {
                    prev[i | bit] * s0
                };
            }
            assert_eq!(fast, slow, "jump on {q}");
        }
    }

    #[test]
    fn excited_population_matches_filtered_sum() {
        let amps = random_state(7, 3);
        for q in 0..7 {
            let bit = 1usize << q;
            let expect: f64 = amps
                .iter()
                .enumerate()
                .filter(|(i, _)| i & bit != 0)
                .map(|(_, a)| a.norm_sqr())
                .sum();
            assert_eq!(excited_population(&amps, bit), expect);
        }
    }
}
