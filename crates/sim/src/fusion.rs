//! Single-qubit gate fusion.
//!
//! Ansatz circuits in this repo (and NISQ circuits generally) interleave
//! runs of single-qubit rotations with sparse two-qubit gates. Applying
//! each rotation separately sweeps the whole state per gate; fusing a run
//! of adjacent single-qubit gates on the same qubit into one 2x2 product
//! matrix does the run in a single sweep. The fusion pass also converts
//! every gate's [`Gate::unitary`] into an unpacked [`M2`]/[`M4`] exactly
//! once, so executors that replay a circuit many times (the trajectory
//! engine runs one replay per shot) pay the matrix construction once per
//! compile instead of once per gate per shot.
//!
//! Fusion multiplies gate matrices before touching the state, which
//! reassociates floating-point arithmetic; results therefore match the
//! unfused path to `1e-12` per amplitude rather than bit-for-bit. The
//! parity suite pins that bound.

use crate::statevector::StateVector;
use vaqem_circuit::circuit::QuantumCircuit;
use vaqem_circuit::error::CircuitError;
use vaqem_circuit::gate::Gate;
use vaqem_circuit::schedule::ScheduledCircuit;
use vaqem_mathkit::smallmat::{M2, M4};

/// Unpacks a single-qubit gate's unitary.
///
/// # Errors
///
/// Returns [`CircuitError::UnboundParameter`] for symbolic gates.
pub fn gate_m2(gate: &Gate) -> Result<M2, CircuitError> {
    Ok(M2::from_cmatrix(&gate.unitary()?))
}

/// Unpacks a two-qubit gate's unitary.
///
/// # Errors
///
/// Returns [`CircuitError::UnboundParameter`] for symbolic gates.
pub fn gate_m4(gate: &Gate) -> Result<M4, CircuitError> {
    Ok(M4::from_cmatrix(&gate.unitary()?))
}

/// One fused operation: a 2x2 product on one qubit or a 4x4 on a pair.
#[derive(Debug, Clone, Copy)]
pub enum FusedOp {
    /// A (possibly fused) single-qubit unitary.
    One {
        /// Target qubit.
        q: usize,
        /// Product of the fused run, earliest gate right-most.
        u: M2,
    },
    /// A two-qubit unitary (`q_hi` is the more significant gate operand).
    Two {
        /// More significant gate operand (control of [`Gate::Cx`]).
        q_hi: usize,
        /// Less significant gate operand.
        q_lo: usize,
        /// Gate unitary.
        u: M4,
    },
}

impl FusedOp {
    /// Applies the operation to a statevector through the fast kernels.
    pub fn apply(&self, sv: &mut StateVector) {
        match *self {
            FusedOp::One { q, ref u } => sv.apply_m2(u, q),
            FusedOp::Two { q_hi, q_lo, ref u } => sv.apply_m4(u, q_hi, q_lo),
        }
    }
}

/// Streaming fusion pass: feed gates in program order, harvest fused ops.
#[derive(Debug)]
pub struct Fuser {
    pending: Vec<Option<M2>>,
    out: Vec<FusedOp>,
    gates_in: usize,
}

impl Fuser {
    /// Creates a pass over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Fuser {
            pending: vec![None; num_qubits],
            out: Vec::new(),
            gates_in: 0,
        }
    }

    /// Feeds one instruction. Non-unitary operations (measure, barrier,
    /// delay, identity) contribute no evolution and are skipped — matching
    /// the unfused ideal-engine semantics, where they are no-ops.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnboundParameter`] for symbolic gates.
    pub fn push(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), CircuitError> {
        match gate {
            Gate::Measure | Gate::Barrier | Gate::Delay { .. } | Gate::I => Ok(()),
            g if qubits.len() == 1 => {
                let u = gate_m2(g)?;
                self.gates_in += 1;
                let q = qubits[0];
                self.pending[q] = Some(match self.pending[q].take() {
                    // Later gate multiplies from the left.
                    Some(prev) => u.mul(&prev),
                    None => u,
                });
                Ok(())
            }
            g if qubits.len() == 2 => {
                let u = gate_m4(g)?;
                self.gates_in += 1;
                self.flush(qubits[0]);
                self.flush(qubits[1]);
                self.out.push(FusedOp::Two {
                    q_hi: qubits[0],
                    q_lo: qubits[1],
                    u,
                });
                Ok(())
            }
            _ => panic!("unsupported arity {}", qubits.len()),
        }
    }

    fn flush(&mut self, q: usize) {
        if let Some(u) = self.pending[q].take() {
            self.out.push(FusedOp::One { q, u });
        }
    }

    /// Flushes all pending runs (lowest qubit first) and returns the plan.
    pub fn finish(mut self) -> Vec<FusedOp> {
        for q in 0..self.pending.len() {
            self.flush(q);
        }
        self.out
    }

    /// Number of unitary gates fed in so far (fusion statistics).
    pub fn gates_in(&self) -> usize {
        self.gates_in
    }
}

/// Compiles a concrete circuit into a fused plan.
///
/// # Errors
///
/// Returns [`CircuitError::UnboundParameter`] for symbolic circuits.
pub fn fuse_circuit(circuit: &QuantumCircuit) -> Result<Vec<FusedOp>, CircuitError> {
    let mut fuser = Fuser::new(circuit.num_qubits());
    for inst in circuit.instructions() {
        fuser.push(&inst.gate, &inst.qubits)?;
    }
    Ok(fuser.finish())
}

/// Compiles a scheduled circuit into a fused plan (timing is irrelevant to
/// the ideal engine, so all unitary ops fuse regardless of gaps).
///
/// # Errors
///
/// Returns [`CircuitError::UnboundParameter`] for symbolic circuits.
pub fn fuse_scheduled(scheduled: &ScheduledCircuit) -> Result<Vec<FusedOp>, CircuitError> {
    let mut fuser = Fuser::new(scheduled.num_qubits());
    for op in scheduled.ops() {
        fuser.push(&op.gate, &op.qubits)?;
    }
    Ok(fuser.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_collapse_to_single_ops() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.rz(0.3, 0).unwrap();
        qc.ry(0.7, 0).unwrap();
        qc.h(1).unwrap();
        qc.cx(0, 1).unwrap();
        qc.rx(0.2, 1).unwrap();
        let plan = fuse_circuit(&qc).unwrap();
        // h+rz+ry on q0 fuse; h on q1 flushes before cx; rx(q1) flushes at end.
        assert_eq!(plan.len(), 4);
        assert!(matches!(
            plan[2],
            FusedOp::Two {
                q_hi: 0,
                q_lo: 1,
                ..
            }
        ));
    }

    #[test]
    fn fused_product_matches_sequential_application() {
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).unwrap();
        qc.rz(1.1, 0).unwrap();
        qc.sx(0).unwrap();
        let plan = fuse_circuit(&qc).unwrap();
        assert_eq!(plan.len(), 1);
        let FusedOp::One { u, .. } = plan[0] else {
            panic!("expected 1q op")
        };
        let expect = &(&Gate::Sx.unitary().unwrap() * &Gate::Rz(1.1.into()).unitary().unwrap())
            * &Gate::H.unitary().unwrap();
        assert!(u.to_cmatrix().max_abs_diff(&expect) < 1e-14);
    }

    #[test]
    fn non_unitary_ops_are_transparent() {
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).unwrap();
        qc.barrier_all();
        qc.delay(50.0, 0).unwrap();
        qc.h(0).unwrap();
        qc.measure(0).unwrap();
        let plan = fuse_circuit(&qc).unwrap();
        assert_eq!(plan.len(), 1, "H..H fuses across barrier/delay/measure");
    }

    #[test]
    fn unbound_parameter_surfaces() {
        let mut qc = QuantumCircuit::new(1);
        qc.ry_param(0, 0).unwrap();
        assert!(fuse_circuit(&qc).is_err());
    }
}
