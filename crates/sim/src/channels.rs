//! Quantum noise channels as Kraus operator sets.
//!
//! Used by the density-matrix simulator (the calibration-style "noisy
//! simulation" of the paper's Fig. 9) and validated by CPTP property tests.
//! The channels cover what an IBM calibration captures: amplitude damping
//! (T1), phase damping (pure dephasing from T2), depolarizing gate error,
//! and classical readout assignment error.

use vaqem_mathkit::complex::{c64, Complex64};
use vaqem_mathkit::matrix::{gates2x2, CMatrix};

/// A single-qubit channel: a list of 2x2 Kraus operators.
#[derive(Debug, Clone, PartialEq)]
pub struct KrausChannel {
    ops: Vec<CMatrix>,
}

impl KrausChannel {
    /// Builds a channel from Kraus operators.
    ///
    /// # Panics
    ///
    /// Panics if any operator is not 2x2 or the set is empty.
    pub fn new(ops: Vec<CMatrix>) -> Self {
        assert!(!ops.is_empty(), "channel needs at least one Kraus operator");
        for k in &ops {
            assert_eq!(k.rows(), 2, "single-qubit Kraus operators must be 2x2");
            assert_eq!(k.cols(), 2, "single-qubit Kraus operators must be 2x2");
        }
        KrausChannel { ops }
    }

    /// The identity channel.
    pub fn identity() -> Self {
        KrausChannel::new(vec![CMatrix::identity(2)])
    }

    /// Amplitude damping with decay probability `gamma = 1 - e^{-t/T1}`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= gamma <= 1`.
    pub fn amplitude_damping(gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma must be a probability");
        let k0 = CMatrix::from_rows(&[
            &[Complex64::ONE, Complex64::ZERO],
            &[Complex64::ZERO, c64((1.0 - gamma).sqrt(), 0.0)],
        ]);
        let k1 = CMatrix::from_rows(&[
            &[Complex64::ZERO, c64(gamma.sqrt(), 0.0)],
            &[Complex64::ZERO, Complex64::ZERO],
        ]);
        KrausChannel::new(vec![k0, k1])
    }

    /// Phase damping with dephasing probability `lambda = 1 - e^{-t/Tphi}`,
    /// expressed as a phase-flip channel with `p = (1 - sqrt(1-lambda))/2`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= lambda <= 1`.
    pub fn phase_damping(lambda: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&lambda),
            "lambda must be a probability"
        );
        let p = 0.5 * (1.0 - (1.0 - lambda).sqrt());
        Self::phase_flip(p)
    }

    /// Phase-flip channel: `Z` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    pub fn phase_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let k0 = CMatrix::identity(2).scale(c64((1.0 - p).sqrt(), 0.0));
        let k1 = gates2x2::pauli_z().scale(c64(p.sqrt(), 0.0));
        KrausChannel::new(vec![k0, k1])
    }

    /// Single-qubit depolarizing channel with error probability `p`:
    /// with probability `p` the state is replaced by one of X, Y, Z applied
    /// uniformly.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    pub fn depolarizing(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let k0 = CMatrix::identity(2).scale(c64((1.0 - p).sqrt(), 0.0));
        let kp = (p / 3.0).sqrt();
        KrausChannel::new(vec![
            k0,
            gates2x2::pauli_x().scale(c64(kp, 0.0)),
            gates2x2::pauli_y().scale(c64(kp, 0.0)),
            gates2x2::pauli_z().scale(c64(kp, 0.0)),
        ])
    }

    /// The Kraus operators.
    pub fn ops(&self) -> &[CMatrix] {
        &self.ops
    }

    /// Checks the completeness relation `sum K† K = I` within `tol`.
    pub fn is_trace_preserving(&self, tol: f64) -> bool {
        let mut acc = CMatrix::zeros(2, 2);
        for k in &self.ops {
            acc = &acc + &(&k.adjoint() * k);
        }
        acc.is_identity(tol)
    }

    /// Composes two channels: `other` after `self`.
    pub fn then(&self, other: &KrausChannel) -> KrausChannel {
        let mut ops = Vec::with_capacity(self.ops.len() * other.ops.len());
        for b in &other.ops {
            for a in &self.ops {
                ops.push(b * a);
            }
        }
        KrausChannel::new(ops)
    }
}

/// Classical readout-assignment error for one qubit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadoutError {
    /// P(read 1 | state 0).
    pub p01: f64,
    /// P(read 0 | state 1).
    pub p10: f64,
}

impl ReadoutError {
    /// Creates a readout error.
    ///
    /// # Panics
    ///
    /// Panics unless both probabilities are in `[0, 1]`.
    pub fn new(p01: f64, p10: f64) -> Self {
        assert!((0.0..=1.0).contains(&p01), "p01 must be a probability");
        assert!((0.0..=1.0).contains(&p10), "p10 must be a probability");
        ReadoutError { p01, p10 }
    }

    /// The 2x2 column-stochastic assignment matrix `A[m][t]` = P(measure m |
    /// true t).
    pub fn assignment_matrix(&self) -> [[f64; 2]; 2] {
        [[1.0 - self.p01, self.p10], [self.p01, 1.0 - self.p10]]
    }

    /// Flips a measured bit according to the assignment probabilities.
    pub fn apply<R: rand::Rng + ?Sized>(&self, true_bit: bool, rng: &mut R) -> bool {
        let r: f64 = rng.gen();
        if true_bit {
            r >= self.p10
        } else {
            r < self.p01
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn all_channels_are_trace_preserving() {
        for gamma in [0.0, 0.1, 0.5, 1.0] {
            assert!(KrausChannel::amplitude_damping(gamma).is_trace_preserving(1e-12));
            assert!(KrausChannel::phase_damping(gamma).is_trace_preserving(1e-12));
        }
        for p in [0.0, 0.01, 0.25, 0.75, 1.0] {
            assert!(KrausChannel::depolarizing(p).is_trace_preserving(1e-12));
            assert!(KrausChannel::phase_flip(p).is_trace_preserving(1e-12));
        }
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        // rho = |1><1| under damping: population -> 1 - gamma.
        let gamma = 0.3;
        let ch = KrausChannel::amplitude_damping(gamma);
        let rho = CMatrix::from_diagonal(&[Complex64::ZERO, Complex64::ONE]);
        let mut out = CMatrix::zeros(2, 2);
        for k in ch.ops() {
            out = &out + &(&(k * &rho) * &k.adjoint());
        }
        assert!((out[(1, 1)].re - (1.0 - gamma)).abs() < 1e-12);
        assert!((out[(0, 0)].re - gamma).abs() < 1e-12);
    }

    #[test]
    fn phase_damping_kills_coherence_not_population() {
        let lambda = 0.5;
        let ch = KrausChannel::phase_damping(lambda);
        // rho = |+><+|.
        let h = 0.5;
        let rho = CMatrix::from_rows(&[&[c64(h, 0.0), c64(h, 0.0)], &[c64(h, 0.0), c64(h, 0.0)]]);
        let mut out = CMatrix::zeros(2, 2);
        for k in ch.ops() {
            out = &out + &(&(k * &rho) * &k.adjoint());
        }
        // Populations untouched; off-diagonal shrinks by sqrt(1-lambda).
        assert!((out[(0, 0)].re - 0.5).abs() < 1e-12);
        assert!((out[(1, 1)].re - 0.5).abs() < 1e-12);
        assert!((out[(0, 1)].re - 0.5 * (1.0 - lambda).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_shrinks_bloch_vector() {
        let p = 0.3;
        let ch = KrausChannel::depolarizing(p);
        let rho = CMatrix::from_diagonal(&[Complex64::ONE, Complex64::ZERO]); // |0><0|
        let mut out = CMatrix::zeros(2, 2);
        for k in ch.ops() {
            out = &out + &(&(k * &rho) * &k.adjoint());
        }
        // <Z> shrinks by factor (1 - 4p/3).
        let z_exp = out[(0, 0)].re - out[(1, 1)].re;
        assert!((z_exp - (1.0 - 4.0 * p / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn channel_composition_is_cptp() {
        let a = KrausChannel::amplitude_damping(0.1);
        let b = KrausChannel::depolarizing(0.05);
        assert!(a.then(&b).is_trace_preserving(1e-12));
    }

    #[test]
    fn readout_assignment_matrix_is_stochastic() {
        let r = ReadoutError::new(0.02, 0.05);
        let m = r.assignment_matrix();
        assert!((m[0][0] + m[1][0] - 1.0).abs() < 1e-12);
        assert!((m[0][1] + m[1][1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn readout_flip_rates() {
        let r = ReadoutError::new(0.1, 0.2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 20_000;
        let flips0 = (0..n).filter(|_| r.apply(false, &mut rng)).count();
        let flips1 = (0..n).filter(|_| !r.apply(true, &mut rng)).count();
        assert!((flips0 as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((flips1 as f64 / n as f64 - 0.2).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_gamma_panics() {
        let _ = KrausChannel::amplitude_damping(1.5);
    }
}
