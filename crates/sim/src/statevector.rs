//! Ideal statevector simulation.
//!
//! [`StateVector`] is the noise-free engine used for (a) the angle-tuning
//! phase of the feasible VAQEM flow (paper Fig. 11: "Noise-free Computation
//! Model"), (b) exact reference distributions for Hellinger fidelity, and
//! (c) exact expectation values `<psi|H|psi>`.
//!
//! Qubit 0 is the least significant bit of the amplitude index.

use crate::counts::Counts;
use rand::Rng;
use vaqem_circuit::circuit::QuantumCircuit;
use vaqem_circuit::error::CircuitError;
use vaqem_circuit::gate::Gate;
use vaqem_mathkit::complex::Complex64;
use vaqem_mathkit::matrix::CMatrix;

/// A pure quantum state over `n` qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// Creates `|0...0>`.
    pub fn zero_state(num_qubits: usize) -> Self {
        let mut amps = vec![Complex64::ZERO; 1 << num_qubits];
        amps[0] = Complex64::ONE;
        StateVector { num_qubits, amps }
    }

    /// Creates a state from raw amplitudes (normalized by the caller).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        let n = amps.len();
        assert!(
            n.is_power_of_two(),
            "amplitude count must be a power of two"
        );
        StateVector {
            num_qubits: n.trailing_zeros() as usize,
            amps,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Amplitude slice (index 0 = `|0...0>`).
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Two-norm of the state.
    pub fn norm(&self) -> f64 {
        CMatrix::vec_norm(&self.amps)
    }

    /// Renormalizes in place (no-op on the zero vector).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 1e-300 {
            for a in self.amps.iter_mut() {
                *a = *a / n;
            }
        }
    }

    /// Applies a 2x2 unitary to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range or `u` is not 2x2.
    pub fn apply_single(&mut self, u: &CMatrix, q: usize) {
        assert!(q < self.num_qubits, "qubit out of range");
        assert_eq!(u.rows(), 2, "expected 2x2");
        let bit = 1usize << q;
        let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
        for base in 0..self.amps.len() {
            if base & bit != 0 {
                continue;
            }
            let i0 = base;
            let i1 = base | bit;
            let a0 = self.amps[i0];
            let a1 = self.amps[i1];
            self.amps[i0] = u00 * a0 + u01 * a1;
            self.amps[i1] = u10 * a0 + u11 * a1;
        }
    }

    /// Applies a 4x4 unitary to `(q_hi, q_lo)` where `q_hi` indexes the more
    /// significant bit of the gate space (first operand of [`Gate::Cx`]).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or equal qubits, or a non-4x4 matrix.
    pub fn apply_two(&mut self, u: &CMatrix, q_hi: usize, q_lo: usize) {
        assert!(
            q_hi < self.num_qubits && q_lo < self.num_qubits,
            "qubit out of range"
        );
        assert_ne!(q_hi, q_lo, "distinct qubits required");
        assert_eq!(u.rows(), 4, "expected 4x4");
        let (bh, bl) = (1usize << q_hi, 1usize << q_lo);
        for base in 0..self.amps.len() {
            if base & bh != 0 || base & bl != 0 {
                continue;
            }
            let idx = [base, base | bl, base | bh, base | bh | bl];
            let a: Vec<Complex64> = idx.iter().map(|&i| self.amps[i]).collect();
            for (r, &i) in idx.iter().enumerate() {
                let mut acc = Complex64::ZERO;
                for c in 0..4 {
                    acc += u[(r, c)] * a[c];
                }
                self.amps[i] = acc;
            }
        }
    }

    /// Applies a phase `e^{i theta}` to every basis state where qubit `q` is 1
    /// (fast diagonal path used by the noisy executor's detuning model).
    pub fn apply_phase_if_one(&mut self, theta: f64, q: usize) {
        let bit = 1usize << q;
        let phase = Complex64::cis(theta);
        for (i, a) in self.amps.iter_mut().enumerate() {
            if i & bit != 0 {
                *a *= phase;
            }
        }
    }

    /// Applies `exp(-i theta Z_a Z_b / 2)` (always-on ZZ coupling step).
    pub fn apply_zz(&mut self, theta: f64, a: usize, b: usize) {
        let (ba, bb) = (1usize << a, 1usize << b);
        let plus = Complex64::cis(-theta / 2.0);
        let minus = Complex64::cis(theta / 2.0);
        for (i, amp) in self.amps.iter_mut().enumerate() {
            let parity = ((i & ba != 0) as u8) ^ ((i & bb != 0) as u8);
            *amp *= if parity == 0 { plus } else { minus };
        }
    }

    /// Applies a concrete gate instruction.
    ///
    /// Delays, barriers and identities are no-ops at this level; measurement
    /// is rejected (use sampling instead).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnboundParameter`] for symbolic gates.
    ///
    /// # Panics
    ///
    /// Panics on `Measure` (projective collapse is handled by sampling).
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), CircuitError> {
        match gate {
            Gate::Barrier | Gate::Delay { .. } | Gate::I => Ok(()),
            Gate::Measure => panic!("apply_gate cannot measure; sample the state instead"),
            g => {
                let u = g.unitary()?;
                match qubits.len() {
                    1 => self.apply_single(&u, qubits[0]),
                    2 => self.apply_two(&u, qubits[0], qubits[1]),
                    k => panic!("unsupported arity {k}"),
                }
                Ok(())
            }
        }
    }

    /// Runs a full concrete circuit from `|0...0>`.
    ///
    /// Measurements are ignored (the state before measurement is returned);
    /// use [`Self::sample_counts`] for shot results.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnboundParameter`] for symbolic circuits.
    pub fn run(circuit: &QuantumCircuit) -> Result<StateVector, CircuitError> {
        let mut sv = StateVector::zero_state(circuit.num_qubits());
        for inst in circuit.instructions() {
            if matches!(inst.gate, Gate::Measure) {
                continue;
            }
            sv.apply_gate(&inst.gate, &inst.qubits)?;
        }
        Ok(sv)
    }

    /// Runs a scheduled circuit from `|0...0>`, ignoring timing (the ideal
    /// engine has no decoherence, so gate start times are irrelevant).
    ///
    /// Measurements, delays, barriers and identities are skipped, exactly
    /// as in [`Self::run`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnboundParameter`] for symbolic circuits.
    pub fn run_scheduled(
        scheduled: &vaqem_circuit::schedule::ScheduledCircuit,
    ) -> Result<StateVector, CircuitError> {
        let mut sv = StateVector::zero_state(scheduled.num_qubits());
        for op in scheduled.ops() {
            match op.gate {
                Gate::Measure | Gate::Barrier | Gate::Delay { .. } | Gate::I => {}
                ref g => sv.apply_gate(g, &op.qubits)?,
            }
        }
        Ok(sv)
    }

    /// Born-rule probabilities for every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Samples one basis-state index.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                return i;
            }
        }
        self.amps.len() - 1
    }

    /// Samples a histogram of `shots` measurements of all qubits.
    pub fn sample_counts<R: Rng + ?Sized>(&self, rng: &mut R, shots: u64) -> Counts {
        let mut counts = Counts::new(self.num_qubits);
        for _ in 0..shots {
            counts.record_index(self.sample_index(rng));
        }
        counts
    }

    /// Exact counts: probabilities scaled to `shots` and rounded (useful as
    /// an ideal reference distribution without sampling noise).
    pub fn exact_counts(&self, shots: u64) -> Counts {
        let mut counts = Counts::new(self.num_qubits);
        for (i, a) in self.amps.iter().enumerate() {
            let c = (a.norm_sqr() * shots as f64).round() as u64;
            if c > 0 {
                counts.record_index_n(i, c);
            }
        }
        counts
    }

    /// Exact expectation `<psi|M|psi>` of a dense Hermitian observable.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn expectation(&self, observable: &CMatrix) -> f64 {
        assert_eq!(observable.rows(), self.amps.len(), "dimension mismatch");
        let mv = observable.mul_vec(&self.amps);
        CMatrix::vec_inner(&self.amps, &mv).re
    }

    /// Fidelity `|<self|other>|^2` with another pure state.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits, "width mismatch");
        CMatrix::vec_inner(&self.amps, &other.amps).norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_1_SQRT_2;
    use vaqem_mathkit::c64;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn zero_state_is_normalized() {
        let sv = StateVector::zero_state(3);
        assert_eq!(sv.amplitudes().len(), 8);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
        assert!(sv.amplitudes()[0].approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn bell_state_via_run() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        let sv = StateVector::run(&qc).unwrap();
        let a = sv.amplitudes();
        assert!(a[0].approx_eq(c64(FRAC_1_SQRT_2, 0.0), 1e-12));
        assert!(a[3].approx_eq(c64(FRAC_1_SQRT_2, 0.0), 1e-12));
        assert!(a[1].norm() < 1e-12 && a[2].norm() < 1e-12);
    }

    #[test]
    fn ghz_probabilities() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        qc.cx(1, 2).unwrap();
        let sv = StateVector::run(&qc).unwrap();
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[7] - 0.5).abs() < 1e-12);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_two_respects_control_order() {
        // CX with control q1, target q0: |q1=1, q0=0> = index 2 -> index 3.
        let mut sv = StateVector::zero_state(2);
        sv.apply_single(&Gate::X.unitary().unwrap(), 1);
        sv.apply_two(&Gate::Cx.unitary().unwrap(), 1, 0);
        assert!(sv.amplitudes()[3].approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn phase_if_one_only_touches_one_branch() {
        let mut sv = StateVector::zero_state(1);
        sv.apply_single(&Gate::H.unitary().unwrap(), 0);
        sv.apply_phase_if_one(std::f64::consts::PI, 0);
        // H then Z = |->; applying H again gives |1>.
        sv.apply_single(&Gate::H.unitary().unwrap(), 0);
        assert!(sv.probabilities()[1] > 1.0 - 1e-12);
    }

    #[test]
    fn zz_phase_parity() {
        // |11> picks up e^{-i theta/2}; |01> picks up e^{+i theta/2}.
        let theta = 0.8;
        let mut sv = StateVector::from_amplitudes(vec![
            Complex64::ZERO,
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
        ]);
        sv.apply_zz(theta, 0, 1);
        assert!(sv.amplitudes()[1].approx_eq(Complex64::cis(theta / 2.0), 1e-12));
        let mut sv = StateVector::from_amplitudes(vec![
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ONE,
        ]);
        sv.apply_zz(theta, 0, 1);
        assert!(sv.amplitudes()[3].approx_eq(Complex64::cis(-theta / 2.0), 1e-12));
    }

    #[test]
    fn sampling_matches_probabilities() {
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).unwrap();
        let sv = StateVector::run(&qc).unwrap();
        let counts = sv.sample_counts(&mut rng(), 10_000);
        let p1 = counts.probability("1");
        assert!((p1 - 0.5).abs() < 0.03, "p1 = {p1}");
    }

    #[test]
    fn exact_counts_have_no_sampling_noise() {
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).unwrap();
        let sv = StateVector::run(&qc).unwrap();
        let counts = sv.exact_counts(1000);
        assert_eq!(counts.get("0"), 500);
        assert_eq!(counts.get("1"), 500);
    }

    #[test]
    fn expectation_of_z() {
        let z = Gate::Z.unitary().unwrap();
        let sv = StateVector::zero_state(1);
        assert!((sv.expectation(&z) - 1.0).abs() < 1e-12);
        let mut sv1 = StateVector::zero_state(1);
        sv1.apply_single(&Gate::X.unitary().unwrap(), 0);
        assert!((sv1.expectation(&z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_bounds() {
        let a = StateVector::zero_state(2);
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        let b = StateVector::run(&qc).unwrap();
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-12);
        assert!((a.fidelity(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unitarity_preserves_norm_over_long_circuits() {
        let mut qc = QuantumCircuit::new(4);
        for i in 0..4 {
            qc.h(i).unwrap();
        }
        for layer in 0..10 {
            for i in 0..4 {
                qc.ry(0.1 * (layer * 4 + i) as f64, i).unwrap();
            }
            for i in 0..3 {
                qc.cx(i, i + 1).unwrap();
            }
        }
        let sv = StateVector::run(&qc).unwrap();
        assert!((sv.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "sample the state")]
    fn measure_gate_rejected() {
        let mut sv = StateVector::zero_state(1);
        let _ = sv.apply_gate(&Gate::Measure, &[0]);
    }
}
