//! Ideal statevector simulation.
//!
//! [`StateVector`] is the noise-free engine used for (a) the angle-tuning
//! phase of the feasible VAQEM flow (paper Fig. 11: "Noise-free Computation
//! Model"), (b) exact reference distributions for Hellinger fidelity, and
//! (c) exact expectation values `<psi|H|psi>`.
//!
//! Gate application runs through the half/quarter-index-space kernels in
//! [`crate::kernels`] (amplitude-parallel for large states), circuit
//! execution fuses runs of single-qubit gates via [`crate::fusion`], and
//! shot sampling goes through the shared build-once CDF in
//! [`crate::sampling`]. The pre-optimization implementations survive in
//! [`crate::naive`] as the parity oracle and benchmark baseline.
//!
//! Qubit 0 is the least significant bit of the amplitude index.

use crate::counts::Counts;
use crate::fusion;
use crate::kernels;
use crate::sampling::CdfSampler;
use rand::Rng;
use vaqem_circuit::circuit::QuantumCircuit;
use vaqem_circuit::error::CircuitError;
use vaqem_circuit::gate::Gate;
use vaqem_mathkit::complex::Complex64;
use vaqem_mathkit::matrix::CMatrix;
use vaqem_mathkit::smallmat::{M2, M4};
use vaqem_mathkit::stats;

/// A pure quantum state over `n` qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// Creates `|0...0>`.
    pub fn zero_state(num_qubits: usize) -> Self {
        let mut amps = vec![Complex64::ZERO; 1 << num_qubits];
        amps[0] = Complex64::ONE;
        StateVector { num_qubits, amps }
    }

    /// Creates a state from raw amplitudes (normalized by the caller).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        let n = amps.len();
        assert!(
            n.is_power_of_two(),
            "amplitude count must be a power of two"
        );
        StateVector {
            num_qubits: n.trailing_zeros() as usize,
            amps,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Amplitude slice (index 0 = `|0...0>`).
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Mutable amplitude access for in-crate engines (trajectory executor,
    /// naive reference) that manipulate the state directly.
    pub(crate) fn amps_mut(&mut self) -> &mut [Complex64] {
        &mut self.amps
    }

    /// Resets to `|0...0>` without reallocating — the trajectory executor
    /// reuses one state buffer across all shots of a job.
    pub fn reset_zero(&mut self) {
        self.amps.fill(Complex64::ZERO);
        self.amps[0] = Complex64::ONE;
    }

    /// Two-norm of the state.
    pub fn norm(&self) -> f64 {
        CMatrix::vec_norm(&self.amps)
    }

    /// Renormalizes in place (no-op on the zero vector).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 1e-300 {
            for a in self.amps.iter_mut() {
                *a = *a / n;
            }
        }
    }

    /// Applies an unpacked 2x2 unitary to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_m2(&mut self, u: &M2, q: usize) {
        assert!(q < self.num_qubits, "qubit out of range");
        kernels::apply_m2(&mut self.amps, 1 << q, u);
    }

    /// Applies an unpacked 4x4 unitary to `(q_hi, q_lo)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or equal qubits.
    pub fn apply_m4(&mut self, u: &M4, q_hi: usize, q_lo: usize) {
        assert!(
            q_hi < self.num_qubits && q_lo < self.num_qubits,
            "qubit out of range"
        );
        assert_ne!(q_hi, q_lo, "distinct qubits required");
        kernels::apply_m4(&mut self.amps, 1 << q_hi, 1 << q_lo, u);
    }

    /// Applies a 2x2 unitary to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range or `u` is not 2x2.
    pub fn apply_single(&mut self, u: &CMatrix, q: usize) {
        assert_eq!(u.rows(), 2, "expected 2x2");
        self.apply_m2(&M2::from_cmatrix(u), q);
    }

    /// Applies a 4x4 unitary to `(q_hi, q_lo)` where `q_hi` indexes the more
    /// significant bit of the gate space (first operand of [`Gate::Cx`]).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or equal qubits, or a non-4x4 matrix.
    pub fn apply_two(&mut self, u: &CMatrix, q_hi: usize, q_lo: usize) {
        assert_eq!(u.rows(), 4, "expected 4x4");
        self.apply_m4(&M4::from_cmatrix(u), q_hi, q_lo);
    }

    /// Applies a phase `e^{i theta}` to every basis state where qubit `q` is 1
    /// (fast diagonal path used by the noisy executor's detuning model).
    pub fn apply_phase_if_one(&mut self, theta: f64, q: usize) {
        kernels::phase_if_one(&mut self.amps, 1 << q, Complex64::cis(theta));
    }

    /// Applies `exp(-i theta Z_a Z_b / 2)` (always-on ZZ coupling step).
    pub fn apply_zz(&mut self, theta: f64, a: usize, b: usize) {
        let (ba, bb) = (1usize << a, 1usize << b);
        let plus = Complex64::cis(-theta / 2.0);
        let minus = Complex64::cis(theta / 2.0);
        for (i, amp) in self.amps.iter_mut().enumerate() {
            let parity = ((i & ba != 0) as u8) ^ ((i & bb != 0) as u8);
            *amp *= if parity == 0 { plus } else { minus };
        }
    }

    /// Applies a concrete gate instruction.
    ///
    /// Delays, barriers and identities are no-ops at this level; measurement
    /// is rejected (use sampling instead).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnboundParameter`] for symbolic gates.
    ///
    /// # Panics
    ///
    /// Panics on `Measure` (projective collapse is handled by sampling).
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), CircuitError> {
        match gate {
            Gate::Barrier | Gate::Delay { .. } | Gate::I => Ok(()),
            Gate::Measure => panic!("apply_gate cannot measure; sample the state instead"),
            g => {
                match qubits.len() {
                    1 => self.apply_m2(&fusion::gate_m2(g)?, qubits[0]),
                    2 => self.apply_m4(&fusion::gate_m4(g)?, qubits[0], qubits[1]),
                    k => panic!("unsupported arity {k}"),
                }
                Ok(())
            }
        }
    }

    /// Runs a full concrete circuit from `|0...0>`, fusing runs of
    /// single-qubit gates into one sweep each.
    ///
    /// Measurements are ignored (the state before measurement is returned);
    /// use [`Self::sample_counts`] for shot results.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnboundParameter`] for symbolic circuits.
    pub fn run(circuit: &QuantumCircuit) -> Result<StateVector, CircuitError> {
        let mut sv = StateVector::zero_state(circuit.num_qubits());
        for op in fusion::fuse_circuit(circuit)? {
            op.apply(&mut sv);
        }
        Ok(sv)
    }

    /// Runs a scheduled circuit from `|0...0>`, ignoring timing (the ideal
    /// engine has no decoherence, so gate start times are irrelevant).
    ///
    /// Measurements, delays, barriers and identities are skipped, exactly
    /// as in [`Self::run`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnboundParameter`] for symbolic circuits.
    pub fn run_scheduled(
        scheduled: &vaqem_circuit::schedule::ScheduledCircuit,
    ) -> Result<StateVector, CircuitError> {
        let mut sv = StateVector::zero_state(scheduled.num_qubits());
        for op in fusion::fuse_scheduled(scheduled)? {
            op.apply(&mut sv);
        }
        Ok(sv)
    }

    /// Born-rule probabilities for every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Probability that qubit `q` reads 1.
    pub fn excited_probability(&self, q: usize) -> f64 {
        kernels::excited_population(&self.amps, 1 << q)
    }

    /// Samples one basis-state index (one `O(2^n)` scan; for shot loops use
    /// [`Self::sample_counts`], which amortizes the scan into one CDF).
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                return i;
            }
        }
        self.amps.len() - 1
    }

    /// Samples a histogram of `shots` measurements of all qubits: one CDF
    /// build, then a binary search per shot, accumulated into an index
    /// histogram (no per-shot string allocation).
    pub fn sample_counts<R: Rng + ?Sized>(&self, rng: &mut R, shots: u64) -> Counts {
        let cdf = CdfSampler::from_amplitudes(&self.amps);
        let mut hist = Vec::new();
        cdf.sample_histogram(rng, shots, &mut hist);
        Counts::from_index_histogram(self.num_qubits, &hist)
    }

    /// Exact counts: probabilities apportioned to `shots` by the
    /// largest-remainder method, so the histogram always totals exactly
    /// `shots` (independent rounding could drift by several shots on wide
    /// distributions).
    pub fn exact_counts(&self, shots: u64) -> Counts {
        let probs = self.probabilities();
        let alloc = stats::largest_remainder(&probs, shots);
        let mut counts = Counts::new(self.num_qubits);
        for (i, &c) in alloc.iter().enumerate() {
            if c > 0 {
                counts.record_index_n(i, c);
            }
        }
        counts
    }

    /// Exact expectation `<psi|M|psi>` of a dense Hermitian observable.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn expectation(&self, observable: &CMatrix) -> f64 {
        assert_eq!(observable.rows(), self.amps.len(), "dimension mismatch");
        let mv = observable.mul_vec(&self.amps);
        CMatrix::vec_inner(&self.amps, &mv).re
    }

    /// Fidelity `|<self|other>|^2` with another pure state.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits, "width mismatch");
        CMatrix::vec_inner(&self.amps, &other.amps).norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_1_SQRT_2;
    use vaqem_mathkit::c64;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn zero_state_is_normalized() {
        let sv = StateVector::zero_state(3);
        assert_eq!(sv.amplitudes().len(), 8);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
        assert!(sv.amplitudes()[0].approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn bell_state_via_run() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        let sv = StateVector::run(&qc).unwrap();
        let a = sv.amplitudes();
        assert!(a[0].approx_eq(c64(FRAC_1_SQRT_2, 0.0), 1e-12));
        assert!(a[3].approx_eq(c64(FRAC_1_SQRT_2, 0.0), 1e-12));
        assert!(a[1].norm() < 1e-12 && a[2].norm() < 1e-12);
    }

    #[test]
    fn ghz_probabilities() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        qc.cx(1, 2).unwrap();
        let sv = StateVector::run(&qc).unwrap();
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[7] - 0.5).abs() < 1e-12);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_two_respects_control_order() {
        // CX with control q1, target q0: |q1=1, q0=0> = index 2 -> index 3.
        let mut sv = StateVector::zero_state(2);
        sv.apply_single(&Gate::X.unitary().unwrap(), 1);
        sv.apply_two(&Gate::Cx.unitary().unwrap(), 1, 0);
        assert!(sv.amplitudes()[3].approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn kernel_paths_match_naive_reference_bitwise() {
        // The optimized single/two-qubit kernels must be bit-identical to
        // the original full-index-space loops on a random state.
        let mut r = rng();
        let amps: Vec<Complex64> = (0..1 << 6)
            .map(|_| c64(r.gen::<f64>() - 0.5, r.gen::<f64>() - 0.5))
            .collect();
        let h = Gate::H.unitary().unwrap();
        let cx = Gate::Cx.unitary().unwrap();
        for q in 0..6 {
            let mut fast = StateVector::from_amplitudes(amps.clone());
            let mut slow = StateVector::from_amplitudes(amps.clone());
            fast.apply_single(&h, q);
            naive::apply_single(&mut slow, &h, q);
            assert_eq!(fast.amplitudes(), slow.amplitudes(), "1q on {q}");
        }
        for (a, b) in [(0, 1), (1, 0), (2, 5), (5, 2), (0, 5)] {
            let mut fast = StateVector::from_amplitudes(amps.clone());
            let mut slow = StateVector::from_amplitudes(amps.clone());
            fast.apply_two(&cx, a, b);
            naive::apply_two(&mut slow, &cx, a, b);
            assert_eq!(fast.amplitudes(), slow.amplitudes(), "2q on ({a},{b})");
        }
    }

    #[test]
    fn fused_run_matches_naive_run() {
        let mut qc = QuantumCircuit::new(4);
        for i in 0..4 {
            qc.h(i).unwrap();
            qc.rz(0.3 * (i + 1) as f64, i).unwrap();
            qc.ry(0.7 - 0.1 * i as f64, i).unwrap();
        }
        for i in 0..3 {
            qc.cx(i, i + 1).unwrap();
        }
        for i in 0..4 {
            qc.rx(0.2 * i as f64, i).unwrap();
        }
        let fast = StateVector::run(&qc).unwrap();
        let slow = naive::run(&qc).unwrap();
        for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn reset_zero_restores_ground_state() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).unwrap();
        qc.cx(0, 2).unwrap();
        let mut sv = StateVector::run(&qc).unwrap();
        sv.reset_zero();
        assert_eq!(sv, StateVector::zero_state(3));
    }

    #[test]
    fn phase_if_one_only_touches_one_branch() {
        let mut sv = StateVector::zero_state(1);
        sv.apply_single(&Gate::H.unitary().unwrap(), 0);
        sv.apply_phase_if_one(std::f64::consts::PI, 0);
        // H then Z = |->; applying H again gives |1>.
        sv.apply_single(&Gate::H.unitary().unwrap(), 0);
        assert!(sv.probabilities()[1] > 1.0 - 1e-12);
    }

    #[test]
    fn zz_phase_parity() {
        // |11> picks up e^{-i theta/2}; |01> picks up e^{+i theta/2}.
        let theta = 0.8;
        let mut sv = StateVector::from_amplitudes(vec![
            Complex64::ZERO,
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
        ]);
        sv.apply_zz(theta, 0, 1);
        assert!(sv.amplitudes()[1].approx_eq(Complex64::cis(theta / 2.0), 1e-12));
        let mut sv = StateVector::from_amplitudes(vec![
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ONE,
        ]);
        sv.apply_zz(theta, 0, 1);
        assert!(sv.amplitudes()[3].approx_eq(Complex64::cis(-theta / 2.0), 1e-12));
    }

    #[test]
    fn sampling_matches_probabilities() {
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).unwrap();
        let sv = StateVector::run(&qc).unwrap();
        let counts = sv.sample_counts(&mut rng(), 10_000);
        let p1 = counts.probability("1");
        assert!((p1 - 0.5).abs() < 0.03, "p1 = {p1}");
    }

    #[test]
    fn cdf_sampling_is_bit_identical_to_naive_scan() {
        let mut qc = QuantumCircuit::new(5);
        for i in 0..5 {
            qc.ry(0.4 + 0.3 * i as f64, i).unwrap();
        }
        for i in 0..4 {
            qc.cx(i, i + 1).unwrap();
        }
        let sv = StateVector::run(&qc).unwrap();
        // Same RNG stream through both samplers: identical histograms.
        let fast = sv.sample_counts(&mut rng(), 4096);
        let slow = naive::sample_counts(&sv, &mut rng(), 4096);
        assert_eq!(fast, slow);
    }

    #[test]
    fn exact_counts_have_no_sampling_noise() {
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).unwrap();
        let sv = StateVector::run(&qc).unwrap();
        let counts = sv.exact_counts(1000);
        assert_eq!(counts.get("0"), 500);
        assert_eq!(counts.get("1"), 500);
    }

    #[test]
    fn exact_counts_total_exactly_shots() {
        // A three-way 1/3 split: independent rounding gives 333*3 = 999,
        // largest-remainder apportionment must hand the leftover shot out.
        let a = (1.0f64 / 3.0).sqrt();
        let sv = StateVector::from_amplitudes(vec![
            c64(a, 0.0),
            c64(a, 0.0),
            c64(a, 0.0),
            Complex64::ZERO,
        ]);
        let counts = sv.exact_counts(1000);
        assert_eq!(counts.total(), 1000);
        let naive_total = naive::exact_counts_rounded(&sv, 1000).total();
        assert_eq!(naive_total, 999, "the defect this fixes");
        // 7-qubit uniform superposition: 128 outcomes of 1000/128 shots.
        let mut qc = QuantumCircuit::new(7);
        for i in 0..7 {
            qc.h(i).unwrap();
        }
        let sv = StateVector::run(&qc).unwrap();
        assert_eq!(sv.exact_counts(1000).total(), 1000);
    }

    #[test]
    fn excited_probability_matches_full_sum() {
        let mut qc = QuantumCircuit::new(3);
        qc.ry(0.9, 0).unwrap();
        qc.cx(0, 2).unwrap();
        let sv = StateVector::run(&qc).unwrap();
        for q in 0..3 {
            let expect: f64 = sv
                .probabilities()
                .iter()
                .enumerate()
                .filter(|(i, _)| i & (1 << q) != 0)
                .map(|(_, p)| p)
                .sum();
            assert!((sv.excited_probability(q) - expect).abs() < 1e-15);
        }
    }

    #[test]
    fn expectation_of_z() {
        let z = Gate::Z.unitary().unwrap();
        let sv = StateVector::zero_state(1);
        assert!((sv.expectation(&z) - 1.0).abs() < 1e-12);
        let mut sv1 = StateVector::zero_state(1);
        sv1.apply_single(&Gate::X.unitary().unwrap(), 0);
        assert!((sv1.expectation(&z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_bounds() {
        let a = StateVector::zero_state(2);
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        let b = StateVector::run(&qc).unwrap();
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-12);
        assert!((a.fidelity(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unitarity_preserves_norm_over_long_circuits() {
        let mut qc = QuantumCircuit::new(4);
        for i in 0..4 {
            qc.h(i).unwrap();
        }
        for layer in 0..10 {
            for i in 0..4 {
                qc.ry(0.1 * (layer * 4 + i) as f64, i).unwrap();
            }
            for i in 0..3 {
                qc.cx(i, i + 1).unwrap();
            }
        }
        let sv = StateVector::run(&qc).unwrap();
        assert!((sv.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "sample the state")]
    fn measure_gate_rejected() {
        let mut sv = StateVector::zero_state(1);
        let _ = sv.apply_gate(&Gate::Measure, &[0]);
    }
}
