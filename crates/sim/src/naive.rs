//! Reference implementations preserved from the pre-optimization simulator.
//!
//! These are the original full-index-space gate loops, the per-shot linear
//! sampling scan, and the independently-rounded exact-counts path, kept
//! verbatim for two jobs:
//!
//! 1. **Parity oracle** — `tests/sim_kernel_props.rs` and the unit tests in
//!    [`crate::statevector`] check the optimized kernels against these on
//!    random states and circuits (bit-identical for the kernels, bounded by
//!    `1e-12` where fusion legitimately reassociates floating point).
//! 2. **Honest benchmarking** — `bench_simulators` times the optimized and
//!    naive paths side by side, so the committed `BENCH_simulators.json`
//!    speedups are measured against real code, not a strawman.
//!
//! Nothing in the production paths calls into this module.

use crate::channels::KrausChannel;
use crate::counts::Counts;
use crate::density::DensityMatrix;
use crate::statevector::StateVector;
use rand::Rng;
use vaqem_circuit::circuit::QuantumCircuit;
use vaqem_circuit::error::CircuitError;
use vaqem_circuit::gate::Gate;
use vaqem_circuit::schedule::ScheduledCircuit;
use vaqem_circuit::unitary::{embed_single, embed_two};
use vaqem_device::noise::NoiseParameters;
use vaqem_mathkit::complex::Complex64;
use vaqem_mathkit::matrix::CMatrix;

/// Original single-qubit gate loop: visits all `2^n` indices and
/// branch-skips the half where `q` is set.
pub fn apply_single(sv: &mut StateVector, u: &CMatrix, q: usize) {
    assert!(q < sv.num_qubits(), "qubit out of range");
    assert_eq!(u.rows(), 2, "expected 2x2");
    let bit = 1usize << q;
    let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
    let amps = sv.amps_mut();
    for base in 0..amps.len() {
        if base & bit != 0 {
            continue;
        }
        let i0 = base;
        let i1 = base | bit;
        let a0 = amps[i0];
        let a1 = amps[i1];
        amps[i0] = u00 * a0 + u01 * a1;
        amps[i1] = u10 * a0 + u11 * a1;
    }
}

/// Original two-qubit gate loop: visits all `2^n` indices, branch-skips
/// three quarters of them, and collects each amplitude group into a
/// freshly-allocated `Vec`.
pub fn apply_two(sv: &mut StateVector, u: &CMatrix, q_hi: usize, q_lo: usize) {
    assert!(
        q_hi < sv.num_qubits() && q_lo < sv.num_qubits(),
        "qubit out of range"
    );
    assert_ne!(q_hi, q_lo, "distinct qubits required");
    assert_eq!(u.rows(), 4, "expected 4x4");
    let (bh, bl) = (1usize << q_hi, 1usize << q_lo);
    let amps = sv.amps_mut();
    for base in 0..amps.len() {
        if base & bh != 0 || base & bl != 0 {
            continue;
        }
        let idx = [base, base | bl, base | bh, base | bh | bl];
        let a: Vec<Complex64> = idx.iter().map(|&i| amps[i]).collect();
        for (r, &i) in idx.iter().enumerate() {
            let mut acc = Complex64::ZERO;
            for c in 0..4 {
                acc += u[(r, c)] * a[c];
            }
            amps[i] = acc;
        }
    }
}

/// Original gate dispatch: fetches the unitary from the gate every time.
///
/// # Errors
///
/// Returns [`CircuitError::UnboundParameter`] for symbolic gates.
pub fn apply_gate(sv: &mut StateVector, gate: &Gate, qubits: &[usize]) -> Result<(), CircuitError> {
    match gate {
        Gate::Barrier | Gate::Delay { .. } | Gate::I => Ok(()),
        Gate::Measure => panic!("apply_gate cannot measure; sample the state instead"),
        g => {
            let u = g.unitary()?;
            match qubits.len() {
                1 => apply_single(sv, &u, qubits[0]),
                2 => apply_two(sv, &u, qubits[0], qubits[1]),
                k => panic!("unsupported arity {k}"),
            }
            Ok(())
        }
    }
}

/// Original unfused circuit execution: one unitary fetch and one full
/// state sweep per instruction.
///
/// # Errors
///
/// Returns [`CircuitError::UnboundParameter`] for symbolic circuits.
pub fn run(circuit: &QuantumCircuit) -> Result<StateVector, CircuitError> {
    let mut sv = StateVector::zero_state(circuit.num_qubits());
    for inst in circuit.instructions() {
        if matches!(inst.gate, Gate::Measure) {
            continue;
        }
        apply_gate(&mut sv, &inst.gate, &inst.qubits)?;
    }
    Ok(sv)
}

/// Original per-shot sampler: a linear scan over all `2^n` probabilities.
pub fn sample_index<R: Rng + ?Sized>(sv: &StateVector, rng: &mut R) -> usize {
    let r: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, a) in sv.amplitudes().iter().enumerate() {
        acc += a.norm_sqr();
        if r < acc {
            return i;
        }
    }
    sv.amplitudes().len() - 1
}

/// Original shot loop: `O(2^n)` scan plus a bitstring allocation per shot.
pub fn sample_counts<R: Rng + ?Sized>(sv: &StateVector, rng: &mut R, shots: u64) -> Counts {
    let mut counts = Counts::new(sv.num_qubits());
    for _ in 0..shots {
        counts.record_index(sample_index(sv, rng));
    }
    counts
}

/// Original exact counts: each probability rounded independently, so the
/// totals can drift away from `shots` (the defect
/// [`StateVector::exact_counts`] now fixes with largest-remainder
/// apportionment).
pub fn exact_counts_rounded(sv: &StateVector, shots: u64) -> Counts {
    let mut counts = Counts::new(sv.num_qubits());
    for (i, a) in sv.amplitudes().iter().enumerate() {
        let c = (a.norm_sqr() * shots as f64).round() as u64;
        if c > 0 {
            counts.record_index_n(i, c);
        }
    }
    counts
}

/// Original conditional-phase loop: full `2^n` sweep with a branch per
/// index.
fn phase_if_one(sv: &mut StateVector, theta: f64, q: usize) {
    let bit = 1usize << q;
    let phase = Complex64::cis(theta);
    for (i, a) in sv.amps_mut().iter_mut().enumerate() {
        if i & bit != 0 {
            *a *= phase;
        }
    }
}

/// Original trajectory executor: per-shot allocation of the statevector and
/// environment buffers, per-gate unitary fetches, clone-based MCWF damping.
/// Identical RNG consumption to the compiled executor in
/// [`crate::machine`], which the parity tests exploit.
///
/// # Panics
///
/// Panics if `scheduled` references qubits beyond the noise description.
pub fn machine_run_job_with_shots(
    noise: &vaqem_device::noise::NoiseParameters,
    seeds: &vaqem_mathkit::SeedStream,
    scheduled: &vaqem_circuit::schedule::ScheduledCircuit,
    shots: u64,
    job_index: u64,
) -> Counts {
    let n = scheduled.num_qubits();
    assert!(
        noise.num_qubits() >= n,
        "noise parameters must cover the register"
    );
    let mut counts = Counts::new(n);
    for shot in 0..shots {
        let mut rng = seeds.rng_indexed(
            "machine-trajectory",
            job_index.wrapping_mul(1_000_003) ^ shot,
        );
        let outcome = machine_run_trajectory(noise, scheduled, &mut rng);
        counts.record_index(outcome);
    }
    counts
}

fn machine_run_trajectory(
    noise: &vaqem_device::noise::NoiseParameters,
    scheduled: &vaqem_circuit::schedule::ScheduledCircuit,
    rng: &mut rand::rngs::StdRng,
) -> usize {
    use vaqem_mathkit::rng::sample_standard_normal;
    let n = scheduled.num_qubits();
    let mut sv = StateVector::zero_state(n);

    // Per-trajectory quasi-static environment.
    let mut detuning = vec![0.0f64; n];
    let mut telegraph_sign = vec![1.0f64; n];
    for q in 0..n {
        let qn = noise.qubit(q);
        detuning[q] = qn.quasi_static_sigma_rad_ns * sample_standard_normal(rng);
        if rng.gen::<bool>() {
            telegraph_sign[q] = -1.0;
        }
    }
    let zz: Vec<((usize, usize), f64)> = noise
        .zz_couplings()
        .filter(|((a, b), _)| *a < n && *b < n)
        .collect();

    let mut now = 0.0f64;
    let mut started = vec![false; n]; // decoherence begins at first op
    for op in scheduled.ops() {
        if matches!(op.gate, Gate::Barrier) {
            continue;
        }
        let dt = op.start_ns - now;
        if dt > 1e-9 {
            machine_free_evolution(
                noise,
                &mut sv,
                dt,
                &detuning,
                &mut telegraph_sign,
                &started,
                &zz,
                rng,
            );
            now = op.start_ns;
        }
        match op.gate {
            Gate::Measure | Gate::Delay { .. } | Gate::I => {}
            ref g => {
                apply_gate(&mut sv, g, &op.qubits).expect("scheduled circuits are concrete");
                machine_apply_gate_error(noise, &mut sv, &op.qubits, rng);
            }
        }
        for &q in &op.qubits {
            started[q] = true;
        }
    }
    // Trailing free evolution up to the makespan.
    let tail = scheduled.total_ns() - now;
    if tail > 1e-9 {
        machine_free_evolution(
            noise,
            &mut sv,
            tail,
            &detuning,
            &mut telegraph_sign,
            &started,
            &zz,
            rng,
        );
    }

    // Sample the outcome and apply readout flips.
    let mut index = sample_index(&sv, rng);
    for q in 0..n {
        let qn = noise.qubit(q);
        let bit = 1usize << q;
        let is_one = index & bit != 0;
        let flip_p = if is_one {
            qn.readout_p10
        } else {
            qn.readout_p01
        };
        if rng.gen::<f64>() < flip_p {
            index ^= bit;
        }
    }
    index
}

#[allow(clippy::too_many_arguments)]
fn machine_free_evolution(
    noise: &vaqem_device::noise::NoiseParameters,
    sv: &mut StateVector,
    dt: f64,
    detuning: &[f64],
    telegraph_sign: &mut [f64],
    started: &[bool],
    zz: &[((usize, usize), f64)],
    rng: &mut rand::rngs::StdRng,
) {
    let n = sv.num_qubits();
    for q in 0..n {
        if !started[q] {
            continue;
        }
        let qn = noise.qubit(q);

        if detuning[q] != 0.0 {
            let mut remaining = dt;
            let mut signed_time = 0.0;
            if qn.telegraph_rate_per_ns > 0.0 {
                loop {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let next_flip = -u.ln() / qn.telegraph_rate_per_ns;
                    if next_flip >= remaining {
                        signed_time += telegraph_sign[q] * remaining;
                        break;
                    }
                    signed_time += telegraph_sign[q] * next_flip;
                    telegraph_sign[q] = -telegraph_sign[q];
                    remaining -= next_flip;
                }
            } else {
                signed_time = telegraph_sign[q] * dt;
            }
            phase_if_one(sv, detuning[q] * signed_time, q);
        }

        if qn.t1_ns.is_finite() {
            let gamma = 1.0 - (-dt / qn.t1_ns).exp();
            machine_amplitude_damping_mcwf(sv, q, gamma, rng);
        }

        let rate = qn.pure_dephasing_rate();
        if rate > 0.0 {
            let p = 0.5 * (1.0 - (-dt * rate).exp());
            if rng.gen::<f64>() < p {
                phase_if_one(sv, std::f64::consts::PI, q);
            }
        }
    }
    for &((a, b), zeta) in zz {
        if started[a] && started[b] {
            sv.apply_zz(zeta * dt, a, b);
        }
    }
}

fn machine_apply_gate_error(
    noise: &vaqem_device::noise::NoiseParameters,
    sv: &mut StateVector,
    qubits: &[usize],
    rng: &mut rand::rngs::StdRng,
) {
    match qubits.len() {
        1 => {
            let p = noise.qubit(qubits[0]).gate_error_1q;
            if p > 0.0 && rng.gen::<f64>() < p {
                machine_apply_pauli(sv, qubits[0], rng.gen_range(1..4u8));
            }
        }
        2 => {
            let p = noise.cx_error(qubits[0], qubits[1]);
            if p > 0.0 && rng.gen::<f64>() < p {
                loop {
                    let (a, b) = (rng.gen_range(0..4u8), rng.gen_range(0..4u8));
                    if a == 0 && b == 0 {
                        continue;
                    }
                    if a != 0 {
                        machine_apply_pauli(sv, qubits[0], a);
                    }
                    if b != 0 {
                        machine_apply_pauli(sv, qubits[1], b);
                    }
                    break;
                }
            }
        }
        _ => {}
    }
}

fn machine_apply_pauli(sv: &mut StateVector, q: usize, which: u8) {
    let g = match which {
        1 => Gate::X,
        2 => Gate::Y,
        _ => Gate::Z,
    };
    apply_gate(sv, &g, &[q]).expect("paulis are concrete");
}

fn machine_amplitude_damping_mcwf(
    sv: &mut StateVector,
    q: usize,
    gamma: f64,
    rng: &mut rand::rngs::StdRng,
) {
    if gamma <= 0.0 {
        return;
    }
    let bit = 1usize << q;
    let p1: f64 = sv
        .amplitudes()
        .iter()
        .enumerate()
        .filter(|(i, _)| i & bit != 0)
        .map(|(_, a)| a.norm_sqr())
        .sum();
    let p_jump = gamma * p1;
    // Copy amplitudes out, transform, and write back through a fresh vector.
    let mut amps = sv.amplitudes().to_vec();
    if rng.gen::<f64>() < p_jump {
        // Jump: |...1...> -> |...0...>.
        let mut next = vec![Complex64::ZERO; amps.len()];
        for (i, a) in amps.iter().enumerate() {
            if i & bit != 0 {
                next[i & !bit] = *a;
            }
        }
        amps = next;
    } else {
        // No jump: damp the |1> branch.
        let damp = (1.0 - gamma).sqrt();
        for (i, a) in amps.iter_mut().enumerate() {
            if i & bit != 0 {
                *a *= damp;
            }
        }
    }
    let mut next = StateVector::from_amplitudes(amps);
    next.normalize();
    *sv = next;
}

// ---------------------------------------------------------------------------
// Density-matrix engine: the original embed-and-multiply paths.
//
// Every operator was embedded into the full 2^n-dimensional space and
// applied with dense matrix products — O(8^n) per gate versus the O(4^n)
// sub-block sweeps in `crate::kernels`.
// ---------------------------------------------------------------------------

/// Original single-qubit unitary: embed to `2^n` and conjugate.
pub fn density_apply_unitary_single(dm: &mut DensityMatrix, u: &CMatrix, q: usize) {
    let full = embed_single(u, q, dm.num_qubits());
    *dm = DensityMatrix::from_matrix(dm.matrix().conjugate_by(&full));
}

/// Original two-qubit unitary: embed to `2^n` and conjugate.
pub fn density_apply_unitary_two(dm: &mut DensityMatrix, u: &CMatrix, q_hi: usize, q_lo: usize) {
    let full = embed_two(u, q_hi, q_lo, dm.num_qubits());
    *dm = DensityMatrix::from_matrix(dm.matrix().conjugate_by(&full));
}

/// Original Kraus application: one embedded conjugation per operator.
pub fn density_apply_channel(dm: &mut DensityMatrix, channel: &KrausChannel, q: usize) {
    let dim = dm.matrix().rows();
    let mut out = CMatrix::zeros(dim, dim);
    for k in channel.ops() {
        let full = embed_single(k, q, dm.num_qubits());
        out = &out + &dm.matrix().conjugate_by(&full);
    }
    *dm = DensityMatrix::from_matrix(out);
}

/// Original two-qubit depolarizing: explicit sum over the 15 embedded
/// Pauli pairs.
pub fn density_apply_two_qubit_depolarizing(dm: &mut DensityMatrix, p: f64, a: usize, b: usize) {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if p == 0.0 {
        return;
    }
    let paulis = [
        CMatrix::identity(2),
        Gate::X.unitary().expect("const"),
        Gate::Y.unitary().expect("const"),
        Gate::Z.unitary().expect("const"),
    ];
    let n = dm.num_qubits();
    let dim = dm.matrix().rows();
    let mut sum = CMatrix::zeros(dim, dim);
    for (i, pa) in paulis.iter().enumerate() {
        for (j, pb) in paulis.iter().enumerate() {
            if i == 0 && j == 0 {
                continue;
            }
            let full = &embed_single(pa, a, n) * &embed_single(pb, b, n);
            sum = &sum + &dm.matrix().conjugate_by(&full);
        }
    }
    let next = &dm.matrix().scale(vaqem_mathkit::c64(1.0 - p, 0.0))
        + &sum.scale(vaqem_mathkit::c64(p / 15.0, 0.0));
    *dm = DensityMatrix::from_matrix(next);
}

/// Original Markovian engine: the same schedule walk as
/// [`crate::density::run_markovian`] driving the embed-based applies above.
pub fn density_run_markovian(
    scheduled: &ScheduledCircuit,
    noise: &NoiseParameters,
) -> DensityMatrix {
    let n = scheduled.num_qubits();
    assert!(
        noise.num_qubits() >= n,
        "noise parameters must cover the register"
    );
    let mut dm = DensityMatrix::zero_state(n);
    let mut last_end = vec![0.0f64; n];
    for op in scheduled.ops() {
        if op.gate == Gate::Barrier {
            continue;
        }
        for &q in &op.qubits {
            let gap = op.start_ns - last_end[q];
            if gap > 1e-9 {
                density_apply_idle(&mut dm, noise, q, gap);
            }
        }
        let is_idle_like = matches!(op.gate, Gate::Measure | Gate::Delay { .. } | Gate::I);
        match op.gate {
            Gate::Measure | Gate::Delay { .. } | Gate::I => {}
            ref g => {
                let u = g.unitary().expect("scheduled circuits are concrete");
                match op.qubits.len() {
                    1 => {
                        density_apply_unitary_single(&mut dm, &u, op.qubits[0]);
                        let p = noise.qubit(op.qubits[0]).gate_error_1q;
                        if p > 0.0 {
                            density_apply_channel(
                                &mut dm,
                                &KrausChannel::depolarizing(p),
                                op.qubits[0],
                            );
                        }
                    }
                    2 => {
                        density_apply_unitary_two(&mut dm, &u, op.qubits[0], op.qubits[1]);
                        let p = noise.cx_error(op.qubits[0], op.qubits[1]);
                        if p > 0.0 {
                            density_apply_two_qubit_depolarizing(
                                &mut dm,
                                p,
                                op.qubits[0],
                                op.qubits[1],
                            );
                        }
                    }
                    k => panic!("unsupported arity {k}"),
                }
                for &q in &op.qubits {
                    if op.duration_ns > 0.0 {
                        density_apply_idle(&mut dm, noise, q, op.duration_ns);
                    }
                }
            }
        }
        if !is_idle_like {
            for &q in &op.qubits {
                last_end[q] = last_end[q].max(op.end_ns());
            }
        }
    }
    dm
}

fn density_apply_idle(dm: &mut DensityMatrix, noise: &NoiseParameters, q: usize, dt_ns: f64) {
    let qn = noise.qubit(q);
    if qn.t1_ns.is_finite() {
        let gamma = 1.0 - (-dt_ns / qn.t1_ns).exp();
        density_apply_channel(dm, &KrausChannel::amplitude_damping(gamma), q);
    }
    let rate = qn.pure_dephasing_rate();
    if rate > 0.0 {
        let lambda = 1.0 - (-dt_ns * rate).exp();
        density_apply_channel(dm, &KrausChannel::phase_damping(lambda), q);
    }
}

/// Original exact readout counts: independent per-outcome rounding, which
/// can drift away from `shots` in total.
pub fn density_counts_with_readout(
    dm: &DensityMatrix,
    noise: &NoiseParameters,
    shots: u64,
) -> Counts {
    let p = dm.readout_probabilities(noise);
    let mut counts = Counts::new(dm.num_qubits());
    for (i, &pi) in p.iter().enumerate() {
        let c = (pi * shots as f64).round() as u64;
        if c > 0 {
            counts.record_index_n(i, c);
        }
    }
    counts
}

/// Original shot sampling under readout error: an O(2^n) linear scan of the
/// distribution per shot.
pub fn density_sample_counts_with_readout<R: Rng + ?Sized>(
    dm: &DensityMatrix,
    noise: &NoiseParameters,
    shots: u64,
    rng: &mut R,
) -> Counts {
    let p = dm.readout_probabilities(noise);
    let mut counts = Counts::new(dm.num_qubits());
    for _ in 0..shots {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        let mut picked = p.len() - 1;
        for (i, &pi) in p.iter().enumerate() {
            acc += pi;
            if r < acc {
                picked = i;
                break;
            }
        }
        counts.record_index(picked);
    }
    counts
}
