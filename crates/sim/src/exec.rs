//! Execution endpoints for the non-trajectory engines.
//!
//! The trajectory [`crate::machine::MachineExecutor`] has always been an
//! execution endpoint (scheduled circuit in, counts out). This module gives
//! the other two engines the same shape so the core crate's `Executor`
//! trait can treat all three substrates uniformly:
//!
//! * [`StateVectorSampler`] — ideal, noise-free sampling (the angle-tuning
//!   substrate of the feasible flow, Fig. 11);
//! * [`DensityExecutor`] — the Markovian calibration-style simulator of the
//!   paper's Fig. 9 comparison, with seeded finite-shot readout sampling.
//!
//! Both derive per-job randomness from a [`SeedStream`] exactly like the
//! machine does: the stream depends only on (root seed, label, job seed),
//! so batched and sequential execution are bit-identical.

use crate::counts::Counts;
use crate::density::run_markovian;
use crate::statevector::StateVector;
use vaqem_circuit::schedule::ScheduledCircuit;
use vaqem_device::noise::NoiseParameters;
use vaqem_mathkit::rng::SeedStream;

/// Ideal sampler: runs the circuit noise-free and samples shot outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateVectorSampler {
    num_qubits: usize,
    seeds: SeedStream,
}

impl StateVectorSampler {
    /// Creates a sampler for registers of up to `num_qubits` qubits.
    pub fn new(num_qubits: usize, seeds: SeedStream) -> Self {
        StateVectorSampler { num_qubits, seeds }
    }

    /// Modelled register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Executes a scheduled circuit: ideal evolution, Born-rule sampling.
    ///
    /// # Panics
    ///
    /// Panics on symbolic circuits (scheduled circuits are concrete) or if
    /// the circuit is wider than the modelled register.
    pub fn run_job_with_shots(
        &self,
        scheduled: &ScheduledCircuit,
        shots: u64,
        job_index: u64,
    ) -> Counts {
        assert!(
            scheduled.num_qubits() <= self.num_qubits,
            "circuit wider than the modelled register"
        );
        let sv = StateVector::run_scheduled(scheduled).expect("scheduled circuits are concrete");
        let mut rng = self.seeds.rng_indexed("statevector-sample", job_index);
        sv.sample_counts(&mut rng, shots)
    }
}

/// Markovian density-matrix endpoint: exact mixed-state evolution under the
/// calibration (Markovian-only) part of the noise model, then seeded
/// readout sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityExecutor {
    noise: NoiseParameters,
    seeds: SeedStream,
}

impl DensityExecutor {
    /// Creates an endpoint over `noise` (its correlated terms are ignored
    /// by construction of the density engine).
    pub fn new(noise: NoiseParameters, seeds: SeedStream) -> Self {
        DensityExecutor { noise, seeds }
    }

    /// Noise parameters in use.
    pub fn noise(&self) -> &NoiseParameters {
        &self.noise
    }

    /// Modelled register width.
    pub fn num_qubits(&self) -> usize {
        self.noise.num_qubits()
    }

    /// Executes a scheduled circuit: Markovian evolution, readout-error
    /// shot sampling.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the noise description.
    pub fn run_job_with_shots(
        &self,
        scheduled: &ScheduledCircuit,
        shots: u64,
        job_index: u64,
    ) -> Counts {
        let dm = run_markovian(scheduled, &self.noise);
        let mut rng = self.seeds.rng_indexed("density-sample", job_index);
        dm.sample_counts_with_readout(&self.noise, shots, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaqem_circuit::circuit::QuantumCircuit;
    use vaqem_circuit::schedule::{schedule, DurationModel, ScheduleKind};

    fn bell_scheduled() -> ScheduledCircuit {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        qc.measure_all();
        schedule(&qc, &DurationModel::ibm_default(), ScheduleKind::Alap).unwrap()
    }

    #[test]
    fn statevector_sampler_is_deterministic_and_ideal() {
        let s = bell_scheduled();
        let sampler = StateVectorSampler::new(2, SeedStream::new(3));
        let a = sampler.run_job_with_shots(&s, 2000, 7);
        let b = sampler.run_job_with_shots(&s, 2000, 7);
        assert_eq!(a, b);
        let c = sampler.run_job_with_shots(&s, 2000, 8);
        assert_ne!(a, c, "job indices decorrelate");
        assert_eq!(a.total(), 2000);
        // Ideal Bell statistics: no 01/10 outcomes at all.
        assert_eq!(a.get("01") + a.get("10"), 0);
        assert!((a.probability("00") - 0.5).abs() < 0.05);
    }

    #[test]
    fn density_executor_mixes_by_readout_error() {
        let mut noise = NoiseParameters::noiseless(2);
        noise.qubit_mut(0).readout_p01 = 0.2;
        let exec = DensityExecutor::new(noise, SeedStream::new(4));
        let s = bell_scheduled();
        let counts = exec.run_job_with_shots(&s, 4000, 0);
        assert_eq!(counts.total(), 4000);
        // Readout flips on qubit 0 create 01/10 weight.
        assert!(counts.get("01") + counts.get("10") > 0);
        let again = exec.run_job_with_shots(&s, 4000, 0);
        assert_eq!(counts, again);
    }
}
