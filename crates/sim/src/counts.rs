//! Measurement outcome histograms.
//!
//! [`Counts`] mirrors the Qiskit result format: a histogram keyed by
//! bitstrings in *little-endian display order* (qubit 0 is the right-most
//! character), which is the convention the paper's figures use.

use std::collections::HashMap;
use std::fmt;
use vaqem_mathkit::stats;

/// A histogram of measured bitstrings.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counts {
    num_qubits: usize,
    map: HashMap<String, u64>,
}

impl Counts {
    /// Creates an empty histogram for `num_qubits` measured qubits.
    pub fn new(num_qubits: usize) -> Self {
        Counts {
            num_qubits,
            map: HashMap::new(),
        }
    }

    /// Number of measured qubits per outcome.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Records one observation of basis state `index` (qubit 0 = LSB).
    pub fn record_index(&mut self, index: usize) {
        let key = index_to_bitstring(index, self.num_qubits);
        *self.map.entry(key).or_insert(0) += 1;
    }

    /// Records one observation of an explicit bitstring.
    ///
    /// # Panics
    ///
    /// Panics if the bitstring length disagrees with `num_qubits`.
    pub fn record(&mut self, bitstring: &str) {
        assert_eq!(
            bitstring.len(),
            self.num_qubits,
            "bitstring length mismatch"
        );
        *self.map.entry(bitstring.to_string()).or_insert(0) += 1;
    }

    /// Adds `n` observations of basis state `index`.
    pub fn record_index_n(&mut self, index: usize, n: u64) {
        let key = index_to_bitstring(index, self.num_qubits);
        *self.map.entry(key).or_insert(0) += n;
    }

    /// Builds a histogram from per-basis-state tallies (`hist[i]` = shots
    /// observing index `i`). Shot loops accumulate into a `Vec<u64>` and
    /// convert once here, instead of allocating and hashing a bitstring per
    /// shot.
    pub fn from_index_histogram(num_qubits: usize, hist: &[u64]) -> Self {
        let mut counts = Counts::new(num_qubits);
        counts.map.reserve(hist.iter().filter(|&&n| n > 0).count());
        for (i, &n) in hist.iter().enumerate() {
            if n > 0 {
                counts.map.insert(index_to_bitstring(i, num_qubits), n);
            }
        }
        counts
    }

    /// Total number of shots recorded.
    pub fn total(&self) -> u64 {
        self.map.values().sum()
    }

    /// Count for a bitstring (0 when absent).
    pub fn get(&self, bitstring: &str) -> u64 {
        self.map.get(bitstring).copied().unwrap_or(0)
    }

    /// Raw histogram map.
    pub fn as_map(&self) -> &HashMap<String, u64> {
        &self.map
    }

    /// Empirical probability of a bitstring.
    pub fn probability(&self, bitstring: &str) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(bitstring) as f64 / t as f64
        }
    }

    /// Normalized probability distribution.
    pub fn to_probabilities(&self) -> HashMap<String, f64> {
        stats::normalize_counts(&self.map)
    }

    /// Hellinger fidelity against another histogram (the paper's circuit
    /// fidelity metric, Fig. 6).
    pub fn hellinger_fidelity(&self, other: &Counts) -> f64 {
        stats::hellinger_fidelity(&self.to_probabilities(), &other.to_probabilities())
    }

    /// Expectation of a ±1 observable that assigns eigenvalue
    /// `(-1)^(popcount(bits & mask))` — i.e. a Z-type Pauli on the qubits in
    /// `mask` — directly from the counts.
    pub fn z_expectation(&self, mask: usize) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (bits, &n) in &self.map {
            let index = bitstring_to_index(bits);
            let parity = (index & mask).count_ones() % 2;
            let sign = if parity == 0 { 1.0 } else { -1.0 };
            acc += sign * n as f64;
        }
        acc / t as f64
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn merge(&mut self, other: &Counts) {
        assert_eq!(self.num_qubits, other.num_qubits, "width mismatch");
        for (k, &v) in &other.map {
            *self.map.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Iterates `(bitstring, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The most frequent outcome, if any.
    pub fn most_frequent(&self) -> Option<(&str, u64)> {
        self.map
            .iter()
            .max_by_key(|(k, &v)| (v, std::cmp::Reverse(k.as_str())))
            .map(|(k, &v)| (k.as_str(), v))
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<_> = self.map.iter().collect();
        entries.sort();
        write!(f, "{{")?;
        for (i, (k, v)) in entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

/// Converts a basis index to display bitstring (qubit 0 right-most).
pub fn index_to_bitstring(index: usize, num_qubits: usize) -> String {
    (0..num_qubits)
        .rev()
        .map(|q| if index & (1 << q) != 0 { '1' } else { '0' })
        .collect()
}

/// Converts a display bitstring back to a basis index.
///
/// # Panics
///
/// Panics on characters other than '0'/'1'.
pub fn bitstring_to_index(bits: &str) -> usize {
    bits.chars().fold(0, |acc, c| match c {
        '0' => acc << 1,
        '1' => (acc << 1) | 1,
        other => panic!("invalid bit character {other:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitstring_round_trip() {
        for idx in 0..16 {
            let s = index_to_bitstring(idx, 4);
            assert_eq!(bitstring_to_index(&s), idx);
        }
        assert_eq!(index_to_bitstring(0b01, 2), "01");
        assert_eq!(index_to_bitstring(0b10, 2), "10");
    }

    #[test]
    fn record_and_total() {
        let mut c = Counts::new(2);
        c.record_index(0);
        c.record_index(3);
        c.record_index(3);
        assert_eq!(c.total(), 3);
        assert_eq!(c.get("11"), 2);
        assert_eq!(c.get("00"), 1);
        assert_eq!(c.get("01"), 0);
        assert!((c.probability("11") - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn z_expectation_of_bell_counts() {
        // Perfect |00>+|11> counts: <Z0 Z1> = +1, <Z0> = 0.
        let mut c = Counts::new(2);
        c.record_index_n(0b00, 500);
        c.record_index_n(0b11, 500);
        assert!((c.z_expectation(0b11) - 1.0).abs() < 1e-12);
        assert!(c.z_expectation(0b01).abs() < 1e-12);
    }

    #[test]
    fn hellinger_of_identical_counts_is_one() {
        let mut c = Counts::new(1);
        c.record_index_n(0, 700);
        c.record_index_n(1, 300);
        assert!((c.hellinger_fidelity(&c.clone()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_index_histogram_matches_per_shot_recording() {
        let hist = [3u64, 0, 5, 1];
        let fast = Counts::from_index_histogram(2, &hist);
        let mut slow = Counts::new(2);
        for (i, &n) in hist.iter().enumerate() {
            for _ in 0..n {
                slow.record_index(i);
            }
        }
        assert_eq!(fast, slow);
        assert_eq!(fast.total(), 9);
        assert_eq!(fast.get("01"), 0, "zero bins are omitted");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Counts::new(1);
        a.record_index(0);
        let mut b = Counts::new(1);
        b.record_index(0);
        b.record_index(1);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.get("0"), 2);
    }

    #[test]
    fn most_frequent() {
        let mut c = Counts::new(2);
        c.record_index_n(1, 10);
        c.record_index_n(2, 30);
        assert_eq!(c.most_frequent(), Some(("10", 30)));
        assert_eq!(Counts::new(2).most_frequent(), None);
    }

    #[test]
    fn display_is_sorted_and_nonempty() {
        let mut c = Counts::new(1);
        c.record_index(1);
        c.record_index(0);
        assert_eq!(c.to_string(), "{0: 1, 1: 1}");
    }
}
