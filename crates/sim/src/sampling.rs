//! Shared fast measurement sampling.
//!
//! The statevector and density engines both used to draw each shot with a
//! linear scan over all `2^n` outcome probabilities — `O(shots * 2^n)` per
//! job. [`CdfSampler`] builds the cumulative distribution once and answers
//! each draw with a binary search, making a shot loop
//! `O(2^n + shots * n)`. Both engines now share this one implementation.
//!
//! The binary search is constructed to return *exactly* the index the old
//! linear scan returned for the same uniform draw: the scan picked the
//! first `i` with `r < cdf[i]` (falling back to the last index when `r`
//! landed beyond the accumulated total), and
//! `partition_point(|&c| c <= r)` is precisely that first index. Sampling
//! is therefore bit-identical to the naive path, RNG draw for RNG draw.

use rand::Rng;
use vaqem_mathkit::complex::Complex64;

/// A build-once cumulative-probability table over basis-state indices.
#[derive(Debug, Clone)]
pub struct CdfSampler {
    cdf: Vec<f64>,
}

impl CdfSampler {
    /// Builds the table from outcome probabilities (need not be normalized;
    /// draws beyond the total clamp to the last outcome, as the linear scan
    /// did).
    ///
    /// # Panics
    ///
    /// Panics on an empty distribution.
    pub fn from_probabilities<I: IntoIterator<Item = f64>>(probs: I) -> Self {
        let mut acc = 0.0;
        let cdf: Vec<f64> = probs
            .into_iter()
            .map(|p| {
                acc += p;
                acc
            })
            .collect();
        assert!(!cdf.is_empty(), "empty distribution");
        CdfSampler { cdf }
    }

    /// Builds the table from state amplitudes (Born-rule probabilities).
    pub fn from_amplitudes(amps: &[Complex64]) -> Self {
        Self::from_probabilities(amps.iter().map(|a| a.norm_sqr()))
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` when there are no outcomes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Outcome index for a uniform draw `r` in `[0, 1)`: the first index
    /// whose cumulative probability exceeds `r`, clamped to the last.
    pub fn index_for(&self, r: f64) -> usize {
        self.cdf
            .partition_point(|&c| c <= r)
            .min(self.cdf.len() - 1)
    }

    /// Draws one outcome index, consuming exactly one `rng.gen::<f64>()`
    /// (the same draw the linear-scan samplers consumed).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.index_for(rng.gen())
    }

    /// Draws `shots` outcomes into an index histogram sized to the outcome
    /// space, reusing `hist`'s storage. Returns the histogram.
    pub fn sample_histogram<R: Rng + ?Sized>(&self, rng: &mut R, shots: u64, hist: &mut Vec<u64>) {
        hist.clear();
        hist.resize(self.cdf.len(), 0);
        for _ in 0..shots {
            hist[self.sample(rng)] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn linear_scan(probs: &[f64], r: f64) -> usize {
        let mut acc = 0.0;
        for (i, p) in probs.iter().enumerate() {
            acc += p;
            if r < acc {
                return i;
            }
        }
        probs.len() - 1
    }

    #[test]
    fn binary_search_matches_linear_scan_exactly() {
        let probs = [0.125, 0.0, 0.25, 0.375, 0.0, 0.25];
        let cdf = CdfSampler::from_probabilities(probs.iter().copied());
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let r: f64 = rng.gen();
            assert_eq!(cdf.index_for(r), linear_scan(&probs, r));
        }
        // Boundary draws: exactly at a cumulative edge the scan moves past
        // the edge (strict `r < acc`), and so does partition_point.
        for r in [0.0, 0.125, 0.375, 0.75, 0.9999999, 1.0, 2.0] {
            assert_eq!(cdf.index_for(r), linear_scan(&probs, r), "r = {r}");
        }
    }

    #[test]
    fn zero_probability_outcomes_never_sampled() {
        let cdf = CdfSampler::from_probabilities([0.0, 1.0, 0.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert_eq!(cdf.sample(&mut rng), 1);
        }
    }

    #[test]
    fn histogram_totals_shots() {
        let cdf = CdfSampler::from_probabilities([0.5, 0.3, 0.2]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut hist = Vec::new();
        cdf.sample_histogram(&mut rng, 10_000, &mut hist);
        assert_eq!(hist.iter().sum::<u64>(), 10_000);
        assert!(hist[0] > hist[1] && hist[1] > hist[2]);
    }
}
