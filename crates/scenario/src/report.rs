//! The grid report: per-cell results, the aggregate verdict, and the
//! machine-readable JSON rendering CI uploads as an artifact.

use std::fmt;

use crate::invariant::InvariantOutcome;
use vaqem_fleet_service::FleetMetricsReport;
use vaqem_runtime::json::JsonValue;

/// One cell's result: its grid coordinates, the per-invariant verdicts,
/// the round costs the invariants were judged on, and the final daemon
/// metrics dump.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Workload label (`ScenarioWorkload::label`).
    pub workload: String,
    /// Device-class label (`DeviceClass::label`).
    pub device_class: String,
    /// Tenant-behavior label (`TenantBehavior::label`).
    pub tenant: String,
    /// Workload width in qubits (the instantiated device width).
    pub qubits: usize,
    /// Cold-round machine minutes.
    pub cold_min: f64,
    /// Warm-round machine minutes.
    pub warm_min: f64,
    /// Post-restart recovery-round machine minutes.
    pub recovery_min: f64,
    /// Warm-round store hits / misses across clients.
    pub warm_hits: usize,
    /// Warm-round misses.
    pub warm_misses: usize,
    /// Recovery-round store hits.
    pub recovery_hits: usize,
    /// Recovery-round misses.
    pub recovery_misses: usize,
    /// Sessions completed by the cell's daemon (both processes).
    pub sessions: usize,
    /// Every invariant verdict, in check order.
    pub invariants: Vec<InvariantOutcome>,
    /// The final `metrics_report()` dump of the cell's daemon.
    pub metrics: FleetMetricsReport,
}

impl CellReport {
    /// Whether every invariant held.
    pub fn pass(&self) -> bool {
        self.invariants.iter().all(|i| i.pass)
    }

    /// `workload/device_class/tenant` — the cell's grid key.
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.workload, self.device_class, self.tenant)
    }

    /// The cell as a JSON object (invariants inline, full metrics dump
    /// embedded under `metrics`).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("workload", JsonValue::from(self.workload.as_str())),
            ("device_class", JsonValue::from(self.device_class.as_str())),
            ("tenant", JsonValue::from(self.tenant.as_str())),
            ("qubits", JsonValue::from(self.qubits)),
            ("pass", JsonValue::from(self.pass())),
            (
                "invariants",
                JsonValue::array(self.invariants.iter().map(|i| {
                    JsonValue::object([
                        ("name", JsonValue::from(i.name)),
                        ("pass", JsonValue::from(i.pass)),
                        ("detail", JsonValue::from(i.detail.as_str())),
                    ])
                })),
            ),
            (
                "rounds",
                JsonValue::object([
                    ("cold_min", JsonValue::from(self.cold_min)),
                    ("warm_min", JsonValue::from(self.warm_min)),
                    ("recovery_min", JsonValue::from(self.recovery_min)),
                    ("warm_hits", JsonValue::from(self.warm_hits)),
                    ("warm_misses", JsonValue::from(self.warm_misses)),
                    ("recovery_hits", JsonValue::from(self.recovery_hits)),
                    ("recovery_misses", JsonValue::from(self.recovery_misses)),
                    ("sessions", JsonValue::from(self.sessions)),
                ]),
            ),
            ("metrics", self.metrics.to_json()),
        ])
    }
}

/// The whole grid: every cell plus the run's provenance.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Root seed the run derived every stream from.
    pub root_seed: u64,
    /// `quick` or `full` — which grid shape ran.
    pub mode: String,
    /// Every cell, in grid order (workload-major).
    pub cells: Vec<CellReport>,
}

impl MatrixReport {
    /// Whether every cell passed every invariant.
    pub fn pass(&self) -> bool {
        self.cells.iter().all(|c| c.pass())
    }

    /// Cells that failed at least one invariant.
    pub fn failures(&self) -> Vec<&CellReport> {
        self.cells.iter().filter(|c| !c.pass()).collect()
    }

    /// The grid as one JSON document (the CI artifact).
    pub fn to_json(&self) -> JsonValue {
        let passed = self.cells.iter().filter(|c| c.pass()).count();
        JsonValue::object([
            ("schema", JsonValue::from("vaqem-scenario-matrix/v1")),
            ("mode", JsonValue::from(self.mode.as_str())),
            ("root_seed", JsonValue::from(self.root_seed)),
            (
                "summary",
                JsonValue::object([
                    ("cells", JsonValue::from(self.cells.len())),
                    ("passed", JsonValue::from(passed)),
                    ("failed", JsonValue::from(self.cells.len() - passed)),
                ]),
            ),
            (
                "cells",
                JsonValue::array(self.cells.iter().map(CellReport::to_json)),
            ),
        ])
    }
}

impl fmt::Display for MatrixReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<42} {:>4} {:>9} {:>9} {:>9} {:>5} {:>6}",
            "cell (workload/device/tenant)", "pass", "cold", "warm", "recov", "hits", "misses"
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "{:<42} {:>4} {:>8.2}m {:>8.2}m {:>8.2}m {:>5} {:>6}",
                c.key(),
                if c.pass() { "ok" } else { "FAIL" },
                c.cold_min,
                c.warm_min,
                c.recovery_min,
                c.warm_hits + c.recovery_hits,
                c.warm_misses + c.recovery_misses,
            )?;
            for i in c.invariants.iter().filter(|i| !i.pass) {
                writeln!(f, "    !! {}: {}", i.name, i.detail)?;
            }
        }
        let passed = self.cells.iter().filter(|c| c.pass()).count();
        write!(
            f,
            "{} mode, seed {}: {passed}/{} cells passed every invariant",
            self.mode,
            self.root_seed,
            self.cells.len()
        )
    }
}
