//! The tenant-behavior axis: how clients arrive at the contention
//! device in a cell's multi-tenant phase.

/// One tenant-mix pattern, driven against a single device so the
/// deficit-round-robin arbitration is observable in the device's
/// serialized completion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TenantBehavior {
    /// Three equal tenants submit interleaved, two sessions each — the
    /// baseline the fairness bound should hold trivially on.
    Uniform,
    /// One heavy tenant floods the device *before* three light tenants
    /// submit one session each — the adversarial FIFO case; fairness
    /// must pull the light sessions inside the first rotation.
    Bursty,
    /// A quota-probing tenant capped at two in-flight sessions bursts
    /// three submissions behind a blocker; the third must bounce off
    /// the cap with the typed error while everyone admitted completes.
    Greedy,
    /// Churn with mid-stream disconnects: one of three tenants drops
    /// its reply channels immediately after submitting; the reactor
    /// must finish its sessions anyway, keep the survivors fair, and
    /// serve a late-arriving tenant afterwards.
    Churn,
}

impl TenantBehavior {
    /// All four behaviors, in grid order.
    pub const ALL: [TenantBehavior; 4] = [
        TenantBehavior::Uniform,
        TenantBehavior::Bursty,
        TenantBehavior::Greedy,
        TenantBehavior::Churn,
    ];

    /// Stable grid label.
    pub fn label(&self) -> &'static str {
        match self {
            TenantBehavior::Uniform => "uniform",
            TenantBehavior::Bursty => "bursty",
            TenantBehavior::Greedy => "greedy",
            TenantBehavior::Churn => "churn",
        }
    }

    /// One-line description for the report.
    pub fn description(&self) -> &'static str {
        match self {
            TenantBehavior::Uniform => "three equal tenants, interleaved submissions",
            TenantBehavior::Bursty => "one heavy backlog ahead of three light tenants",
            TenantBehavior::Greedy => "in-flight-capped tenant probing its quota",
            TenantBehavior::Churn => "mid-stream disconnect plus a late joiner",
        }
    }
}
