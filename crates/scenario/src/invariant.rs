//! Per-cell invariant checks and their outcomes.
//!
//! Each check returns an [`InvariantOutcome`] instead of panicking, so
//! a matrix run always completes the full grid and the report shows
//! *which* cells broke *which* invariant — the driver (test or replay
//! binary) asserts the aggregate at the end.

use vaqem_fleet_service::FleetMetricsReport;

/// One invariant's verdict in one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantOutcome {
    /// Stable invariant name (a report/JSON key, e.g.
    /// `starvation_bound`).
    pub name: &'static str,
    /// Whether the invariant held.
    pub pass: bool,
    /// Human-readable evidence: the bound and the observed value on
    /// pass, the violation on fail.
    pub detail: String,
}

impl InvariantOutcome {
    /// Builds an outcome.
    pub fn new(name: &'static str, pass: bool, detail: impl Into<String>) -> Self {
        InvariantOutcome {
            name,
            pass,
            detail: detail.into(),
        }
    }
}

/// Checks the deficit-round-robin starvation-freedom bound on one
/// device's completion order: at every prefix, every client that is
/// still backlogged has completed at least
/// `floor(prefix x weight_share) - 1` sessions (equal weights here, so
/// `weight_share = 1 / clients`).
///
/// `order` is the device's serialized completion order (client labels,
/// earliest first); `submitted` the per-client admitted session counts.
pub fn starvation_bound(order: &[String], submitted: &[(String, usize)]) -> InvariantOutcome {
    const NAME: &str = "starvation_bound";
    let total_weight = submitted.len() as f64;
    let mut done: Vec<(&str, usize)> = submitted.iter().map(|(c, _)| (c.as_str(), 0)).collect();
    for prefix in 1..=order.len() {
        let client = order[prefix - 1].as_str();
        match done.iter_mut().find(|(c, _)| *c == client) {
            Some(entry) => entry.1 += 1,
            None => {
                return InvariantOutcome::new(
                    NAME,
                    false,
                    format!("unknown client {client} in completion order"),
                )
            }
        }
        for (c, completed) in &done {
            let all = submitted
                .iter()
                .find(|(s, _)| s == c)
                .map(|(_, n)| *n)
                .unwrap_or(0);
            if all == *completed {
                continue; // no longer backlogged: the bound no longer binds
            }
            let share = (prefix as f64 / total_weight).floor() as isize - 1;
            if (*completed as isize) < share {
                return InvariantOutcome::new(
                    NAME,
                    false,
                    format!(
                        "client {c} starved: {completed} of a fair {share} after {prefix} \
                         completions (order {order:?})"
                    ),
                );
            }
        }
    }
    let expected: usize = submitted.iter().map(|(_, n)| n).sum();
    if order.len() != expected {
        return InvariantOutcome::new(
            NAME,
            false,
            format!("{} completions observed, {expected} admitted", order.len()),
        );
    }
    InvariantOutcome::new(
        NAME,
        true,
        format!(
            "{} completions across {} tenants kept every prefix within one session of its share",
            order.len(),
            submitted.len()
        ),
    )
}

/// Checks quota reserve == settle accounting against the final metrics
/// report: the drained ledger must hold zero in-flight sessions and
/// zero reserved minutes for every client, and each client's
/// `completed + rejected` must equal what the harness submitted.
pub fn quota_accounting(
    report: &FleetMetricsReport,
    submitted: &[(String, u64)],
) -> InvariantOutcome {
    const NAME: &str = "quota_accounting";
    for u in &report.quotas {
        if u.in_flight != 0 || u.reserved_min.abs() > 1e-9 {
            return InvariantOutcome::new(
                NAME,
                false,
                format!(
                    "client {} drained with {} in flight and {} min reserved",
                    u.client, u.in_flight, u.reserved_min
                ),
            );
        }
        let expected = submitted
            .iter()
            .find(|(c, _)| *c == u.client)
            .map(|(_, n)| *n);
        match expected {
            Some(n) if u.completed + u.rejected == n => {}
            Some(n) => {
                return InvariantOutcome::new(
                    NAME,
                    false,
                    format!(
                        "client {}: {} completed + {} rejected != {n} submitted",
                        u.client, u.completed, u.rejected
                    ),
                )
            }
            None => {
                return InvariantOutcome::new(
                    NAME,
                    false,
                    format!("client {} in the ledger was never submitted", u.client),
                )
            }
        }
    }
    if report.quotas.len() != submitted.len() {
        return InvariantOutcome::new(
            NAME,
            false,
            format!(
                "{} clients in the ledger, {} submitted",
                report.quotas.len(),
                submitted.len()
            ),
        );
    }
    InvariantOutcome::new(
        NAME,
        true,
        format!(
            "{} clients settled every reservation exactly once (0 in flight, 0.0 min reserved)",
            report.quotas.len()
        ),
    )
}

/// Checks that the warm round's total machine minutes undercut the cold
/// round's.
pub fn warm_cheaper_than_cold(cold_min: f64, warm_min: f64) -> InvariantOutcome {
    const NAME: &str = "warm_cheaper_than_cold";
    InvariantOutcome::new(
        NAME,
        warm_min < cold_min,
        format!("warm {warm_min:.3} min vs cold {cold_min:.3} min"),
    )
}

/// Checks kill-and-restart recovery: the journal replay must have
/// carried state, the post-restart round must produce real warm hits,
/// and its hit rate must be no worse than the pre-kill warm round's.
pub fn restart_recovery(
    recovered_records: u64,
    warm_rate: f64,
    recovery_hits: usize,
    recovery_rate: f64,
) -> InvariantOutcome {
    const NAME: &str = "restart_recovery";
    let pass = recovered_records > 0 && recovery_hits > 0 && recovery_rate + 1e-9 >= warm_rate;
    InvariantOutcome::new(
        NAME,
        pass,
        format!(
            "{recovered_records} records recovered; hit rate {:.0}% after restart vs {:.0}% before",
            100.0 * recovery_rate,
            100.0 * warm_rate
        ),
    )
}

/// Checks guard-accepted warm == cold parity: every warm outcome that
/// was a *full* warm hit (no misses, guard accepted) must have adopted
/// exactly the configuration its client's cold session tuned.
/// `comparisons` counts the qualifying outcomes, `mismatches` those
/// whose adopted config differed.
pub fn warm_cold_parity(comparisons: usize, mismatches: usize) -> InvariantOutcome {
    const NAME: &str = "warm_cold_parity";
    if comparisons == 0 {
        // Vacuous: no fully-warm outcome to compare. Recorded as such —
        // the warm/recovery invariants above already fail loudly when
        // hits vanish entirely.
        return InvariantOutcome::new(NAME, true, "vacuous: no full warm hit this cell");
    }
    InvariantOutcome::new(
        NAME,
        mismatches == 0,
        format!("{comparisons} full warm hits compared, {mismatches} diverged from cold"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submitted(counts: &[(&str, usize)]) -> Vec<(String, usize)> {
        counts.iter().map(|&(c, n)| (c.to_string(), n)).collect()
    }

    fn order(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn round_robin_order_satisfies_the_bound() {
        let out = starvation_bound(
            &order(&["a", "b", "a", "b"]),
            &submitted(&[("a", 2), ("b", 2)]),
        );
        assert!(out.pass, "{}", out.detail);
    }

    #[test]
    fn a_starved_client_fails_the_bound() {
        // b backlogged for 5 completions while a takes them all.
        let out = starvation_bound(
            &order(&["a", "a", "a", "a", "a", "b"]),
            &submitted(&[("a", 5), ("b", 1)]),
        );
        assert!(!out.pass);
        assert!(out.detail.contains("starved"), "{}", out.detail);
    }

    #[test]
    fn missing_completions_fail_the_bound() {
        let out = starvation_bound(&order(&["a"]), &submitted(&[("a", 2)]));
        assert!(!out.pass);
    }

    #[test]
    fn warm_cost_comparison_is_strict() {
        assert!(warm_cheaper_than_cold(10.0, 4.0).pass);
        assert!(!warm_cheaper_than_cold(4.0, 4.0).pass);
    }

    #[test]
    fn parity_is_vacuous_without_full_hits() {
        let out = warm_cold_parity(0, 0);
        assert!(out.pass && out.detail.contains("vacuous"));
        assert!(!warm_cold_parity(2, 1).pass);
    }

    #[test]
    fn recovery_requires_rate_preservation() {
        assert!(restart_recovery(12, 1.0, 4, 1.0).pass);
        assert!(!restart_recovery(12, 1.0, 4, 0.5).pass);
        assert!(!restart_recovery(0, 1.0, 4, 1.0).pass);
    }
}
