//! The grid engine: cell construction, the per-cell daemon lifecycle,
//! and the tenant-phase drivers.
//!
//! One cell = one fresh daemon over two devices of the cell's class at
//! the workload's width, driven through the canonical lifecycle:
//!
//! 1. **cold round** — every round client tunes from an empty store;
//! 2. **warm round** — the same clients at the same request clock, so
//!    every fingerprint can warm-start (asserts warm < cold, and full
//!    warm hits must adopt the cold configs exactly);
//! 3. **kill** — `halt()` leaves the journal as the only record —
//!    then a reopen replays it;
//! 4. **recovery round** — the warm-hit rate must survive the restart;
//! 5. **tenant phase** — the cell's [`TenantBehavior`] contends on
//!    device 0 (asserts the DRR starvation bound, plus the behavior's
//!    own contract: typed quota rejection, churn quiescence);
//! 6. **final audit** — `metrics_report()` must show a fully drained
//!    quota ledger whose per-client `completed + rejected` matches the
//!    harness's submission log.
//!
//! Every request uses the same `t_hours = 1.0` clock, pinning all
//! rounds inside one calibration epoch of both device classes: the
//! matrix verifies the *service* invariants; drift-epoch invalidation
//! has its own dedicated replays and tests.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

use crate::invariant::{
    quota_accounting, restart_recovery, starvation_bound, warm_cheaper_than_cold, warm_cold_parity,
    InvariantOutcome,
};
use crate::report::{CellReport, MatrixReport};
use crate::tenant::TenantBehavior;
use vaqem::pipeline::tune_angles;
use vaqem::vqe::VqeProblem;
use vaqem::window_tuner::WindowTunerConfig;
use vaqem::workloads::ScenarioWorkload;
use vaqem_device::classes::DeviceClass;
use vaqem_fleet_service::{
    ClientQuota, DeviceSpec, FleetService, FleetServiceConfig, QuotaError, SessionError,
    SessionKind, SessionOutcome, SessionRequest, SessionResult, TenancyConfig,
};
use vaqem_mathkit::rng::SeedStream;
use vaqem_optim::spsa::SpsaConfig;
use vaqem_runtime::{BatchDispatch, CostModel, WorkloadProfile};

/// The declarative grid: axes plus the per-cell tuner/simulator sizing.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Workload axis.
    pub workloads: Vec<ScenarioWorkload>,
    /// Device-class axis (each cell instantiates two devices of its
    /// class at the workload's width).
    pub classes: Vec<DeviceClass>,
    /// Tenant-behavior axis.
    pub tenants: Vec<TenantBehavior>,
    /// Shots per objective evaluation.
    pub shots: u64,
    /// Tuner sweep resolution (candidates per window knob).
    pub sweep_resolution: usize,
    /// Tuner DD-repetition ceiling.
    pub max_repetitions: usize,
    /// Guard re-evaluations per acceptance decision.
    pub guard_repeats: usize,
    /// SPSA iterations for the once-per-workload angle tuning (the
    /// Fig. 8 transfer: guard verdicts only reflect physics at tuned
    /// angles, so every cell tunes mitigation under them).
    pub spsa_iterations: usize,
    /// Root seed every stream (devices, trajectories, drift) derives
    /// from. Scanned per entry point; override via `VAQEM_SEED`.
    pub root_seed: u64,
    /// Directory the per-cell stores are created under (each cell uses
    /// and then removes its own subdirectory).
    pub store_root: PathBuf,
    /// Grid-shape label for the report (`full` / `quick`).
    pub mode: String,
    /// Print one progress line per completed cell to stderr (for the
    /// long-running replay binary; tests leave it off).
    pub progress: bool,
}

impl MatrixConfig {
    /// The full acceptance grid: 4 workloads x 2 device classes x 4
    /// tenant behaviors = 32 cells, from 3-qubit rings to the 6-qubit
    /// TFIM and the deep 4-qubit ansatz.
    pub fn full(root_seed: u64, store_root: PathBuf) -> Self {
        MatrixConfig {
            workloads: vec![
                ScenarioWorkload::TfimSu2 { qubits: 6, reps: 2 },
                ScenarioWorkload::H2Ucc,
                ScenarioWorkload::TfimSu2 { qubits: 4, reps: 4 },
                ScenarioWorkload::QaoaRing {
                    qubits: 4,
                    layers: 2,
                },
            ],
            classes: DeviceClass::ALL.to_vec(),
            tenants: TenantBehavior::ALL.to_vec(),
            shots: 192,
            sweep_resolution: 3,
            max_repetitions: 4,
            guard_repeats: 2,
            spsa_iterations: 50,
            root_seed,
            store_root,
            mode: "full".to_string(),
            progress: false,
        }
    }

    /// The reduced CI/test grid: 2 small workloads x 2 classes x all 4
    /// tenant behaviors = 16 cells at smoke-test sizes.
    pub fn quick(root_seed: u64, store_root: PathBuf) -> Self {
        MatrixConfig {
            workloads: vec![
                ScenarioWorkload::TfimSu2 { qubits: 3, reps: 1 },
                ScenarioWorkload::QaoaRing {
                    qubits: 3,
                    layers: 1,
                },
            ],
            classes: DeviceClass::ALL.to_vec(),
            tenants: TenantBehavior::ALL.to_vec(),
            shots: 128,
            sweep_resolution: 2,
            max_repetitions: 4,
            guard_repeats: 2,
            spsa_iterations: 30,
            root_seed,
            store_root,
            mode: "quick".to_string(),
            progress: false,
        }
    }

    /// Number of grid cells.
    pub fn cells(&self) -> usize {
        self.workloads.len() * self.classes.len() * self.tenants.len()
    }
}

/// Runs the whole grid, workload-major. Always completes every cell —
/// invariant violations are recorded in the report, not panicked — so a
/// red grid still yields the full artifact.
///
/// # Errors
///
/// Returns an error only on harness-level failures: an unbuildable
/// workload, store I/O, or a dead daemon.
pub fn run_matrix(config: &MatrixConfig) -> io::Result<MatrixReport> {
    let mut cells = Vec::with_capacity(config.cells());
    for workload in &config.workloads {
        let problem = workload
            .problem()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        // Angles are tuned once per workload against the ideal
        // objective and shared by every client in every cell (the
        // paper's Fig. 8 transfer): the mitigation stage is the
        // recurring per-client cost the daemon amortizes, and guard
        // verdicts only reflect physics at tuned angles.
        let spsa = SpsaConfig::paper_default().with_iterations(config.spsa_iterations);
        let (params, _) = tune_angles(&problem, &spsa, &SeedStream::new(config.root_seed))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        for class in &config.classes {
            for tenant in &config.tenants {
                let started = Instant::now();
                let cell = run_cell(config, *workload, &problem, &params, *class, *tenant)?;
                if config.progress {
                    eprintln!(
                        "  [{:>2}/{}] {} {} ({:.1}s)",
                        cells.len() + 1,
                        config.cells(),
                        cell.key(),
                        if cell.pass() { "ok" } else { "FAIL" },
                        started.elapsed().as_secs_f64(),
                    );
                    for i in cell.invariants.iter().filter(|i| !i.pass) {
                        eprintln!("         !! {}: {}", i.name, i.detail);
                    }
                }
                cells.push(cell);
            }
        }
    }
    Ok(MatrixReport {
        root_seed: config.root_seed,
        mode: config.mode.clone(),
        cells,
    })
}

/// The per-round client labels: one per device, pinned.
const ROUND_CLIENTS: [&str; 2] = ["round-a", "round-b"];
/// Sessions the churn phase leaves unobserved (the disconnected
/// tenant's) must still complete within this window.
const CHURN_QUIESCE_TIMEOUT: Duration = Duration::from_secs(120);

struct Round {
    outcomes: Vec<SessionOutcome>,
}

impl Round {
    fn minutes(&self) -> f64 {
        self.outcomes.iter().map(|o| o.minutes).sum()
    }
    fn hits(&self) -> usize {
        self.outcomes.iter().map(|o| o.hits).sum()
    }
    fn misses(&self) -> usize {
        self.outcomes.iter().map(|o| o.misses).sum()
    }
    fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// The harness's submission log, audited against the quota ledger at
/// the end of the cell.
#[derive(Default)]
struct SubmissionLog {
    counts: HashMap<String, u64>,
}

impl SubmissionLog {
    fn note(&mut self, client: &str) {
        *self.counts.entry(client.to_string()).or_insert(0) += 1;
    }
    fn sorted(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self.counts.iter().map(|(c, n)| (c.clone(), *n)).collect();
        v.sort();
        v
    }
}

fn submit(
    service: &FleetService,
    log: &mut SubmissionLog,
    client: &str,
    device: usize,
    params: &[f64],
) -> Receiver<SessionResult> {
    log.note(client);
    service.submit(SessionRequest {
        client: client.to_string(),
        t_hours: 1.0,
        params: params.to_vec(),
        device: Some(device),
        kind: SessionKind::Dd,
    })
}

fn recv_outcome(rx: Receiver<SessionResult>) -> io::Result<SessionOutcome> {
    rx.recv()
        .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "fleet worker died"))?
        .map_err(|e| io::Error::other(format!("session failed: {e}")))
}

/// One uniform round: each round client submits once, pinned to its own
/// device, so the two sessions run concurrently but deterministically.
fn run_round(service: &FleetService, log: &mut SubmissionLog, params: &[f64]) -> io::Result<Round> {
    let rxs: Vec<_> = ROUND_CLIENTS
        .iter()
        .enumerate()
        .map(|(i, c)| submit(service, log, c, i, params))
        .collect();
    let outcomes = rxs
        .into_iter()
        .map(recv_outcome)
        .collect::<io::Result<Vec<_>>>()?;
    Ok(Round { outcomes })
}

fn fleet_config(
    config: &MatrixConfig,
    workload: &ScenarioWorkload,
    problem: &VqeProblem,
    tenant: TenantBehavior,
    store_dir: PathBuf,
) -> FleetServiceConfig {
    let tenancy = TenancyConfig {
        // The greedy cell's probing tenant is capped at two in-flight
        // sessions; every other client in every cell is unlimited.
        quotas: match tenant {
            TenantBehavior::Greedy => vec![(
                "greedy".to_string(),
                ClientQuota {
                    max_in_flight: 2,
                    minutes_per_epoch: f64::INFINITY,
                },
            )],
            _ => Vec::new(),
        },
        ..TenancyConfig::default()
    };
    FleetServiceConfig {
        store_dir,
        shards: 4,
        capacity_per_shard: 256,
        shots: config.shots,
        tuner: WindowTunerConfig {
            sweep_resolution: config.sweep_resolution,
            max_repetitions: config.max_repetitions,
            guard_repeats: config.guard_repeats,
            ..WindowTunerConfig::default()
        },
        profile: WorkloadProfile {
            num_qubits: workload.num_qubits(),
            circuit_ns: 12_000.0,
            iterations: 40,
            measurement_groups: problem.groups().len(),
            windows: workload.windows_hint(),
            sweep_resolution: config.sweep_resolution,
            shots: config.shots,
        },
        cost: CostModel::ibm_cloud_2021(),
        dispatch: BatchDispatch::local(4),
        tenancy,
    }
}

/// Runs one grid cell end to end. Harness-level failures (I/O, dead
/// workers) error out; invariant violations land in the report.
fn run_cell(
    config: &MatrixConfig,
    workload: ScenarioWorkload,
    problem: &VqeProblem,
    params: &[f64],
    class: DeviceClass,
    tenant: TenantBehavior,
) -> io::Result<CellReport> {
    let n = workload.num_qubits();
    // One root stream for every cell: cells sharing (workload, class)
    // see identical devices and trajectories, so the tenant axis varies
    // *only* tenant behavior.
    let seeds = SeedStream::new(config.root_seed);
    let devices: Vec<DeviceSpec> = ["a", "b"]
        .iter()
        .map(|suffix| {
            let name = format!("{}-{suffix}", class.label());
            DeviceSpec {
                model: class.device(&name, n),
                drift: class.drift(seeds.substream(&format!("drift-{name}"))),
                name,
            }
        })
        .collect();
    let store_dir = config.store_root.join(format!(
        "{}-{}-{}",
        workload.label(),
        class.label(),
        tenant.label()
    ));
    let _ = std::fs::remove_dir_all(&store_dir);
    let fleet = fleet_config(config, &workload, problem, tenant, store_dir.clone());

    // The quota ledger is per-process state (it dies with the kill), so
    // each process gets its own submission log and its own audit.
    let mut log = SubmissionLog::default();
    let mut invariants: Vec<InvariantOutcome> = Vec::new();

    // ---- process 1: cold + warm, then an abrupt kill ----
    let service = FleetService::open(fleet.clone(), devices.clone(), problem.clone(), seeds)?;
    let cold = run_round(&service, &mut log, params)?;
    let warm = run_round(&service, &mut log, params)?;
    invariants.push(warm_cheaper_than_cold(cold.minutes(), warm.minutes()));

    // Guard-accepted warm == cold parity: a *full* warm hit (no misses,
    // guard accepted) adopts the cached choice verbatim, so its config
    // must equal the one its client's cold session tuned and stored.
    let cold_configs: HashMap<&str, _> = cold
        .outcomes
        .iter()
        .map(|o| (o.client.as_str(), &o.config))
        .collect();
    let (mut comparisons, mut mismatches) = (0, 0);
    for o in &warm.outcomes {
        if o.misses == 0 && !o.guard_rejected && o.hits > 0 {
            comparisons += 1;
            if cold_configs.get(o.client.as_str()) != Some(&&o.config) {
                mismatches += 1;
            }
        }
    }
    invariants.push(warm_cold_parity(comparisons, mismatches));

    // Audit the pre-kill ledger before it dies with the process.
    let mut pre_kill = quota_accounting(&service.metrics_report(), &log.sorted());
    pre_kill.detail = format!("pre-kill ledger: {}", pre_kill.detail);
    service.halt();

    // ---- process 2: journal-replay recovery + the tenant phase ----
    let service = FleetService::open(fleet, devices, problem.clone(), seeds)?;
    let recovered = {
        let r = service.store().recovery();
        r.journal_records + r.snapshot_entries
    };
    let mut log = SubmissionLog::default();
    let recovery = run_round(&service, &mut log, params)?;
    invariants.push(restart_recovery(
        recovered as u64,
        warm.hit_rate(),
        recovery.hits(),
        recovery.hit_rate(),
    ));

    invariants.extend(run_tenant_phase(&service, tenant, params, &mut log)?);

    // ---- final audit ----
    let metrics = service.metrics_report();
    let mut post = quota_accounting(&metrics, &log.sorted());
    post.detail = format!("final ledger: {}", post.detail);
    invariants.push(InvariantOutcome::new(
        "quota_accounting",
        pre_kill.pass && post.pass,
        format!("{}; {}", pre_kill.detail, post.detail),
    ));
    let sessions = service.sessions_completed();
    service.shutdown()?;
    let _ = std::fs::remove_dir_all(&store_dir);

    Ok(CellReport {
        workload: workload.label(),
        device_class: class.label().to_string(),
        tenant: tenant.label().to_string(),
        qubits: n,
        cold_min: cold.minutes(),
        warm_min: warm.minutes(),
        recovery_min: recovery.minutes(),
        warm_hits: warm.hits(),
        warm_misses: warm.misses(),
        recovery_hits: recovery.hits(),
        recovery_misses: recovery.misses(),
        sessions,
        invariants,
        metrics,
    })
}

/// Recovers the contention device's completion order from the observed
/// outcomes' global sequence stamps (0-based completion indices).
/// `base` is `sessions_completed()` before the phase; positions in
/// `base .. base + total` not held by an observed outcome are
/// attributed to `unobserved` (the disconnected tenant in the churn
/// cell — the device serializes, so the gap positions are necessarily
/// its completions).
fn completion_order(
    observed: &[(String, u64)],
    base: u64,
    total: usize,
    unobserved: Option<&str>,
) -> Vec<String> {
    let by_seq: HashMap<u64, &str> = observed.iter().map(|(c, s)| (*s, c.as_str())).collect();
    (base..base + total as u64)
        .map(|seq| {
            by_seq
                .get(&seq)
                .map(|c| c.to_string())
                .unwrap_or_else(|| unobserved.unwrap_or("<missing>").to_string())
        })
        .collect()
}

/// Drives the cell's tenant behavior against device 0 and returns the
/// behavior's invariant verdicts (always including the DRR starvation
/// bound over the phase's completion order).
fn run_tenant_phase(
    service: &FleetService,
    tenant: TenantBehavior,
    params: &[f64],
    log: &mut SubmissionLog,
) -> io::Result<Vec<InvariantOutcome>> {
    let base = service.sessions_completed() as u64;
    let mut invariants = Vec::new();
    match tenant {
        TenantBehavior::Uniform => {
            let clients = ["ten-a", "ten-b", "ten-c"];
            let mut rxs = Vec::with_capacity(6);
            for _ in 0..2 {
                for c in &clients {
                    rxs.push(submit(service, log, c, 0, params));
                }
            }
            let observed = await_labelled(rxs)?;
            let order = completion_order(&observed, base, observed.len(), None);
            let submitted: Vec<(String, usize)> =
                clients.iter().map(|c| (c.to_string(), 2)).collect();
            invariants.push(starvation_bound(&order, &submitted));
        }
        TenantBehavior::Bursty => {
            // The heavy backlog is fully enqueued before any light
            // tenant arrives — the adversarial case for FIFO.
            let heavy: Vec<_> = (0..4)
                .map(|_| submit(service, log, "heavy", 0, params))
                .collect();
            let lights = ["light-a", "light-b", "light-c"];
            let light_rxs: Vec<_> = lights
                .iter()
                .map(|c| submit(service, log, c, 0, params))
                .collect();
            let observed = await_labelled(heavy.into_iter().chain(light_rxs).collect())?;
            let order = completion_order(&observed, base, observed.len(), None);
            let submitted: Vec<(String, usize)> = std::iter::once(("heavy".to_string(), 4))
                .chain(lights.iter().map(|c| (c.to_string(), 1)))
                .collect();
            invariants.push(starvation_bound(&order, &submitted));
        }
        TenantBehavior::Greedy => {
            // A blocker occupies the device so the greedy burst queues;
            // its third submission exceeds the in-flight cap of 2.
            let blocker = submit(service, log, "blocker", 0, params);
            let greedy_rxs: Vec<_> = (0..3)
                .map(|_| submit(service, log, "greedy", 0, params))
                .collect();
            let mut results: Vec<SessionResult> = Vec::new();
            for rx in greedy_rxs {
                results.push(
                    rx.recv().map_err(|_| {
                        io::Error::new(io::ErrorKind::BrokenPipe, "fleet worker died")
                    })?,
                );
            }
            let rejection = match (&results[0], &results[1], &results[2]) {
                (
                    Ok(_),
                    Ok(_),
                    Err(SessionError::Quota(QuotaError::InFlightExceeded { limit: 2, .. })),
                ) => InvariantOutcome::new(
                    "quota_rejection",
                    true,
                    "third greedy submission bounced off the in-flight cap of 2; \
                     both admitted sessions completed",
                ),
                other => InvariantOutcome::new(
                    "quota_rejection",
                    false,
                    format!("expected (ok, ok, InFlightExceeded cap 2), got {other:?}"),
                ),
            };
            invariants.push(rejection);
            let blocker_outcome = recv_outcome(blocker)?;
            let mut observed: Vec<(String, u64)> = results
                .into_iter()
                .filter_map(|r| r.ok())
                .map(|o| (o.client, o.sequence))
                .collect();
            observed.push((blocker_outcome.client, blocker_outcome.sequence));
            let order = completion_order(&observed, base, observed.len(), None);
            invariants.push(starvation_bound(
                &order,
                &[("blocker".to_string(), 1), ("greedy".to_string(), 2)],
            ));
        }
        TenantBehavior::Churn => {
            // drop-b disconnects mid-stream: its reply channels are
            // dropped on the floor the moment it submits.
            let mut kept: Vec<Receiver<SessionResult>> = Vec::new();
            for _ in 0..2 {
                kept.push(submit(service, log, "stay-a", 0, params));
                drop(submit(service, log, "drop-b", 0, params));
                kept.push(submit(service, log, "stay-c", 0, params));
            }
            let observed = await_labelled(kept)?;
            // The disconnected tenant's sessions still run to
            // completion: wait for the device to drain all 6.
            let target = base + 6;
            let deadline = Instant::now() + CHURN_QUIESCE_TIMEOUT;
            while (service.sessions_completed() as u64) < target && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(10));
            }
            let quiesced = service.sessions_completed() as u64 >= target;
            // A late joiner after the churn must be served normally.
            let late = recv_outcome(submit(service, log, "late-d", 0, params));
            invariants.push(InvariantOutcome::new(
                "churn_quiesced",
                quiesced && late.is_ok(),
                if quiesced {
                    "disconnected tenant's sessions completed; late joiner served".to_string()
                } else {
                    format!(
                        "device stuck at {} of {target} completions after {:?}",
                        service.sessions_completed(),
                        CHURN_QUIESCE_TIMEOUT
                    )
                },
            ));
            late?;
            let order = completion_order(&observed, base, 6, Some("drop-b"));
            let submitted: Vec<(String, usize)> = ["stay-a", "drop-b", "stay-c"]
                .iter()
                .map(|c| (c.to_string(), 2))
                .collect();
            invariants.push(starvation_bound(&order, &submitted));
        }
    }
    Ok(invariants)
}

/// Awaits every receiver, returning `(client, sequence)` pairs.
fn await_labelled(rxs: Vec<Receiver<SessionResult>>) -> io::Result<Vec<(String, u64)>> {
    rxs.into_iter()
        .map(|rx| recv_outcome(rx).map(|o| (o.client, o.sequence)))
        .collect()
}
