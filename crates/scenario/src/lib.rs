//! # vaqem-scenario
//!
//! The scenario-matrix verification harness: one declarative grid
//! crossing **workloads** (`vaqem::workloads::ScenarioWorkload` — TFIM
//! on SU2 at two depths, H2/UCCSD chemistry end-to-end, QAOA-style ring
//! ansätze) × **device classes** (`vaqem_device::classes::DeviceClass`
//! — fast- vs. slow-decoherence, fast- vs. slow-drift presets,
//! instantiated at each workload's width) × **tenant behaviors**
//! ([`tenant::TenantBehavior`] — uniform, bursty, quota-probing greedy,
//! churn with mid-stream disconnects).
//!
//! Every cell runs through the *real* reactor (`FleetService`) under a
//! pinned root seed — cold round, warm round, abrupt kill plus
//! journal-replay reopen, recovery round, then the cell's tenant
//! contention phase — and asserts the stack's cross-cutting invariants
//! per cell ([`invariant`]):
//!
//! * **DRR starvation bound** on the contention device's completion
//!   order (every backlogged client keeps its weight share, minus one);
//! * **quota accounting**: reservations settle exactly once — the
//!   drained ledger holds zero in-flight sessions and zero reserved
//!   minutes, and `completed + rejected` matches what the harness
//!   submitted;
//! * **warm < cold** machine-minute cost;
//! * **kill-and-restart recovery** with the warm-hit rate preserved
//!   across the journal replay;
//! * **guard-accepted warm == cold parity**: a full warm hit adopts
//!   exactly the configuration the cold round tuned.
//!
//! The grid renders as a table ([`report::MatrixReport`]'s `Display`)
//! and as a machine-readable JSON document
//! ([`report::MatrixReport::to_json`]) embedding each cell's full
//! `metrics_report()` dump — the artifact CI uploads.
//!
//! Drive it via the root `tests/scenario_matrix.rs` driver (reduced
//! grid) or the `extension_scenario_matrix` replay binary (full grid,
//! ≥ 24 cells). The root seed is pinned per entry point and
//! overridable through `VAQEM_SEED`
//! (`vaqem_mathkit::rng::root_seed_from_env`).

#![deny(missing_docs)]

pub mod invariant;
pub mod matrix;
pub mod report;
pub mod tenant;

pub use invariant::InvariantOutcome;
pub use matrix::{run_matrix, MatrixConfig};
pub use report::{CellReport, MatrixReport};
pub use tenant::TenantBehavior;
