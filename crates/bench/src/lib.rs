//! # vaqem-bench
//!
//! Shared infrastructure for the figure/table regeneration binaries and the
//! Criterion benches. Every table and figure of the paper's evaluation has
//! a `src/bin/` binary that prints the corresponding rows/series; see
//! `DESIGN.md` at the repository root for the experiment index and for
//! paper-vs-measured comparisons.
//!
//! Set `VAQEM_QUICK=1` to run the heavyweight pipeline binaries with
//! reduced shots/iterations (useful for smoke-testing; the printed shapes
//! remain, with more statistical noise).

use vaqem::pipeline::PipelineConfig;
use vaqem_circuit::circuit::QuantumCircuit;
use vaqem_circuit::schedule::{schedule, DurationModel, ScheduleKind, ScheduledCircuit};
use vaqem_device::backend::DeviceModel;
use vaqem_device::noise::NoiseParameters;
use vaqem_mathkit::rng::SeedStream;
use vaqem_optim::spsa::SpsaConfig;
use vaqem_sim::counts::Counts;
use vaqem_sim::machine::MachineExecutor;
use vaqem_sim::statevector::StateVector;

/// Returns `true` when `VAQEM_QUICK=1` is set.
pub fn quick_mode() -> bool {
    std::env::var("VAQEM_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The pipeline configuration the fig12/fig13 binaries use: paper-shaped,
/// but sized to finish in minutes on a laptop; `VAQEM_QUICK=1` shrinks it
/// further.
pub fn evaluation_config() -> PipelineConfig {
    if quick_mode() {
        PipelineConfig {
            spsa: SpsaConfig::paper_default().with_iterations(60),
            shots: 192,
            sweep_resolution: 3,
            max_repetitions: 8,
            seeds: SeedStream::new(2024),
            eval_repeats: 1,
        }
    } else {
        PipelineConfig {
            spsa: SpsaConfig::paper_default().with_iterations(200),
            shots: 512,
            sweep_resolution: 5,
            max_repetitions: 12,
            seeds: SeedStream::new(2024),
            eval_repeats: 2,
        }
    }
}

/// Schedules a concrete circuit ALAP under IBM-default durations.
///
/// # Panics
///
/// Panics on parameterized circuits (bench inputs are always bound).
pub fn alap(qc: &QuantumCircuit) -> ScheduledCircuit {
    schedule(qc, &DurationModel::ibm_default(), ScheduleKind::Alap).expect("bound circuit")
}

/// The 2-qubit noise environment used by the micro-benchmarks: the first
/// two qubits of `ibmq_casablanca`.
pub fn casablanca_2q() -> NoiseParameters {
    DeviceModel::ibmq_casablanca().noise().subset(&[0, 1])
}

/// The single-qubit environment of casablanca's qubit 0.
pub fn casablanca_1q() -> NoiseParameters {
    DeviceModel::ibmq_casablanca().noise().subset(&[0])
}

/// Hellinger fidelity of machine counts against the ideal distribution of
/// the same circuit.
pub fn fidelity_vs_ideal(qc: &QuantumCircuit, executor: &MachineExecutor, job: u64) -> f64 {
    let measured = executor.run_job(&alap(qc), job);
    let ideal = ideal_counts(qc, executor.shots());
    measured.hellinger_fidelity(&ideal)
}

/// Ideal (noise- and sampling-free) reference counts for a circuit.
pub fn ideal_counts(qc: &QuantumCircuit, shots: u64) -> Counts {
    StateVector::run(qc)
        .expect("bound circuit")
        .exact_counts(shots)
}

/// Prints a two-column series as an aligned table with a title.
pub fn print_series(title: &str, x_label: &str, y_label: &str, series: &[(f64, f64)]) {
    println!("\n=== {title} ===");
    println!("{x_label:>14}  {y_label:>14}");
    for (x, y) in series {
        println!("{x:>14.4}  {y:>14.4}");
    }
}

/// Formats a ratio row for the Fig. 12-style tables.
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:>8.2}x")
}

pub mod rpcload {
    //! The fixture shared by the `fleetd` daemon binary and the
    //! `loadgen` harness: a fleet of small 2-qubit devices running a
    //! deliberately light tuning problem, so a load run measures the
    //! RPC front-end and reactor — admission, fairness, quota,
    //! framing — rather than simulator physics.

    use vaqem::vqe::VqeProblem;
    use vaqem::window_tuner::WindowTunerConfig;
    use vaqem_ansatz::su2::{EfficientSu2, Entanglement};
    use vaqem_circuit::schedule::DurationModel;
    use vaqem_device::backend::DeviceModel;
    use vaqem_device::drift::DriftModel;
    use vaqem_device::noise::{NoiseParameters, QubitNoise};
    use vaqem_fleet_service::{
        ClientQuota, DeviceSpec, FleetServiceConfig, SessionKind, SessionRequest, TenancyConfig,
    };
    use vaqem_mathkit::rng::SeedStream;
    use vaqem_runtime::{BatchDispatch, CostModel, WorkloadProfile};

    const NUM_QUBITS: usize = 2;

    /// The tuning problem both binaries agree on (`params` lengths must
    /// match across the wire).
    pub fn problem() -> VqeProblem {
        let ansatz = EfficientSu2::new(NUM_QUBITS, 1, Entanglement::Linear)
            .circuit()
            .expect("ansatz builds");
        VqeProblem::new(
            "rpcload_tfim_2q",
            vaqem_pauli::models::tfim_paper(NUM_QUBITS),
            ansatz,
        )
        .expect("problem builds")
    }

    /// One light fleet device.
    pub fn device(index: usize, seed: u64) -> DeviceSpec {
        let name = format!("rpc-fleet-{index}");
        DeviceSpec {
            model: DeviceModel::new(
                &name,
                NUM_QUBITS,
                vec![(0, 1)],
                DurationModel::ibm_default(),
                NoiseParameters::uniform(NUM_QUBITS),
            ),
            drift: DriftModel::new(SeedStream::new(seed).substream(&format!("drift-{name}"))),
            name,
        }
    }

    /// The daemon configuration: light tuner, and the `greedy-*` tenant
    /// class capped at one in-flight session so quota-probers bounce
    /// with the typed rejection.
    pub fn service_config(store_dir: std::path::PathBuf) -> FleetServiceConfig {
        FleetServiceConfig {
            store_dir,
            shards: 4,
            capacity_per_shard: 128,
            shots: 64,
            tuner: WindowTunerConfig {
                sweep_resolution: 2,
                max_repetitions: 2,
                guard_repeats: 1,
                ..Default::default()
            },
            profile: WorkloadProfile {
                num_qubits: NUM_QUBITS,
                circuit_ns: 8_000.0,
                iterations: 10,
                measurement_groups: 2,
                windows: 4,
                sweep_resolution: 2,
                shots: 64,
            },
            cost: CostModel::ibm_cloud_2021(),
            dispatch: BatchDispatch::local(2),
            tenancy: TenancyConfig {
                quotas: vec![(
                    "greedy-*".into(),
                    ClientQuota {
                        max_in_flight: 1,
                        minutes_per_epoch: f64::INFINITY,
                    },
                )],
                ..TenancyConfig::default()
            },
        }
    }

    /// One synthetic session request (the server rebinds `client` to the
    /// connection identity anyway).
    pub fn request(t_hours: f64) -> SessionRequest {
        SessionRequest {
            client: "loadgen".into(),
            t_hours,
            params: vec![0.3; problem().num_params()],
            device: None,
            kind: SessionKind::Dd,
        }
    }

    /// The 2-qubit fixture above schedules no idle windows — it stresses
    /// framing and scheduling, never the config cache. Replication tests
    /// need *cache traffic* (published entries are what journal shipping
    /// ships), so this 3-qubit variant schedules real windows.
    pub const WINDOWED_QUBITS: usize = 3;

    /// The windowed tuning problem (see [`WINDOWED_QUBITS`]).
    pub fn windowed_problem() -> VqeProblem {
        let ansatz = EfficientSu2::new(WINDOWED_QUBITS, 1, Entanglement::Linear)
            .circuit()
            .expect("ansatz builds");
        VqeProblem::new(
            "rpcload_tfim_3q",
            vaqem_pauli::models::tfim_paper(WINDOWED_QUBITS),
            ansatz,
        )
        .expect("problem builds")
    }

    /// One windowed fleet device: realistic per-qubit noise plus ZZ
    /// coupling, so the scheduler finds idle windows worth tuning.
    pub fn windowed_device(index: usize, seed: u64) -> DeviceSpec {
        let q = QubitNoise {
            t1_ns: 120_000.0,
            t2_ns: 90_000.0,
            quasi_static_sigma_rad_ns: 2.0e-3,
            telegraph_rate_per_ns: 2.0e-6,
            readout_p01: 0.012,
            readout_p10: 0.025,
            gate_error_1q: 1.5e-4,
        };
        let coupling: Vec<(usize, usize)> = (0..WINDOWED_QUBITS - 1).map(|i| (i, i + 1)).collect();
        let mut noise = NoiseParameters::from_qubits(vec![q; WINDOWED_QUBITS]);
        for &(a, b) in &coupling {
            noise.set_zz(a, b, 1.0e-5);
        }
        let name = format!("rpc-windowed-{index}");
        DeviceSpec {
            model: DeviceModel::new(
                &name,
                WINDOWED_QUBITS,
                coupling,
                DurationModel::ibm_default(),
                noise,
            ),
            drift: DriftModel::new(SeedStream::new(seed).substream(&format!("drift-{name}"))),
            name,
        }
    }

    /// Daemon configuration for the windowed fixture: the full tuner
    /// (real sweeps, guard repeats) over the same store geometry as
    /// [`service_config`], so a replica opened with either fixture's
    /// geometry can replay the other's journal.
    pub fn windowed_service_config(store_dir: std::path::PathBuf) -> FleetServiceConfig {
        FleetServiceConfig {
            store_dir,
            shards: 4,
            capacity_per_shard: 128,
            shots: 256,
            tuner: WindowTunerConfig {
                sweep_resolution: 3,
                max_repetitions: 8,
                guard_repeats: 3,
                ..Default::default()
            },
            profile: WorkloadProfile {
                num_qubits: WINDOWED_QUBITS,
                circuit_ns: 12_000.0,
                iterations: 50,
                measurement_groups: 2,
                windows: 8,
                sweep_resolution: 3,
                shots: 256,
            },
            cost: CostModel::ibm_cloud_2021(),
            dispatch: BatchDispatch::local(4),
            tenancy: TenancyConfig::default(),
        }
    }

    /// One windowed session request.
    pub fn windowed_request(t_hours: f64) -> SessionRequest {
        SessionRequest {
            client: "loadgen".into(),
            t_hours,
            params: vec![0.3; windowed_problem().num_params()],
            device: Some(0),
            kind: SessionKind::Dd,
        }
    }

    /// The `--sweep-cores` fixture: the *windowed* devices and problem
    /// (real idle windows, so every completed session publishes cache
    /// entries and exercises the journal) driven by the *light* tuner —
    /// sessions finish in milliseconds, so the measured bottleneck is
    /// the serving stack (pump, journal flushes, reply path) rather
    /// than simulator physics. `workers` pins the reactor worker-pool
    /// width — the per-core axis of the scaling sweep.
    pub fn sweep_service_config(
        store_dir: std::path::PathBuf,
        workers: usize,
    ) -> FleetServiceConfig {
        FleetServiceConfig {
            store_dir,
            shards: 4,
            capacity_per_shard: 128,
            shots: 32,
            tuner: WindowTunerConfig {
                sweep_resolution: 2,
                max_repetitions: 2,
                guard_repeats: 1,
                ..Default::default()
            },
            profile: WorkloadProfile {
                num_qubits: WINDOWED_QUBITS,
                circuit_ns: 8_000.0,
                iterations: 10,
                measurement_groups: 2,
                windows: 4,
                sweep_resolution: 2,
                shots: 32,
            },
            cost: CostModel::ibm_cloud_2021(),
            dispatch: BatchDispatch::local(2),
            tenancy: TenancyConfig {
                workers,
                ..TenancyConfig::default()
            },
        }
    }

    /// One sweep session request: `device: None`, so the scheduler
    /// spreads the closed-loop clients across the whole width-sized
    /// fleet.
    pub fn sweep_request(t_hours: f64) -> SessionRequest {
        SessionRequest {
            client: "loadgen".into(),
            t_hours,
            params: vec![0.3; windowed_problem().num_params()],
            device: None,
            kind: SessionKind::Dd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_and_run() {
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).unwrap();
        qc.measure(0).unwrap();
        let exec = MachineExecutor::new(casablanca_1q(), SeedStream::new(9)).with_shots(256);
        let f = fidelity_vs_ideal(&qc, &exec, 0);
        assert!((0.0..=1.0).contains(&f));
        assert!(casablanca_2q().num_qubits() == 2);
    }

    #[test]
    fn evaluation_config_is_paper_shaped() {
        let c = evaluation_config();
        assert!(c.shots >= 128);
        assert!(c.sweep_resolution >= 3);
    }
}
