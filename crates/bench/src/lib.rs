//! # vaqem-bench
//!
//! Shared infrastructure for the figure/table regeneration binaries and the
//! Criterion benches. Every table and figure of the paper's evaluation has
//! a `src/bin/` binary that prints the corresponding rows/series; see
//! `DESIGN.md` at the repository root for the experiment index and for
//! paper-vs-measured comparisons.
//!
//! Set `VAQEM_QUICK=1` to run the heavyweight pipeline binaries with
//! reduced shots/iterations (useful for smoke-testing; the printed shapes
//! remain, with more statistical noise).

use vaqem::pipeline::PipelineConfig;
use vaqem_circuit::circuit::QuantumCircuit;
use vaqem_circuit::schedule::{schedule, DurationModel, ScheduleKind, ScheduledCircuit};
use vaqem_device::backend::DeviceModel;
use vaqem_device::noise::NoiseParameters;
use vaqem_mathkit::rng::SeedStream;
use vaqem_optim::spsa::SpsaConfig;
use vaqem_sim::counts::Counts;
use vaqem_sim::machine::MachineExecutor;
use vaqem_sim::statevector::StateVector;

/// Returns `true` when `VAQEM_QUICK=1` is set.
pub fn quick_mode() -> bool {
    std::env::var("VAQEM_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The pipeline configuration the fig12/fig13 binaries use: paper-shaped,
/// but sized to finish in minutes on a laptop; `VAQEM_QUICK=1` shrinks it
/// further.
pub fn evaluation_config() -> PipelineConfig {
    if quick_mode() {
        PipelineConfig {
            spsa: SpsaConfig::paper_default().with_iterations(60),
            shots: 192,
            sweep_resolution: 3,
            max_repetitions: 8,
            seeds: SeedStream::new(2024),
            eval_repeats: 1,
        }
    } else {
        PipelineConfig {
            spsa: SpsaConfig::paper_default().with_iterations(200),
            shots: 512,
            sweep_resolution: 5,
            max_repetitions: 12,
            seeds: SeedStream::new(2024),
            eval_repeats: 2,
        }
    }
}

/// Schedules a concrete circuit ALAP under IBM-default durations.
///
/// # Panics
///
/// Panics on parameterized circuits (bench inputs are always bound).
pub fn alap(qc: &QuantumCircuit) -> ScheduledCircuit {
    schedule(qc, &DurationModel::ibm_default(), ScheduleKind::Alap).expect("bound circuit")
}

/// The 2-qubit noise environment used by the micro-benchmarks: the first
/// two qubits of `ibmq_casablanca`.
pub fn casablanca_2q() -> NoiseParameters {
    DeviceModel::ibmq_casablanca().noise().subset(&[0, 1])
}

/// The single-qubit environment of casablanca's qubit 0.
pub fn casablanca_1q() -> NoiseParameters {
    DeviceModel::ibmq_casablanca().noise().subset(&[0])
}

/// Hellinger fidelity of machine counts against the ideal distribution of
/// the same circuit.
pub fn fidelity_vs_ideal(qc: &QuantumCircuit, executor: &MachineExecutor, job: u64) -> f64 {
    let measured = executor.run_job(&alap(qc), job);
    let ideal = ideal_counts(qc, executor.shots());
    measured.hellinger_fidelity(&ideal)
}

/// Ideal (noise- and sampling-free) reference counts for a circuit.
pub fn ideal_counts(qc: &QuantumCircuit, shots: u64) -> Counts {
    StateVector::run(qc)
        .expect("bound circuit")
        .exact_counts(shots)
}

/// Prints a two-column series as an aligned table with a title.
pub fn print_series(title: &str, x_label: &str, y_label: &str, series: &[(f64, f64)]) {
    println!("\n=== {title} ===");
    println!("{x_label:>14}  {y_label:>14}");
    for (x, y) in series {
        println!("{x:>14.4}  {y:>14.4}");
    }
}

/// Formats a ratio row for the Fig. 12-style tables.
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:>8.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_and_run() {
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).unwrap();
        qc.measure(0).unwrap();
        let exec = MachineExecutor::new(casablanca_1q(), SeedStream::new(9)).with_shots(256);
        let f = fidelity_vs_ideal(&qc, &exec, 0);
        assert!((0.0..=1.0).contains(&f));
        assert!(casablanca_2q().num_qubits() == 2);
    }

    #[test]
    fn evaluation_config_is_paper_shaped() {
        let c = evaluation_config();
        assert!(c.shots >= 128);
        assert!(c.sweep_resolution >= 3);
    }
}
